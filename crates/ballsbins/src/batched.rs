//! Round-synchronous (batched) allocation — parallel randomized load
//! balancing (the paper's refs \[7\] Adler et al. and \[8\]
//! Lenzen–Wattenhofer).
//!
//! Balls arrive in batches of size `b`; every ball in a batch observes the
//! *same* load snapshot (taken at the start of the batch) and all commit
//! simultaneously. `b = 1` recovers the sequential process; `b = m` is a
//! single fully parallel round. In between, the **herd effect** appears:
//! balls in a batch cannot see each other, so they pile onto the same
//! momentarily light bins — quantifying how much communication latency the
//! power of two choices tolerates (the dynamic analogue is
//! `paba_core::StaleLoad`).

use crate::AllocationResult;
use rand::Rng;

/// Batched Greedy\[d\]: `m` balls in batches of `batch`, `d` uniform
/// candidate bins per ball, each ball joins the candidate that was least
/// loaded **at the start of its batch** (ties uniform).
///
/// # Panics
/// If `n == 0`, `d == 0`, or `batch == 0`.
pub fn batched_d_choice<R: Rng + ?Sized>(
    n: u32,
    m: u64,
    d: u32,
    batch: u64,
    rng: &mut R,
) -> AllocationResult {
    assert!(n > 0, "need at least one bin");
    assert!(d > 0, "need at least one choice");
    assert!(batch > 0, "batch size must be positive");
    let mut loads = vec![0u32; n as usize];
    let mut snapshot = loads.clone();
    let mut thrown = 0u64;
    while thrown < m {
        snapshot.copy_from_slice(&loads);
        let this_batch = batch.min(m - thrown);
        for _ in 0..this_batch {
            let mut best = rng.gen_range(0..n) as usize;
            let mut ties = 1u32;
            for _ in 1..d {
                let c = rng.gen_range(0..n) as usize;
                if snapshot[c] < snapshot[best] {
                    best = c;
                    ties = 1;
                } else if snapshot[c] == snapshot[best] {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = c;
                    }
                }
            }
            loads[best] += 1;
        }
        thrown += this_batch;
    }
    AllocationResult { loads, m }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::d_choice;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn conservation_and_shape() {
        let r = batched_d_choice(128, 1000, 2, 37, &mut rng(1));
        assert!(r.check_conservation());
        assert_eq!(r.n(), 128);
        assert_eq!(r.m, 1000);
    }

    #[test]
    fn batch_one_statistically_matches_sequential() {
        let n = 2048u32;
        let runs = 10;
        let seq: f64 = (0..runs)
            .map(|s| d_choice(n, n as u64, 2, &mut rng(s)).max_load() as f64)
            .sum::<f64>()
            / runs as f64;
        let b1: f64 = (0..runs)
            .map(|s| batched_d_choice(n, n as u64, 2, 1, &mut rng(100 + s)).max_load() as f64)
            .sum::<f64>()
            / runs as f64;
        assert!(
            (seq - b1).abs() < 0.6,
            "batch=1 ({b1}) should match sequential ({seq})"
        );
    }

    #[test]
    fn herd_effect_degrades_with_batch_size() {
        // One giant batch ≈ one-choice (no usable load signal); small
        // batches ≈ two-choice.
        let n = 2048u32;
        let runs = 8;
        let avg = |batch: u64, base: u64| -> f64 {
            (0..runs)
                .map(|s| {
                    batched_d_choice(n, 4 * n as u64, 2, batch, &mut rng(base + s)).max_load()
                        as f64
                })
                .sum::<f64>()
                / runs as f64
        };
        let small = avg(1, 0);
        let huge = avg(4 * n as u64, 500);
        assert!(
            small + 0.5 < huge,
            "herd effect missing: batch=1 {small} vs single round {huge}"
        );
    }

    #[test]
    fn single_round_from_empty_equals_one_choice() {
        // With an all-zero snapshot every comparison is a tie broken
        // uniformly between two uniform bins — which IS one-choice. A
        // single fully parallel round therefore matches one-choice
        // distributionally (Adler et al.'s lower-bound intuition: one
        // round of communication buys nothing).
        let n = 4096u32;
        let runs = 10;
        let one: f64 = (0..runs)
            .map(|s| crate::one_choice(n, n as u64, &mut rng(s)).max_load() as f64)
            .sum::<f64>()
            / runs as f64;
        let round: f64 = (0..runs)
            .map(|s| {
                batched_d_choice(n, n as u64, 2, n as u64, &mut rng(700 + s)).max_load() as f64
            })
            .sum::<f64>()
            / runs as f64;
        assert!(
            (round - one).abs() < 0.8,
            "single round ({round}) should equal one-choice ({one})"
        );
    }

    #[test]
    fn partial_final_batch_handled() {
        let r = batched_d_choice(10, 25, 2, 10, &mut rng(3));
        assert!(r.check_conservation());
        assert_eq!(r.m, 25);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = batched_d_choice(64, 500, 3, 16, &mut rng(9));
        let b = batched_d_choice(64, 500, 3, 16, &mut rng(9));
        assert_eq!(a, b);
    }
}
