//! Classic balls-into-bins allocation processes.
//!
//! The paper's analysis is anchored in the balanced-allocations literature:
//! Example 1 reduces Strategy II (with `M = K`, `r = ∞`) to the standard
//! two-choice process of Azar–Broder–Karlin–Upfal, and Theorem 4 rides on
//! Kenthapadi–Panigrahi's *balanced allocation on graphs* (their Theorem 5).
//! This crate implements those reference processes so the cache-network
//! results can be compared against their idealized counterparts:
//!
//! * [`one_choice`] — each ball to a uniform bin; max load
//!   `Θ(log n / log log n)` at `m = n`.
//! * [`d_choice`] — Greedy\[d\] (Azar et al. \[5\]): max load
//!   `ln ln n / ln d + Θ(1)`.
//! * [`one_plus_beta`] — the (1+β)-choice process (Peres–Talwar–Wieder).
//! * [`graph_two_choice`] — a uniform random **edge** of a graph `G`, ball
//!   to the lesser-loaded endpoint (Kenthapadi–Panigrahi \[10\]).
//! * [`neighbor_two_choice`] — uniform node, then uniform neighbor (the
//!   variant analyzed for dense regular graphs; identical to edge-uniform
//!   on regular graphs).
//! * heavily-loaded helpers for the `m ≫ n` regime (Berenbrink et al.
//!   \[9\]): the two-choice *gap* `m/n + O(log log n)` is independent of m.
//!
//! All processes break load ties **uniformly at random** (as the paper's
//! Definition 3 requires), which matters for exact distributional claims.

pub mod batched;
pub mod metrics;
pub mod process;

pub use batched::batched_d_choice;
pub use metrics::AllocationResult;
pub use process::{
    d_choice, graph_two_choice, neighbor_two_choice, one_choice, one_plus_beta, two_choice,
};
