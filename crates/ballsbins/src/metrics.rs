//! Result type shared by all allocation processes.

use paba_util::Histogram;

/// The outcome of throwing `m` balls into `n` bins under some policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllocationResult {
    /// Final load of each bin.
    pub loads: Vec<u32>,
    /// Number of balls thrown.
    pub m: u64,
}

impl AllocationResult {
    /// Number of bins.
    pub fn n(&self) -> u32 {
        self.loads.len() as u32
    }

    /// Maximum load `max_i T_i` — the paper's primary balance metric.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Minimum load.
    pub fn min_load(&self) -> u32 {
        self.loads.iter().copied().min().unwrap_or(0)
    }

    /// Average load `m/n`.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.m as f64 / self.loads.len() as f64
        }
    }

    /// Gap above the average: `max_i T_i − m/n` (the heavily-loaded
    /// metric of Berenbrink et al.).
    pub fn gap(&self) -> f64 {
        self.max_load() as f64 - self.mean_load()
    }

    /// Number of empty bins.
    pub fn empty_bins(&self) -> usize {
        self.loads.iter().filter(|&&l| l == 0).count()
    }

    /// Load histogram (bucket = load value).
    pub fn histogram(&self) -> Histogram {
        let mut h = Histogram::with_capacity(self.max_load() as usize + 1);
        for &l in &self.loads {
            h.record(l as usize);
        }
        h
    }

    /// Internal consistency: loads must sum to `m`.
    pub fn check_conservation(&self) -> bool {
        self.loads.iter().map(|&l| l as u64).sum::<u64>() == self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AllocationResult {
        AllocationResult {
            loads: vec![0, 3, 1, 0, 2],
            m: 6,
        }
    }

    #[test]
    fn basic_metrics() {
        let r = sample();
        assert_eq!(r.n(), 5);
        assert_eq!(r.max_load(), 3);
        assert_eq!(r.min_load(), 0);
        assert!((r.mean_load() - 1.2).abs() < 1e-12);
        assert!((r.gap() - 1.8).abs() < 1e-12);
        assert_eq!(r.empty_bins(), 2);
        assert!(r.check_conservation());
    }

    #[test]
    fn histogram_matches_loads() {
        let h = sample().histogram();
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn conservation_detects_mismatch() {
        let mut r = sample();
        r.m = 7;
        assert!(!r.check_conservation());
    }

    #[test]
    fn empty_allocation() {
        let r = AllocationResult {
            loads: vec![],
            m: 0,
        };
        assert_eq!(r.max_load(), 0);
        assert_eq!(r.mean_load(), 0.0);
        assert!(r.check_conservation());
    }
}
