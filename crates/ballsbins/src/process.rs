//! The allocation processes themselves.
//!
//! Each function runs one complete process of `m` sequential balls and
//! returns the final [`AllocationResult`]. Ties between equally loaded
//! candidates are broken uniformly at random, matching the paper's
//! Definition 3 ("Ties are broken randomly").

use crate::AllocationResult;
use paba_topology::CsrGraph;
use rand::Rng;

/// One-choice: every ball lands in an independent uniform bin.
///
/// At `m = n`, the maximum load is `(1+o(1)) · ln n / ln ln n` w.h.p. —
/// the benchmark the paper's Strategy I matches up to constants.
pub fn one_choice<R: Rng + ?Sized>(n: u32, m: u64, rng: &mut R) -> AllocationResult {
    assert!(n > 0, "need at least one bin");
    let mut loads = vec![0u32; n as usize];
    for _ in 0..m {
        loads[rng.gen_range(0..n) as usize] += 1;
    }
    AllocationResult { loads, m }
}

/// Classic two-choice (Greedy\[2\]): convenience wrapper over [`d_choice`].
pub fn two_choice<R: Rng + ?Sized>(n: u32, m: u64, rng: &mut R) -> AllocationResult {
    d_choice(n, m, 2, rng)
}

/// Greedy\[d\] of Azar–Broder–Karlin–Upfal: each ball samples `d`
/// independent uniform bins (with replacement) and joins the least loaded,
/// ties broken uniformly among the minimizers.
///
/// At `m = n`, the maximum load is `ln ln n / ln d + Θ(1)` w.h.p. — the
/// "power of d choices".
///
/// # Panics
/// If `n == 0` or `d == 0`.
pub fn d_choice<R: Rng + ?Sized>(n: u32, m: u64, d: u32, rng: &mut R) -> AllocationResult {
    assert!(n > 0, "need at least one bin");
    assert!(d > 0, "need at least one choice");
    let mut loads = vec![0u32; n as usize];
    for _ in 0..m {
        // Reservoir-min over d candidate draws: track the least-loaded
        // candidate, replacing ties with probability 1/(#ties so far).
        let mut best = rng.gen_range(0..n) as usize;
        let mut ties = 1u32;
        for _ in 1..d {
            let c = rng.gen_range(0..n) as usize;
            if loads[c] < loads[best] {
                best = c;
                ties = 1;
            } else if loads[c] == loads[best] {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = c;
                }
            }
        }
        loads[best] += 1;
    }
    AllocationResult { loads, m }
}

/// The (1+β)-choice process of Peres–Talwar–Wieder: with probability
/// `beta` the ball uses two choices, otherwise one.
///
/// Interpolates between one-choice (`β = 0`) and two-choice (`β = 1`);
/// for any fixed `β ∈ (0,1)` the gap is `Θ(log n / β)`, *independent of
/// m* — a useful contrast when studying how much choice the proximity
/// constraint really leaves Strategy II.
///
/// # Panics
/// If `beta ∉ [0, 1]` or `n == 0`.
pub fn one_plus_beta<R: Rng + ?Sized>(n: u32, m: u64, beta: f64, rng: &mut R) -> AllocationResult {
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    assert!(n > 0, "need at least one bin");
    let mut loads = vec![0u32; n as usize];
    for _ in 0..m {
        let a = rng.gen_range(0..n) as usize;
        let target = if beta > 0.0 && (beta >= 1.0 || rng.gen::<f64>() < beta) {
            let b = rng.gen_range(0..n) as usize;
            pick_lesser(&loads, a, b, rng)
        } else {
            a
        };
        loads[target] += 1;
    }
    AllocationResult { loads, m }
}

/// Kenthapadi–Panigrahi balanced allocation on a graph: each ball samples
/// a **uniform random edge** of `g` and joins the lesser-loaded endpoint
/// (ties uniform).
///
/// This is the exact process of the paper's Theorem 5, whose guarantee
/// `Θ(log log n) + O(log n / log(Δ/log⁴n))` the cache-network Strategy II
/// inherits through the configuration graph `H`.
///
/// # Panics
/// If `g` has no edges.
pub fn graph_two_choice<R: Rng + ?Sized>(g: &CsrGraph, m: u64, rng: &mut R) -> AllocationResult {
    let mut loads = vec![0u32; g.n() as usize];
    for _ in 0..m {
        let (a, b) = g.sample_edge(rng);
        let t = pick_lesser(&loads, a as usize, b as usize, rng);
        loads[t] += 1;
    }
    AllocationResult { loads, m }
}

/// Node-then-neighbor variant: a uniform node, then a uniform neighbor of
/// it; ball to the lesser-loaded of the two.
///
/// On Δ-regular graphs this induces the same edge distribution as
/// [`graph_two_choice`]; on irregular graphs it biases toward low-degree
/// nodes' edges (included for the ablation in `examples_regimes`).
///
/// # Panics
/// If any node of `g` is isolated.
pub fn neighbor_two_choice<R: Rng + ?Sized>(g: &CsrGraph, m: u64, rng: &mut R) -> AllocationResult {
    let mut loads = vec![0u32; g.n() as usize];
    for _ in 0..m {
        let a = rng.gen_range(0..g.n());
        let nbrs = g.neighbors(a);
        assert!(!nbrs.is_empty(), "node {a} is isolated");
        let b = nbrs[rng.gen_range(0..nbrs.len())];
        let t = pick_lesser(&loads, a as usize, b as usize, rng);
        loads[t] += 1;
    }
    AllocationResult { loads, m }
}

/// Index of the lesser-loaded of two bins, ties uniform.
#[inline]
fn pick_lesser<R: Rng + ?Sized>(loads: &[u32], a: usize, b: usize, rng: &mut R) -> usize {
    match loads[a].cmp(&loads[b]) {
        std::cmp::Ordering::Less => a,
        std::cmp::Ordering::Greater => b,
        std::cmp::Ordering::Equal => {
            if rng.gen::<bool>() {
                a
            } else {
                b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_topology::{circulant_graph, complete_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn conservation_all_processes() {
        let g = circulant_graph(64, 4);
        let mut r = rng(1);
        for res in [
            one_choice(64, 640, &mut r),
            two_choice(64, 640, &mut r),
            d_choice(64, 640, 5, &mut r),
            one_plus_beta(64, 640, 0.5, &mut r),
            graph_two_choice(&g, 640, &mut r),
            neighbor_two_choice(&g, 640, &mut r),
        ] {
            assert!(res.check_conservation());
            assert_eq!(res.n(), 64);
            assert_eq!(res.m, 640);
        }
    }

    #[test]
    fn two_choice_beats_one_choice_on_average() {
        // At m = n = 4096, two-choice max load should be well below
        // one-choice max load essentially every run; compare averages
        // over a few seeds to keep flakiness negligible.
        let n = 4096u32;
        let mut one = 0.0;
        let mut two = 0.0;
        for seed in 0..10 {
            one += one_choice(n, n as u64, &mut rng(seed)).max_load() as f64;
            two += two_choice(n, n as u64, &mut rng(1000 + seed)).max_load() as f64;
        }
        assert!(
            two < one - 1.0,
            "two-choice ({two}) should beat one-choice ({one}) by ≥1 on average"
        );
    }

    #[test]
    fn more_choices_never_hurt_much() {
        let n = 2048u32;
        let mut d2 = 0.0;
        let mut d4 = 0.0;
        for seed in 0..10 {
            d2 += d_choice(n, n as u64, 2, &mut rng(seed)).max_load() as f64;
            d4 += d_choice(n, n as u64, 4, &mut rng(500 + seed)).max_load() as f64;
        }
        assert!(
            d4 <= d2 + 0.2,
            "Greedy[4] ({d4}) worse than Greedy[2] ({d2})"
        );
    }

    #[test]
    fn one_plus_beta_interpolates() {
        let n = 2048u32;
        let avg = |beta: f64, base: u64| -> f64 {
            (0..8)
                .map(|s| one_plus_beta(n, n as u64, beta, &mut rng(base + s)).max_load() as f64)
                .sum::<f64>()
                / 8.0
        };
        let b0 = avg(0.0, 0);
        let b1 = avg(1.0, 100);
        let bh = avg(0.5, 200);
        assert!(b1 < b0, "β=1 ({b1}) must beat β=0 ({b0})");
        assert!(
            bh <= b0 && bh >= b1 - 0.5,
            "β=0.5 ({bh}) should interpolate"
        );
    }

    #[test]
    fn graph_two_choice_on_complete_graph_matches_two_choice_regime() {
        // On K_n, edge-uniform two-choice is the classic process
        // conditioned on distinct bins; max loads should be statistically
        // close at m = n.
        let n = 1024u32;
        let g = complete_graph(n);
        let mut a = 0.0;
        let mut b = 0.0;
        for seed in 0..8 {
            a += graph_two_choice(&g, n as u64, &mut rng(seed)).max_load() as f64;
            b += two_choice(n, n as u64, &mut rng(300 + seed)).max_load() as f64;
        }
        assert!((a - b).abs() <= 1.0, "K_n graph choice {a} vs classic {b}");
    }

    #[test]
    fn sparse_graph_choice_is_weaker_than_dense() {
        // KP: max load degrades as the graph gets sparser. Ring (Δ=2) vs
        // dense circulant (Δ=64) at n=1024.
        let n = 1024u32;
        let ring = circulant_graph(n, 1);
        let dense = circulant_graph(n, 32);
        let mut sparse_load = 0.0;
        let mut dense_load = 0.0;
        for seed in 0..8 {
            sparse_load += graph_two_choice(&ring, n as u64, &mut rng(seed)).max_load() as f64;
            dense_load +=
                graph_two_choice(&dense, n as u64, &mut rng(900 + seed)).max_load() as f64;
        }
        assert!(
            dense_load < sparse_load,
            "dense graph ({dense_load}) should balance better than ring ({sparse_load})"
        );
    }

    #[test]
    fn neighbor_variant_agrees_on_regular_graphs() {
        let n = 512u32;
        let g = circulant_graph(n, 8);
        let mut edge_v = 0.0;
        let mut nbr_v = 0.0;
        for seed in 0..8 {
            edge_v += graph_two_choice(&g, n as u64, &mut rng(seed)).max_load() as f64;
            nbr_v += neighbor_two_choice(&g, n as u64, &mut rng(77 + seed)).max_load() as f64;
        }
        assert!(
            (edge_v - nbr_v).abs() <= 1.0,
            "regular graph: edge {edge_v} vs neighbor {nbr_v}"
        );
    }

    #[test]
    fn heavily_loaded_two_choice_gap_stays_small() {
        // Berenbrink et al.: two-choice gap is m/n + O(log log n),
        // independent of m. With m = 100n the gap should stay tiny while
        // one-choice's gap grows like √(m/n · log n).
        let n = 256u32;
        let m = 100 * n as u64;
        let two = two_choice(n, m, &mut rng(5));
        let one = one_choice(n, m, &mut rng(6));
        assert!(two.gap() <= 6.0, "two-choice heavy gap {}", two.gap());
        assert!(
            one.gap() > two.gap() * 2.0,
            "one-choice heavy gap {} vs two-choice {}",
            one.gap(),
            two.gap()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = d_choice(100, 1000, 2, &mut rng(42));
        let b = d_choice(100, 1000, 2, &mut rng(42));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_balls() {
        let r = two_choice(10, 0, &mut rng(0));
        assert_eq!(r.max_load(), 0);
        assert!(r.check_conservation());
    }

    #[test]
    fn single_bin() {
        let r = d_choice(1, 57, 3, &mut rng(0));
        assert_eq!(r.max_load(), 57);
    }

    #[test]
    #[should_panic(expected = "beta must be in [0,1]")]
    fn invalid_beta_panics() {
        let _ = one_plus_beta(4, 4, 1.5, &mut rng(0));
    }
}
