//! Ablations over the simulator's design choices (DESIGN.md §2/§5).
//!
//! 1. **Power of d choices saturation** — `d ∈ {1, 2, 3, 4}` versus the
//!    full-information [`paba_core::LeastLoadedInBall`] baseline at a
//!    matched radius: two probes already capture almost all of the
//!    benefit of probing every replica in the ball (Azar et al.'s classic
//!    punchline, here under the proximity constraint).
//! 2. **Pair sampling mode** — unordered distinct pairs (the paper's
//!    Lemma-3 process) versus independent with-replacement draws.
//! 3. **Placement policy** — with-replacement (the paper's model) versus
//!    distinct-files placement: distinct placement wastes no slots, so it
//!    balances slightly better at equal `M`.
//! 4. **Uncached-file policy** — resampling versus serve-at-origin in a
//!    sparse regime where both paths actually trigger.
//! 5. **Load-information staleness** — Strategy II deciding on snapshots
//!    refreshed every `P` requests (the §VI polling/piggybacking
//!    discussion): how stale can the queue information get before the
//!    power of two choices fades?
//! 6. **DHT placement** (§VI's [29]/[30]) — deterministic consistent-
//!    hashing placement versus the paper's i.i.d. proportional placement.

use paba_bench::{emit, header, NetPoint};
use paba_core::{
    simulate, simulate_with_policy, LeastLoadedInBall, NearestReplica, PairMode, PlacementPolicy,
    ProximityChoice, UncachedPolicy,
};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(10, 200, 2_000);
    header(
        "Design ablations: d-choices, pair mode, placement, uncached policy",
        "DESIGN.md section 2/5 decisions",
        &cfg,
        runs,
    );

    let point = NetPoint::uniform(45, 200, 10); // n=2025, replicas/file ≈ 100
    let radius = Some(8u32);

    // ---- 1. d-choice saturation ----
    let ds = [1u32, 2, 3, 4];
    let grid: Vec<(u32, ())> = ds.iter().map(|&d| (d, ())).collect();
    let d_res = paba_mcrunner::sweep(&grid, runs, cfg.seed, None, true, |(d, ()), _r, rng| {
        let net = point.build(rng);
        let mut s = ProximityChoice::with_choices(radius, *d);
        let rep = simulate(&net, &mut s, net.n() as u64, rng);
        (rep.max_load() as f64, rep.comm_cost())
    });
    let full_res = paba_mcrunner::sweep(&[((), ())], runs, cfg.seed, None, true, |_, _r, rng| {
        let net = point.build(rng);
        let mut s = LeastLoadedInBall::new(radius);
        let rep = simulate(&net, &mut s, net.n() as u64, rng);
        (rep.max_load() as f64, rep.comm_cost())
    });

    let mut t1 = Table::new(["policy", "max load L", "cost C", "probes/request"]);
    for (i, &d) in ds.iter().enumerate() {
        t1.push_row([
            format!("d = {d}"),
            format!("{:.3}", d_res[i].summarize(|o| o.0).mean),
            format!("{:.2}", d_res[i].summarize(|o| o.1).mean),
            format!("{d}"),
        ]);
    }
    t1.push_row([
        "full info (all in ball)".to_string(),
        format!("{:.3}", full_res[0].summarize(|o| o.0).mean),
        format!("{:.2}", full_res[0].summarize(|o| o.1).mean),
        "|B_r ∩ replicas| ≈ 15".to_string(),
    ]);
    emit("ablation_d_choices", &t1);
    println!(
        "Check: the d=1 → d=2 step captures most of the d=1 → full-info gap \
         (power of two choices); d>2 and full probing add little.\n"
    );

    // ---- 2. pair mode ----
    let modes = [PairMode::Distinct, PairMode::WithReplacement];
    let grid: Vec<(usize, ())> = (0..modes.len()).map(|i| (i, ())).collect();
    let m_res = paba_mcrunner::sweep(
        &grid,
        runs,
        cfg.seed ^ 0x11,
        None,
        true,
        |(i, ()), _r, rng| {
            let net = point.build(rng);
            let mut s = ProximityChoice::two_choice(radius).pair_mode(modes[*i]);
            let rep = simulate(&net, &mut s, net.n() as u64, rng);
            rep.max_load() as f64
        },
    );
    let mut t2 = Table::new(["pair mode", "max load L"]);
    for (i, m) in modes.iter().enumerate() {
        t2.push_row([
            format!("{m:?}"),
            format!("{:.3}", m_res[i].summarize(|&o| o).mean),
        ]);
    }
    emit("ablation_pair_mode", &t2);
    println!("Check: statistically close once balls hold >= ~10 candidates (with-replacement\nwastes the occasional duplicate probe, costing a fraction of a load unit).\n");

    // ---- 3. placement policy ----
    let policies = [
        PlacementPolicy::ProportionalWithReplacement,
        PlacementPolicy::ProportionalDistinct,
    ];
    let grid: Vec<(usize, ())> = (0..policies.len()).map(|i| (i, ())).collect();
    let p_res = paba_mcrunner::sweep(
        &grid,
        runs,
        cfg.seed ^ 0x22,
        None,
        true,
        |(i, ()), _r, rng| {
            let mut p = point.clone();
            p.policy = policies[*i];
            let net = p.build(rng);
            let mut near = NearestReplica::new();
            let near_rep = simulate(&net, &mut near, net.n() as u64, rng);
            let mut two = ProximityChoice::two_choice(radius);
            let two_rep = simulate(&net, &mut two, net.n() as u64, rng);
            (
                near_rep.max_load() as f64,
                near_rep.comm_cost(),
                two_rep.max_load() as f64,
            )
        },
    );
    let mut t3 = Table::new(["placement", "nearest L", "nearest C", "two-choice L"]);
    for (i, p) in policies.iter().enumerate() {
        t3.push_row([
            format!("{p:?}"),
            format!("{:.3}", p_res[i].summarize(|o| o.0).mean),
            format!("{:.3}", p_res[i].summarize(|o| o.1).mean),
            format!("{:.3}", p_res[i].summarize(|o| o.2).mean),
        ]);
    }
    emit("ablation_placement", &t3);
    println!(
        "Check: distinct placement (no wasted slots) lowers cost slightly and \
         loads marginally; the paper's with-replacement analysis is the \
         conservative case.\n"
    );

    // ---- 4. uncached policy in a sparse regime ----
    let sparse = NetPoint::uniform(20, 2_000, 1); // n=400 slots for K=2000 files
    let policies = [UncachedPolicy::ResampleFile, UncachedPolicy::ServeAtOrigin];
    let grid: Vec<(usize, ())> = (0..policies.len()).map(|i| (i, ())).collect();
    let u_res = paba_mcrunner::sweep(
        &grid,
        runs,
        cfg.seed ^ 0x33,
        None,
        true,
        |(i, ()), _r, rng| {
            let net = sparse.build(rng);
            let mut s = NearestReplica::new();
            let rep = simulate_with_policy(&net, &mut s, net.n() as u64, policies[*i], rng);
            (
                rep.max_load() as f64,
                rep.comm_cost(),
                rep.uncached as f64 / rep.total_requests as f64,
            )
        },
    );
    let mut t4 = Table::new(["uncached policy", "max load L", "cost C", "uncached frac"]);
    for (i, p) in policies.iter().enumerate() {
        t4.push_row([
            format!("{p:?}"),
            format!("{:.3}", u_res[i].summarize(|o| o.0).mean),
            format!("{:.3}", u_res[i].summarize(|o| o.1).mean),
            format!("{:.4}", u_res[i].summarize(|o| o.2).mean),
        ]);
    }
    emit("ablation_uncached", &t4);
    println!(
        "Check: ~81% of files are uncached in this extreme regime \
         ((1-1/K)^(nM) ~ 0.82 with nM/K = 0.2); resampling concentrates all \
         demand on the cached fifth (higher L and C over real distances), \
         serving at the origin zeroes the hops of misses instead (lower C). \
         The paper's figures never enter this regime.\n"
    );

    // ---- 5. load-information staleness ----
    let periods = [1u64, 8, 64, 512, u64::MAX];
    let grid: Vec<(u64, ())> = periods.iter().map(|&p| (p, ())).collect();
    let s_res = paba_mcrunner::sweep(
        &grid,
        runs,
        cfg.seed ^ 0x44,
        None,
        true,
        |(p, ()), _r, rng| {
            let net = point.build(rng);
            let mut s = paba_core::StaleLoad::new(ProximityChoice::two_choice(radius), *p);
            let rep = simulate(&net, &mut s, net.n() as u64, rng);
            rep.max_load() as f64
        },
    );
    let mut t5 = Table::new(["refresh period", "max load L"]);
    for (i, &p) in periods.iter().enumerate() {
        t5.push_row([
            if p == u64::MAX {
                "never".to_string()
            } else {
                format!("{p}")
            },
            format!("{:.3}", s_res[i].summarize(|&o| o).mean),
        ]);
    }
    emit("ablation_staleness", &t5);
    println!(
        "Check: the balance degrades gracefully up to period ~ n/10 and collapses \
         to the load-oblivious level when the snapshot never refreshes -- two \
         choices tolerate substantial polling delay (section VI's conjecture).\n"
    );

    // ---- 6. DHT vs proportional placement ----
    // Equal-budget fixed replication: R = n*M/K copies per file.
    let fixed_r = point.n() * point.m / point.k;
    let kinds = [
        "proportional (paper)",
        "dht proportional",
        "dht fixed (equal budget)",
    ];
    let grid: Vec<(usize, ())> = (0..kinds.len()).map(|i| (i, ())).collect();
    let dht_res = paba_mcrunner::sweep(
        &grid,
        runs,
        cfg.seed ^ 0x55,
        None,
        true,
        |(i, ()), run, rng| {
            let n = point.n();
            let library = paba_core::Library::new(point.k, point.popularity.clone());
            let net = match *i {
                0 => point.build(rng),
                _ => {
                    let rule = if *i == 1 {
                        paba_dht::ReplicationRule::Proportional { m: point.m }
                    } else {
                        paba_dht::ReplicationRule::Fixed(fixed_r)
                    };
                    let placement = paba_dht::dht_placement(
                        n,
                        &library,
                        &paba_dht::DhtPlacementConfig {
                            vnodes: 128,
                            salt: paba_util::mix_seed(cfg.seed ^ 0x56, run as u64),
                            rule,
                        },
                    );
                    paba_core::CacheNetwork::from_parts(
                        paba_topology::Torus::new(point.side),
                        library,
                        placement,
                    )
                }
            };
            let mut near = NearestReplica::new();
            let near_rep = simulate(&net, &mut near, net.n() as u64, rng);
            let mut two = ProximityChoice::two_choice(radius);
            let two_rep = simulate(&net, &mut two, net.n() as u64, rng);
            (
                near_rep.max_load() as f64,
                near_rep.comm_cost(),
                two_rep.max_load() as f64,
                two_rep.comm_cost(),
            )
        },
    );
    let mut t6 = Table::new([
        "placement",
        "nearest L",
        "nearest C",
        "two-choice L",
        "two-choice C",
    ]);
    for (i, k) in kinds.iter().enumerate() {
        t6.push_row([
            k.to_string(),
            format!("{:.3}", dht_res[i].summarize(|o| o.0).mean),
            format!("{:.3}", dht_res[i].summarize(|o| o.1).mean),
            format!("{:.3}", dht_res[i].summarize(|o| o.2).mean),
            format!("{:.3}", dht_res[i].summarize(|o| o.3).mean),
        ]);
    }
    emit("ablation_dht_placement", &t6);
    println!(
        "Check: deterministic DHT placement reproduces the i.i.d. model's metrics \
         (consistent hashing spreads files like uniform random placement once \
         vnodes are plentiful) while adding the minimal-disruption property the \
         paper's section VI wants for deployment."
    );
}
