//! **Examples 1–4 and baselines** — the boundary regimes of §IV, plus the
//! balls-into-bins reference processes and the grid-vs-torus ablation
//! (Remark 1).
//!
//! * Example 1: `M = K`, `r = ∞` — Strategy II ≡ classic two-choice.
//! * Example 2: `K = n`, `M = Θ(1)`, `r = ∞` — memory correlation kills
//!   the power of two choices (`L = Ω(log n / log log n / M)`).
//! * Example 3: `K = n^{1−ε}`, `M = 1`, `r = ∞` — disjoint subproblems,
//!   power of two choices survives (`L = O(log log n)`).
//! * Example 4: `M = K`, `r = 1` — proximity correlation kills it
//!   (`L = Ω(log n / log log n)/5`).
//! * Kenthapadi–Panigrahi baseline on circulant graphs of varying degree.
//! * Remark 1: torus vs bounded grid, same parameters.

use paba_bench::{emit, header, NetPoint, StrategyKind};
use paba_core::{simulate, CacheNetwork, PlacementPolicy, ProximityChoice};
use paba_theory::{kp_max_load_bound, one_choice_max_load, two_choice_max_load};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;
use rand::SeedableRng;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(8, 100, 1_000);
    header(
        "Examples 1-4, classic baselines, and the Remark-1 ablation",
        "Section IV examples + [5]/[10] reference processes",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![32, 91],
        vec![32, 45, 64, 91, 128],
        vec![32, 64, 91, 128, 181, 256],
    );

    // ------------------------------------------------------------------
    // Examples 1, 2, 3, 4 as Strategy II configurations.
    // ------------------------------------------------------------------
    let mut points: Vec<(NetPoint, StrategyKind)> = Vec::new();
    for &s in &sides {
        let n = s * s;
        // Example 1: M=K (full), r=∞.
        let mut e1 = NetPoint::uniform(s, 16, 16);
        e1.policy = PlacementPolicy::FullLibrary;
        points.push((e1, StrategyKind::two_choice(None)));
        // Example 2: K=n, M=1, r=∞.
        points.push((NetPoint::uniform(s, n, 1), StrategyKind::two_choice(None)));
        // Example 3: K=n^{1/2}, M=1, r=∞.
        let k3 = (n as f64).sqrt().round() as u32;
        points.push((NetPoint::uniform(s, k3, 1), StrategyKind::two_choice(None)));
        // Example 4: M=K (full), r=1.
        let mut e4 = NetPoint::uniform(s, 16, 16);
        e4.policy = PlacementPolicy::FullLibrary;
        points.push((e4, StrategyKind::two_choice(Some(1))));
    }
    let res = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut table = Table::new([
        "n",
        "Ex1: M=K r=inf",
        "Ex2: K=n M=1",
        "Ex3: K=sqrt(n) M=1",
        "Ex4: M=K r=1",
        "lnln n/ln 2",
        "ln n/lnln n",
    ]);
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        table.push_row([
            format!("{}", s * s),
            format!("{:.2}", res[4 * i].max_load.mean),
            format!("{:.2}", res[4 * i + 1].max_load.mean),
            format!("{:.2}", res[4 * i + 2].max_load.mean),
            format!("{:.2}", res[4 * i + 3].max_load.mean),
            format!("{:.2}", two_choice_max_load(n)),
            format!("{:.2}", one_choice_max_load(n)),
        ]);
    }
    emit("examples_1_to_4", &table);
    println!(
        "Check: Ex1/Ex3 track the lnln n column (power of two choices); Ex2/Ex4 \
         track the ln n/lnln n column (correlation destroys it).\n"
    );

    // ------------------------------------------------------------------
    // Classic balls-into-bins baselines at m = n.
    // ------------------------------------------------------------------
    let bb_points: Vec<(u32, ())> = sides.iter().map(|&s| (s * s, ())).collect();
    let bb = paba_mcrunner::sweep(
        &bb_points,
        runs,
        cfg.seed ^ 0x1111,
        None,
        true,
        |(n, ()), _r, rng| {
            let one = paba_ballsbins::one_choice(*n, *n as u64, rng).max_load() as f64;
            let two = paba_ballsbins::two_choice(*n, *n as u64, rng).max_load() as f64;
            let three = paba_ballsbins::d_choice(*n, *n as u64, 3, rng).max_load() as f64;
            let beta = paba_ballsbins::one_plus_beta(*n, *n as u64, 0.5, rng).max_load() as f64;
            (one, two, three, beta)
        },
    );
    let mut t2 = Table::new([
        "n",
        "one-choice",
        "theory",
        "two-choice",
        "theory",
        "Greedy[3]",
        "(1+0.5)-choice",
    ]);
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        t2.push_row([
            format!("{}", s * s),
            format!("{:.2}", bb[i].summarize(|o| o.0).mean),
            format!("{:.2}", one_choice_max_load(n)),
            format!("{:.2}", bb[i].summarize(|o| o.1).mean),
            format!("{:.2}", two_choice_max_load(n)),
            format!("{:.2}", bb[i].summarize(|o| o.2).mean),
            format!("{:.2}", bb[i].summarize(|o| o.3).mean),
        ]);
    }
    emit("baselines_ballsbins", &t2);

    // ------------------------------------------------------------------
    // Kenthapadi–Panigrahi on circulant graphs: density sweep at fixed n.
    // ------------------------------------------------------------------
    let n_kp = 4096u32;
    let degrees = [2u32, 8, 32, 128, 512];
    // Circulant graphs are deterministic: build each once, share across runs.
    let graphs: Vec<(u32, paba_topology::CsrGraph)> = degrees
        .iter()
        .map(|&d| (d, paba_topology::circulant_graph(n_kp, d / 2)))
        .collect();
    let kp_points: Vec<(usize, ())> = (0..degrees.len()).map(|i| (i, ())).collect();
    let kp = paba_mcrunner::sweep(
        &kp_points,
        runs,
        cfg.seed ^ 0x2222,
        None,
        true,
        |(i, ()), _r, rng| {
            paba_ballsbins::graph_two_choice(&graphs[*i].1, n_kp as u64, rng).max_load() as f64
        },
    );
    let mut t3 = Table::new(["degree", "max load", "KP bound (Thm 5)"]);
    for (i, &d) in degrees.iter().enumerate() {
        let bound = kp_max_load_bound(n_kp as f64, d as f64);
        t3.push_row([
            format!("{d}"),
            format!("{:.2}", kp[i].summarize(|&o| o).mean),
            if bound.is_finite() {
                format!("{bound:.1}")
            } else {
                "vacuous".into()
            },
        ]);
    }
    emit("baselines_kp_density", &t3);
    println!(
        "KP check: the max load falls as the graph densifies, vanishing into the \
         Theta(log log n) regime once Delta >> log^4 n (Theorem 5).\n"
    );

    // ------------------------------------------------------------------
    // Remark 1: torus vs bounded grid.
    // ------------------------------------------------------------------
    let grid_points: Vec<(u32, ())> = sides.iter().map(|&s| (s, ())).collect();
    let remark1 = paba_mcrunner::sweep(
        &grid_points,
        runs,
        cfg.seed ^ 0x3333,
        None,
        true,
        |(s, ()), _r, rng| {
            let k = 100u32;
            let m = 4u32;
            let torus_net = CacheNetwork::builder()
                .torus_side(*s)
                .library(k, paba_popularity::Popularity::Uniform)
                .cache_size(m)
                .build(rng);
            let mut strat = ProximityChoice::two_choice(Some(5));
            let tr = simulate(&torus_net, &mut strat, torus_net.n() as u64, rng);
            let mut g_rng = rand::rngs::SmallRng::seed_from_u64(paba_util::mix_seed(
                cfg.seed ^ 0x3334,
                *s as u64,
            ));
            let grid_net = CacheNetwork::builder()
                .torus_side(*s)
                .library(k, paba_popularity::Popularity::Uniform)
                .cache_size(m)
                .build_grid(&mut g_rng);
            let mut strat = ProximityChoice::two_choice(Some(5));
            let gr = simulate(&grid_net, &mut strat, grid_net.n() as u64, &mut g_rng);
            (
                tr.max_load() as f64,
                tr.comm_cost(),
                gr.max_load() as f64,
                gr.comm_cost(),
            )
        },
    );
    let mut t4 = Table::new(["n", "torus L", "grid L", "torus C", "grid C"]);
    for (i, &s) in sides.iter().enumerate() {
        t4.push_row([
            format!("{}", s * s),
            format!("{:.2}", remark1[i].summarize(|o| o.0).mean),
            format!("{:.2}", remark1[i].summarize(|o| o.2).mean),
            format!("{:.2}", remark1[i].summarize(|o| o.1).mean),
            format!("{:.2}", remark1[i].summarize(|o| o.3).mean),
        ]);
    }
    emit("remark1_grid_vs_torus", &t4);
    println!(
        "Remark 1 check: torus and bounded grid agree to within boundary effects \
         (grid slightly worse balance near corners)."
    );
}
