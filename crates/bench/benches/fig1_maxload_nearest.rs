//! **Figure 1** — maximum load of Strategy I (nearest replica) versus the
//! number of servers, one curve per cache size.
//!
//! Paper setup: torus, `K = 100` files, Uniform popularity, cache sizes
//! `M ∈ {1, 2, 10, 100}`, `n ∈ [100, 3025]`, 10000 runs per point.
//! Expected shape: slow logarithmic growth in `n` (Theorem 1), with larger
//! caches giving a flatter, lower curve (more uniform Voronoi cells).

use paba_bench::{emit, header, pm, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(20, 400, 10_000);
    header(
        "Figure 1: max load vs n, Strategy I (nearest replica)",
        "Fig. 1 (K=100, Uniform, M in {1,2,10,100})",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![10, 20, 32],
        vec![10, 15, 20, 25, 30, 35, 40, 45, 50, 55],
        vec![10, 15, 20, 25, 30, 35, 40, 45, 50, 55],
    );
    let cache_sizes = [1u32, 2, 10, 100];
    let k = 100u32;

    let points: Vec<(NetPoint, StrategyKind)> = cache_sizes
        .iter()
        .flat_map(|&m| {
            sides
                .iter()
                .map(move |&s| (NetPoint::uniform(s, k, m), StrategyKind::Nearest))
        })
        .collect();
    let results = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut table = Table::new(["n", "M=1", "M=2", "M=10", "M=100"]);
    for (si, &side) in sides.iter().enumerate() {
        let row: Vec<String> = std::iter::once(format!("{}", side * side))
            .chain((0..cache_sizes.len()).map(|mi| {
                let idx = mi * sides.len() + si;
                pm(&results[idx].max_load)
            }))
            .collect();
        table.push_row(row);
    }
    emit("fig1_maxload_nearest", &table);

    println!(
        "Paper check: each column grows ~ log n (Theorem 1); larger M lowers the curve \
         (paper's Fig. 1 spans ~4.3 at n=100 to ~7.5 at n=3025 for M=1)."
    );
}
