//! **Figure 2** — communication cost of Strategy I versus cache size, one
//! curve per library size, plus the Theorem 3 closed-form prediction.
//!
//! Paper setup: torus of `n = 2025` servers, Uniform popularity,
//! `K ∈ {100, 1000, 2000}`, `M ∈ [1, 100]`, 10000 runs per point.
//! Expected shape: `C = Θ(√(K/M))` — decreasing in `M`, increasing in `K`.

use paba_bench::{emit, header, pm, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(10, 200, 10_000);
    header(
        "Figure 2: communication cost vs cache size, Strategy I",
        "Fig. 2 (n=2025, Uniform, K in {100,1000,2000})",
        &cfg,
        runs,
    );

    let side = 45u32; // n = 2025, the paper's torus
    let cache_sizes: Vec<u32> = cfg.pick(
        vec![1, 10, 100],
        vec![1, 2, 3, 5, 7, 10, 15, 20, 30, 50, 70, 100],
        vec![1, 2, 3, 5, 7, 10, 15, 20, 30, 40, 50, 60, 70, 80, 90, 100],
    );
    let libraries = [100u32, 1000, 2000];

    let points: Vec<(NetPoint, StrategyKind)> = libraries
        .iter()
        .flat_map(|&k| {
            cache_sizes
                .iter()
                .map(move |&m| (NetPoint::uniform(side, k, m), StrategyKind::Nearest))
        })
        .collect();
    let results = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut table = Table::new([
        "M",
        "K=100",
        "theory(100)",
        "K=1000",
        "theory(1000)",
        "K=2000",
        "theory(2000)",
    ]);
    for (mi, &m) in cache_sizes.iter().enumerate() {
        let mut row = vec![format!("{m}")];
        for (ki, &k) in libraries.iter().enumerate() {
            let idx = ki * cache_sizes.len() + mi;
            row.push(pm(&results[idx].cost));
            // Exact series of the paper's eq. (14): Σ p_j / √(1−(1−p_j)^M).
            let weights = vec![1.0 / k as f64; k as usize];
            let series = paba_theory::nearest_cost_series(&weights, m);
            row.push(format!("{series:.2}"));
        }
        table.push_row(row);
    }
    emit("fig2_cost_nearest", &table);

    println!(
        "Paper check: C tracks Θ(√(K/M)) (Theorem 3); the exact series columns use \
         eq. (14) with unit constant. Paper's Fig. 2 peaks ~23 hops at K=2000, M=1."
    );
}
