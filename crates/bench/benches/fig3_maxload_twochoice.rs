//! **Figure 3** — maximum load of Strategy II with `r = ∞` versus the
//! number of servers, one curve per cache size.
//!
//! Paper setup: torus, `K = 2000` files, Uniform popularity,
//! `M ∈ {1, 2, 10, 100}`, `n` up to `1.2·10⁵`, 800 runs per point.
//!
//! This is the paper's key qualitative plot: for `M = 1` the curve *rises*
//! while replication `nM/K` is low (the two choices are correlated —
//! Example 2's memory bottleneck), then *falls* once `n ≳ 5·10⁴` gives
//! every file enough replicas for the power of two choices to kick in.
//! For `M ≥ 10` the curve is flat-low everywhere.

use paba_bench::{emit, header, pm, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(5, 60, 800);
    header(
        "Figure 3: max load vs n, Strategy II (r = inf)",
        "Fig. 3 (K=2000, Uniform, M in {1,2,10,100})",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![32, 64, 128],
        vec![32, 45, 64, 90, 128, 181, 256, 330],
        vec![32, 45, 64, 90, 128, 181, 226, 256, 286, 315, 330, 346],
    );
    let cache_sizes = [1u32, 2, 10, 100];
    let k = 2000u32;

    let points: Vec<(NetPoint, StrategyKind)> = cache_sizes
        .iter()
        .flat_map(|&m| {
            sides
                .iter()
                .map(move |&s| (NetPoint::uniform(s, k, m), StrategyKind::two_choice(None)))
        })
        .collect();
    let results = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut table = Table::new(["n", "M=1", "M=2", "M=10", "M=100"]);
    for (si, &side) in sides.iter().enumerate() {
        let row: Vec<String> = std::iter::once(format!("{}", side * side))
            .chain((0..cache_sizes.len()).map(|mi| {
                let idx = mi * sides.len() + si;
                pm(&results[idx].max_load)
            }))
            .collect();
        table.push_row(row);
    }
    emit("fig3_maxload_twochoice", &table);

    println!(
        "Paper check: M=1 rises toward n ≈ 10^4 (correlated choices, max ~10 in the \
         paper) then drops once n > 5*10^4 (enough replication); M=10/100 stay ~3-4 \
         throughout. Transition region 10^4 < n < 5*10^4 shows mixed behaviour."
    );
}
