//! **Figure 4** — communication cost of Strategy II with `r = ∞` versus
//! the number of servers, one curve per cache size.
//!
//! Paper setup: as Figure 3. With no proximity constraint the chosen
//! server is essentially a uniform random replica, so the cost grows as
//! the mean torus pair distance `Θ(√n)` — the motivation for the radius-
//! `r` constraint studied in Figure 5.

use paba_bench::{emit, header, pm, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(5, 40, 800);
    header(
        "Figure 4: communication cost vs n, Strategy II (r = inf)",
        "Fig. 4 (K=2000, Uniform, M in {1,2,10,100})",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![32, 64, 128],
        vec![32, 45, 64, 90, 128, 181, 256, 330],
        vec![32, 45, 64, 90, 128, 181, 226, 256, 286, 315, 330, 346],
    );
    let cache_sizes = [1u32, 2, 10, 100];
    let k = 2000u32;

    let points: Vec<(NetPoint, StrategyKind)> = cache_sizes
        .iter()
        .flat_map(|&m| {
            sides
                .iter()
                .map(move |&s| (NetPoint::uniform(s, k, m), StrategyKind::two_choice(None)))
        })
        .collect();
    let results = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut table = Table::new(["n", "M=1", "M=2", "M=10", "M=100", "mean pair dist"]);
    for (si, &side) in sides.iter().enumerate() {
        let torus = paba_topology::Torus::new(side);
        let row: Vec<String> = std::iter::once(format!("{}", side * side))
            .chain((0..cache_sizes.len()).map(|mi| {
                let idx = mi * sides.len() + si;
                pm(&results[idx].cost)
            }))
            .chain(std::iter::once(format!(
                "{:.2}",
                torus.mean_pair_distance()
            )))
            .collect();
        table.push_row(row);
    }
    emit("fig4_cost_twochoice", &table);

    // Fit the growth exponent of cost vs n for M=10 (mid curve).
    let pts: Vec<(f64, f64)> = sides
        .iter()
        .enumerate()
        .map(|(si, &s)| {
            let idx = 2 * sides.len() + si; // M=10 block
            ((s * s) as f64, results[idx].cost.mean)
        })
        .collect();
    if let Some(fit) = paba_util::fit_loglog(&pts) {
        println!(
            "Fitted cost ~ n^{:.3} (expected 0.5 = Θ(√n); R² = {:.4}).",
            fit.slope, fit.r_squared
        );
        println!();
    }
    println!(
        "Paper check: all four curves track the Θ(√n) mean pair distance and nearly \
         coincide (cache size barely matters once a pair of replicas exists)."
    );
}
