//! **Figure 5** — the maximum-load / communication-cost trade-off of
//! Strategy II as the proximity radius `r` sweeps, one curve per cache
//! size.
//!
//! Paper setup: torus of `n = 2025`, `K = 500` files, Uniform popularity,
//! `M ∈ {1, 2, 5, 10, 20, 50, 200}`, 5000 runs per point.
//!
//! Expected regimes (paper §V): in high memory (`M = 50, 200`) the power
//! of two choices arrives at negligible cost; in low memory (`M = 1`) no
//! amount of communication buys balance (Example 2's correlation); in
//! between, a genuine trade-off curve appears.

use paba_bench::{emit, header, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(10, 150, 5_000);
    header(
        "Figure 5: max load vs communication cost trade-off, Strategy II",
        "Fig. 5 (n=2025, K=500, Uniform, M in {1,2,5,10,20,50,200}, r swept)",
        &cfg,
        runs,
    );

    let side = 45u32;
    let radii: Vec<Option<u32>> = cfg.pick(
        vec![Some(2), Some(8), None],
        vec![
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(6),
            Some(8),
            Some(12),
            Some(16),
            Some(22),
            None,
        ],
        vec![
            Some(1),
            Some(2),
            Some(3),
            Some(4),
            Some(5),
            Some(6),
            Some(8),
            Some(10),
            Some(12),
            Some(16),
            Some(20),
            Some(22),
            None,
        ],
    );
    let cache_sizes = [1u32, 2, 5, 10, 20, 50, 200];
    let k = 500u32;

    let points: Vec<(NetPoint, StrategyKind)> = cache_sizes
        .iter()
        .flat_map(|&m| {
            radii
                .iter()
                .map(move |&r| (NetPoint::uniform(side, k, m), StrategyKind::two_choice(r)))
        })
        .collect();
    let results = paba_bench::sweep_points(&points, runs, cfg.seed);

    // One table per cache size: rows are radii, columns (cost, max load) —
    // the (x, y) pairs of the paper's scatter curves.
    for (mi, &m) in cache_sizes.iter().enumerate() {
        let mut table = Table::new(["r", "cost C (hops)", "max load L", "fallback frac"]);
        for (ri, r) in radii.iter().enumerate() {
            let idx = mi * radii.len() + ri;
            let s = &results[idx];
            table.push_row([
                r.map_or("inf".to_string(), |x| x.to_string()),
                format!("{:.3}", s.cost.mean),
                format!("{:.3}", s.max_load.mean),
                format!("{:.4}", s.fallback.mean),
            ]);
        }
        println!("### M = {m}");
        println!();
        emit(&format!("fig5_tradeoff_m{m}"), &table);
    }

    println!(
        "Paper check: M=200/50 reach max load ~3.6 by cost ~2-4 hops; M=1 stays ~8 \
         regardless of cost; intermediate M trace a visible trade-off curve \
         (paper's Fig. 5 x-range 0-20 hops, y-range 3.5-9)."
    );
}
