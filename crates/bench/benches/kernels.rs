//! Criterion micro-benchmarks for the hot kernels underneath every
//! experiment: placement generation, strategy queries, topology
//! primitives, and configuration-graph construction.
//!
//! These exist to catch performance regressions in the simulator itself
//! (the figure benches measure the *paper's* quantities, not wall time).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use paba_core::{
    build_config_graph, simulate, CacheNetwork, ConfigGraphMethod, NearestReplica, ProximityChoice,
};
use paba_popularity::{AliasTable, Popularity};
use paba_topology::Torus;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn bench_topology(c: &mut Criterion) {
    let t = Torus::new(330); // n ≈ 1.1e5, the Fig-3 scale
    let mut g = c.benchmark_group("torus");
    g.bench_function("dist", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let a = rng.gen_range(0..t.n());
            let bb = rng.gen_range(0..t.n());
            black_box(t.dist(a, bb))
        })
    });
    g.bench_function("ball_iter_r8", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            t.for_each_in_ball(black_box(7_000), 8, |v| acc += v as u64);
            black_box(acc)
        })
    });
    g.bench_function("sample_in_ball_r8", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| black_box(t.sample_in_ball(7_000, 8, &mut rng)))
    });
    g.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let weights: Vec<f64> = (1..=2000).map(|i| 1.0 / (i as f64)).collect();
    let table = AliasTable::new(&weights);
    c.bench_function("alias_sample_k2000", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| black_box(table.sample(&mut rng)))
    });
}

fn bench_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement");
    for (side, k, m) in [(45u32, 500u32, 10u32), (128, 2000, 10)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{}_K{k}_M{m}", side * side)),
            &(side, k, m),
            |b, &(side, k, m)| {
                let mut rng = SmallRng::seed_from_u64(4);
                b.iter(|| {
                    black_box(
                        CacheNetwork::builder()
                            .torus_side(side)
                            .library(k, Popularity::Uniform)
                            .cache_size(m)
                            .build(&mut rng),
                    )
                })
            },
        );
    }
    g.finish();
}

fn bench_strategies(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(5);
    let net = CacheNetwork::builder()
        .torus_side(45)
        .library(500, Popularity::Uniform)
        .cache_size(10)
        .build(&mut rng);
    let n = net.n() as u64;
    let mut g = c.benchmark_group("simulate_n2025_K500_M10");
    g.bench_function("nearest_full_run", |b| {
        let mut run_rng = SmallRng::seed_from_u64(6);
        b.iter(|| {
            let mut s = NearestReplica::new();
            black_box(simulate(&net, &mut s, n, &mut run_rng))
        })
    });
    g.bench_function("two_choice_r8_full_run", |b| {
        let mut run_rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let mut s = ProximityChoice::two_choice(Some(8));
            black_box(simulate(&net, &mut s, n, &mut run_rng))
        })
    });
    g.bench_function("two_choice_rinf_full_run", |b| {
        let mut run_rng = SmallRng::seed_from_u64(8);
        b.iter(|| {
            let mut s = ProximityChoice::two_choice(None);
            black_box(simulate(&net, &mut s, n, &mut run_rng))
        })
    });
    g.finish();
}

fn bench_config_graph(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(9);
    let net = CacheNetwork::builder()
        .torus_side(32)
        .library(1024, Popularity::Uniform)
        .cache_size(11)
        .build(&mut rng);
    c.bench_function("config_graph_n1024_r6", |b| {
        b.iter(|| black_box(build_config_graph(&net, Some(6), ConfigGraphMethod::Auto)))
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_topology, bench_sampling, bench_placement, bench_strategies, bench_config_graph
}
criterion_main!(kernels);
