//! **Lemma 1** — Voronoi cell sizes under Strategy I.
//!
//! Claim: under Uniform popularity the largest cell of any file's Voronoi
//! tessellation is `O(K log n / M)` w.h.p., every cell fits in an
//! `r × r` sub-grid with `r = O(√(K log n / M))`, and in the sparse regime
//! (`K = n^{1−ε}`, `M = Θ(1)`) some cell has size `Θ(K log n / M)`.
//!
//! We sweep `n` with `K = n^{0.5}`, `M ∈ {1, 4}`, measure the max cell
//! size and max cell radius over all files, and normalize by the lemma's
//! envelopes.

use paba_bench::{emit, header, NetPoint};
use paba_core::VoronoiComputer;
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(5, 60, 500);
    header(
        "Lemma 1: max Voronoi cell size = Theta(K log n / M)",
        "Lemma 1 (K=n^0.5, M in {1,4}, Uniform)",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![23, 45],
        vec![23, 32, 45, 64, 91],
        vec![23, 32, 45, 64, 91, 128],
    );
    let cache_sizes = [1u32, 4];

    let mut grid: Vec<(NetPoint, ())> = Vec::new();
    for &m in &cache_sizes {
        for &s in &sides {
            let n = s * s;
            let k = (n as f64).sqrt().round() as u32;
            grid.push((NetPoint::uniform(s, k, m), ()));
        }
    }

    // Per run: build a placement, compute the tessellation of every cached
    // file, record the largest cell and largest cell radius seen.
    let outcomes = paba_mcrunner::sweep(&grid, runs, cfg.seed, None, true, |(p, ()), _run, rng| {
        let net = p.build(rng);
        let mut vc = VoronoiComputer::new(net.n());
        let mut max_cell = 0u32;
        let mut max_radius = 0u32;
        let mut replicas: Vec<u32> = Vec::new();
        for f in 0..net.k() {
            let cnt = net.placement().replica_count(f);
            if cnt == 0 {
                continue;
            }
            replicas.clear();
            net.placement().for_each_replica(f, |v| replicas.push(v));
            let (sizes, radius) = vc.cell_sizes(net.topo(), &replicas);
            max_cell = max_cell.max(sizes.values().copied().max().unwrap_or(0));
            max_radius = max_radius.max(radius);
        }
        (max_cell as f64, max_radius as f64)
    });

    let mut table = Table::new([
        "n",
        "K",
        "M",
        "max cell",
        "K ln n / M",
        "cell / envelope",
        "max radius",
        "sqrt(K ln n/M)",
    ]);
    for (mi, &m) in cache_sizes.iter().enumerate() {
        for (si, &s) in sides.iter().enumerate() {
            let idx = mi * sides.len() + si;
            let p = &grid[idx].0;
            let n = (s * s) as f64;
            let envelope = p.k as f64 * n.ln() / m as f64;
            let cell = outcomes[idx].summarize(|o| o.0);
            let radius = outcomes[idx].summarize(|o| o.1);
            table.push_row([
                format!("{}", s * s),
                format!("{}", p.k),
                format!("{m}"),
                format!("{:.1}", cell.mean),
                format!("{envelope:.1}"),
                format!("{:.3}", cell.mean / envelope),
                format!("{:.1}", radius.mean),
                format!("{:.1}", envelope.sqrt()),
            ]);
        }
    }
    emit("lemma1_voronoi", &table);

    println!(
        "Lemma 1 check: 'cell / envelope' stays bounded (O(K log n/M) upper bound) \
         and bounded away from 0 at M=Θ(1) (the matching lower bound); the max \
         radius tracks sqrt(K ln n / M)."
    );
}
