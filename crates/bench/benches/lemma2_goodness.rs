//! **Lemma 2** — goodness of the proportional placement.
//!
//! Claim: for `K = n`, `M = n^α`, `0 < α < 1/2`, the placement is
//! `(δ, µ)`-good w.h.p. with `δ = (1−α)/3` and `µ = 5/(1−2α)`. We measure
//! `min_u t(u)` and `max_{u≠v} t(u,v)` (over configuration-graph-relevant
//! pairs) across `n` and `α`, and report the fraction of runs that are
//! good.

use paba_bench::{emit, header, NetPoint};
use paba_core::GoodnessReport;
use paba_theory::{expected_distinct_files, goodness_delta, goodness_mu};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(5, 20, 200);
    header(
        "Lemma 2: proportional placement is (delta, mu)-good",
        "Lemma 2 (K=n, M=n^alpha, alpha in {0.2, 0.3, 0.4})",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(vec![23, 45], vec![23, 32, 45, 64], vec![23, 32, 45, 64, 91]);
    let alphas = [0.2f64, 0.3, 0.4];

    let mut grid: Vec<(NetPoint, f64)> = Vec::new();
    for &a in &alphas {
        for &s in &sides {
            let n = s * s;
            let m = ((n as f64).powf(a).round() as u32).max(2);
            grid.push((NetPoint::uniform(s, n, m), a));
        }
    }

    let outcomes = paba_mcrunner::sweep(&grid, runs, cfg.seed, None, true, |(p, a), _run, rng| {
        let net = p.build(rng);
        // Overlap pairs restricted to distance ≤ 2r for a sub-diameter
        // radius r = n^0.25 — the pairs the configuration graph cares
        // about. (At simulation sizes Theorem 4's *minimum* radius
        // exceeds the torus diameter — the finite-size slack
        // 2·loglog n/log n is large — so we check goodness over a
        // representative local radius instead of all n²/2 pairs.)
        let n = net.n() as f64;
        let r = (n.powf(0.25).ceil() as u32).clamp(1, p.side / 4);
        let rep = GoodnessReport::measure(&net, Some(r));
        let delta = goodness_delta(*a);
        let mu = goodness_mu(*a);
        (
            rep.min_t_u as f64,
            rep.max_t_uv as f64,
            if rep.is_good(delta, mu) { 1.0 } else { 0.0 },
            rep.mean_t_u,
        )
    });

    let mut table = Table::new([
        "alpha",
        "n",
        "M",
        "min t(u)",
        "delta*M",
        "E[t(u)]",
        "max t(u,v)",
        "mu",
        "good frac",
    ]);
    for (ai, &a) in alphas.iter().enumerate() {
        for (si, &s) in sides.iter().enumerate() {
            let idx = ai * sides.len() + si;
            let p = &grid[idx].0;
            let min_tu = outcomes[idx].summarize(|o| o.0);
            let max_tuv = outcomes[idx].summarize(|o| o.1);
            let good = outcomes[idx].summarize(|o| o.2);
            table.push_row([
                format!("{a}"),
                format!("{}", s * s),
                format!("{}", p.m),
                format!("{:.2}", min_tu.mean),
                format!("{:.2}", goodness_delta(a) * p.m as f64),
                format!("{:.2}", expected_distinct_files(p.k as f64, p.m as f64)),
                format!("{:.2}", max_tuv.mean),
                format!("{:.1}", goodness_mu(a)),
                format!("{:.3}", good.mean),
            ]);
        }
    }
    emit("lemma2_goodness", &table);

    println!(
        "Lemma 2 check: 'good frac' ~ 1.0 everywhere -- min t(u) clears delta*M \
         comfortably (t(u) concentrates near M for M << K) and pairwise overlaps \
         stay below mu = 5/(1-2*alpha)."
    );
}
