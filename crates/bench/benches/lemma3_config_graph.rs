//! **Lemma 3** — properties of the configuration graph `H`.
//!
//! Claims (conditioned on goodness, `K = n`, `M = n^α`, `r = n^β`,
//! `α + 2β ≥ 1 + 2 log log n / log n`):
//!
//! * (a) `H` is almost Δ-regular with `Δ = Θ(M²r²/K)`;
//! * (b) Strategy II samples each edge of `H` with probability
//!   `O(1/e(H))`.
//!
//! We build `H` explicitly, report degree statistics normalized by
//! `M²r²/K`, then replay Strategy II's pair sampling and compare the
//! hottest observed edge frequency against `c/e(H)`.

use paba_bench::{emit, header, NetPoint};
use paba_core::{build_config_graph, ConfigGraphMethod, ProximityChoice, Request, UncachedPolicy};
use paba_util::envcfg::EnvCfg;
use paba_util::{FxHashMap, Table};
use rand::SeedableRng;

/// Expected maximum cell count when `samples` draws land uniformly on
/// `edges` cells: the smallest `t` with `edges · Pr[Po(µ) ≥ t] ≤ 1`,
/// `µ = samples/edges` (Poissonized multinomial maximum).
fn expected_uniform_max(edges: f64, samples: f64) -> f64 {
    let mu = samples / edges;
    let mut p_eq = (-mu).exp(); // Pr[Po(µ) = 0]
    let mut tail = 1.0 - p_eq; // Pr[Po(µ) ≥ 1]
    let mut t = 1.0f64;
    while edges * tail > 1.0 && t < samples {
        p_eq *= mu / t;
        tail -= p_eq;
        t += 1.0;
    }
    t.max(1.0)
}

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(3, 12, 100);
    header(
        "Lemma 3: configuration graph regularity and edge sampling",
        "Lemma 3 (K=n, M=n^alpha, r=n^beta at the Theorem-4 boundary)",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(vec![23, 32], vec![23, 32, 45, 64], vec![23, 32, 45, 64, 91]);
    // Structural check of H: any (α, β) with r below the torus diameter
    // works (Theorem 4's *minimum* β exceeds the diameter at simulation
    // sizes — its finite-size slack is large — so we probe the Δ-scaling
    // at β = 0.3 where H is genuinely distance-constrained).
    let alpha = 0.45f64;
    let beta = 0.3f64;

    let grid: Vec<(NetPoint, u32)> = sides
        .iter()
        .map(|&s| {
            let n = (s * s) as f64;
            let m = (n.powf(alpha).round() as u32).max(2);
            let r = (n.powf(beta).ceil() as u32).clamp(1, s / 3);
            (NetPoint::uniform(s, s * s, m), r)
        })
        .collect();

    let outcomes = paba_mcrunner::sweep(&grid, runs, cfg.seed, None, true, |(p, r), _run, rng| {
        let net = p.build(rng);
        let h = build_config_graph(&net, Some(*r), ConfigGraphMethod::Auto);
        let stats = h.degree_stats();
        let e_h = h.m().max(1);
        // Part (b): sample Strategy II pairs and histogram the edges.
        let mut strat = ProximityChoice::two_choice(Some(*r));
        let mut pair_rng =
            rand::rngs::SmallRng::seed_from_u64(paba_util::mix_seed(cfg.seed, net.n() as u64));
        let samples = 20_000usize;
        let mut freq: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        let mut got = 0u64;
        for _ in 0..samples {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut pair_rng);
            if let Some((a, b)) = strat.sample_pair(&net, req.origin, req.file, &mut pair_rng) {
                let key = if a < b { (a, b) } else { (b, a) };
                *freq.entry(key).or_insert(0) += 1;
                got += 1;
            }
        }
        // Compare the hottest observed edge count against the max count
        // *uniform* edge sampling would produce with the same sample
        // size (max of e(H) Poissons with mean got/e(H)); the ratio is
        // the O(·) constant of Lemma 3(b). Using the raw frequency would
        // be meaningless here: with samples ≪ edges the maximum is
        // dominated by multinomial noise even under perfect uniformity.
        let max_count = freq.values().copied().max().unwrap_or(0) as f64;
        let uniform_max = expected_uniform_max(e_h as f64, got as f64);
        (
            stats.mean,
            stats.min as f64,
            stats.max as f64,
            e_h as f64,
            max_count / uniform_max,
        )
    });

    let mut table = Table::new([
        "n",
        "M",
        "r",
        "mean deg",
        "pred |B_2r|*M^2/K",
        "deg/pred",
        "min deg",
        "max deg",
        "e(H)",
        "max count / uniform max",
    ]);
    for (i, &s) in sides.iter().enumerate() {
        let (p, r) = &grid[i];
        let n = (s * s) as f64;
        // Refined Lemma 3(a) prediction: each of the |B_2r|−1 nearby
        // nodes shares a file with probability ≈ 1−(1−M/K)^M ≈ M²/K.
        let torus = paba_topology::Torus::new(s);
        let b2r = torus.ball_size(2 * *r) as f64 - 1.0;
        let p_share = 1.0 - (1.0 - p.m as f64 / n).powi(p.m as i32);
        let pred = b2r * p_share;
        let mean_deg = outcomes[i].summarize(|o| o.0);
        let min_deg = outcomes[i].summarize(|o| o.1);
        let max_deg = outcomes[i].summarize(|o| o.2);
        let eh = outcomes[i].summarize(|o| o.3);
        let c = outcomes[i].summarize(|o| o.4);
        table.push_row([
            format!("{}", s * s),
            format!("{}", p.m),
            format!("{r}"),
            format!("{:.1}", mean_deg.mean),
            format!("{pred:.1}"),
            format!("{:.3}", mean_deg.mean / pred),
            format!("{:.1}", min_deg.mean),
            format!("{:.1}", max_deg.mean),
            format!("{:.0}", eh.mean),
            format!("{:.2}", c.mean),
        ]);
    }
    emit("lemma3_config_graph", &table);

    println!(
        "Lemma 3 check: (a) mean degree tracks Theta(M^2 r^2 / K) with max/min \
         within a constant factor (almost-regularity); (b) the hottest sampled \
         edge's frequency is O(1/e(H)) -- the last column's constant stays O(1)."
    );
}
