//! `bench repro_gates` — the theorem-gated reproduction suite of
//! `paba-repro` as a bench target: run every experiment at the
//! environment-selected scale, print the gate table, and write
//! `BENCH_repro.json` at the workspace root (the golden-regeneration
//! path; CI's `repro-smoke` job diffs fresh runs against the committed
//! copy via `paba repro --quick --check`).
//!
//! Knobs: `PABA_SCALE=quick|default|full`, `PABA_SEED`, `PABA_RUNS`.

use paba_repro::{gates_table, run_suite, ReproConfig};
use paba_util::envcfg::EnvCfg;
use std::path::PathBuf;

fn main() {
    let env = EnvCfg::from_env();
    paba_bench::header(
        "repro_gates: theorem-gated reproduction suite",
        "Thm 1-2 vs 4/6 growth separation, Thm 4 trade-off, Lemma 2 goodness",
        &env,
        1,
    );
    let mut cfg = ReproConfig::new(env.scale);
    cfg.seed = env.seed;
    cfg.runs_override = env.runs_override;
    cfg.verbose = true;
    let artifact = run_suite(&cfg);
    paba_bench::emit("repro_gates", &gates_table(&artifact));
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_repro.json");
    match artifact.write(&out) {
        Ok(()) => println!("(JSON: {})", out.display()),
        Err(e) => eprintln!("failed to write BENCH_repro.json: {e}"),
    }
    assert!(
        artifact.all_gates_passed(),
        "reproduction gates failed — see table above"
    );
}
