//! **§VI conjecture** — the supermarket (queueing) analogue of Strategy II.
//!
//! The paper conjectures its static results carry over to continuous time.
//! We simulate Poisson arrivals / exponential service with three dispatch
//! rules — random nearby replica (`d = 1`), proximity two-choice (`d = 2`,
//! finite `r`), and unconstrained two-choice — and compare the
//! time-averaged queue-length tails against Mitzenmacher's laws:
//! `Pr[Q ≥ k] = λ^k` for random and `λ^(2^k − 1)` for two-choice.

use paba_bench::{emit, header, NetPoint};
use paba_core::{PlacementPolicy, ProximityChoice};
use paba_supermarket::{simulate_queueing, QueueSimConfig};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(2, 10, 50);
    header(
        "Supermarket model: queue tails under proximity-aware dispatch",
        "Section VI conjecture (lambda in {0.7, 0.9}, M=K torus 32x32)",
        &cfg,
        runs,
    );

    let side = 24u32; // n = 576 queues: enough for tight tail averages
    let lambdas = [0.7f64, 0.9];
    let radius = 4u32;

    // Full replication isolates queueing from cache-miss effects; a second
    // sweep uses a finite cache to show the conjecture under real placements.
    let mut full = NetPoint::uniform(side, 8, 8);
    full.policy = PlacementPolicy::FullLibrary;
    let sparse = NetPoint::uniform(side, 256, 16);

    #[derive(Clone)]
    struct P {
        point: NetPoint,
        lambda: f64,
        d: u32,
        radius: Option<u32>,
        label: &'static str,
    }
    let mut grid: Vec<(P, ())> = Vec::new();
    for &l in &lambdas {
        for (d, r, label) in [
            (1u32, Some(radius), "random nearby (d=1)"),
            (2, Some(radius), "proximity 2-choice"),
            (2, None, "2-choice r=inf"),
        ] {
            grid.push((
                P {
                    point: full.clone(),
                    lambda: l,
                    d,
                    radius: r,
                    label,
                },
                (),
            ));
        }
        grid.push((
            P {
                point: sparse.clone(),
                lambda: l,
                d: 2,
                radius: Some(radius),
                label: "sparse M=16 2-choice",
            },
            (),
        ));
    }

    let sim_cfg = QueueSimConfig {
        lambda: 0.0, // set per point below
        horizon: cfg.pick(400.0, 1_000.0, 6_000.0),
        warmup: cfg.pick(100.0, 300.0, 1_500.0),
        tail_cap: 24,
        stride: 0,
    };

    let outcomes = paba_mcrunner::sweep(&grid, runs, cfg.seed, None, true, |(p, ()), _run, rng| {
        let net = p.point.build(rng);
        let mut strat = ProximityChoice::with_choices(p.radius, p.d);
        let c = QueueSimConfig {
            lambda: p.lambda,
            ..sim_cfg
        };
        let rep = simulate_queueing(&net, &mut strat, &c, rng);
        (
            rep.tail_at(2),
            rep.tail_at(4),
            rep.max_queue as f64,
            rep.mean_response,
            rep.comm_cost,
        )
    });

    let mut table = Table::new([
        "lambda",
        "dispatch",
        "Pr[Q>=2]",
        "Pr[Q>=4]",
        "theory rand l^k",
        "theory 2ch l^(2^k-1)",
        "max Q",
        "mean resp",
        "C (hops)",
    ]);
    for (i, (p, ())) in grid.iter().enumerate() {
        let t2 = outcomes[i].summarize(|o| o.0);
        let t4 = outcomes[i].summarize(|o| o.1);
        let mq = outcomes[i].summarize(|o| o.2);
        let resp = outcomes[i].summarize(|o| o.3);
        let cost = outcomes[i].summarize(|o| o.4);
        table.push_row([
            format!("{}", p.lambda),
            p.label.to_string(),
            format!("{:.4}", t2.mean),
            format!("{:.4}", t4.mean),
            format!("{:.4}", p.lambda.powi(4)),
            format!("{:.4}", p.lambda.powi(15)),
            format!("{:.1}", mq.mean),
            format!("{:.2}", resp.mean),
            format!("{:.2}", cost.mean),
        ]);
    }
    emit("supermarket_tails", &table);

    println!(
        "Conjecture check: d=1 tails track lambda^k while both two-choice variants \
         track the doubly-exponential lambda^(2^k - 1) -- proximity (r=4) pays only \
         a bounded communication cost for the same tail collapse, the queueing \
         analogue of Theorem 6."
    );
}
