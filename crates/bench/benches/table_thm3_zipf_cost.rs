//! **Theorem 3 table (the paper's equation (1))** — communication-cost
//! scaling of Strategy I under Zipf popularity, across the five γ regimes.
//!
//! For each `γ ∈ {0.5, 1, 1.5, 2, 2.5}` we sweep the library size `K` at
//! fixed `M`, fit the power-law exponent of the measured cost `C(K)`, and
//! compare it against the regime exponent of equation (1):
//!
//! | regime      | prediction                | exponent in K |
//! |-------------|---------------------------|---------------|
//! | `0 < γ < 1` | `Θ(√(K/M))`               | 0.5           |
//! | `γ = 1`     | `Θ(√(K/(M log K)))`       | 0.5 − o(1)    |
//! | `1 < γ < 2` | `Θ(K^{1−γ/2}/√M)`         | 1 − γ/2       |
//! | `γ = 2`     | `Θ(log K/√M)`             | 0 (+ log)     |
//! | `γ > 2`     | `Θ(1/√M)`                 | 0             |
//!
//! **Finite-size subtlety.** For `γ ∈ (0, 2)` the exponent is carried by
//! *tail* files (the `Σ √p_j` series), so the network must be large
//! enough that tail files actually have replicas: request-weighted
//! coverage needs `n·M ≳ 5·K^γ·Λ(γ)`. We therefore scale the torus with
//! the regime (the `coverage` column verifies it); for `γ ≥ 2` the tail
//! contributes nothing and a small torus suffices.

use paba_bench::{emit, header, NetPoint, RunOut, StrategyKind};
use paba_popularity::Popularity;
use paba_theory::{zipf_cost_exponent_in_k, CostRegime};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

/// Request-weighted coverage of a realized placement: the probability that
/// a popularity-drawn file has at least one replica.
fn coverage(net: &paba_core::CacheNetwork<paba_topology::Torus>) -> f64 {
    (0..net.k())
        .filter(|&f| net.placement().replica_count(f) > 0)
        .map(|f| net.library().probability(f))
        .sum()
}

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(6, 60, 500);
    header(
        "Theorem 3 / eq. (1): Zipf communication-cost regimes, Strategy I",
        "Theorem 3 (M=3, K swept, Zipf gamma in {0.5,1,1.5,2,2.5}; torus sized per regime)",
        &cfg,
        runs,
    );

    let m = 3u32; // M = Θ(1), as Theorem 3's Zipf case requires
    let ks: Vec<u32> = cfg.pick(
        vec![200, 800],
        vec![200, 400, 800, 1600, 3200],
        vec![200, 400, 800, 1600, 3200, 6400],
    );
    // (γ, torus side): the side grows with γ ∈ (0,2) so the Zipf tail is
    // actually cached (see module docs); γ ≥ 2 saturates regardless.
    let gammas: Vec<(f64, u32)> = cfg.pick(
        vec![(0.5, 64), (1.0, 104), (1.5, 104), (2.0, 45), (2.5, 45)],
        vec![(0.5, 104), (1.0, 208), (1.5, 208), (2.0, 45), (2.5, 45)],
        vec![(0.5, 104), (1.0, 208), (1.5, 528), (2.0, 45), (2.5, 45)],
    );

    let points: Vec<(NetPoint, StrategyKind)> = gammas
        .iter()
        .flat_map(|&(g, side)| {
            ks.iter().map(move |&k| {
                let mut p = NetPoint::uniform(side, k, m);
                p.popularity = Popularity::zipf(g);
                (p, StrategyKind::Nearest)
            })
        })
        .collect();

    // Sweep manually so we can also record coverage per run.
    let outcomes = paba_mcrunner::sweep(&points, runs, cfg.seed, None, true, |p, _run, rng| {
        let net = p.0.build(rng);
        let cov = coverage(&net);
        let out: RunOut = {
            let mut s = paba_core::NearestReplica::new();
            let rep = paba_core::simulate(&net, &mut s, net.n() as u64, rng);
            RunOut {
                max_load: rep.max_load() as f64,
                cost: rep.comm_cost(),
                fallback: rep.fallback_fraction(),
            }
        };
        (out.cost, cov)
    });

    // Raw measured costs + coverage.
    let mut raw = Table::new(["gamma", "n", "K", "cost C", "coverage"]);
    for (gi, &(g, side)) in gammas.iter().enumerate() {
        for (ki, &k) in ks.iter().enumerate() {
            let idx = gi * ks.len() + ki;
            let c = outcomes[idx].summarize(|o| o.0);
            let cov = outcomes[idx].summarize(|o| o.1);
            raw.push_row([
                format!("{g}"),
                format!("{}", side * side),
                format!("{k}"),
                format!("{:.3}", c.mean),
                format!("{:.3}", cov.mean),
            ]);
        }
    }
    emit("table_thm3_costs", &raw);

    // Fitted exponents vs theory.
    let mut fit_table = Table::new([
        "gamma",
        "regime",
        "fitted exponent",
        "predicted exponent",
        "R^2",
        "match",
    ]);
    for (gi, &(g, _side)) in gammas.iter().enumerate() {
        let pts: Vec<(f64, f64)> = ks
            .iter()
            .enumerate()
            .map(|(ki, &k)| {
                (
                    k as f64,
                    outcomes[gi * ks.len() + ki].summarize(|o| o.0).mean,
                )
            })
            .collect();
        let fit = paba_util::fit_loglog(&pts).expect("fit");
        let predict = zipf_cost_exponent_in_k(g);
        // γ=1/γ=1.5 carry log corrections or residual coverage loss at
        // laptop n; widen their tolerance and say so.
        let tol = if g > 0.5 && g < 2.0 { 0.15 } else { 0.08 };
        let ok = (fit.slope - predict).abs() <= tol;
        fit_table.push_row([
            format!("{g}"),
            format!("{:?}", CostRegime::classify(g)),
            format!("{:.3} ± {:.3}", fit.slope, fit.slope_std_err),
            format!("{predict:.3}"),
            format!("{:.4}", fit.r_squared),
            if ok { "yes".into() } else { "off".to_string() },
        ]);
    }
    emit("table_thm3_exponents", &fit_table);

    println!(
        "Paper check: exponents fall from 1/2 (gamma<=1) through 1-gamma/2 to 0 \
         (gamma>=2) -- skew makes cost library-size-independent, eq. (1). \
         gamma=1 carries a -1/2 log K correction; gamma=1.5 needs the larger \
         torus (coverage column ~1) for its tail-driven exponent."
    );
}
