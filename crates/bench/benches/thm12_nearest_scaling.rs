//! **Theorems 1 & 2** — maximum-load scaling of Strategy I.
//!
//! * Theorem 1: `K = n^{1−ε}`, `M = Θ(1)` ⇒ `L = Θ(log n)`. We sweep `n`
//!   with `ε = 0.5`, `M = 2` and check `L / ln n` is roughly constant.
//! * Theorem 2: `K = n`, `M = n^α` (`α = 0.25`) ⇒
//!   `L ∈ [Ω(log n/log log n), O(log n)]`. We check the measured load sits
//!   between the two normalized envelopes.

use paba_bench::{emit, header, NetPoint, StrategyKind};
use paba_theory::one_choice_max_load;
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(10, 200, 2_000);
    header(
        "Theorems 1-2: Strategy I max-load scaling laws",
        "Thm 1 (K=n^0.5, M=2) and Thm 2 (K=n, M=n^0.25)",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![16, 32, 64],
        vec![16, 23, 32, 45, 64, 91],
        vec![16, 23, 32, 45, 64, 91, 128],
    );

    // --- Theorem 1 regime ---
    let points_t1: Vec<(NetPoint, StrategyKind)> = sides
        .iter()
        .map(|&s| {
            let n = s * s;
            let k = (n as f64).sqrt().round() as u32; // K = n^{1/2}
            (NetPoint::uniform(s, k, 2), StrategyKind::Nearest)
        })
        .collect();
    let res_t1 = paba_bench::sweep_points(&points_t1, runs, cfg.seed);

    let mut t1 = Table::new(["n", "K=n^0.5", "L (mean)", "ln n", "L / ln n"]);
    let mut ratios = Vec::new();
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        let l = res_t1[i].max_load.mean;
        ratios.push(l / n.ln());
        t1.push_row([
            format!("{}", s * s),
            format!("{}", points_t1[i].0.k),
            format!("{l:.3}"),
            format!("{:.2}", n.ln()),
            format!("{:.3}", l / n.ln()),
        ]);
    }
    emit("thm1_logn_scaling", &t1);
    let spread = ratios.iter().cloned().fold(f64::MIN, f64::max)
        / ratios.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "Theorem 1 check: L/ln n spread across the sweep = {spread:.2}x \
         (Θ(log n) predicts an O(1) spread; paper proves matching bounds).\n"
    );

    // --- Theorem 2 regime ---
    let points_t2: Vec<(NetPoint, StrategyKind)> = sides
        .iter()
        .map(|&s| {
            let n = s * s;
            let m = ((n as f64).powf(0.25).round() as u32).max(1); // M = n^{1/4}
            (NetPoint::uniform(s, n, m), StrategyKind::Nearest)
        })
        .collect();
    let res_t2 = paba_bench::sweep_points(&points_t2, runs, cfg.seed ^ 0x7777);

    let mut t2 = Table::new([
        "n",
        "M=n^0.25",
        "L (mean)",
        "lower ln n/lnln n",
        "upper ln n",
        "within band",
    ]);
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        let l = res_t2[i].max_load.mean;
        let lower = one_choice_max_load(n);
        let upper = n.ln();
        // Θ-bounds hide constants; require the measurement within generous
        // constant multiples of the envelopes.
        let ok = l >= 0.3 * lower && l <= 3.0 * upper;
        t2.push_row([
            format!("{}", s * s),
            format!("{}", points_t2[i].0.m),
            format!("{l:.3}"),
            format!("{lower:.2}"),
            format!("{upper:.2}"),
            if ok { "yes".into() } else { "OFF".to_string() },
        ]);
    }
    emit("thm2_band_scaling", &t2);
    println!(
        "Theorem 2 check: measured L sits between the Ω(log n/log log n) and \
         O(log n) envelopes (constants absorbed)."
    );
}
