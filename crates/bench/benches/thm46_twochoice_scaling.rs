//! **Theorems 4 & 6** — maximum-load scaling of Strategy II.
//!
//! * Theorem 4: `K = n`, `M = n^α`, `r = n^β` with
//!   `α + 2β ≥ 1 + 2 log log n / log n` ⇒ `L = Θ(log log n)` and
//!   `C = Θ(r)`. We sweep `n` at `α = 0.3` with β at the theorem's minimum
//!   (condition satisfied) and at `β = 0.15` (condition violated) and
//!   contrast the growth of `L / ln ln n`.
//! * Theorem 6: `M = K` (full replication) with any
//!   `β = Ω(log log n / log n)` ⇒ `L = Θ(log log n)` at tiny cost. We use
//!   a fixed small radius ladder.

use paba_bench::{emit, header, NetPoint, StrategyKind};
use paba_core::PlacementPolicy;
use paba_theory::theorem4_min_beta;
use paba_util::envcfg::EnvCfg;
use paba_util::Table;

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(8, 120, 1_000);
    header(
        "Theorems 4 & 6: Strategy II max-load scaling",
        "Thm 4 (K=n, M=n^0.3, r=n^beta) and Thm 6 (M=K, small r)",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(
        vec![32, 64],
        vec![32, 45, 64, 91, 128, 181],
        vec![32, 45, 64, 91, 128, 181, 256],
    );
    let alpha = 0.3f64;

    // --- Theorem 4: condition satisfied vs violated ---
    let mut points = Vec::new();
    let mut labels = Vec::new();
    for &s in &sides {
        let n = (s * s) as f64;
        let m = (n.powf(alpha).round() as u32).max(2);
        let beta_ok = theorem4_min_beta(n, alpha);
        let r_ok = (n.powf(beta_ok).ceil() as u32).max(1);
        let r_bad = (n.powf(0.15).ceil() as u32).max(1);
        points.push((
            NetPoint::uniform(s, s * s, m),
            StrategyKind::two_choice(Some(r_ok)),
        ));
        points.push((
            NetPoint::uniform(s, s * s, m),
            StrategyKind::two_choice(Some(r_bad)),
        ));
        labels.push((m, r_ok, r_bad));
    }
    let res = paba_bench::sweep_points(&points, runs, cfg.seed);

    let mut t4 = Table::new([
        "n",
        "M",
        "r(ok)",
        "L(ok)",
        "L(ok)/lnln n",
        "C(ok)",
        "r(bad)",
        "L(bad)",
        "L(bad)/lnln n",
    ]);
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        let lll = n.ln().ln();
        let (m, r_ok, r_bad) = labels[i];
        let ok = &res[2 * i];
        let bad = &res[2 * i + 1];
        t4.push_row([
            format!("{}", s * s),
            format!("{m}"),
            format!("{r_ok}"),
            format!("{:.3}", ok.max_load.mean),
            format!("{:.3}", ok.max_load.mean / lll),
            format!("{:.2}", ok.cost.mean),
            format!("{r_bad}"),
            format!("{:.3}", bad.max_load.mean),
            format!("{:.3}", bad.max_load.mean / lll),
        ]);
    }
    emit("thm4_regimes", &t4);
    println!(
        "Theorem 4 check: in the satisfied regime L/lnln n stays ~constant and \
         C = Θ(r); violating the density condition (small beta) leaves the max \
         load higher and growing.\n"
    );

    // --- Theorem 6: M = K, tiny radius ---
    let k_small = 16u32;
    let points_t6: Vec<(NetPoint, StrategyKind)> = sides
        .iter()
        .map(|&s| {
            let n = (s * s) as f64;
            // Theorem 6 asks for r = n^β with β = Ω(log log n / log n);
            // note n^{loglog n / log n} = ln n exactly, so we take the
            // genuinely tiny radius r = ⌈ln n⌉. (The theorem's proof
            // additionally wants Δ = Θ(r²) ≫ log⁴ n, which no laptop-scale
            // n satisfies — log⁴ n > n until n ≈ 10⁷ — yet the balance
            // already appears, matching the paper's own Figure 5 where
            // M = 200 reaches optimal balance by r ≈ 3.)
            let r = (n.ln().ceil() as u32).max(3);
            let mut p = NetPoint::uniform(s, k_small, k_small);
            p.policy = PlacementPolicy::FullLibrary;
            (p, StrategyKind::two_choice(Some(r)))
        })
        .collect();
    let res_t6 = paba_bench::sweep_points(&points_t6, runs, cfg.seed ^ 0xabcd);

    let mut t6 = Table::new(["n", "r", "L (mean)", "L/lnln n", "C (hops)"]);
    for (i, &s) in sides.iter().enumerate() {
        let n = (s * s) as f64;
        let StrategyKind::Proximity {
            radius: Some(r), ..
        } = points_t6[i].1
        else {
            unreachable!()
        };
        t6.push_row([
            format!("{}", s * s),
            format!("{r}"),
            format!("{:.3}", res_t6[i].max_load.mean),
            format!("{:.3}", res_t6[i].max_load.mean / n.ln().ln()),
            format!("{:.2}", res_t6[i].cost.mean),
        ]);
    }
    emit("thm6_full_replication", &t6);
    println!(
        "Theorem 6 check: with M=K even r = ln n (= n^(loglog n/log n), ~7-11 hops \
         here) achieves the Θ(log log n) balance of unconstrained two-choice, at a \
         cost C = Θ(r) far below the Θ(sqrt n) of r = inf."
    );
}
