//! `bench throughput` — requests/sec of the assignment hot path across
//! the regime grid (sparse/full placement, r ∈ {2, 5, 10, ∞}, uniform vs
//! Zipf popularity), measured under both the hybrid sampler and the
//! exact-scan baseline.
//!
//! Prints the standard table and writes `BENCH_throughput.json` at the
//! workspace root so CI can archive the per-PR throughput trajectory.
//! Knobs: `PABA_SCALE=quick|default|full`, `PABA_SEED`.

use paba_bench::throughput;
use paba_util::envcfg::EnvCfg;
use std::path::PathBuf;

fn main() {
    let cfg = EnvCfg::from_env();
    paba_bench::header(
        "throughput: assign-loop requests/sec",
        "the simulator's own hot path (not a paper figure)",
        &cfg,
        1,
    );
    let measurements = throughput::run_grid(cfg.scale, cfg.seed, 0);
    paba_bench::emit("throughput", &throughput::to_table(&measurements));
    let out = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_throughput.json");
    match throughput::write_json(&out, &measurements, cfg.seed, cfg.scale) {
        Ok(()) => println!("(JSON: {})", out.display()),
        Err(e) => eprintln!("failed to write BENCH_throughput.json: {e}"),
    }
}
