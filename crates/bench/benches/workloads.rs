//! **Workload family** — both strategies across every synthetic workload
//! the `paba-workload` crate generates.
//!
//! The paper evaluates one workload (uniform origins, IID Zipf draws);
//! related systems are judged on richer streams — DistCache under
//! adversarially-skewed and time-varying key popularity, Panigrahy et
//! al.'s proximity policies under heterogeneous request rates. This bench
//! sweeps the same network through the whole workload family and reports
//! how much of each strategy's story survives:
//!
//! * `iid` — the paper baseline (sanity anchor, matches fig. 1/3 points).
//! * `hotspot` — clustered client geography (4 centers, 80% local).
//! * `zipf-origins` — rank-skewed per-node request rates (γ = 1).
//! * `flash-crowd` — one file boosted 50x for the whole run.
//! * `shifting` — popularity ranks rotate every n/10 requests.

use paba_bench::{emit, header, sweep_workload_points, NetPoint, StrategyKind};
use paba_util::envcfg::EnvCfg;
use paba_util::Table;
use paba_workload::WorkloadSpec;

fn workloads(n: u64) -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        ("iid", WorkloadSpec::Iid),
        (
            "hotspot",
            WorkloadSpec::Hotspot {
                hotspots: 4,
                radius: 3,
                fraction: 0.8,
                seed: 1,
            },
        ),
        ("zipf-origins", WorkloadSpec::ZipfOrigins { gamma: 1.0 }),
        (
            "flash-crowd",
            WorkloadSpec::FlashCrowd {
                file: 0,
                start: 0,
                duration: n,
                boost: 50.0,
                tau: 0.0,
            },
        ),
        (
            "shifting",
            WorkloadSpec::Shifting {
                epoch: (n / 10).max(1),
                step: 1,
            },
        ),
    ]
}

fn main() {
    let cfg = EnvCfg::from_env();
    let runs = cfg.runs(8, 100, 1_000);
    header(
        "Strategy I vs II across the synthetic workload family",
        "the delivery phase of §V under paba-workload request sources",
        &cfg,
        runs,
    );

    let sides: Vec<u32> = cfg.pick(vec![32], vec![32, 45], vec![32, 45, 64, 91]);
    let (k, m) = (200u32, 4u32);
    let strategies = [StrategyKind::Nearest, StrategyKind::two_choice(Some(8))];

    for &side in &sides {
        let n = (side as u64) * (side as u64);
        let family = workloads(n);
        let mut points = Vec::new();
        for (_, spec) in &family {
            for &kind in &strategies {
                let mut p = NetPoint::uniform(side, k, m);
                p.popularity = paba_popularity::Popularity::zipf(0.8);
                points.push((p, kind, spec.clone()));
            }
        }
        let res = sweep_workload_points(&points, runs, cfg.seed ^ n);

        let mut table = Table::new([
            "workload",
            "Strategy I L",
            "Strategy II L",
            "Strategy I C",
            "Strategy II C",
        ]);
        for (wi, (name, _)) in family.iter().enumerate() {
            let s1 = &res[2 * wi];
            let s2 = &res[2 * wi + 1];
            table.push_row([
                name.to_string(),
                format!("{:.2} ± {:.2}", s1.max_load.mean, s1.max_load.std_dev),
                format!("{:.2} ± {:.2}", s2.max_load.mean, s2.max_load.std_dev),
                format!("{:.2}", s1.cost.mean),
                format!("{:.2}", s2.cost.mean),
            ]);
        }
        println!("### n = {n} (side {side}, K = {k}, M = {m}, Zipf 0.8)\n");
        emit(&format!("workloads_n{n}"), &table);
    }

    println!(
        "Reading: proximity-aware two-choice holds its max load nearly flat across the \
         family, while\nStrategy I degrades badly when request geography concentrates \
         (hotspot, zipf-origins) — the\nload-balancing story survives every workload, not \
         just the paper's IID one."
    );
}
