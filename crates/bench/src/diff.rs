//! `paba profile --diff`: statistical comparison of two profile artifacts.
//!
//! Given two `paba-profile/1` documents (OLD and NEW), the comparator
//! separates *regression* from *noise* along three axes, the same
//! discipline `paba repro --check` applies to simulation metrics:
//!
//! * **path-mix shift** — per shared regime label, each sampler path's
//!   share of requests is compared with a two-proportion z-test
//!   (`theory::bounds::{binomial_sigma, mean_gap_z}`). A shift is a
//!   regression only when both the z-score and the absolute share delta
//!   clear their gates, so diffing an artifact against itself reports
//!   exactly zero regressions (path counts are seed-deterministic).
//! * **stage-time ratios** — per-label mean span times (assign loop,
//!   placement build, metrics merge) compared as NEW/OLD ratios with a
//!   deliberately loose gate: wall-clock means are machine-dependent, so
//!   only multiples count.
//! * **throughput** — when both artifacts carry a `baseline` block, the
//!   geometric mean over shared labels of the measured-speedup ratio
//!   NEW/OLD, gated from below.

use std::path::Path;

use paba_repro::json::{parse, Json};
use paba_theory::bounds::{binomial_sigma, mean_gap_z};
use paba_util::{schema, Table};

/// Gates separating regression from noise; see module docs.
#[derive(Clone, Copy, Debug)]
pub struct DiffGates {
    /// |z| a path-share shift must exceed.
    pub z: f64,
    /// Absolute share delta a path-share shift must also exceed.
    pub share_floor: f64,
    /// NEW/OLD mean-span-time ratio above which a stage regresses.
    pub span_ratio: f64,
    /// NEW/OLD speedup geo-mean below which throughput regresses.
    pub speedup_ratio: f64,
}

impl Default for DiffGates {
    fn default() -> Self {
        Self {
            z: 6.0,
            share_floor: 0.02,
            span_ratio: 3.0,
            speedup_ratio: 0.5,
        }
    }
}

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct DiffFinding {
    /// Regime label (or `*` for artifact-wide rows).
    pub label: String,
    /// What was compared, e.g. `path:windowed` or `span:assign-loop`.
    pub metric: String,
    /// OLD value (share, mean ns, or speedup).
    pub old: f64,
    /// NEW value.
    pub new: f64,
    /// Standardized shift where one is defined, else NaN.
    pub z: f64,
    /// Whether this finding clears the regression gates.
    pub regression: bool,
    /// Human-readable qualifier.
    pub note: String,
}

/// Outcome of a profile diff.
#[derive(Clone, Debug)]
pub struct ProfileDiff {
    /// All comparisons performed (path rows only where the share moved).
    pub findings: Vec<DiffFinding>,
    /// Labels present in both artifacts.
    pub compared_labels: usize,
    /// Gates that were applied.
    pub gates: DiffGates,
}

impl ProfileDiff {
    /// Number of findings flagged as regressions.
    pub fn regressions(&self) -> usize {
        self.findings.iter().filter(|f| f.regression).count()
    }
}

struct LabelProfile {
    label: String,
    requests: f64,
    /// Sampler-path label → count.
    paths: Vec<(String, f64)>,
    /// Stage label → (count, mean_ns).
    spans: Vec<(String, f64, f64)>,
}

struct ProfileDoc {
    labels: Vec<LabelProfile>,
    /// Label → measured hybrid speedup, when a baseline block is present.
    speedups: Option<Vec<(String, f64)>>,
}

fn obj_fields<'a>(j: &'a Json, what: &str, origin: &str) -> Result<&'a [(String, Json)], String> {
    match j {
        Json::Obj(fields) => Ok(fields),
        _ => Err(format!("{origin}: {what} is not an object")),
    }
}

fn parse_profile(src: &str, origin: &str) -> Result<ProfileDoc, String> {
    let doc = parse(src).map_err(|e| format!("parsing {origin}: {e}"))?;
    let doc_schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if doc_schema != schema::PROFILE {
        return Err(format!(
            "{origin}: expected schema {}, got {doc_schema:?}",
            schema::PROFILE
        ));
    }
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{origin}: no points array"))?;
    let mut labels = Vec::new();
    for p in points {
        let label = p
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{origin}: point without a label"))?
            .to_string();
        let requests = p.get("requests").and_then(Json::as_f64).unwrap_or(0.0);
        let telemetry = p
            .get("telemetry")
            .ok_or_else(|| format!("{origin}: point {label} has no telemetry"))?;
        let paths = obj_fields(
            telemetry
                .get("sampler_paths")
                .ok_or_else(|| format!("{origin}: point {label} has no sampler_paths"))?,
            "sampler_paths",
            origin,
        )?
        .iter()
        .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0)))
        .collect();
        let mut spans = Vec::new();
        if let Some(span_obj) = telemetry.get("spans") {
            for (stage, s) in obj_fields(span_obj, "spans", origin)? {
                let count = s.get("count").and_then(Json::as_f64).unwrap_or(0.0);
                let mean = s.get("mean_ns").and_then(Json::as_f64).unwrap_or(f64::NAN);
                spans.push((stage.clone(), count, mean));
            }
        }
        labels.push(LabelProfile {
            label,
            requests,
            paths,
            spans,
        });
    }
    let speedups = match doc.get("baseline") {
        None | Some(Json::Null) => None,
        Some(b) => {
            let rows = b
                .get("labels")
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("{origin}: baseline without labels array"))?;
            let mut out = Vec::new();
            for r in rows {
                let label = r.get("label").and_then(Json::as_str).unwrap_or("");
                let speedup = r
                    .get("measured_speedup")
                    .and_then(Json::as_f64)
                    .unwrap_or(f64::NAN);
                if !label.is_empty() && speedup.is_finite() && speedup > 0.0 {
                    out.push((label.to_string(), speedup));
                }
            }
            Some(out)
        }
    };
    Ok(ProfileDoc { labels, speedups })
}

fn lookup(pairs: &[(String, f64)], key: &str) -> Option<f64> {
    pairs.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

/// Diff two `paba-profile/1` documents (already read into strings).
pub fn diff_profiles(
    old_src: &str,
    new_src: &str,
    gates: DiffGates,
) -> Result<ProfileDiff, String> {
    let old = parse_profile(old_src, "OLD")?;
    let new = parse_profile(new_src, "NEW")?;
    let mut findings = Vec::new();
    let mut compared_labels = 0usize;

    for op in &old.labels {
        let Some(np) = new.labels.iter().find(|p| p.label == op.label) else {
            continue;
        };
        compared_labels += 1;
        if op.requests <= 0.0 || np.requests <= 0.0 {
            continue;
        }

        // Path-mix shift: two-proportion z-test on each path's share.
        let mut path_keys: Vec<&String> = op.paths.iter().map(|(k, _)| k).collect();
        for (k, _) in &np.paths {
            if !path_keys.contains(&k) {
                path_keys.push(k);
            }
        }
        for key in path_keys {
            let c_old = lookup(&op.paths, key).unwrap_or(0.0);
            let c_new = lookup(&np.paths, key).unwrap_or(0.0);
            if c_old == 0.0 && c_new == 0.0 {
                continue;
            }
            let share_old = c_old / op.requests;
            let share_new = c_new / np.requests;
            // Pooled standard errors; degenerate (0 or 1) pooled shares
            // give se = 0 and mean_gap_z resolves the sign. Clamped so a
            // corrupt artifact with a count above its request total is
            // reported as a (huge) shift instead of panicking.
            let pooled = ((c_old + c_new) / (op.requests + np.requests)).clamp(0.0, 1.0);
            let se_old = binomial_sigma(op.requests, pooled) / op.requests;
            let se_new = binomial_sigma(np.requests, pooled) / np.requests;
            let z = mean_gap_z(share_new, se_new, share_old, se_old);
            let delta = share_new - share_old;
            let regression = z.abs() > gates.z && delta.abs() > gates.share_floor;
            if delta != 0.0 || regression {
                findings.push(DiffFinding {
                    label: op.label.clone(),
                    metric: format!("path:{key}"),
                    old: share_old,
                    new: share_new,
                    z,
                    regression,
                    note: format!("Δshare {delta:+.4}"),
                });
            }
        }

        // Stage-time ratios: only a multiple-of gate, wall clock is noisy.
        for (stage, count_old, mean_old) in &op.spans {
            let Some((_, count_new, mean_new)) = np.spans.iter().find(|(s, _, _)| s == stage)
            else {
                continue;
            };
            if *count_old == 0.0 || *count_new == 0.0 || !mean_old.is_finite() || *mean_old <= 0.0 {
                continue;
            }
            let ratio = mean_new / mean_old;
            findings.push(DiffFinding {
                label: op.label.clone(),
                metric: format!("span:{stage}"),
                old: *mean_old,
                new: *mean_new,
                z: f64::NAN,
                regression: ratio.is_finite() && ratio > gates.span_ratio,
                note: format!("{ratio:.2}x mean time"),
            });
        }
    }
    if compared_labels == 0 {
        return Err("the two artifacts share no regime labels".into());
    }

    // Throughput: geo-mean of per-label measured-speedup ratios.
    match (&old.speedups, &new.speedups) {
        (Some(os), Some(ns)) => {
            let ratios: Vec<f64> = os
                .iter()
                .filter_map(|(label, old_speedup)| {
                    lookup(ns, label).map(|new_speedup| new_speedup / old_speedup)
                })
                .filter(|r| r.is_finite() && *r > 0.0)
                .collect();
            if !ratios.is_empty() {
                let geo = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
                findings.push(DiffFinding {
                    label: "*".into(),
                    metric: "speedup-geo-mean".into(),
                    old: 1.0,
                    new: geo,
                    z: f64::NAN,
                    regression: geo < gates.speedup_ratio,
                    note: format!("{} shared labels", ratios.len()),
                });
            }
        }
        _ => findings.push(DiffFinding {
            label: "*".into(),
            metric: "speedup-geo-mean".into(),
            old: f64::NAN,
            new: f64::NAN,
            z: f64::NAN,
            regression: false,
            note: "skipped: baseline block missing in at least one artifact".into(),
        }),
    }

    Ok(ProfileDiff {
        findings,
        compared_labels,
        gates,
    })
}

/// Diff two artifact files.
pub fn diff_files(old: &Path, new: &Path, gates: DiffGates) -> Result<ProfileDiff, String> {
    let old_src =
        std::fs::read_to_string(old).map_err(|e| format!("reading {}: {e}", old.display()))?;
    let new_src =
        std::fs::read_to_string(new).map_err(|e| format!("reading {}: {e}", new.display()))?;
    diff_profiles(&old_src, &new_src, gates)
}

fn fmt_val(metric: &str, v: f64) -> String {
    if !v.is_finite() {
        "-".into()
    } else if metric.starts_with("path:") {
        format!("{:.2}%", v * 100.0)
    } else if metric.starts_with("span:") {
        format!("{:.0}ns", v)
    } else {
        format!("{v:.3}")
    }
}

/// Render a diff as the standard bench table.
pub fn diff_table(diff: &ProfileDiff) -> Table {
    let mut t = Table::new(["label", "metric", "old", "new", "z", "status", "note"]);
    for f in &diff.findings {
        t.push_row([
            f.label.clone(),
            f.metric.clone(),
            fmt_val(&f.metric, f.old),
            fmt_val(&f.metric, f.new),
            if f.z.is_finite() {
                format!("{:+.1}", f.z)
            } else {
                "-".into()
            },
            if f.regression { "REGRESSION" } else { "ok" }.into(),
            f.note.clone(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_point, to_json};
    use crate::throughput::ThroughputPoint;
    use paba_util::envcfg::Scale;

    fn artifact() -> String {
        let point = ThroughputPoint {
            label: "tiny".into(),
            side: 10,
            k: 50,
            m: 3,
            gamma: 0.0,
            full: false,
            radius: Some(3),
        };
        let p = profile_point(&point, 11, 2, 200, Some(2));
        to_json(&[p], None, 11, Scale::Quick)
    }

    #[test]
    fn self_diff_reports_zero_regressions() {
        let a = artifact();
        let d = diff_profiles(&a, &a, DiffGates::default()).expect("diff runs");
        assert_eq!(d.compared_labels, 1);
        assert_eq!(d.regressions(), 0, "identical artifacts never regress");
        // Path counts are bit-identical, so no path rows at all; spans
        // compare at exactly 1.0x; throughput is skipped (baseline null).
        assert!(d.findings.iter().all(|f| !f.metric.starts_with("path:")));
        assert!(d
            .findings
            .iter()
            .any(|f| f.metric == "speedup-geo-mean" && f.note.starts_with("skipped")));
    }

    #[test]
    fn perturbed_path_mix_regresses() {
        let a = artifact();
        // Move every rejection-replica hit to exact-scan in NEW: a massive
        // deterministic path-mix shift.
        let doc = parse(&a).unwrap();
        let paths = doc.get("points").and_then(Json::as_arr).unwrap()[0]
            .get("telemetry")
            .and_then(|t| t.get("sampler_paths"))
            .unwrap();
        let rej = paths
            .get("rejection-replica")
            .and_then(Json::as_u64)
            .unwrap();
        let exact = paths.get("exact-scan").and_then(Json::as_u64).unwrap();
        assert!(rej > 0, "tiny sparse point must exercise rejection");
        let b = a
            .replace(
                &format!("\"rejection-replica\":{rej}"),
                "\"rejection-replica\":0",
            )
            .replace(
                &format!("\"exact-scan\":{exact}"),
                &format!("\"exact-scan\":{}", exact + rej),
            );
        assert_ne!(a, b, "perturbation must hit the artifact text");
        let d = diff_profiles(&a, &b, DiffGates::default()).expect("diff runs");
        assert!(d.regressions() > 0, "perturbed path mix must regress");
        let reg = d.findings.iter().find(|f| f.regression).unwrap();
        assert!(reg.metric.starts_with("path:"));
        assert!(reg.z.abs() > DiffGates::default().z);
    }

    #[test]
    fn count_above_request_total_flags_instead_of_panicking() {
        // A corrupt artifact can claim more path hits than requests; the
        // pooled share is clamped so this reads as a huge shift, not a
        // panic inside binomial_sigma.
        let a = artifact();
        let doc = parse(&a).unwrap();
        let exact = doc.get("points").and_then(Json::as_arr).unwrap()[0]
            .get("telemetry")
            .and_then(|t| t.get("sampler_paths"))
            .unwrap()
            .get("exact-scan")
            .and_then(Json::as_u64)
            .unwrap();
        let b = a.replace(
            &format!("\"exact-scan\":{exact}"),
            "\"exact-scan\":999999999",
        );
        assert_ne!(a, b, "perturbation must hit the artifact text");
        let d = diff_profiles(&a, &b, DiffGates::default()).expect("diff must not panic");
        assert!(d.regressions() > 0);
    }

    #[test]
    fn slower_spans_regress_only_past_ratio_gate() {
        let a = artifact();
        let d = diff_profiles(&a, &a, DiffGates::default()).unwrap();
        let span = d
            .findings
            .iter()
            .find(|f| f.metric == "span:assign-loop")
            .expect("assign-loop span compared");
        assert!(!span.regression);
        assert_eq!(span.old, span.new);
    }

    #[test]
    fn disjoint_labels_error() {
        let a = artifact();
        let b = a.replace("\"label\": \"tiny\"", "\"label\": \"other\"");
        assert!(diff_profiles(&a, &b, DiffGates::default()).is_err());
    }

    #[test]
    fn wrong_schema_errors() {
        let err = diff_profiles(r#"{"schema": "x/1"}"#, &artifact(), DiffGates::default());
        assert!(err.is_err());
    }
}
