//! Shared harness for the figure/table regeneration benches.
//!
//! Every bench target in this crate reproduces one figure or table of
//! Pourmiri et al. (IPDPS 2017): it sweeps the paper's parameter grid,
//! averages a configurable number of Monte-Carlo runs per point (placement
//! *and* requests re-randomized each run, matching the paper's §V setup),
//! and prints the same series the paper plots — as a Markdown table on
//! stdout (captured into `bench_output.txt`) and as CSV under
//! `target/paba-results/` for replotting.
//!
//! Environment knobs (see [`paba_util::envcfg`]): `PABA_RUNS`,
//! `PABA_SEED`, `PABA_SCALE=quick|default|full`.

pub mod diff;
pub mod profile;
pub mod report;
pub mod throughput;

use paba_core::{
    simulate_source, CacheNetwork, NearestReplica, PlacementPolicy, ProximityChoice, UncachedPolicy,
};
use paba_popularity::Popularity;
use paba_util::envcfg::EnvCfg;
use paba_util::{Summary, Table};
use paba_workload::WorkloadSpec;
use rand::rngs::SmallRng;
use std::io::Write as _;
use std::path::PathBuf;

/// One network configuration point of a sweep.
#[derive(Clone, Debug)]
pub struct NetPoint {
    /// Torus side (`n = side²`).
    pub side: u32,
    /// Library size `K`.
    pub k: u32,
    /// Cache size `M`.
    pub m: u32,
    /// Popularity profile.
    pub popularity: Popularity,
    /// Placement policy.
    pub policy: PlacementPolicy,
}

impl NetPoint {
    /// Uniform-popularity point with the paper's default placement.
    pub fn uniform(side: u32, k: u32, m: u32) -> Self {
        Self {
            side,
            k,
            m,
            popularity: Popularity::Uniform,
            policy: PlacementPolicy::ProportionalWithReplacement,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.side * self.side
    }

    /// Instantiate the network with a fresh random placement.
    pub fn build(&self, rng: &mut SmallRng) -> CacheNetwork<paba_topology::Torus> {
        CacheNetwork::builder()
            .torus_side(self.side)
            .library(self.k, self.popularity.clone())
            .cache_size(self.m)
            .placement_policy(self.policy)
            .build(rng)
    }
}

/// Which strategy a sweep point runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// Strategy I (nearest replica).
    Nearest,
    /// Strategy II with `d` choices and optional radius.
    Proximity {
        /// Proximity radius (`None` = `r = ∞`).
        radius: Option<u32>,
        /// Number of choices (2 in the paper).
        d: u32,
    },
}

impl StrategyKind {
    /// The paper's Strategy II defaults.
    pub fn two_choice(radius: Option<u32>) -> Self {
        StrategyKind::Proximity { radius, d: 2 }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            StrategyKind::Nearest => "Strategy I (nearest)".into(),
            StrategyKind::Proximity { radius: None, d } => {
                format!("Strategy II (d={d}, r=inf)")
            }
            StrategyKind::Proximity { radius: Some(r), d } => {
                format!("Strategy II (d={d}, r={r})")
            }
        }
    }
}

/// Per-run scalar outcomes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunOut {
    /// Maximum load `L`.
    pub max_load: f64,
    /// Communication cost `C`.
    pub cost: f64,
    /// Fraction of requests on any fallback path.
    pub fallback: f64,
}

/// One full simulation run: fresh placement, `n` requests (the paper's
/// default request count), selected strategy, the paper's IID workload.
pub fn run_once(point: &NetPoint, kind: StrategyKind, rng: &mut SmallRng) -> RunOut {
    run_once_workload(point, kind, &WorkloadSpec::Iid, rng)
}

/// [`run_once`] with an explicit workload: the `n` requests are drawn
/// from a fresh instantiation of `spec` instead of the IID baseline.
pub fn run_once_workload(
    point: &NetPoint,
    kind: StrategyKind,
    spec: &WorkloadSpec,
    rng: &mut SmallRng,
) -> RunOut {
    let net = point.build(rng);
    let requests = net.n() as u64;
    let mut source = spec
        .build(&net, UncachedPolicy::ResampleFile)
        .expect("workload spec must fit the bench network");
    let report = match kind {
        StrategyKind::Nearest => {
            let mut s = NearestReplica::new();
            simulate_source(&net, &mut s, &mut source, requests, rng)
        }
        StrategyKind::Proximity { radius, d } => {
            let mut s = ProximityChoice::with_choices(radius, d);
            simulate_source(&net, &mut s, &mut source, requests, rng)
        }
    };
    RunOut {
        max_load: report.max_load() as f64,
        cost: report.comm_cost(),
        fallback: report.fallback_fraction(),
    }
}

/// Averaged outcome of one sweep point.
#[derive(Clone, Debug)]
pub struct PointSummary {
    /// Maximum-load statistics across runs.
    pub max_load: Summary,
    /// Communication-cost statistics across runs.
    pub cost: Summary,
    /// Fallback-fraction statistics across runs.
    pub fallback: Summary,
}

/// Sweep `(NetPoint, StrategyKind, WorkloadSpec)` triples in parallel —
/// the workload-aware twin of [`sweep_points`], sharing the same
/// deterministic `(seed, point, run)` derivation.
pub fn sweep_workload_points(
    points: &[(NetPoint, StrategyKind, WorkloadSpec)],
    runs: usize,
    seed: u64,
) -> Vec<PointSummary> {
    let outcomes = paba_mcrunner::sweep(points, runs, seed, None, true, |p, _run, rng| {
        run_once_workload(&p.0, p.1, &p.2, rng)
    });
    outcomes
        .iter()
        .map(|o| PointSummary {
            max_load: o.summarize(|r| r.max_load),
            cost: o.summarize(|r| r.cost),
            fallback: o.summarize(|r| r.fallback),
        })
        .collect()
}

/// Sweep a set of `(NetPoint, StrategyKind)` configurations in parallel.
pub fn sweep_points(
    points: &[(NetPoint, StrategyKind)],
    runs: usize,
    seed: u64,
) -> Vec<PointSummary> {
    let outcomes = paba_mcrunner::sweep(points, runs, seed, None, true, |p, _run, rng| {
        run_once(&p.0, p.1, rng)
    });
    outcomes
        .iter()
        .map(|o| PointSummary {
            max_load: o.summarize(|r| r.max_load),
            cost: o.summarize(|r| r.cost),
            fallback: o.summarize(|r| r.fallback),
        })
        .collect()
}

/// Print the standard bench header.
pub fn header(name: &str, paper_ref: &str, cfg: &EnvCfg, runs: usize) {
    println!("\n## {name}");
    println!();
    println!(
        "Reproduces {paper_ref} -- seed {}, {} runs/point, scale {:?}.",
        cfg.seed, runs, cfg.scale
    );
    println!();
}

/// Print a table to stdout and save its CSV under `target/paba-results/`.
pub fn emit(name: &str, table: &Table) {
    print!("{}", table.to_markdown());
    println!();
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{name}.csv"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = f.write_all(table.to_csv().as_bytes());
            println!("(CSV: {})", path.display());
            println!();
        }
    }
}

/// Directory where CSV results are written: `<workspace>/target/paba-results`
/// (or under `CARGO_TARGET_DIR` when redirected).
pub fn results_dir() -> PathBuf {
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            // Bench binaries run with the package as cwd; anchor at the
            // workspace root (two levels above this crate's manifest).
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("target")
        });
    target.join("paba-results")
}

/// Geometric-ish ladder of torus sides between `lo` and `hi` (inclusive),
/// `count` points.
pub fn side_ladder(lo: u32, hi: u32, count: usize) -> Vec<u32> {
    assert!(count >= 2 && hi > lo && lo >= 2);
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let mut sides: Vec<u32> = (0..count)
        .map(|i| {
            let t = i as f64 / (count - 1) as f64;
            (llo + t * (lhi - llo)).exp().round() as u32
        })
        .collect();
    sides.dedup();
    sides
}

/// Format a mean ± 95% CI pair compactly.
pub fn pm(s: &Summary) -> String {
    format!("{:.3} ± {:.3}", s.mean, 1.96 * s.std_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn run_once_produces_sane_metrics() {
        let p = NetPoint::uniform(8, 16, 2);
        let mut rng = SmallRng::seed_from_u64(1);
        let out = run_once(&p, StrategyKind::Nearest, &mut rng);
        assert!(out.max_load >= 1.0);
        assert!(out.cost >= 0.0);
        let out2 = run_once(&p, StrategyKind::two_choice(Some(2)), &mut rng);
        assert!(out2.max_load >= 1.0);
    }

    #[test]
    fn sweep_points_shapes() {
        let pts = vec![
            (NetPoint::uniform(5, 10, 1), StrategyKind::Nearest),
            (NetPoint::uniform(5, 10, 2), StrategyKind::two_choice(None)),
        ];
        let res = sweep_points(&pts, 5, 3);
        assert_eq!(res.len(), 2);
        for s in &res {
            assert_eq!(s.max_load.count, 5);
        }
    }

    #[test]
    fn side_ladder_monotone() {
        let l = side_ladder(10, 55, 10);
        assert!(l.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*l.first().unwrap(), 10);
        assert_eq!(*l.last().unwrap(), 55);
    }

    #[test]
    fn strategy_labels() {
        assert!(StrategyKind::Nearest.label().contains("Strategy I"));
        assert!(StrategyKind::two_choice(Some(4)).label().contains("r=4"));
    }
}
