//! Telemetry profiling harness: where do assign-loop requests actually go?
//!
//! Runs the throughput regime grid (see [`crate::throughput`]) under
//! Strategy II with an [`AtomicRecorder`] threaded through the hot path,
//! and reports per-regime sampler-path breakdowns, auxiliary counters,
//! candidate-pool-size histograms, and coarse stage timings. Per-thread
//! recorders ride the deterministic Monte-Carlo runner via
//! [`paba_mcrunner::run_parallel_with_state`], so parallel determinism of
//! the simulation outputs is untouched; snapshots are merged after join
//! (the merge is associative and commutative, so thread scheduling cannot
//! change the totals).
//!
//! Results are written to `BENCH_profile.json`:
//!
//! ```json
//! {
//!   "schema": "paba-profile/1",
//!   "seed": 20170529,
//!   "scale": "Quick",
//!   "points": [
//!     {
//!       "label": "sparse-zipf1.2-r5", "n": 2500, "runs": 4,
//!       "requests": 10000, "max_load_mean": 4.25,
//!       "telemetry": { "sampler_paths": {"rejection-replica": 9000, ...},
//!                      "counters": {...}, "pool_sizes": {...}, "spans": {...} }
//!     }
//!   ],
//!   "baseline": null
//! }
//! ```
//!
//! Invariant (asserted in tests and checkable by consumers): for every
//! point, the `sampler_paths` counters sum to `requests` — Strategy II
//! records exactly one path per assignment.
//!
//! `baseline` is an optional `NullRecorder` throughput non-regression
//! check against a committed `BENCH_throughput.json`: per-label hybrid
//! `speedup_vs_exact` is re-measured and compared as a ratio
//! (measured ÷ committed), gated on the geometric mean. Ratios — not raw
//! rps — so a committed Default-scale artifact remains a usable baseline
//! for a Quick-scale CI box.

use crate::throughput::{measure_point, regime_grid, ThroughputPoint};
use paba_core::{simulate_source_profiled, CacheNetwork, IidUniform, ProximityChoice};
use paba_mcrunner::run_parallel_with_state;
use paba_repro::json::{parse, Json};
use paba_telemetry::{AtomicRecorder, SpanTimer, Stage, TelemetrySnapshot};
use paba_util::envcfg::Scale;
use paba_util::{schema, Provenance, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::Path;

/// Default geometric-mean ratio gate for [`baseline_check`]. Generous on
/// purpose: CI boxes are noisy and the committed artifact may come from a
/// different scale; the gate exists to catch "the NullRecorder stopped
/// compiling to no-ops" regressions (ratios near 0.5×), not 10% jitter.
pub const DEFAULT_BASELINE_TOLERANCE: f64 = 0.35;

/// Telemetry profile of one regime-grid point.
#[derive(Clone, Debug)]
pub struct ProfilePoint {
    /// The regime profiled.
    pub point: ThroughputPoint,
    /// Monte-Carlo runs merged into the snapshot.
    pub runs: usize,
    /// Total requests across all runs.
    pub requests: u64,
    /// Mean max load across runs (sanity echo, not a benchmark target).
    pub max_load_mean: f64,
    /// Merged telemetry from every run (plus placement-build / merge spans).
    pub snapshot: TelemetrySnapshot,
}

/// One label's committed-vs-measured speedup comparison.
#[derive(Clone, Debug)]
pub struct BaselineLabel {
    /// Regime label shared by both artifacts.
    pub label: String,
    /// Hybrid `speedup_vs_exact` from the committed `BENCH_throughput.json`.
    pub committed_speedup: f64,
    /// Freshly measured hybrid `speedup_vs_exact` (with `NullRecorder`).
    pub measured_speedup: f64,
    /// `measured ÷ committed`.
    pub ratio: f64,
}

/// Outcome of the NullRecorder throughput non-regression check.
#[derive(Clone, Debug)]
pub struct BaselineCheck {
    /// Per-label comparisons (labels present in both grid and artifact).
    pub labels: Vec<BaselineLabel>,
    /// Geometric mean of the per-label ratios.
    pub geo_mean_ratio: f64,
    /// Gate applied to the geometric mean.
    pub tolerance: f64,
    /// `geo_mean_ratio >= tolerance`.
    pub pass: bool,
}

/// Profile one point: build the network once (timed as
/// [`Stage::PlacementBuild`]), run `runs` simulations through
/// [`run_parallel_with_state`] with one [`AtomicRecorder`] per worker
/// thread, and merge all snapshots (timed as [`Stage::MetricsMerge`]).
///
/// `requests = 0` defaults to `n` requests per run.
pub fn profile_point(
    point: &ThroughputPoint,
    seed: u64,
    runs: usize,
    requests: u64,
    threads: Option<usize>,
) -> ProfilePoint {
    let n = point.side as u64 * point.side as u64;
    let reqs = if requests == 0 { n } else { requests };
    let master = AtomicRecorder::new();

    let timer = SpanTimer::start(&master, Stage::PlacementBuild);
    let mut rng = SmallRng::seed_from_u64(seed);
    let net: CacheNetwork<paba_topology::Torus> = CacheNetwork::builder()
        .torus_side(point.side)
        .library(point.k, point.popularity())
        .cache_size(point.m)
        .placement_policy(point.policy())
        .build(&mut rng);
    timer.stop(&master);

    let (reports, recorders) = run_parallel_with_state(
        runs.max(1),
        seed,
        threads,
        None,
        AtomicRecorder::new,
        |rec, _i, run_rng| {
            let mut strat = ProximityChoice::two_choice(point.radius).with_recorder(rec);
            let mut source = IidUniform::new();
            simulate_source_profiled(&net, &mut strat, &mut source, reqs, run_rng, rec)
        },
    );

    let timer = SpanTimer::start(&master, Stage::MetricsMerge);
    let mut snapshot = TelemetrySnapshot::empty();
    for rec in &recorders {
        snapshot.merge(&rec.snapshot());
    }
    let max_load_mean =
        reports.iter().map(|r| r.max_load() as f64).sum::<f64>() / reports.len() as f64;
    timer.stop(&master);
    snapshot.merge(&master.snapshot());

    ProfilePoint {
        point: point.clone(),
        runs: runs.max(1),
        requests: reqs * runs.max(1) as u64,
        max_load_mean,
        snapshot,
    }
}

/// Profile the whole regime grid at a scale.
pub fn run_profile(
    scale: Scale,
    seed: u64,
    runs: usize,
    requests: u64,
    threads: Option<usize>,
) -> Vec<ProfilePoint> {
    regime_grid(scale)
        .iter()
        .map(|p| profile_point(p, seed, runs, requests, threads))
        .collect()
}

/// Merge all per-point snapshots into one workspace-wide view.
pub fn aggregate(points: &[ProfilePoint]) -> TelemetrySnapshot {
    let mut total = TelemetrySnapshot::empty();
    for p in points {
        total.merge(&p.snapshot);
    }
    total
}

/// Compare freshly measured hybrid speedups against a committed
/// `BENCH_throughput.json`. Returns `Ok(None)` when `path` does not exist
/// (nothing to check against — not a failure).
///
/// The fresh measurement runs the `scale` grid with the default
/// `NullRecorder` strategy, so a failing gate flags either a genuine
/// sampler regression or instrumentation overhead leaking into the
/// uninstrumented build.
pub fn baseline_check(
    path: &Path,
    scale: Scale,
    seed: u64,
    tolerance: f64,
) -> Result<Option<BaselineCheck>, String> {
    if !path.exists() {
        return Ok(None);
    }
    let src =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = parse(&src).map_err(|e| format!("parsing {}: {e}", path.display()))?;
    let doc_schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if doc_schema != schema::THROUGHPUT {
        return Err(format!(
            "{}: expected schema {}, got {doc_schema:?}",
            path.display(),
            schema::THROUGHPUT
        ));
    }
    let measurements = doc
        .get("measurements")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: no measurements array", path.display()))?;
    let mut committed: Vec<(String, f64)> = Vec::new();
    for m in measurements {
        let sampler = m.get("sampler").and_then(Json::as_str).unwrap_or("");
        let label = m.get("label").and_then(Json::as_str).unwrap_or("");
        let speedup = m.get("speedup_vs_exact").and_then(Json::as_f64);
        if sampler == "hybrid" && !label.is_empty() {
            if let Some(s) = speedup {
                if s.is_finite() && s > 0.0 {
                    committed.push((label.to_string(), s));
                }
            }
        }
    }
    if committed.is_empty() {
        return Err(format!(
            "{}: no hybrid speedup rows to compare against",
            path.display()
        ));
    }

    let mut labels = Vec::new();
    for point in regime_grid(scale) {
        let Some((_, committed_speedup)) = committed.iter().find(|(l, _)| *l == point.label) else {
            continue;
        };
        let n = point.side as u64 * point.side as u64;
        let ms = measure_point(&point, seed, n, 1);
        let Some(measured_speedup) = ms.iter().find_map(|m| m.speedup_vs_exact) else {
            continue;
        };
        labels.push(BaselineLabel {
            label: point.label.clone(),
            committed_speedup: *committed_speedup,
            measured_speedup,
            ratio: measured_speedup / committed_speedup,
        });
    }
    if labels.is_empty() {
        return Err(format!(
            "{}: committed labels share nothing with the {scale:?} grid",
            path.display()
        ));
    }
    let geo_mean_ratio =
        (labels.iter().map(|l| l.ratio.ln()).sum::<f64>() / labels.len() as f64).exp();
    Ok(Some(BaselineCheck {
        labels,
        geo_mean_ratio,
        tolerance,
        pass: geo_mean_ratio >= tolerance,
    }))
}

fn share(count: u64, total: u64) -> String {
    if total == 0 {
        "-".into()
    } else {
        format!("{:.1}%", count as f64 * 100.0 / total as f64)
    }
}

/// Render the per-point sampler-path breakdown as the standard bench table.
pub fn to_table(points: &[ProfilePoint]) -> Table {
    use paba_telemetry::{Counter, SamplerPath};
    let mut t = Table::new([
        "point",
        "requests",
        "rej-rep",
        "rej-ball",
        "window",
        "exact",
        "index",
        "ball",
        "uncached",
        "budget-exh",
    ]);
    for p in points {
        let total = p.snapshot.total_requests();
        let s = |path| share(p.snapshot.path_count(path), total);
        t.push_row([
            p.point.label.clone(),
            format!("{}", p.requests),
            s(SamplerPath::RejectionReplica),
            s(SamplerPath::RejectionBall),
            s(SamplerPath::Windowed),
            s(SamplerPath::ExactScan),
            s(SamplerPath::IndexSample),
            s(SamplerPath::BallSample),
            s(SamplerPath::Uncached),
            format!("{}", p.snapshot.counter(Counter::RejectionBudgetExhausted)),
        ]);
    }
    t
}

/// Render a [`BaselineCheck`] as a table.
pub fn baseline_table(check: &BaselineCheck) -> Table {
    let mut t = Table::new(["point", "committed", "measured", "ratio"]);
    for l in &check.labels {
        t.push_row([
            l.label.clone(),
            format!("{:.2}x", l.committed_speedup),
            format!("{:.2}x", l.measured_speedup),
            format!("{:.2}", l.ratio),
        ]);
    }
    t
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Serialize a profile run to the `paba-profile/1` JSON schema.
///
/// Alongside the provenance block, the artifact records counting-
/// allocator stats (`"alloc"`) when the CLI was built with its
/// `alloc-track` feature, and `null` otherwise.
pub fn to_json(
    points: &[ProfilePoint],
    baseline: Option<&BaselineCheck>,
    seed: u64,
    scale: Scale,
) -> String {
    let config: Vec<String> = points
        .iter()
        .map(|p| format!("{}:{}:{}", p.point.label, p.runs, p.requests))
        .collect();
    let provenance = Provenance::capture(
        schema::PROFILE,
        seed,
        &format!("{scale:?}").to_lowercase(),
        &format!("profile {}", config.join(" ")),
    );
    let alloc = paba_telemetry::alloc::snapshot().map_or("null".to_string(), |a| a.to_json());
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{}\",\n", schema::PROFILE));
    s.push_str(&format!("  \"provenance\": {},\n", provenance.to_json()));
    s.push_str(&format!("  \"alloc\": {alloc},\n"));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    s.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"n\": {}, \"runs\": {}, \"requests\": {}, \
             \"max_load_mean\": {}, \"telemetry\": {}}}{}\n",
            p.point.label,
            p.point.side as u64 * p.point.side as u64,
            p.runs,
            p.requests,
            json_f64(p.max_load_mean),
            p.snapshot.to_json(),
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n");
    match baseline {
        None => s.push_str("  \"baseline\": null\n"),
        Some(b) => {
            s.push_str("  \"baseline\": {\n");
            s.push_str(&format!(
                "    \"tolerance\": {}, \"geo_mean_ratio\": {}, \"pass\": {},\n",
                json_f64(b.tolerance),
                json_f64(b.geo_mean_ratio),
                b.pass
            ));
            s.push_str("    \"labels\": [\n");
            for (i, l) in b.labels.iter().enumerate() {
                s.push_str(&format!(
                    "      {{\"label\": \"{}\", \"committed_speedup\": {}, \
                     \"measured_speedup\": {}, \"ratio\": {}}}{}\n",
                    l.label,
                    json_f64(l.committed_speedup),
                    json_f64(l.measured_speedup),
                    json_f64(l.ratio),
                    if i + 1 == b.labels.len() { "" } else { "," },
                ));
            }
            s.push_str("    ]\n  }\n");
        }
    }
    s.push('}');
    s.push('\n');
    s
}

/// Write the JSON report, creating parent directories as needed.
pub fn write_json(
    path: &Path,
    points: &[ProfilePoint],
    baseline: Option<&BaselineCheck>,
    seed: u64,
    scale: Scale,
) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, to_json(points, baseline, seed, scale))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_telemetry::SamplerPath;

    fn tiny_point(radius: Option<u32>, full: bool) -> ThroughputPoint {
        ThroughputPoint {
            label: "tiny".into(),
            side: 10,
            k: if full { 20 } else { 50 },
            m: if full { 20 } else { 3 },
            gamma: 0.0,
            full,
            radius,
        }
    }

    #[test]
    fn paths_sum_to_request_count() {
        for (radius, full) in [
            (Some(3), false),
            (None, false),
            (Some(3), true),
            (None, true),
        ] {
            let p = profile_point(&tiny_point(radius, full), 11, 3, 0, Some(2));
            assert_eq!(p.runs, 3);
            assert_eq!(p.requests, 300);
            assert_eq!(
                p.snapshot.total_requests(),
                p.requests,
                "radius={radius:?} full={full}: exactly one sampler path per request"
            );
        }
    }

    #[test]
    fn snapshot_totals_independent_of_thread_count() {
        let point = tiny_point(Some(3), false);
        let a = profile_point(&point, 5, 4, 200, Some(1));
        let b = profile_point(&point, 5, 4, 200, Some(4));
        assert_eq!(a.max_load_mean, b.max_load_mean);
        for path in SamplerPath::ALL {
            assert_eq!(
                a.snapshot.path_count(path),
                b.snapshot.path_count(path),
                "{} count drifted with thread count",
                path.label()
            );
        }
    }

    #[test]
    fn profile_json_is_well_formed() {
        let p = profile_point(&tiny_point(Some(2), false), 1, 2, 100, Some(2));
        let json = to_json(&[p], None, 1, Scale::Quick);
        let doc = parse(&json).expect("profile JSON parses");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(schema::PROFILE)
        );
        let prov = doc.get("provenance").expect("provenance block present");
        assert_eq!(
            prov.get("schema").and_then(Json::as_str),
            Some(schema::PROFILE),
            "provenance schema matches the artifact schema"
        );
        assert!(
            doc.get("alloc").is_some(),
            "alloc key present (null or object)"
        );
        let points = doc.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 1);
        let telemetry = points[0].get("telemetry").unwrap();
        let paths = telemetry.get("sampler_paths").unwrap();
        let sum: u64 = SamplerPath::ALL
            .iter()
            .map(|p| paths.get(p.label()).and_then(Json::as_u64).unwrap())
            .sum();
        assert_eq!(points[0].get("requests").and_then(Json::as_u64), Some(sum));
        assert!(doc.get("baseline").is_some());
    }

    #[test]
    fn baseline_check_missing_artifact_is_none() {
        let r = baseline_check(
            Path::new("/nonexistent/BENCH_throughput.json"),
            Scale::Quick,
            1,
            0.35,
        );
        assert!(matches!(r, Ok(None)));
    }

    #[test]
    fn baseline_check_compares_shared_labels() {
        // Committed artifact with one label from the Quick grid and one
        // foreign label that must be ignored.
        let committed = r#"{
          "schema": "paba-throughput/1", "seed": 1, "scale": "Default",
          "measurements": [
            {"label": "sparse-uniform-r2", "sampler": "exact-scan", "speedup_vs_exact": null},
            {"label": "sparse-uniform-r2", "sampler": "hybrid", "speedup_vs_exact": 1.0},
            {"label": "not-in-grid", "sampler": "hybrid", "speedup_vs_exact": 5.0}
          ]
        }"#;
        let dir = std::env::temp_dir().join("paba-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, committed).unwrap();
        let check = baseline_check(&path, Scale::Quick, 7, 0.0)
            .expect("check runs")
            .expect("artifact present");
        assert_eq!(check.labels.len(), 1);
        assert_eq!(check.labels[0].label, "sparse-uniform-r2");
        assert!(check.labels[0].measured_speedup > 0.0);
        assert!(check.geo_mean_ratio > 0.0);
        assert!(check.pass, "tolerance 0 always passes");
    }

    #[test]
    fn baseline_check_rejects_wrong_schema() {
        let dir = std::env::temp_dir().join("paba-profile-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wrong-schema.json");
        std::fs::write(&path, r#"{"schema": "other/9"}"#).unwrap();
        assert!(baseline_check(&path, Scale::Quick, 1, 0.35).is_err());
    }

    #[test]
    fn table_has_one_row_per_point() {
        let pts = vec![
            profile_point(&tiny_point(Some(2), false), 1, 1, 50, Some(1)),
            profile_point(&tiny_point(None, true), 1, 1, 50, Some(1)),
        ];
        let md = to_table(&pts).to_markdown();
        assert_eq!(md.matches("tiny").count(), 2);
    }
}
