//! `paba report`: one markdown document over every committed artifact.
//!
//! The repo accumulates one `BENCH_*.json` per harness (throughput grid,
//! profile breakdown, repro gates) and their schemas are versioned, so
//! the perf trajectory ROADMAP item 3 tracks is machine-readable — but
//! scattered. This module folds every artifact in a directory into a
//! single report: per-regime throughput/speedup tables, the repro gate
//! summary, the profile sampler-path breakdown, and — the part a human
//! cannot eyeball — **cross-artifact provenance consistency checks**:
//!
//! * hard failures (exit-nonzero): unparseable artifact, unknown schema
//!   id, a provenance block whose embedded schema or seed contradicts the
//!   artifact carrying it;
//! * warnings (reported, non-fatal): missing provenance (artifacts
//!   written before the provenance layer), debug-build measurements,
//!   scratch artifacts (`*_fresh*`) that should not be committed, and
//!   seed disagreement across artifacts.

use std::path::Path;

use paba_repro::json::{parse, Json};
use paba_util::{schema, Provenance, Table};

/// One parsed artifact plus everything the checks derived from it.
#[derive(Debug)]
pub struct ReportArtifact {
    /// File name (not path), e.g. `BENCH_throughput.json`.
    pub name: String,
    /// Top-level `"schema"` value (empty when absent).
    pub schema: String,
    /// Parsed provenance block, when present and well-formed.
    pub provenance: Option<Provenance>,
    /// The parsed document.
    pub doc: Json,
}

/// The assembled report.
#[derive(Debug, Default)]
pub struct Report {
    /// Rendered markdown document.
    pub markdown: String,
    /// Artifacts successfully parsed into the report.
    pub artifacts: usize,
    /// Non-fatal consistency findings.
    pub warnings: Vec<String>,
    /// Fatal consistency findings (callers should exit nonzero).
    pub failures: Vec<String>,
}

/// Parse a `"provenance"` block back into [`Provenance`].
///
/// The inverse of [`Provenance::to_json`]; every field is required, so a
/// drifted writer shows up as `Err`, not as a silently partial struct.
pub fn parse_provenance(v: &Json) -> Result<Provenance, String> {
    let s = |key: &str| {
        v.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("provenance missing string '{key}'"))
    };
    let n = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("provenance missing integer '{key}'"))
    };
    Ok(Provenance {
        schema: s("schema")?,
        writer: s("writer")?,
        seed: n("seed")?,
        scale: s("scale")?,
        config_hash: s("config_hash")?,
        threads: n("threads")?,
        build_profile: s("build_profile")?,
        unix_time_s: n("unix_time_s")?,
    })
}

/// List `BENCH_*.json` files in `dir` as `(file_name, contents)`, sorted
/// by name so the report (and its checks) are deterministic.
pub fn collect_dir(dir: &Path) -> Result<Vec<(String, String)>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") && entry.path().is_file() {
            let contents = std::fs::read_to_string(entry.path())
                .map_err(|e| format!("reading {name}: {e}"))?;
            files.push((name, contents));
        }
    }
    files.sort();
    Ok(files)
}

fn fmt_f64(v: Option<f64>, digits: usize) -> String {
    match v {
        Some(x) if x.is_finite() => format!("{x:.digits$}"),
        _ => "-".into(),
    }
}

fn throughput_section(out: &mut String, doc: &Json) {
    let Some(ms) = doc.get("measurements").and_then(Json::as_arr) else {
        return;
    };
    let mut t = Table::new([
        "regime",
        "n",
        "req/s (hybrid)",
        "speedup vs exact",
        "max load",
    ]);
    for m in ms {
        if m.get("sampler").and_then(Json::as_str) != Some("hybrid") {
            continue;
        }
        t.push_row([
            m.get("label").and_then(Json::as_str).unwrap_or("?").into(),
            m.get("n")
                .and_then(Json::as_u64)
                .map_or("-".into(), |n| n.to_string()),
            fmt_f64(m.get("rps").and_then(Json::as_f64), 0),
            m.get("speedup_vs_exact")
                .and_then(Json::as_f64)
                .filter(|s| s.is_finite())
                .map_or("-".into(), |s| format!("{s:.2}x")),
            m.get("max_load")
                .and_then(Json::as_u64)
                .map_or("-".into(), |l| l.to_string()),
        ]);
    }
    out.push_str(&t.to_markdown());
    out.push('\n');
}

fn profile_section(out: &mut String, doc: &Json) {
    if let Some(points) = doc.get("points").and_then(Json::as_arr) {
        let mut t = Table::new([
            "regime",
            "requests",
            "dominant path",
            "share",
            "budget-exhausted",
        ]);
        for p in points {
            let requests = p.get("requests").and_then(Json::as_f64).unwrap_or(0.0);
            let mut dominant = ("-".to_string(), 0.0f64);
            if let Some(Json::Obj(paths)) = p.get("telemetry").and_then(|t| t.get("sampler_paths"))
            {
                for (path, count) in paths {
                    let c = count.as_f64().unwrap_or(0.0);
                    if c > dominant.1 {
                        dominant = (path.clone(), c);
                    }
                }
            }
            let share = if requests > 0.0 {
                format!("{:.1}%", dominant.1 * 100.0 / requests)
            } else {
                "-".into()
            };
            let budget = p
                .get("telemetry")
                .and_then(|t| t.get("counters"))
                .and_then(|c| c.get("rejection-budget-exhausted"))
                .and_then(Json::as_u64);
            t.push_row([
                p.get("label").and_then(Json::as_str).unwrap_or("?").into(),
                format!("{requests:.0}"),
                dominant.0,
                share,
                budget.map_or("-".into(), |b| b.to_string()),
            ]);
        }
        out.push_str(&t.to_markdown());
        out.push('\n');
    }
    match doc.get("baseline") {
        Some(Json::Null) | None => {}
        Some(b) => {
            let geo = b.get("geo_mean_ratio").and_then(Json::as_f64);
            let pass = b.get("pass").and_then(Json::as_bool).unwrap_or(false);
            out.push_str(&format!(
                "\nNullRecorder baseline gate: geo-mean ratio {} (tolerance {}) — **{}**\n",
                fmt_f64(geo, 3),
                fmt_f64(b.get("tolerance").and_then(Json::as_f64), 2),
                if pass { "pass" } else { "FAIL" },
            ));
        }
    }
    match doc.get("alloc") {
        Some(Json::Null) | None => {}
        Some(a) => out.push_str(&format!(
            "\nAllocator (alloc-track build): {} allocations, peak {} bytes live\n",
            a.get("allocations")
                .and_then(Json::as_u64)
                .map_or("-".into(), |v| v.to_string()),
            a.get("peak_bytes")
                .and_then(Json::as_u64)
                .map_or("-".into(), |v| v.to_string()),
        )),
    }
}

fn repro_section(out: &mut String, doc: &Json) {
    let gates = doc.get("gates").and_then(Json::as_arr).unwrap_or(&[]);
    let passed = gates
        .iter()
        .filter(|g| g.get("passed").and_then(Json::as_bool) == Some(true))
        .count();
    let metrics = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    out.push_str(&format!(
        "Theorem gates: **{passed}/{} passed** · {metrics} metrics recorded\n",
        gates.len()
    ));
    let failing: Vec<&str> = gates
        .iter()
        .filter(|g| g.get("passed").and_then(Json::as_bool) != Some(true))
        .filter_map(|g| g.get("id").and_then(Json::as_str))
        .collect();
    if !failing.is_empty() {
        out.push_str("\nFailing gates:\n");
        for id in failing {
            out.push_str(&format!("- `{id}`\n"));
        }
    }
}

fn section_for(out: &mut String, a: &ReportArtifact) {
    out.push_str(&format!("\n## {} (`{}`)\n\n", a.name, a.schema));
    match a.schema.as_str() {
        s if s == schema::THROUGHPUT => throughput_section(out, &a.doc),
        s if s == schema::PROFILE => profile_section(out, &a.doc),
        s if s == schema::REPRO => repro_section(out, &a.doc),
        // Churn and queueing artifacts share the gates+metrics layout of
        // the repro suite; only the schema id (and experiment set) differ.
        s if s == schema::CHURN => repro_section(out, &a.doc),
        s if s == schema::QUEUEING => repro_section(out, &a.doc),
        _ => out.push_str("(no renderer for this schema; see raw artifact)\n"),
    }
}

/// Run the consistency checks over the parsed artifacts, appending to
/// `warnings` / `failures`.
fn check_consistency(
    artifacts: &[ReportArtifact],
    warnings: &mut Vec<String>,
    failures: &mut Vec<String>,
) {
    let mut seeds: Vec<(String, u64)> = Vec::new();
    for a in artifacts {
        if !schema::ALL.contains(&a.schema.as_str()) {
            failures.push(format!(
                "{}: unknown schema id {:?} (known: {:?})",
                a.name,
                a.schema,
                schema::ALL
            ));
        }
        if a.name.contains("_fresh") || a.name.contains("_scratch") {
            warnings.push(format!(
                "{}: looks like a regenerated scratch artifact — it should be gitignored, \
                 not committed",
                a.name
            ));
        }
        let top_seed = a.doc.get("seed").and_then(Json::as_u64);
        if let Some(seed) = top_seed {
            seeds.push((a.name.clone(), seed));
        }
        match &a.provenance {
            None => warnings.push(format!(
                "{}: no provenance block (written before the provenance layer?)",
                a.name
            )),
            Some(p) => {
                if p.schema != a.schema {
                    failures.push(format!(
                        "{}: provenance claims schema {:?} but the artifact is {:?}",
                        a.name, p.schema, a.schema
                    ));
                }
                if let Some(seed) = top_seed {
                    if p.seed != seed {
                        failures.push(format!(
                            "{}: provenance seed {} contradicts artifact seed {seed}",
                            a.name, p.seed
                        ));
                    }
                }
                if p.build_profile == "debug" {
                    warnings.push(format!(
                        "{}: measured by a debug build — timings are not comparable",
                        a.name
                    ));
                }
            }
        }
    }
    let mut distinct: Vec<u64> = seeds.iter().map(|&(_, s)| s).collect();
    distinct.sort_unstable();
    distinct.dedup();
    if distinct.len() > 1 {
        warnings.push(format!(
            "artifacts use {} different master seeds ({}): cross-artifact comparisons span runs",
            distinct.len(),
            seeds
                .iter()
                .map(|(n, s)| format!("{n}={s}"))
                .collect::<Vec<_>>()
                .join(", "),
        ));
    }
}

/// Build the report from `(file_name, contents)` pairs (see
/// [`collect_dir`]).
pub fn build_report(files: &[(String, String)]) -> Report {
    let mut warnings = Vec::new();
    let mut failures = Vec::new();
    let mut artifacts = Vec::new();
    for (name, contents) in files {
        let doc = match parse(contents) {
            Ok(doc) => doc,
            Err(e) => {
                failures.push(format!("{name}: unparseable JSON: {e}"));
                continue;
            }
        };
        let doc_schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .unwrap_or("")
            .to_string();
        let provenance = match doc.get("provenance") {
            None | Some(Json::Null) => None,
            Some(p) => match parse_provenance(p) {
                Ok(p) => Some(p),
                Err(e) => {
                    failures.push(format!("{name}: malformed provenance block: {e}"));
                    None
                }
            },
        };
        artifacts.push(ReportArtifact {
            name: name.clone(),
            schema: doc_schema,
            provenance,
            doc,
        });
    }
    check_consistency(&artifacts, &mut warnings, &mut failures);

    let mut md = String::from("# paba benchmark report\n\n");
    if artifacts.is_empty() {
        md.push_str("No `BENCH_*.json` artifacts found.\n");
    } else {
        let mut inv = Table::new([
            "artifact",
            "schema",
            "seed",
            "scale",
            "threads",
            "build",
            "written (unix)",
        ]);
        for a in &artifacts {
            let p = a.provenance.as_ref();
            let seed = a
                .doc
                .get("seed")
                .and_then(Json::as_u64)
                .map_or("-".into(), |s| s.to_string());
            inv.push_row([
                a.name.clone(),
                a.schema.clone(),
                seed,
                p.map_or("-".into(), |p| p.scale.clone()),
                p.map_or("-".into(), |p| p.threads.to_string()),
                p.map_or("-".into(), |p| p.build_profile.clone()),
                p.map_or("-".into(), |p| p.unix_time_s.to_string()),
            ]);
        }
        md.push_str(&inv.to_markdown());
        for a in &artifacts {
            section_for(&mut md, a);
        }
    }

    md.push_str("\n## Provenance consistency\n\n");
    if warnings.is_empty() && failures.is_empty() {
        md.push_str("- ok: all artifacts carry consistent provenance\n");
    }
    for w in &warnings {
        md.push_str(&format!("- warning: {w}\n"));
    }
    for f in &failures {
        md.push_str(&format!("- FAIL: {f}\n"));
    }

    Report {
        markdown: md,
        artifacts: artifacts.len(),
        warnings,
        failures,
    }
}

/// [`collect_dir`] + [`build_report`] in one call.
pub fn report_dir(dir: &Path) -> Result<Report, String> {
    Ok(build_report(&collect_dir(dir)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_point, to_json as profile_json};
    use crate::throughput::{measure_point, to_json as throughput_json, ThroughputPoint};
    use paba_repro::{Artifact, Gate, Metric, SCHEMA};
    use paba_util::envcfg::Scale;

    fn tiny_throughput() -> String {
        let point = ThroughputPoint {
            label: "tiny".into(),
            side: 8,
            k: 10,
            m: 2,
            gamma: 0.0,
            full: false,
            radius: Some(2),
        };
        throughput_json(&measure_point(&point, 3, 200, 1), 3, Scale::Quick)
    }

    fn tiny_profile() -> String {
        let point = ThroughputPoint {
            label: "tiny".into(),
            side: 8,
            k: 10,
            m: 2,
            gamma: 0.0,
            full: false,
            radius: Some(2),
        };
        profile_json(
            &[profile_point(&point, 3, 1, 100, Some(1))],
            None,
            3,
            Scale::Quick,
        )
    }

    fn tiny_repro() -> String {
        Artifact {
            schema: SCHEMA.into(),
            seed: 3,
            scale: "quick".into(),
            gates: vec![Gate {
                id: "g/a".into(),
                passed: true,
                statistic: 9.0,
                threshold: 4.0,
                p_false_pass: 3.4e-4,
                detail: "d".into(),
            }],
            metrics: vec![Metric {
                id: "m/a".into(),
                mean: 1.0,
                std_err: 0.1,
                runs: 8,
            }],
        }
        .to_json()
    }

    fn tiny_churn() -> String {
        Artifact {
            schema: schema::CHURN.into(),
            seed: 3,
            scale: "quick".into(),
            gates: vec![Gate {
                id: "churn/repair-on/max-load-noninferior".into(),
                passed: true,
                statistic: 1.2,
                threshold: -2.0,
                p_false_pass: f64::NAN,
                detail: "d".into(),
            }],
            metrics: vec![Metric {
                id: "churn/static/max_load".into(),
                mean: 6.5,
                std_err: 0.2,
                runs: 8,
            }],
        }
        .to_json()
    }

    fn tiny_queueing() -> String {
        Artifact {
            schema: schema::QUEUEING.into(),
            seed: 3,
            scale: "quick".into(),
            gates: vec![Gate {
                id: "queueing/pow-of-d/p99-collapse".into(),
                passed: true,
                statistic: 8.4,
                threshold: 3.0,
                p_false_pass: f64::NAN,
                detail: "d".into(),
            }],
            metrics: vec![Metric {
                id: "queueing/two_choice/p99".into(),
                mean: 4.2,
                std_err: 0.3,
                runs: 8,
            }],
        }
        .to_json()
    }

    #[test]
    fn provenance_round_trip() {
        let p = Provenance::capture(schema::THROUGHPUT, 99, "default", "cfg x=1 y=2");
        let doc = parse(&p.to_json()).expect("provenance JSON parses");
        let back = parse_provenance(&doc).expect("all fields present");
        assert_eq!(back, p);
    }

    #[test]
    fn report_over_all_writers_is_clean() {
        let files = vec![
            ("BENCH_churn.json".to_string(), tiny_churn()),
            ("BENCH_profile.json".to_string(), tiny_profile()),
            ("BENCH_queueing.json".to_string(), tiny_queueing()),
            ("BENCH_repro.json".to_string(), tiny_repro()),
            ("BENCH_throughput.json".to_string(), tiny_throughput()),
        ];
        let r = build_report(&files);
        assert_eq!(r.artifacts, 5);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        // Under `cargo test` the writers stamp build_profile = debug, which
        // is a legitimate warning; nothing else should fire.
        assert!(
            r.warnings.iter().all(|w| w.contains("debug build")),
            "{:?}",
            r.warnings
        );
        assert!(r.markdown.contains("# paba benchmark report"));
        assert!(r.markdown.contains("paba-throughput/1"));
        assert!(r.markdown.contains("paba-churn/1"));
        assert!(r.markdown.contains("paba-queueing/1"));
        assert!(!r.markdown.contains("no renderer for this schema"));
        assert!(r.markdown.contains("Theorem gates: **1/1 passed**"));
        assert!(r.markdown.contains("speedup vs exact"));
        assert!(r.markdown.contains("dominant path"));
        assert!(!r.markdown.contains("- FAIL:"));
    }

    #[test]
    fn schema_registry_agrees_with_writers() {
        // The report reader dispatches on paba_util::schema; every writer
        // must emit exactly those ids.
        for (json, want) in [
            (tiny_throughput(), schema::THROUGHPUT),
            (tiny_profile(), schema::PROFILE),
            (tiny_repro(), schema::REPRO),
            (tiny_churn(), schema::CHURN),
            (tiny_queueing(), schema::QUEUEING),
        ] {
            let doc = parse(&json).unwrap();
            assert_eq!(doc.get("schema").and_then(Json::as_str), Some(want));
            let prov = doc
                .get("provenance")
                .expect("every writer stamps provenance");
            assert_eq!(prov.get("schema").and_then(Json::as_str), Some(want));
        }
    }

    #[test]
    fn provenance_schema_mismatch_is_a_failure() {
        let doctored = tiny_repro().replacen(
            "\"provenance\": {\"schema\": \"paba-repro/1\"",
            "\"provenance\": {\"schema\": \"paba-profile/1\"",
            1,
        );
        let r = build_report(&[("BENCH_repro.json".into(), doctored)]);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("provenance claims schema"));
        assert!(r.markdown.contains("- FAIL:"));
    }

    #[test]
    fn provenance_seed_mismatch_is_a_failure() {
        let doctored = tiny_repro().replacen("\"seed\": 3, \"scale\"", "\"seed\": 4, \"scale\"", 1);
        let r = build_report(&[("BENCH_repro.json".into(), doctored)]);
        assert!(
            r.failures
                .iter()
                .any(|f| f.contains("contradicts artifact seed")),
            "{:?}",
            r.failures
        );
    }

    #[test]
    fn missing_provenance_and_fresh_name_warn_but_do_not_fail() {
        let legacy = r#"{"schema": "paba-repro/1", "seed": 1, "gates": [], "metrics": []}"#;
        let r = build_report(&[("BENCH_repro_fresh.json".into(), legacy.to_string())]);
        assert!(r.failures.is_empty(), "{:?}", r.failures);
        assert_eq!(r.warnings.len(), 2, "{:?}", r.warnings);
        assert!(r.warnings.iter().any(|w| w.contains("no provenance")));
        assert!(r.warnings.iter().any(|w| w.contains("scratch artifact")));
    }

    #[test]
    fn unknown_schema_and_bad_json_are_failures() {
        let r = build_report(&[
            ("BENCH_alien.json".into(), r#"{"schema": "alien/7"}"#.into()),
            ("BENCH_broken.json".into(), "{not json".into()),
        ]);
        assert_eq!(r.failures.len(), 2, "{:?}", r.failures);
    }

    #[test]
    fn seed_disagreement_across_artifacts_warns() {
        let a = tiny_repro();
        let b = tiny_repro()
            .replace("\"seed\": 3,", "\"seed\": 5,")
            .replace("\"seed\": 3, \"scale\"", "\"seed\": 5, \"scale\"");
        let r = build_report(&[("BENCH_a.json".into(), a), ("BENCH_b.json".into(), b)]);
        assert!(
            r.warnings
                .iter()
                .any(|w| w.contains("different master seeds")),
            "{:?}",
            r.warnings
        );
    }

    #[test]
    fn collect_dir_picks_bench_json_only() {
        let dir = std::env::temp_dir().join("paba-report-collect-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_b.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_a.json"), "{}").unwrap();
        std::fs::write(dir.join("other.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_not_json.txt"), "x").unwrap();
        let files = collect_dir(&dir).unwrap();
        let names: Vec<&str> = files.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["BENCH_a.json", "BENCH_b.json"]);
    }
}
