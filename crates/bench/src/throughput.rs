//! Requests/sec throughput harness for the assignment hot path.
//!
//! Where the figure benches measure the *paper's* quantities (max load,
//! communication cost), this harness measures the *simulator's* speed:
//! wall-clock requests per second of the full assign loop (request
//! sampling + candidate sampling + load update) across a grid of regimes —
//! full vs sparse placement, finite and infinite radii, uniform and Zipf
//! popularity, up to `n ≈ 10⁵` nodes. Every point is measured under both
//! [`SamplerKind::Hybrid`] (the adaptive sampler) and
//! [`SamplerKind::ExactScan`] (the pre-sampler per-request pool
//! materialization), so the speedup is tracked per PR.
//!
//! Results are printed as a table and written to `BENCH_throughput.json`
//! (schema below) so CI can archive the trajectory:
//!
//! ```json
//! {
//!   "schema": "paba-throughput/1",
//!   "seed": 20170529,
//!   "scale": "Quick",
//!   "measurements": [
//!     {
//!       "label": "sparse-zipf1.2-r5", "n": 99856, "side": 316,
//!       "k": 10000, "m": 20, "gamma": 1.2, "placement": "proportional",
//!       "radius": 5, "sampler": "hybrid", "requests": 99856,
//!       "elapsed_s": 0.04, "rps": 2500000.0, "max_load": 5,
//!       "fallback_fraction": 0.28, "speedup_vs_exact": 4.5
//!     }
//!   ]
//! }
//! ```
//!
//! `radius` is `null` for `r = ∞`; `speedup_vs_exact` appears only on
//! `"hybrid"` rows (hybrid rps ÷ exact-scan rps at the same point).

use paba_core::{simulate, CacheNetwork, PlacementPolicy, ProximityChoice, SamplerKind};
use paba_mcrunner::Progress;
use paba_popularity::Popularity;
use paba_util::envcfg::Scale;
use paba_util::{schema, Provenance, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

/// One regime of the throughput grid.
#[derive(Clone, Debug)]
pub struct ThroughputPoint {
    /// Stable point label, e.g. `sparse-zipf1.2-r5`.
    pub label: String,
    /// Torus side (`n = side²`).
    pub side: u32,
    /// Library size `K`.
    pub k: u32,
    /// Cache size `M` (ignored under full placement).
    pub m: u32,
    /// Zipf exponent (`0` = uniform popularity).
    pub gamma: f64,
    /// Full-library placement instead of the sparse proportional one.
    pub full: bool,
    /// Proximity radius (`None` = `r = ∞`).
    pub radius: Option<u32>,
}

impl ThroughputPoint {
    /// Popularity profile implied by `gamma`.
    pub fn popularity(&self) -> Popularity {
        if self.gamma == 0.0 {
            Popularity::Uniform
        } else {
            Popularity::zipf(self.gamma)
        }
    }

    /// Placement policy implied by `full`.
    pub fn policy(&self) -> PlacementPolicy {
        if self.full {
            PlacementPolicy::FullLibrary
        } else {
            PlacementPolicy::ProportionalWithReplacement
        }
    }

    fn placement_name(&self) -> &'static str {
        if self.full {
            "full"
        } else {
            "proportional"
        }
    }
}

/// One timed run of one point under one sampler.
#[derive(Clone, Debug)]
pub struct ThroughputMeasurement {
    /// The regime measured.
    pub point: ThroughputPoint,
    /// Sampler label (`hybrid` / `exact-scan`).
    pub sampler: &'static str,
    /// Requests timed.
    pub requests: u64,
    /// Wall-clock seconds for the assign loop.
    pub elapsed_s: f64,
    /// Requests per second.
    pub rps: f64,
    /// Maximum load of the run (sanity echo, not a benchmark target).
    pub max_load: u32,
    /// Fraction of requests on any fallback path.
    pub fallback_fraction: f64,
    /// `hybrid` rows only: hybrid rps ÷ exact-scan rps at this point.
    pub speedup_vs_exact: Option<f64>,
}

/// The regime grid at a given scale: full vs sparse placement,
/// `r ∈ {2, 5, 10, ∞}`, uniform vs Zipf 0.8 / 1.2.
pub fn regime_grid(scale: Scale) -> Vec<ThroughputPoint> {
    let radii: &[Option<u32>] = &[Some(2), Some(5), Some(10), None];
    let gammas: &[f64] = &[0.0, 0.8, 1.2];
    // (side, K, M) per scale; the acceptance regime (n ≈ 10⁵, K = 10⁴,
    // M = 20) is the Default/Full sparse tier.
    let (sparse, full_side, full_k) = match scale {
        Scale::Quick => ((50u32, 1_000u32, 10u32), 50u32, 50u32),
        Scale::Default | Scale::Full => ((316, 10_000, 20), 100, 100),
    };
    let mut grid = Vec::new();
    let (side, k, m) = sparse;
    for &gamma in gammas {
        for &radius in radii {
            let pop = if gamma == 0.0 {
                "uniform".to_string()
            } else {
                format!("zipf{gamma}")
            };
            let r = radius.map_or("inf".to_string(), |r| r.to_string());
            grid.push(ThroughputPoint {
                label: format!("sparse-{pop}-r{r}"),
                side,
                k,
                m,
                gamma,
                full: false,
                radius,
            });
        }
    }
    for &radius in radii {
        let r = radius.map_or("inf".to_string(), |r| r.to_string());
        grid.push(ThroughputPoint {
            label: format!("full-uniform-r{r}"),
            side: full_side,
            k: full_k,
            m: full_k,
            gamma: 0.0,
            full: true,
            radius,
        });
    }
    grid
}

/// Measure one point under both samplers (exact-scan first, then hybrid
/// with its speedup attached). The network is built once per point —
/// placement generation is *not* part of the timed loop — and each
/// sampler is timed over `requests` assignments, best of `repeats`.
pub fn measure_point(
    point: &ThroughputPoint,
    seed: u64,
    requests: u64,
    repeats: u32,
) -> Vec<ThroughputMeasurement> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let net: CacheNetwork<paba_topology::Torus> = CacheNetwork::builder()
        .torus_side(point.side)
        .library(point.k, point.popularity())
        .cache_size(point.m)
        .placement_policy(point.policy())
        .build(&mut rng);
    let mut out = Vec::with_capacity(2);
    let mut exact_rps = None;
    for kind in [SamplerKind::ExactScan, SamplerKind::Hybrid] {
        let mut best = f64::INFINITY;
        let mut max_load = 0u32;
        let mut fallback = 0.0f64;
        for rep in 0..repeats.max(1) {
            let mut strat = ProximityChoice::two_choice(point.radius).sampler(kind);
            let mut run_rng = SmallRng::seed_from_u64(seed ^ (rep as u64 + 1));
            let t0 = Instant::now();
            let report = simulate(&net, &mut strat, requests, &mut run_rng);
            let dt = t0.elapsed().as_secs_f64();
            if dt < best {
                best = dt;
                max_load = report.max_load();
                fallback = report.fallback_fraction();
            }
        }
        let rps = requests as f64 / best;
        let speedup_vs_exact = match kind {
            SamplerKind::Hybrid => exact_rps.map(|e: f64| rps / e),
            SamplerKind::ExactScan => {
                exact_rps = Some(rps);
                None
            }
        };
        out.push(ThroughputMeasurement {
            point: point.clone(),
            sampler: kind.label(),
            requests,
            elapsed_s: best,
            rps,
            max_load,
            fallback_fraction: fallback,
            speedup_vs_exact,
        });
    }
    out
}

/// Run the whole grid. `requests = 0` defaults to `n` per point (the
/// paper's request count).
pub fn run_grid(scale: Scale, seed: u64, requests: u64) -> Vec<ThroughputMeasurement> {
    run_grid_with_progress(scale, seed, requests, None)
}

/// [`run_grid`] with an optional [`Progress`] tracker ticked once per
/// grid point — the `--serve-metrics` path reports grid progress live
/// (the timed loops themselves stay uninstrumented: attaching a recorder
/// would perturb exactly what this harness measures).
pub fn run_grid_with_progress(
    scale: Scale,
    seed: u64,
    requests: u64,
    progress: Option<&Progress>,
) -> Vec<ThroughputMeasurement> {
    let repeats = match scale {
        Scale::Quick => 1,
        Scale::Default => 2,
        Scale::Full => 4,
    };
    let mut all = Vec::new();
    for point in regime_grid(scale) {
        let n = point.side as u64 * point.side as u64;
        let reqs = if requests == 0 { n } else { requests };
        all.extend(measure_point(&point, seed, reqs, repeats));
        if let Some(p) = progress {
            p.tick();
        }
    }
    all
}

/// Render the measurements as the standard bench table.
pub fn to_table(ms: &[ThroughputMeasurement]) -> Table {
    let mut t = Table::new([
        "point", "n", "sampler", "requests", "req/s", "speedup", "max load", "fallback",
    ]);
    for m in ms {
        t.push_row([
            m.point.label.clone(),
            format!("{}", m.point.side as u64 * m.point.side as u64),
            m.sampler.to_string(),
            format!("{}", m.requests),
            format!("{:.0}", m.rps),
            m.speedup_vs_exact
                .map_or("-".into(), |s| format!("{s:.2}x")),
            format!("{}", m.max_load),
            format!("{:.4}", m.fallback_fraction),
        ]);
    }
    t
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Serialize measurements to the `paba-throughput/1` JSON schema.
/// Hand-rolled: every value is numeric, boolean, or an ASCII label the
/// harness itself generated, so no escaping is needed.
pub fn to_json(ms: &[ThroughputMeasurement], seed: u64, scale: Scale) -> String {
    // The grid is fully determined by (scale, per-point request counts);
    // hash that so provenance pins the exact configuration measured.
    let config: Vec<String> = ms
        .iter()
        .map(|m| format!("{}:{}:{}", m.point.label, m.sampler, m.requests))
        .collect();
    let provenance = Provenance::capture(
        schema::THROUGHPUT,
        seed,
        &format!("{scale:?}").to_lowercase(),
        &format!("throughput {}", config.join(" ")),
    );
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{}\",\n", schema::THROUGHPUT));
    s.push_str(&format!("  \"provenance\": {},\n", provenance.to_json()));
    s.push_str(&format!("  \"seed\": {seed},\n"));
    s.push_str(&format!("  \"scale\": \"{scale:?}\",\n"));
    s.push_str("  \"measurements\": [\n");
    for (i, m) in ms.iter().enumerate() {
        let radius = m.point.radius.map_or("null".to_string(), |r| r.to_string());
        let speedup = m.speedup_vs_exact.map_or("null".to_string(), json_f64);
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"n\": {}, \"side\": {}, \"k\": {}, \"m\": {}, \
             \"gamma\": {}, \"placement\": \"{}\", \"radius\": {}, \"sampler\": \"{}\", \
             \"requests\": {}, \"elapsed_s\": {}, \"rps\": {}, \"max_load\": {}, \
             \"fallback_fraction\": {}, \"speedup_vs_exact\": {}}}{}\n",
            m.point.label,
            m.point.side as u64 * m.point.side as u64,
            m.point.side,
            m.point.k,
            m.point.m,
            json_f64(m.point.gamma),
            m.point.placement_name(),
            radius,
            m.sampler,
            m.requests,
            json_f64(m.elapsed_s),
            json_f64(m.rps),
            m.max_load,
            json_f64(m.fallback_fraction),
            speedup,
            if i + 1 == ms.len() { "" } else { "," },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Write the JSON report, creating parent directories as needed.
pub fn write_json(
    path: &std::path::Path,
    ms: &[ThroughputMeasurement],
    seed: u64,
    scale: Scale,
) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, to_json(ms, seed, scale))
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_shapes() {
        let grid = regime_grid(Scale::Quick);
        assert_eq!(grid.len(), 3 * 4 + 4); // 3 popularities × 4 radii + full
        assert!(grid.iter().any(|p| p.full));
        assert!(grid.iter().any(|p| p.radius.is_none()));
        // Labels are unique.
        let mut labels: Vec<&str> = grid.iter().map(|p| p.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), grid.len());
    }

    #[test]
    fn default_grid_hits_the_acceptance_regime() {
        let grid = regime_grid(Scale::Default);
        for r in [5u32, 10] {
            assert!(
                grid.iter().any(|p| !p.full
                    && p.side == 316
                    && p.k == 10_000
                    && p.m == 20
                    && p.gamma == 1.2
                    && p.radius == Some(r)),
                "missing sparse zipf-1.2 r={r} point"
            );
        }
    }

    #[test]
    fn measure_point_produces_both_samplers_and_speedup() {
        let point = ThroughputPoint {
            label: "test".into(),
            side: 12,
            k: 40,
            m: 3,
            gamma: 1.2,
            full: false,
            radius: Some(3),
        };
        let ms = measure_point(&point, 7, 2_000, 1);
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].sampler, "exact-scan");
        assert_eq!(ms[1].sampler, "hybrid");
        assert!(ms.iter().all(|m| m.rps > 0.0 && m.elapsed_s > 0.0));
        assert!(ms[0].speedup_vs_exact.is_none());
        let s = ms[1].speedup_vs_exact.expect("hybrid row carries speedup");
        assert!(s > 0.0);
    }

    #[test]
    fn json_is_well_formed() {
        let point = ThroughputPoint {
            label: "test".into(),
            side: 8,
            k: 10,
            m: 2,
            gamma: 0.0,
            full: false,
            radius: None,
        };
        let ms = measure_point(&point, 1, 500, 1);
        let json = to_json(&ms, 1, Scale::Quick);
        assert!(json.contains(&format!("\"schema\": \"{}\"", schema::THROUGHPUT)));
        assert!(json.contains("\"provenance\": {\"schema\": \"paba-throughput/1\""));
        assert!(json.contains("\"radius\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }
}
