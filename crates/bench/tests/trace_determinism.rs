//! End-to-end trace determinism and sampler-distribution checks.
//!
//! Two properties the tracing layer promises:
//!
//! 1. a *real* traced simulation (network build, Strategy II assignment,
//!    load series) produces bit-identical event streams and time series
//!    no matter how many mcrunner threads collect it;
//! 2. reservoir sampling retains request indices uniformly — checked with
//!    per-bucket z-scores and a χ²-style aggregate built from
//!    [`paba_theory::bounds::binomial_sigma`].

use paba_core::{
    simulate_source_profiled, CacheNetwork, PlacementPolicy, ProximityChoice, UncachedPolicy,
};
use paba_mcrunner::run_parallel_traced;
use paba_popularity::Popularity;
use paba_telemetry::{Recorder, Sampling, TraceConfig, TraceRecorder, TraceReport};
use paba_theory::bounds::binomial_sigma;
use paba_topology::Torus;
use paba_workload::WorkloadSpec;
use rand::rngs::SmallRng;

const SIDE: u32 = 8; // 64 nodes → 64 requests per run
const RUNS: usize = 6;

/// One full traced run: fresh placement, Strategy II (d=2, r=3), IID
/// workload, recorder threaded through both the strategy and the loop.
fn sim_run(rec: &TraceRecorder, rng: &mut SmallRng) -> (u32, f64) {
    let net: CacheNetwork<Torus> = CacheNetwork::builder()
        .torus_side(SIDE)
        .library(24, Popularity::Uniform)
        .cache_size(3)
        .placement_policy(PlacementPolicy::ProportionalWithReplacement)
        .build(rng);
    let mut s = ProximityChoice::with_choices(Some(3), 2).with_recorder(rec);
    let mut source = WorkloadSpec::Iid
        .build(&net, UncachedPolicy::ResampleFile)
        .expect("IID workload fits any network");
    let report = simulate_source_profiled(&net, &mut s, &mut source, net.n() as u64, rng, &rec);
    (report.max_load(), report.comm_cost())
}

fn traced(threads: usize, sampling: Sampling) -> (Vec<(u32, f64)>, TraceReport) {
    let cfg = TraceConfig {
        sampling,
        stride: 16,
        max_events: 512,
        seed: 7,
    };
    run_parallel_traced(RUNS, 0xA5, Some(threads), None, cfg, |rec, _i, rng| {
        sim_run(rec, rng)
    })
}

#[test]
fn real_simulation_trace_identical_across_thread_counts() {
    for sampling in [Sampling::OneIn(3), Sampling::Reservoir(16)] {
        let (out1, rep1) = traced(1, sampling);
        for threads in [2usize, 8] {
            let (out, rep) = traced(threads, sampling);
            assert_eq!(out1, out, "outputs, {threads} threads, {sampling:?}");
            assert_eq!(
                rep1.runs, rep.runs,
                "traces, {threads} threads, {sampling:?}"
            );
            assert_eq!(
                rep1.mean_series(),
                rep.mean_series(),
                "series, {threads} threads, {sampling:?}"
            );
        }
        // The single-thread reference is itself sane: every run captured
        // events and the load series advanced with the configured stride.
        for r in &rep1.runs {
            assert!(!r.events.is_empty(), "{sampling:?}");
            assert_eq!(r.series.points.len(), 64 / 16, "{sampling:?}");
        }
        if let Sampling::OneIn(n) = sampling {
            for r in &rep1.runs {
                assert!(r.events.iter().all(|e| e.request % n == 0));
            }
        }
    }
}

#[test]
fn reservoir_sample_is_uniform_over_request_indices() {
    const REQUESTS: u64 = 64;
    const CAP: usize = 16;
    const STAT_RUNS: u64 = 200;
    const BUCKETS: usize = 8;
    let rec = TraceRecorder::new(TraceConfig {
        sampling: Sampling::Reservoir(CAP),
        stride: 0,
        max_events: 4096,
        seed: 0x5EED,
    });
    for run in 0..STAT_RUNS {
        rec.begin_run(run);
        for _ in 0..REQUESTS {
            rec.request(0, 0, 0, 1, &mut std::iter::empty());
        }
    }
    let (runs, _, _) = rec.into_parts();
    let mut counts = [0.0f64; BUCKETS];
    let mut total = 0.0f64;
    for r in &runs {
        assert_eq!(r.events.len(), CAP, "reservoir fills to capacity");
        for e in &r.events {
            counts[e.request as usize / (REQUESTS as usize / BUCKETS)] += 1.0;
            total += 1.0;
        }
    }
    // Each retained event lands in a bucket with p = 1/B under uniform
    // sampling. Per-run draws are without replacement, which only shrinks
    // the variance, so the binomial sigma is a conservative scale.
    let p = 1.0 / BUCKETS as f64;
    let sigma = binomial_sigma(total, p);
    let mut chi2 = 0.0;
    for (b, &c) in counts.iter().enumerate() {
        let z = (c - total * p) / sigma;
        assert!(z.abs() < 6.0, "bucket {b}: count {c}, z {z:.2}");
        chi2 += z * z;
    }
    // Sum of 8 squared z-scores ≈ χ²₇; 40 is far beyond any plausible
    // uniform-sampling draw (p < 1e-6).
    assert!(chi2 < 40.0, "χ² over {BUCKETS} buckets: {chi2:.1}");
}
