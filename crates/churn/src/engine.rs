//! The churn engine: liveness tracking, failure-degraded serving, and
//! pluggable replica repair.
//!
//! [`simulate_churn`] interleaves a [`ChurnSchedule`] with the standard
//! sequential request loop. Membership changes flow through two
//! structures kept in lockstep: an `alive` bitmap (who can serve right
//! now) and a [`HashRing`] restricted to the live nodes (who *should*
//! hold what — the minimal-disruption directory that drives graceful
//! handoff and join-time refill). Placement mutations ride
//! `CacheNetwork::mutate_placement`, so every strategy's sampler and the
//! conditional cached-file sampler stay consistent mid-churn.

use crate::schedule::{ChurnEventKind, ChurnSchedule};
use paba_core::source::RequestSource;
use paba_core::{CacheNetwork, Request, SimReport, Strategy};
use paba_dht::HashRing;
use paba_popularity::FileId;
use paba_telemetry::{Counter, Recorder, SpanTimer, Stage};
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// How lost replicas are re-homed (and insert targets chosen).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RepairPolicy {
    /// No repair protocol: crashes leave the directory stale (requests
    /// discover dead replicas via bounded retries) and joins restore
    /// whatever the directory still attributes to the node.
    None,
    /// Re-replicate each lost copy to a uniform random live node with
    /// spare capacity.
    Random,
    /// Balanced-allocations repair: draw two candidate nodes and give the
    /// copy to the one caching fewer distinct files — the placement-level
    /// two-choices that keeps `min t(u)` (the δ half of (δ,µ)-goodness)
    /// from eroding under sustained churn.
    #[default]
    TwoChoices,
}

impl RepairPolicy {
    /// Kebab-case name (CLI argument / JSON value).
    pub fn label(self) -> &'static str {
        match self {
            RepairPolicy::None => "none",
            RepairPolicy::Random => "random",
            RepairPolicy::TwoChoices => "two-choices",
        }
    }

    /// Parse a [`RepairPolicy::label`] string.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "none" => Ok(RepairPolicy::None),
            "random" => Ok(RepairPolicy::Random),
            "two-choices" => Ok(RepairPolicy::TwoChoices),
            other => Err(format!(
                "unknown repair policy '{other}' (expected none|random|two-choices)"
            )),
        }
    }
}

/// Engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChurnCfg {
    /// Replica repair policy.
    pub repair: RepairPolicy,
    /// How many *dead* replicas one request may probe past the strategy's
    /// original (dead) choice before giving up and serving degraded at
    /// its origin.
    pub retry_budget: u32,
    /// Ring replica-set size used for graceful handoff and join refill.
    pub replication: u32,
    /// Virtual nodes per server on the membership ring.
    pub vnodes: u32,
    /// Ring salt (vary per run for independent layouts).
    pub salt: u64,
}

impl Default for ChurnCfg {
    fn default() -> Self {
        Self {
            repair: RepairPolicy::TwoChoices,
            retry_budget: 8,
            replication: 3,
            vnodes: 64,
            salt: 0,
        }
    }
}

/// Failure/repair accounting for one churned run. Kept separate from
/// [`SimReport`] (whose schema is shared with static runs) and filled
/// independently of the recorder, so gates work under `NullRecorder`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChurnReport {
    /// Schedule events applied.
    pub events_applied: u64,
    /// Schedule events skipped (node already in the target state, or the
    /// last live node was asked to go down).
    pub events_skipped: u64,
    /// Dead-replica probes across all requests (each costs one unit of
    /// the per-request retry budget).
    pub retries: u64,
    /// Requests that exhausted the retry budget (or ran out of replicas)
    /// and were served degraded at their origin.
    pub failed: u64,
    /// Replicas moved or re-created by repair, handoff, or join refill.
    pub migrations: u64,
    /// Fresh replicas placed by insert events.
    pub inserted: u64,
    /// Resident files evicted under capacity pressure.
    pub evictions: u64,
    /// Replica copies dropped because no live node could take them.
    pub lost: u64,
}

impl ChurnReport {
    /// Fold another report into this one (for cross-run aggregation).
    pub fn merge(&mut self, other: &ChurnReport) {
        self.events_applied += other.events_applied;
        self.events_skipped += other.events_skipped;
        self.retries += other.retries;
        self.failed += other.failed;
        self.migrations += other.migrations;
        self.inserted += other.inserted;
        self.evictions += other.evictions;
        self.lost += other.lost;
    }
}

/// Rejection-sampling attempts when drawing a repair/insert target.
const DRAW_ATTEMPTS: u32 = 48;

/// Live-membership state plus repair machinery for one churned run.
pub struct ChurnEngine {
    alive: Vec<bool>,
    live: u32,
    ring: HashRing,
    cfg: ChurnCfg,
    report: ChurnReport,
}

impl ChurnEngine {
    /// Start with every node alive.
    ///
    /// # Panics
    /// On the implicit full placement (churn requires a materialized,
    /// mutable placement).
    pub fn new<T: Topology>(net: &CacheNetwork<T>, cfg: ChurnCfg) -> Self {
        assert!(
            !net.placement().is_full(),
            "churn needs a materialized (non-full) placement"
        );
        let n = net.n();
        Self {
            alive: vec![true; n as usize],
            live: n,
            ring: HashRing::new(n, cfg.vnodes, cfg.salt),
            cfg,
            report: ChurnReport::default(),
        }
    }

    /// Is `node` currently serving?
    #[inline]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node as usize]
    }

    /// Number of live nodes.
    pub fn live_count(&self) -> u32 {
        self.live
    }

    /// Accounting so far.
    pub fn report(&self) -> &ChurnReport {
        &self.report
    }

    /// Consume the engine, yielding its accounting.
    pub fn into_report(self) -> ChurnReport {
        self.report
    }

    /// Apply one schedule event to the live network.
    pub fn apply<T, R, Rec>(
        &mut self,
        net: &mut CacheNetwork<T>,
        kind: ChurnEventKind,
        rng: &mut R,
        rec: &Rec,
    ) where
        T: Topology,
        R: Rng + ?Sized,
        Rec: Recorder,
    {
        let applied = match kind {
            ChurnEventKind::Crash { node } => self.crash(net, node, rng, rec),
            ChurnEventKind::Leave { node } => self.leave(net, node, rec),
            ChurnEventKind::Join { node } => self.join(net, node, rng, rec),
            ChurnEventKind::Insert { file } => self.insert_file(net, file, rng),
        };
        if applied {
            self.report.events_applied += 1;
            rec.count(Counter::ChurnEvent, 1);
        } else {
            self.report.events_skipped += 1;
        }
    }

    fn crash<T, R, Rec>(
        &mut self,
        net: &mut CacheNetwork<T>,
        node: NodeId,
        rng: &mut R,
        rec: &Rec,
    ) -> bool
    where
        T: Topology,
        R: Rng + ?Sized,
        Rec: Recorder,
    {
        if !self.alive[node as usize] || self.live == 1 {
            return false;
        }
        self.alive[node as usize] = false;
        self.live -= 1;
        self.ring = self.ring.without_server(node);
        if matches!(self.cfg.repair, RepairPolicy::None) {
            // No repair protocol: the directory goes stale. Requests keep
            // choosing this node's entries and pay retries to discover
            // the death — the degradation the repair-off gate bounds.
            return true;
        }
        // Active repair: drop the dead node's entries and re-home each
        // lost copy on a policy-chosen live node with spare capacity.
        let lost = net.mutate_placement(|p| p.remove_node_entries(node));
        for f in lost {
            match self.pick_repair_target(net, f, rng) {
                Some(u) => {
                    net.mutate_placement(|p| p.insert(u, f));
                    self.report.migrations += 1;
                    rec.count(Counter::RepairMigration, 1);
                }
                None => self.report.lost += 1,
            }
        }
        true
    }

    fn leave<T, Rec>(&mut self, net: &mut CacheNetwork<T>, node: NodeId, rec: &Rec) -> bool
    where
        T: Topology,
        Rec: Recorder,
    {
        if !self.alive[node as usize] || self.live == 1 {
            return false;
        }
        self.alive[node as usize] = false;
        self.live -= 1;
        self.ring = self.ring.without_server(node);
        // Graceful departure: the leaver hands each cached file to its
        // first live ring successor with room (the minimal-disruption
        // move), regardless of the repair policy — departure is the
        // node's own protocol, not the network's.
        let files = net.mutate_placement(|p| p.remove_node_entries(node));
        for f in files {
            let succs = self
                .ring
                .lookup_replicas(f as u64, self.cfg.replication as usize);
            let p = net.placement();
            match succs
                .into_iter()
                .find(|&u| !p.caches(u, f) && p.t_u(u) < p.m())
            {
                Some(u) => {
                    net.mutate_placement(|p| p.insert(u, f));
                    self.report.migrations += 1;
                    rec.count(Counter::RepairMigration, 1);
                }
                None => self.report.lost += 1,
            }
        }
        true
    }

    fn join<T, R, Rec>(
        &mut self,
        net: &mut CacheNetwork<T>,
        node: NodeId,
        rng: &mut R,
        rec: &Rec,
    ) -> bool
    where
        T: Topology,
        R: Rng + ?Sized,
        Rec: Recorder,
    {
        if self.alive[node as usize] {
            return false;
        }
        self.alive[node as usize] = true;
        self.live += 1;
        self.ring = self.ring.with_server(node);
        if matches!(self.cfg.repair, RepairPolicy::None) {
            // The node resumes serving whatever the (stale) directory
            // still attributes to it — a crash/rejoin round-trips its
            // cache contents.
            return true;
        }
        // Ring-driven refill: adopt the cached files whose replica set
        // now includes the joiner, up to capacity.
        let adopt: Vec<FileId> = {
            let p = net.placement();
            let mut room = (p.m() - p.t_u(node)) as usize;
            let mut out = Vec::new();
            for f in 0..net.k() {
                if room == 0 {
                    break;
                }
                if p.replica_count(f) == 0 || p.caches(node, f) {
                    continue;
                }
                if self
                    .ring
                    .lookup_replicas(f as u64, self.cfg.replication as usize)
                    .contains(&node)
                {
                    out.push(f);
                    room -= 1;
                }
            }
            out
        };
        if !adopt.is_empty() {
            net.mutate_placement(|p| {
                for &f in &adopt {
                    p.insert(node, f);
                }
            });
            self.report.migrations += adopt.len() as u64;
            rec.count(Counter::RepairMigration, adopt.len() as u64);
        }
        // Top-up: the ring only hands the joiner the few files it is a
        // directory successor for (≈ K·R/n in expectation). A real cache
        // re-seeds the rest of its capacity exactly like the placement
        // phase — up to M popularity draws (duplicates waste the draw,
        // matching the with-replacement model) — so `t(u)` recovers to
        // its static level and the δ half of goodness survives rejoins.
        let mut drawn = 0u64;
        for _ in 0..net.m() {
            if net.placement().t_u(node) >= net.m() {
                break;
            }
            let f = net.library().sample_file(rng);
            if !net.placement().caches(node, f) {
                net.mutate_placement(|p| p.insert(node, f));
                drawn += 1;
            }
        }
        if drawn > 0 {
            self.report.migrations += drawn;
            rec.count(Counter::RepairMigration, drawn);
        }
        true
    }

    fn insert_file<T, R>(&mut self, net: &mut CacheNetwork<T>, file: FileId, rng: &mut R) -> bool
    where
        T: Topology,
        R: Rng + ?Sized,
    {
        let copies = self.cfg.replication.min(self.live);
        let mut placed = false;
        for _ in 0..copies {
            // Insert targets may be full — ingest is what creates
            // capacity pressure — so eviction is allowed here (and only
            // here; repair never destroys resident data).
            let target = match self.cfg.repair {
                RepairPolicy::TwoChoices => {
                    match (
                        self.draw_insert_target(net, file, rng),
                        self.draw_insert_target(net, file, rng),
                    ) {
                        (Some(a), Some(b)) => {
                            let p = net.placement();
                            Some(if p.t_u(b) < p.t_u(a) { b } else { a })
                        }
                        (a, b) => a.or(b),
                    }
                }
                _ => self.draw_insert_target(net, file, rng),
            };
            let Some(u) = target else {
                self.report.lost += 1;
                continue;
            };
            if net.placement().t_u(u) >= net.m() {
                let resident = net.placement().node_files(u);
                let victim = resident[rng.gen_range(0..resident.len())];
                net.mutate_placement(|p| p.remove(u, victim));
                self.report.evictions += 1;
            }
            net.mutate_placement(|p| p.insert(u, file));
            self.report.inserted += 1;
            placed = true;
        }
        placed
    }

    /// Uniform live node not yet caching `file` (full caches allowed —
    /// callers evict). `None` after [`DRAW_ATTEMPTS`] rejections.
    fn draw_insert_target<T, R>(
        &self,
        net: &CacheNetwork<T>,
        file: FileId,
        rng: &mut R,
    ) -> Option<NodeId>
    where
        T: Topology,
        R: Rng + ?Sized,
    {
        let p = net.placement();
        for _ in 0..DRAW_ATTEMPTS {
            let u = rng.gen_range(0..p.n());
            if self.alive[u as usize] && !p.caches(u, file) {
                return Some(u);
            }
        }
        None
    }

    /// Uniform live node not caching `file` *with spare capacity* (repair
    /// must not evict). `None` after [`DRAW_ATTEMPTS`] rejections.
    fn draw_repair_candidate<T, R>(
        &self,
        net: &CacheNetwork<T>,
        file: FileId,
        rng: &mut R,
    ) -> Option<NodeId>
    where
        T: Topology,
        R: Rng + ?Sized,
    {
        let p = net.placement();
        for _ in 0..DRAW_ATTEMPTS {
            let u = rng.gen_range(0..p.n());
            if self.alive[u as usize] && !p.caches(u, file) && p.t_u(u) < p.m() {
                return Some(u);
            }
        }
        None
    }

    fn pick_repair_target<T, R>(
        &self,
        net: &CacheNetwork<T>,
        file: FileId,
        rng: &mut R,
    ) -> Option<NodeId>
    where
        T: Topology,
        R: Rng + ?Sized,
    {
        match self.cfg.repair {
            RepairPolicy::None => None,
            RepairPolicy::Random => self.draw_repair_candidate(net, file, rng),
            RepairPolicy::TwoChoices => match (
                self.draw_repair_candidate(net, file, rng),
                self.draw_repair_candidate(net, file, rng),
            ) {
                (Some(a), Some(b)) => {
                    let p = net.placement();
                    Some(if p.t_u(b) < p.t_u(a) { b } else { a })
                }
                (a, b) => a.or(b),
            },
        }
    }

    /// Failure-degraded serving: the strategy chose a dead server. Probe
    /// the file's other replicas nearest-first (uniform tie-breaking);
    /// each dead probe costs one unit of the retry budget. Returns the
    /// first live replica hit, or `None` when the budget (or the replica
    /// list) is exhausted — the caller then serves degraded at the
    /// origin.
    pub fn failover<T, R, Rec>(
        &mut self,
        net: &CacheNetwork<T>,
        req: Request,
        dead_choice: NodeId,
        rng: &mut R,
        rec: &Rec,
    ) -> Option<(NodeId, u32)>
    where
        T: Topology,
        R: Rng + ?Sized,
        Rec: Recorder,
    {
        // Discovering the original choice is dead is the first retry.
        self.report.retries += 1;
        rec.count(Counter::DeadReplicaRetry, 1);
        let reps = net
            .placement()
            .replica_list(req.file)
            .expect("churn placement is materialized");
        let mut order: Vec<(u32, u32, NodeId)> = reps
            .iter()
            .filter(|&&v| v != dead_choice)
            .map(|&v| (net.topo().dist(req.origin, v), rng.gen::<u32>(), v))
            .collect();
        order.sort_unstable();
        let mut budget = self.cfg.retry_budget;
        for &(d, _, v) in &order {
            if self.alive[v as usize] {
                return Some((v, d));
            }
            if budget == 0 {
                break;
            }
            budget -= 1;
            self.report.retries += 1;
            rec.count(Counter::DeadReplicaRetry, 1);
        }
        self.report.failed += 1;
        rec.count(Counter::FailedRequest, 1);
        None
    }
}

/// Run a delivery phase with churn events interleaved: before request `i`
/// is served, every schedule event with `at ≤ i` fires. Requests whose
/// chosen server is dead take the failover path; requests that exhaust
/// the retry budget are served degraded at their origin (zero hops —
/// a backhaul fetch charged to the requester).
///
/// The `(SimReport, ChurnReport)` pair separates the paper's load/cost
/// metrics from failure accounting. The recorder feeds the usual
/// telemetry ([`Counter::ChurnEvent`], [`Counter::DeadReplicaRetry`],
/// [`Counter::FailedRequest`], [`Counter::RepairMigration`]) and
/// compiles to no-ops under `NullRecorder`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_churn<T, S, W, R, Rec>(
    net: &mut CacheNetwork<T>,
    strategy: &mut S,
    source: &mut W,
    requests: u64,
    schedule: &ChurnSchedule,
    cfg: ChurnCfg,
    rng: &mut R,
    rec: &Rec,
) -> (SimReport, ChurnReport)
where
    T: Topology,
    S: Strategy<T>,
    W: RequestSource<T>,
    R: Rng + ?Sized,
    Rec: Recorder,
{
    let timer = SpanTimer::start(rec, Stage::AssignLoop);
    let mut engine = ChurnEngine::new(net, cfg);
    let mut report = SimReport::new(net.n());
    let events = schedule.events();
    let mut next = 0usize;
    for i in 0..requests {
        while next < events.len() && events[next].at <= i {
            engine.apply(net, events[next].kind, rng, rec);
            next += 1;
        }
        let req = source.next_request(net, rng);
        let a = strategy.assign(net, &report.loads, req, rng);
        if engine.is_alive(a.server) {
            report.record(a.server, a.hops, a.fallback);
        } else {
            match engine.failover(net, req, a.server, rng, rec) {
                Some((server, hops)) => report.record(server, hops, a.fallback),
                None => report.record(req.origin, 0, None),
            }
        }
        if Rec::ENABLED {
            rec.loads(i, &report.loads);
        }
    }
    debug_assert!(report.check_conservation());
    timer.stop(rec);
    (report, engine.into_report())
}
