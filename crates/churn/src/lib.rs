//! # paba-churn — fault injection, dynamic placement, and repair
//!
//! The paper proves its guarantees for a placement built once and frozen
//! (§II-B), but motivates the model with CDN caches over a DHT (§VI) —
//! a regime of node failures, rejoins, and content ingest under capacity
//! pressure. This crate layers a deterministic churn engine over the
//! static stack:
//!
//! * [`ChurnSchedule`] — a seeded, replayable event sequence
//!   (crash / graceful leave / join / content insert) interleaved with
//!   the request loop by [`simulate_churn`];
//! * **mutable placement** — events mutate `Placement` incrementally
//!   (sorted replica lists, CSR node lists, and the dense bitmaps all
//!   stay consistent; see `Placement::insert`/`remove`), with
//!   `paba-dht`'s [`HashRing`](paba_dht::HashRing) as the
//!   minimal-disruption directory for leave handoff and join refill;
//! * **graceful degradation** — requests hitting a dead replica probe
//!   the next-nearest live replicas under a bounded retry budget, then
//!   serve degraded at the origin ([`ChurnEngine::failover`]);
//! * **repair** — a pluggable [`RepairPolicy`] (random vs placement-level
//!   two-choices) re-homes lost copies so (δ,µ)-goodness survives churn.
//!
//! Every run is a pure function of `(network seed, schedule seed,
//! config)`, so churn experiments stay bit-identical across mcrunner
//! thread counts.

mod engine;
mod schedule;

pub use engine::{simulate_churn, ChurnCfg, ChurnEngine, ChurnReport, RepairPolicy};
pub use schedule::{ChurnEvent, ChurnEventKind, ChurnSchedule, ScheduleSpec};

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::{CacheNetwork, GoodnessReport, IidUniform, ProximityChoice, UncachedPolicy};
    use paba_popularity::Popularity;
    use paba_telemetry::{AtomicRecorder, NullRecorder};
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(12)
            .library(60, Popularity::zipf(0.8))
            .cache_size(6)
            .build(&mut rng)
    }

    fn run(
        repair: RepairPolicy,
        seed: u64,
    ) -> (paba_core::SimReport, ChurnReport, CacheNetwork<Torus>) {
        let mut network = net(seed);
        let spec = ScheduleSpec {
            cycle_fraction: 0.2,
            graceful_fraction: 0.5,
            inserts: 12,
        };
        let requests = 4 * network.n() as u64;
        let schedule =
            ChurnSchedule::generate(&spec, network.n(), network.k(), requests, seed ^ 0xC0FFEE);
        let cfg = ChurnCfg {
            repair,
            salt: seed,
            ..ChurnCfg::default()
        };
        let mut strategy = ProximityChoice::two_choice(Some(4));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xFEED);
        let (sim, churn) = simulate_churn(
            &mut network,
            &mut strategy,
            &mut source,
            requests,
            &schedule,
            cfg,
            &mut rng,
            &NullRecorder,
        );
        (sim, churn, network)
    }

    #[test]
    fn repair_off_completes_with_bounded_retries() {
        let (sim, churn, _) = run(RepairPolicy::None, 3);
        assert_eq!(
            sim.total_requests,
            sim.loads.iter().map(|&l| l as u64).sum()
        );
        assert!(churn.events_applied > 0);
        // Crashes leave the directory stale, so the failover path must
        // actually fire under this schedule.
        assert!(churn.retries > 0, "stale directory must cause retries");
        // Bounded: per request at most 1 + retry_budget probes.
        let cap = sim.total_requests * (1 + ChurnCfg::default().retry_budget as u64);
        assert!(churn.retries <= cap);
        assert!(churn.failed <= sim.total_requests);
        // No repair ⇒ no repair migrations from crashes; leaves still
        // hand off, so migrations may be positive, but nothing refills.
        assert!(churn.inserted > 0, "insert events placed copies");
    }

    #[test]
    fn repair_on_restores_placement_mass() {
        let (sim, churn, network) = run(RepairPolicy::TwoChoices, 4);
        assert!(churn.migrations > 0, "repair must move replicas");
        assert_eq!(
            sim.total_requests,
            sim.loads.iter().map(|&l| l as u64).sum()
        );
        // After the run every cycled node has rejoined and refilled; the
        // total cached mass should be close to the static n·(distinct
        // draws) level — within 20% is ample for this smoke check.
        let total: u64 = (0..network.n())
            .map(|u| network.placement().t_u(u) as u64)
            .sum();
        let nominal = network.n() as u64 * network.m() as u64;
        assert!(
            total * 5 >= nominal * 3,
            "placement mass collapsed: {total} vs nominal {nominal}"
        );
        // Goodness stays measurable on the repaired placement.
        let g = GoodnessReport::measure(&network, Some(4));
        assert!(g.min_t_u >= 1, "repair must keep every node stocked");
    }

    #[test]
    fn two_choices_repair_balances_better_than_random() {
        // Placement-level two-choices should keep the min t(u) at least
        // as high as random re-homing, aggregated over seeds.
        let (mut min_random, mut min_two) = (0u64, 0u64);
        for seed in 0..6 {
            let (_, _, net_r) = run(RepairPolicy::Random, 100 + seed);
            let (_, _, net_t) = run(RepairPolicy::TwoChoices, 100 + seed);
            min_random += (0..net_r.n())
                .map(|u| net_r.placement().t_u(u) as u64)
                .min()
                .unwrap();
            min_two += (0..net_t.n())
                .map(|u| net_t.placement().t_u(u) as u64)
                .min()
                .unwrap();
        }
        assert!(
            min_two >= min_random,
            "two-choices min t(u) sum {min_two} < random {min_random}"
        );
    }

    #[test]
    fn same_seed_is_bit_identical_and_recorder_free() {
        // Identical seeds ⇒ identical SimReport/ChurnReport, and an
        // AtomicRecorder must not perturb results (it never touches the
        // RNG stream).
        let (a_sim, a_churn, _) = run(RepairPolicy::TwoChoices, 9);
        let (b_sim, b_churn, _) = run(RepairPolicy::TwoChoices, 9);
        assert_eq!(a_sim, b_sim);
        assert_eq!(a_churn, b_churn);

        let mut network = net(9);
        let spec = ScheduleSpec {
            cycle_fraction: 0.2,
            graceful_fraction: 0.5,
            inserts: 12,
        };
        let requests = 4 * network.n() as u64;
        let schedule =
            ChurnSchedule::generate(&spec, network.n(), network.k(), requests, 9 ^ 0xC0FFEE);
        let cfg = ChurnCfg {
            repair: RepairPolicy::TwoChoices,
            salt: 9,
            ..ChurnCfg::default()
        };
        let rec = AtomicRecorder::new();
        let mut strategy = ProximityChoice::two_choice(Some(4));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut rng = SmallRng::seed_from_u64(9 ^ 0xFEED);
        let (c_sim, c_churn) = simulate_churn(
            &mut network,
            &mut strategy,
            &mut source,
            requests,
            &schedule,
            cfg,
            &mut rng,
            &rec,
        );
        assert_eq!(a_sim, c_sim, "recorder must not perturb the run");
        assert_eq!(a_churn, c_churn);
        // Recorder counters agree with the independent ChurnReport.
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter(paba_telemetry::Counter::DeadReplicaRetry),
            c_churn.retries
        );
        assert_eq!(
            snap.counter(paba_telemetry::Counter::FailedRequest),
            c_churn.failed
        );
        assert_eq!(
            snap.counter(paba_telemetry::Counter::ChurnEvent),
            c_churn.events_applied
        );
    }

    #[test]
    fn empty_schedule_matches_static_simulation() {
        // With no events, simulate_churn must reproduce simulate_source
        // exactly (same rng stream: no event draws, no failovers).
        let mut network = net(5);
        let schedule = ChurnSchedule::default();
        let mut strategy = ProximityChoice::two_choice(Some(4));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut rng = SmallRng::seed_from_u64(77);
        let requests = 2 * network.n() as u64;
        let (churned, report) = simulate_churn(
            &mut network,
            &mut strategy,
            &mut source,
            requests,
            &schedule,
            ChurnCfg::default(),
            &mut rng,
            &NullRecorder,
        );
        assert_eq!(report, ChurnReport::default());

        let static_net = net(5);
        let mut strategy2 = ProximityChoice::two_choice(Some(4));
        let mut source2 = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut rng2 = SmallRng::seed_from_u64(77);
        let static_report = paba_core::simulate_source(
            &static_net,
            &mut strategy2,
            &mut source2,
            requests,
            &mut rng2,
        );
        assert_eq!(churned, static_report);
    }
}
