//! Seeded churn schedules: which node fails (or joins) when, and which
//! files arrive under capacity pressure.
//!
//! A schedule is generated once from a seed and then *replayed* against
//! the request stream — the same `(seed, spec)` pair always produces the
//! same event sequence, which is what makes churn experiments
//! reproducible and bit-identical across mcrunner thread counts.

use paba_popularity::FileId;
use paba_topology::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One membership or content event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnEventKind {
    /// Node dies without warning. Under [`crate::RepairPolicy::None`] its
    /// placement entries go *stale* (the directory still lists them, and
    /// requests discover the death via retries); under an active repair
    /// policy the entries are dropped and re-replicated immediately.
    Crash { node: NodeId },
    /// Node departs gracefully: it hands each cached file to a live ring
    /// successor (capacity permitting) before going down.
    Leave { node: NodeId },
    /// Node comes (back) up. Under an active repair policy it adopts the
    /// files whose ring replica set now includes it; under
    /// [`crate::RepairPolicy::None`] it simply resumes serving whatever
    /// the directory still attributes to it.
    Join { node: NodeId },
    /// Content ingest: place fresh replicas of `file` on live nodes,
    /// evicting a resident file wherever the target cache is full — the
    /// capacity-pressure path.
    Insert { file: FileId },
}

/// A [`ChurnEventKind`] stamped with the request index *before* which it
/// fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChurnEvent {
    /// The event applies before request number `at` is served.
    pub at: u64,
    /// What happens.
    pub kind: ChurnEventKind,
}

/// Shape parameters for [`ChurnSchedule::generate`].
#[derive(Clone, Copy, Debug)]
pub struct ScheduleSpec {
    /// Fraction of nodes taken down and later rejoined (the churn gate
    /// requires ≥ 0.10). Clamped to leave at least one node untouched.
    pub cycle_fraction: f64,
    /// Of the cycled nodes, the fraction departing gracefully
    /// ([`ChurnEventKind::Leave`]) rather than crashing.
    pub graceful_fraction: f64,
    /// Number of [`ChurnEventKind::Insert`] content-ingest events.
    pub inserts: u32,
}

impl Default for ScheduleSpec {
    fn default() -> Self {
        Self {
            cycle_fraction: 0.15,
            graceful_fraction: 0.5,
            inserts: 0,
        }
    }
}

/// An ordered, replayable sequence of churn events.
#[derive(Clone, Debug, Default)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// Wrap explicit events (stably sorted by firing index, so events at
    /// the same index keep their construction order).
    pub fn new(mut events: Vec<ChurnEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        Self { events }
    }

    /// Generate a seeded schedule for `n` nodes, `k` files, and a
    /// `requests`-long delivery phase.
    ///
    /// Each cycled node goes down at a uniform time in the second eighth
    /// through first half of the run and rejoins after at least a
    /// one-eighth-run outage, so outages overlap (sustained churn) but
    /// every cycled node is back before the run ends. Inserts land
    /// uniformly over the whole run.
    pub fn generate(spec: &ScheduleSpec, n: u32, k: u32, requests: u64, seed: u64) -> Self {
        assert!(n > 0 && k > 0);
        if requests == 0 {
            return Self::default();
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        let cycled = ((n as f64 * spec.cycle_fraction).round() as u32).clamp(1, n - 1);
        // Partial Fisher-Yates: the first `cycled` entries of a shuffled
        // 0..n are a uniform distinct sample.
        let mut ids: Vec<NodeId> = (0..n).collect();
        for i in 0..cycled as usize {
            let j = rng.gen_range(i..n as usize);
            ids.swap(i, j);
        }
        let mut events = Vec::with_capacity(2 * cycled as usize + spec.inserts as usize);
        let eighth = (requests / 8).max(1);
        for &node in &ids[..cycled as usize] {
            let down_at = rng.gen_range(eighth..=(requests / 2).max(eighth));
            let up_lo = down_at + eighth;
            let up_hi = (requests * 7 / 8).max(up_lo);
            let up_at = rng.gen_range(up_lo..=up_hi);
            let down = if rng.gen::<f64>() < spec.graceful_fraction {
                ChurnEventKind::Leave { node }
            } else {
                ChurnEventKind::Crash { node }
            };
            events.push(ChurnEvent {
                at: down_at,
                kind: down,
            });
            events.push(ChurnEvent {
                at: up_at.min(requests - 1),
                kind: ChurnEventKind::Join { node },
            });
        }
        for _ in 0..spec.inserts {
            events.push(ChurnEvent {
                at: rng.gen_range(0..requests),
                kind: ChurnEventKind::Insert {
                    file: rng.gen_range(0..k),
                },
            });
        }
        Self::new(events)
    }

    /// The events, ascending by firing index.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event counts by kind: `(crashes, leaves, joins, inserts)`.
    pub fn counts(&self) -> (u32, u32, u32, u32) {
        let (mut c, mut l, mut j, mut i) = (0, 0, 0, 0);
        for e in &self.events {
            match e.kind {
                ChurnEventKind::Crash { .. } => c += 1,
                ChurnEventKind::Leave { .. } => l += 1,
                ChurnEventKind::Join { .. } => j += 1,
                ChurnEventKind::Insert { .. } => i += 1,
            }
        }
        (c, l, j, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let spec = ScheduleSpec {
            cycle_fraction: 0.2,
            graceful_fraction: 0.5,
            inserts: 10,
        };
        let a = ChurnSchedule::generate(&spec, 100, 50, 10_000, 42);
        let b = ChurnSchedule::generate(&spec, 100, 50, 10_000, 42);
        assert_eq!(a.events(), b.events());
        let c = ChurnSchedule::generate(&spec, 100, 50, 10_000, 43);
        assert_ne!(a.events(), c.events(), "seed must matter");
    }

    #[test]
    fn generate_cycles_every_down_node_back_up() {
        let spec = ScheduleSpec {
            cycle_fraction: 0.25,
            graceful_fraction: 0.3,
            inserts: 5,
        };
        let s = ChurnSchedule::generate(&spec, 64, 20, 8_000, 7);
        let (crashes, leaves, joins, inserts) = s.counts();
        assert_eq!(crashes + leaves, 16, "25% of 64 nodes cycle");
        assert_eq!(joins, 16, "every down node rejoins");
        assert_eq!(inserts, 5);
        // Sorted by firing index; each node's down event precedes its join.
        assert!(s.events().windows(2).all(|w| w[0].at <= w[1].at));
        for e in s.events() {
            assert!(e.at < 8_000, "event fires within the run");
            let node = match e.kind {
                ChurnEventKind::Crash { node } | ChurnEventKind::Leave { node } => node,
                ChurnEventKind::Join { node } => node,
                ChurnEventKind::Insert { file } => {
                    assert!(file < 20);
                    continue;
                }
            };
            assert!(node < 64);
            if let ChurnEventKind::Join { .. } = e.kind {
                let down_at = s
                    .events()
                    .iter()
                    .find(|d| {
                        matches!(d.kind,
                            ChurnEventKind::Crash { node: m } | ChurnEventKind::Leave { node: m }
                                if m == node)
                    })
                    .map(|d| d.at)
                    .expect("every join has a down event");
                assert!(down_at < e.at, "node {node} joins after going down");
            }
        }
    }

    #[test]
    fn zero_requests_means_empty_schedule() {
        let s = ChurnSchedule::generate(&ScheduleSpec::default(), 10, 10, 0, 1);
        assert!(s.is_empty());
    }
}
