//! Minimal dependency-free argument parsing.
//!
//! Supports `--key value`, `--key=value`, and bare `--flag` arguments
//! after a positional subcommand and an optional positional action
//! (`paba workload generate …`). Typed accessors return descriptive
//! errors naming the offending flag.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, an optional action, plus
/// `--key value` options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// The subcommand (first positional argument), if any.
    pub command: Option<String>,
    /// The action (second positional argument, e.g. `workload generate`),
    /// if any.
    pub action: Option<String>,
    options: BTreeMap<String, String>,
}

impl Args {
    /// Parse an iterator of argument strings (excluding `argv[0]`).
    ///
    /// Unrecognized positionals after the subcommand and action are an
    /// error, as are dangling `--key`s with no value (unless the next
    /// token is another flag, in which case the key is treated as a
    /// boolean `true`).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if stripped.is_empty() {
                    return Err("bare '--' is not a valid flag".into());
                }
                if let Some((k, v)) = stripped.split_once('=') {
                    out.options.insert(k.to_string(), v.to_string());
                } else {
                    // Peek: value or next flag?
                    match iter.peek() {
                        Some(next) if !next.starts_with("--") => {
                            let v = iter.next().expect("peeked");
                            out.options.insert(stripped.to_string(), v);
                        }
                        _ => {
                            out.options.insert(stripped.to_string(), "true".into());
                        }
                    }
                }
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else if out.action.is_none() {
                out.action = Some(tok);
            } else {
                return Err(format!("unexpected positional argument '{tok}'"));
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn str_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    /// Typed option with a default; errors name the flag.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse::<T>()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    /// Boolean flag (present without value, or an explicit true/false).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.get(key), Some("true") | Some("1") | Some("yes"))
    }

    /// Radius option accepting an integer or `inf`.
    pub fn radius(&self, key: &str) -> Result<Option<u32>, String> {
        match self.get(key) {
            None | Some("inf") | Some("none") => Ok(None),
            Some(v) => v
                .parse::<u32>()
                .map(Some)
                .map_err(|_| format!("--{key}: expected an integer or 'inf', got '{v}'")),
        }
    }

    /// All unknown keys given a set of known ones (for helpful errors).
    pub fn unknown_keys<'a>(&'a self, known: &[&str]) -> Vec<&'a str> {
        self.options
            .keys()
            .map(String::as_str)
            .filter(|k| !known.contains(k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn subcommand_and_options() {
        let a = parse("simulate --side 45 --files=500 --strategy two-choice");
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get("side"), Some("45"));
        assert_eq!(a.get("files"), Some("500"));
        assert_eq!(a.get("strategy"), Some("two-choice"));
    }

    #[test]
    fn boolean_flags() {
        let a = parse("simulate --csv --side 10");
        assert!(a.flag("csv"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("side"), Some("10"));
    }

    #[test]
    fn trailing_flag_is_boolean() {
        let a = parse("queue --verbose");
        assert!(a.flag("verbose"));
    }

    #[test]
    fn typed_access_with_defaults() {
        let a = parse("x --m 7");
        assert_eq!(a.parse_or("m", 1u32).unwrap(), 7);
        assert_eq!(a.parse_or("k", 100u32).unwrap(), 100);
        assert!(a.parse_or("m", 0.0f64).is_ok());
    }

    #[test]
    fn typed_access_errors_name_flag() {
        let a = parse("x --m seven");
        let err = a.parse_or("m", 1u32).unwrap_err();
        assert!(err.contains("--m"), "{err}");
    }

    #[test]
    fn radius_parsing() {
        assert_eq!(parse("x --radius 8").radius("radius").unwrap(), Some(8));
        assert_eq!(parse("x --radius inf").radius("radius").unwrap(), None);
        assert_eq!(parse("x").radius("radius").unwrap(), None);
        assert!(parse("x --radius big").radius("radius").is_err());
    }

    #[test]
    fn second_positional_is_the_action() {
        let a = parse("workload generate --out t.trace");
        assert_eq!(a.command.as_deref(), Some("workload"));
        assert_eq!(a.action.as_deref(), Some("generate"));
        assert_eq!(a.get("out"), Some("t.trace"));
    }

    #[test]
    fn rejects_extra_positionals() {
        assert!(Args::parse(["a".into(), "b".into(), "c".into()]).is_err());
    }

    #[test]
    fn unknown_keys_reported() {
        let a = parse("x --side 4 --typo 9");
        assert_eq!(a.unknown_keys(&["side"]), vec!["typo"]);
    }

    #[test]
    fn equals_syntax() {
        let a = parse("x --gamma=1.5");
        assert_eq!(a.parse_or("gamma", 0.0).unwrap(), 1.5);
    }
}
