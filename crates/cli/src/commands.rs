//! Subcommand implementations.

use crate::args::Args;
use paba_core::{
    simulate as run_simulation, CacheNetwork, LeastLoadedInBall, NearestReplica,
    PlacementPolicy, ProximityChoice, SimReport, StaleLoad,
};
use paba_popularity::Popularity;
use paba_topology::Torus;
use paba_util::{Summary, Table};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Print the global help text.
pub fn print_help() {
    println!(
        "paba — proximity-aware balanced allocations in cache networks
(Pourmiri, Jafari Siavoshani, Shariatpanahi; IPDPS 2017)

USAGE:
  paba simulate [options]    run the static cache-network model
  paba queue [options]       run the continuous-time (supermarket) model
  paba ballsbins [options]   run a classic balls-into-bins process
  paba help                  show this text

SIMULATE OPTIONS (defaults in parentheses):
  --side N          torus side, n = side^2 (45)
  --files K         library size (500)
  --cache M         cache slots per server (10)
  --gamma G         Zipf exponent, 0 = uniform (0)
  --placement P     proportional | distinct | full | dht (proportional)
  --strategy S      nearest | two-choice | d-choice | least-loaded (two-choice)
  --radius R        proximity radius, integer or 'inf' (inf)
  --choices D       number of choices for d-choice (2)
  --stale P         refresh load info only every P requests (1 = fresh)
  --requests Q      requests per run (n)
  --runs R          Monte-Carlo runs (20)
  --seed S          master seed (20170529)
  --grid            use the bounded grid instead of the torus
  --csv             emit CSV instead of a table

QUEUE OPTIONS:
  --side/--files/--cache/--gamma/--radius/--choices/--seed as above
  --lambda L        per-server arrival rate in (0,1) (0.8)
  --horizon T       simulated time (2000)
  --warmup T        measurement warm-up (500)

BALLSBINS OPTIONS:
  --process P       one | two | d | beta | batched (two)
  --bins N          number of bins (4096)
  --balls M         number of balls (= bins)
  --d D             choices for 'd'/'batched' (3)
  --beta B          beta for 'beta' (0.5)
  --batch B         batch size for 'batched' (64)
  --runs/--seed     as above"
    );
}

const SIM_KEYS: &[&str] = &[
    "side", "files", "cache", "gamma", "placement", "strategy", "radius", "choices",
    "stale", "requests", "runs", "seed", "grid", "csv",
];

fn popularity(gamma: f64) -> Popularity {
    if gamma == 0.0 {
        Popularity::Uniform
    } else {
        Popularity::zipf(gamma)
    }
}

/// Three summaries every run family reports.
#[derive(Debug)]
pub(crate) struct SimStats {
    max_load: Summary,
    cost: Summary,
    fallback: Summary,
}

fn summarize_reports(reports: &[SimReport]) -> SimStats {
    SimStats {
        max_load: paba_mcrunner::summarize(reports.iter().map(|r| r.max_load() as f64)),
        cost: paba_mcrunner::summarize(reports.iter().map(|r| r.comm_cost())),
        fallback: paba_mcrunner::summarize(reports.iter().map(|r| r.fallback_fraction())),
    }
}

/// `paba simulate`.
pub(crate) fn simulate_cmd_impl(a: &Args) -> Result<(SimStats, usize), String> {
    let unknown = a.unknown_keys(SIM_KEYS);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let side: u32 = a.parse_or("side", 45)?;
    let k: u32 = a.parse_or("files", 500)?;
    let m: u32 = a.parse_or("cache", 10)?;
    let gamma: f64 = a.parse_or("gamma", 0.0)?;
    let radius = a.radius("radius")?;
    let choices: u32 = a.parse_or("choices", 2)?;
    let stale: u64 = a.parse_or("stale", 1)?;
    let runs: usize = a.parse_or("runs", 20)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let requests_opt: u64 = a.parse_or("requests", 0)?;
    let strategy = a.str_or("strategy", "two-choice");
    if !matches!(
        strategy.as_str(),
        "nearest" | "two-choice" | "d-choice" | "least-loaded"
    ) {
        return Err(format!("--strategy: unknown strategy '{strategy}'"));
    }
    let placement = a.str_or("placement", "proportional");
    if a.flag("grid") {
        return Err("--grid: the CLI currently drives the torus; use the library API \
                    (CacheNetworkBuilder::build_grid) for grid runs"
            .into());
    }

    let policy = match placement.as_str() {
        "proportional" => PlacementPolicy::ProportionalWithReplacement,
        "distinct" => PlacementPolicy::ProportionalDistinct,
        "full" => PlacementPolicy::FullLibrary,
        "dht" => PlacementPolicy::ProportionalWithReplacement, // replaced below
        other => return Err(format!("--placement: unknown policy '{other}'")),
    };

    let reports: Vec<SimReport> =
        paba_mcrunner::run_parallel(runs, seed, None, |run_idx, rng| {
            let net: CacheNetwork<Torus> = if placement == "dht" {
                let library = paba_core::Library::new(k, popularity(gamma));
                let p = paba_dht::dht_placement(
                    side * side,
                    &library,
                    &paba_dht::DhtPlacementConfig {
                        vnodes: 128,
                        salt: paba_util::mix_seed(seed, run_idx as u64),
                        rule: paba_dht::ReplicationRule::Proportional { m },
                    },
                );
                CacheNetwork::from_parts(Torus::new(side), library, p)
            } else {
                CacheNetwork::builder()
                    .torus_side(side)
                    .library(k, popularity(gamma))
                    .cache_size(m)
                    .placement_policy(policy)
                    .build(rng)
            };
            let requests = if requests_opt == 0 {
                net.n() as u64
            } else {
                requests_opt
            };
            let run =
                |s: &mut dyn FnMut(&CacheNetwork<Torus>, &mut SmallRng) -> SimReport,
                 rng: &mut SmallRng| s(&net, rng);
            match strategy.as_str() {
                "nearest" => run(
                    &mut |net, rng| {
                        let mut s = NearestReplica::new();
                        run_simulation(net, &mut s, requests, rng)
                    },
                    rng,
                ),
                "two-choice" | "d-choice" => run(
                    &mut |net, rng| {
                        let d = if strategy == "two-choice" { 2 } else { choices };
                        if stale > 1 {
                            let mut s =
                                StaleLoad::new(ProximityChoice::with_choices(radius, d), stale);
                            run_simulation(net, &mut s, requests, rng)
                        } else {
                            let mut s = ProximityChoice::with_choices(radius, d);
                            run_simulation(net, &mut s, requests, rng)
                        }
                    },
                    rng,
                ),
                "least-loaded" => run(
                    &mut |net, rng| {
                        let mut s = LeastLoadedInBall::new(radius);
                        run_simulation(net, &mut s, requests, rng)
                    },
                    rng,
                ),
                other => unreachable!("strategy '{other}' was validated before spawning"),
            }
        });
    Ok((summarize_reports(&reports), runs))
}

/// `paba simulate` with printing.
pub fn simulate(a: &Args) -> Result<(), String> {
    let (stats, runs) = simulate_cmd_impl(a)?;
    let mut t = Table::new(["metric", "mean", "ci95", "min", "max"]);
    for (name, s) in [
        ("max load L", &stats.max_load),
        ("comm cost C (hops)", &stats.cost),
        ("fallback fraction", &stats.fallback),
    ] {
        t.push_row([
            name.to_string(),
            format!("{:.4}", s.mean),
            format!("±{:.4}", 1.96 * s.std_err),
            format!("{:.4}", s.min),
            format!("{:.4}", s.max),
        ]);
    }
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        println!("{runs} runs:");
        print!("{}", t.to_markdown());
    }
    Ok(())
}

/// `paba queue`.
pub fn queue(a: &Args) -> Result<(), String> {
    let known = [
        "side", "files", "cache", "gamma", "radius", "choices", "lambda", "horizon",
        "warmup", "seed", "csv",
    ];
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let side: u32 = a.parse_or("side", 24)?;
    let k: u32 = a.parse_or("files", 32)?;
    let m: u32 = a.parse_or("cache", 8)?;
    let gamma: f64 = a.parse_or("gamma", 0.0)?;
    let radius = a.radius("radius")?;
    let choices: u32 = a.parse_or("choices", 2)?;
    let lambda: f64 = a.parse_or("lambda", 0.8)?;
    let horizon: f64 = a.parse_or("horizon", 2_000.0)?;
    let warmup: f64 = a.parse_or("warmup", 500.0)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    if !(0.0..1.0).contains(&lambda) || lambda == 0.0 {
        return Err(format!("--lambda must be in (0,1), got {lambda}"));
    }

    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(k, popularity(gamma))
        .cache_size(m)
        .build(&mut rng);
    let mut strat = ProximityChoice::with_choices(radius, choices);
    let cfg = paba_supermarket::QueueSimConfig {
        lambda,
        horizon,
        warmup,
        tail_cap: 24,
    };
    let rep = paba_supermarket::simulate_queueing(&net, &mut strat, &cfg, &mut rng);

    let mut t = Table::new(["metric", "value"]);
    t.push_row(["servers n".to_string(), format!("{}", rep.n)]);
    t.push_row(["lambda".to_string(), format!("{lambda}")]);
    t.push_row(["max queue".to_string(), format!("{}", rep.max_queue)]);
    t.push_row(["mean queue".to_string(), format!("{:.4}", rep.mean_queue)]);
    t.push_row([
        "mean response".to_string(),
        format!("{:.4}", rep.mean_response),
    ]);
    t.push_row([
        "Little's-law response".to_string(),
        format!("{:.4}", rep.littles_law_response()),
    ]);
    t.push_row(["comm cost (hops)".to_string(), format!("{:.4}", rep.comm_cost)]);
    for kq in 1..=6usize {
        t.push_row([format!("Pr[Q >= {kq}]"), format!("{:.5}", rep.tail_at(kq))]);
    }
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_markdown());
    }
    Ok(())
}

/// `paba ballsbins`.
pub fn ballsbins(a: &Args) -> Result<(), String> {
    let known = ["process", "bins", "balls", "d", "beta", "batch", "runs", "seed", "csv"];
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let process = a.str_or("process", "two");
    let n: u32 = a.parse_or("bins", 4096)?;
    let m: u64 = a.parse_or("balls", n as u64)?;
    let d: u32 = a.parse_or("d", 3)?;
    let beta: f64 = a.parse_or("beta", 0.5)?;
    let batch: u64 = a.parse_or("batch", 64)?;
    let runs: usize = a.parse_or("runs", 20)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    if !matches!(process.as_str(), "one" | "two" | "d" | "beta" | "batched") {
        return Err(format!("--process: unknown process '{process}'"));
    }

    let maxes: Vec<f64> = paba_mcrunner::run_parallel(runs, seed, None, |_i, rng| {
        let res = match process.as_str() {
            "one" => paba_ballsbins::one_choice(n, m, rng),
            "two" => paba_ballsbins::two_choice(n, m, rng),
            "d" => paba_ballsbins::d_choice(n, m, d, rng),
            "beta" => paba_ballsbins::one_plus_beta(n, m, beta, rng),
            "batched" => paba_ballsbins::batched_d_choice(n, m, d, batch, rng),
            _ => unreachable!("validated above"),
        };
        res.max_load() as f64
    });
    let s = paba_mcrunner::summarize(maxes.iter().copied());
    let mut t = Table::new(["process", "bins", "balls", "max load (mean)", "ci95", "min", "max"]);
    t.push_row([
        process,
        format!("{n}"),
        format!("{m}"),
        format!("{:.4}", s.mean),
        format!("±{:.4}", 1.96 * s.std_err),
        format!("{}", s.min),
        format!("{}", s.max),
    ]);
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_markdown());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn simulate_small_run_works() {
        let a = args("simulate --side 8 --files 20 --cache 3 --runs 3 --radius 3");
        let (stats, runs) = simulate_cmd_impl(&a).unwrap();
        assert_eq!(runs, 3);
        assert!(stats.max_load.mean >= 1.0);
        assert!(stats.cost.mean >= 0.0);
    }

    #[test]
    fn simulate_nearest_and_least_loaded() {
        for strat in ["nearest", "least-loaded", "d-choice"] {
            let a = args(&format!(
                "simulate --side 6 --files 10 --cache 2 --runs 2 --strategy {strat}"
            ));
            let (stats, _) = simulate_cmd_impl(&a).unwrap();
            assert!(stats.max_load.mean >= 1.0, "{strat}");
        }
    }

    #[test]
    fn simulate_dht_placement() {
        let a = args("simulate --side 8 --files 30 --cache 3 --runs 2 --placement dht");
        let (stats, _) = simulate_cmd_impl(&a).unwrap();
        assert!(stats.max_load.mean >= 1.0);
    }

    #[test]
    fn simulate_rejects_unknown_options() {
        let a = args("simulate --sid 8");
        assert!(simulate_cmd_impl(&a).unwrap_err().contains("sid"));
    }

    #[test]
    fn simulate_rejects_unknown_strategy() {
        let a = args("simulate --strategy magic");
        assert!(simulate(&a).unwrap_err().contains("magic"));
    }

    #[test]
    fn queue_validates_lambda() {
        let a = args("queue --lambda 1.5");
        assert!(queue(&a).unwrap_err().contains("lambda"));
    }

    #[test]
    fn ballsbins_runs_every_process() {
        for p in ["one", "two", "d", "beta", "batched"] {
            let a = args(&format!("ballsbins --process {p} --bins 64 --balls 64 --runs 2"));
            assert!(ballsbins(&a).is_ok(), "{p}");
        }
    }

    #[test]
    fn ballsbins_rejects_unknown_process() {
        let a = args("ballsbins --process three");
        assert!(ballsbins(&a).unwrap_err().contains("three"));
    }
}
