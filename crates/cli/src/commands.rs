//! Subcommand implementations.

use crate::args::Args;
use paba_core::{
    simulate_source_profiled, CacheNetwork, LeastLoadedInBall, NearestReplica, PlacementPolicy,
    ProximityChoice, RequestSource, SimReport, StaleLoad, UncachedPolicy,
};
use paba_mcrunner::{run_parallel_live, LiveRun};
use paba_popularity::Popularity;
use paba_telemetry::{
    AtomicRecorder, MetricsServer, NullRecorder, Recorder, Tee, TelemetrySnapshot, TraceReport,
};
use paba_topology::Torus;
use paba_util::{schema, Provenance, Summary, Table};
use paba_workload::{TraceWriter, WorkloadSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Print the global help text.
pub fn print_help() {
    println!(
        "paba — proximity-aware balanced allocations in cache networks
(Pourmiri, Jafari Siavoshani, Shariatpanahi; IPDPS 2017)

USAGE:
  paba simulate [options]             run the static cache-network model
  paba queue [options]                run the continuous-time (supermarket) model
  paba ballsbins [options]            run a classic balls-into-bins process
  paba workload generate [options]    generate a request trace file
  paba workload inspect [options]     summarize a request trace file
  paba throughput [options]           measure assign-loop requests/sec
  paba profile [options]              profile sampler paths and stage timings
  paba profile --diff OLD NEW         statistically diff two profile artifacts
  paba trace [options]                time-resolved tracing: sampled events,
                                      load time series, Chrome-trace spans
  paba repro [options]                run the theorem-gated reproduction suite
  paba churn [options]                run the churn-robustness suite: seeded
                                      fault injection, repair, degradation gates
  paba queueing [options]             run the temporal serving-engine suite:
                                      paired queueing arms, sojourn-tail gates
  paba report [options]               aggregate BENCH_*.json artifacts into one
                                      provenance-checked markdown report
  paba help                           show this text

Output paths (--telemetry-out, --trace-out, --events-out, --series-out,
--chrome-out) accept '-' to mean stdout, e.g. for piping into jq.

SIMULATE OPTIONS (defaults in parentheses):
  --side N          torus side, n = side^2 (45)
  --files K         library size (500)
  --cache M         cache slots per server (10)
  --gamma G         Zipf exponent, 0 = uniform (0)
  --placement P     proportional | distinct | full | dht (proportional)
  --strategy S      nearest | two-choice | d-choice | least-loaded (two-choice)
  --radius R        proximity radius, integer or 'inf' (inf)
  --choices D       number of choices for d-choice (2)
  --stale P         refresh load info only every P requests (1 = fresh)
  --requests Q      requests per run (n; trace length for --workload trace)
  --runs R          Monte-Carlo runs (20)
  --seed S          master seed (20170529)
  --grid            use the bounded grid instead of the torus
  --csv             emit CSV instead of a table
  --telemetry       record sampler-path/timing telemetry and print the breakdown
  --telemetry-out PATH  also write the merged snapshot as JSON (implies --telemetry)
  --trace-out PATH  also collect a full per-request trace and write it as
                    JSONL events ('-' = stdout)
  --serve-metrics ADDR  serve live Prometheus metrics (sampler paths, span
                    timings, progress, allocator stats) at
                    http://ADDR/metrics for the duration of the run;
                    ADDR like 127.0.0.1:9464 (port 0 = ephemeral, the
                    bound address is printed to stderr). Also accepted
                    by 'paba trace' and 'paba throughput' (the latter
                    exposes grid progress only)
  --workload W      iid | hotspot | zipf-origins | flash-crowd | shifting
                    | trace (iid), plus the workload options below

WORKLOAD OPTIONS (with `paba simulate --workload ...` or `paba workload generate`):
  --hotspots H      number of hotspot centers (4)
  --hot-radius R    ball radius around each center (3)
  --hot-fraction F  probability a request is hotspot-local (0.8)
  --hotspot-seed S  seed for center placement (1)
  --origin-gamma G  Zipf exponent over origin ranks (1.0)
  --flash-file F    boosted file id (0)
  --flash-start T   first boosted request (0)
  --flash-duration D  boosted window length in requests (1000)
  --flash-boost B   weight multiplier during the window (50)
  --flash-tau T     post-window decay constant in requests (0 = hard stop)
  --shift-epoch E   requests per popularity epoch (500)
  --shift-step S    rank rotation per epoch (1)
  --trace PATH      trace file to replay (with --workload trace)
  --cycle           wrap a finite trace instead of stopping

WORKLOAD GENERATE/INSPECT:
  generate: --out PATH (required; .csv extension = CSV, else binary),
            --workload/--side/--files/--cache/--gamma/--requests/--seed as above
  inspect:  --trace PATH (required), --top N hottest files/origins to list (5)

QUEUE OPTIONS (plus the workload options above):
  --side/--files/--cache/--gamma/--radius/--choices/--seed as above
  --strategy S      nearest | two-choice | d-choice | least-loaded (two-choice)
  --stale P         refresh queue-length info only every P dispatches (1 = fresh)
  --lambda L        per-server arrival rate in (0,1) (0.8)
  --horizon T       simulated time (2000)
  --warmup T        measurement warm-up (500)
  --stride S        sample the queue-length series every S arrivals (0 = off)

THROUGHPUT OPTIONS:
  --scale S         quick | default | full grid (PABA_SCALE or default)
  --seed S          master seed (20170529)
  --requests Q      requests per grid point (0 = n of the point)
  --out PATH        JSON report path (BENCH_throughput.json; 'none' skips)
  --csv             emit CSV instead of a table
  --serve-metrics ADDR  serve grid progress at http://ADDR/metrics

PROFILE OPTIONS:
  --scale S         quick | default | full grid (PABA_SCALE or default)
  --seed S          master seed (20170529)
  --runs R          Monte-Carlo runs merged per grid point (4)
  --requests Q      requests per run (0 = n of the point)
  --out PATH        JSON artifact path (BENCH_profile.json; 'none' skips)
  --baseline PATH   committed throughput artifact for the NullRecorder
                    non-regression check (BENCH_throughput.json; 'none' skips)
  --tolerance T     geometric-mean speedup-ratio gate (0.35)
  --check           fail when the baseline gate fails or no baseline exists
  --csv             emit CSV instead of tables

PROFILE DIFF (paba profile --diff OLD.json NEW.json):
  compares two paba-profile/1 artifacts — per-regime sampler-path shares
  (two-proportion z-test), stage-time ratios, and baseline throughput
  geo-mean — and exits nonzero when any regression gate trips
  --diff-z Z        |z| gate for a path-share shift (6)
  --share-floor F   absolute share delta a shift must also exceed (0.02)
  --span-ratio R    NEW/OLD mean stage-time ratio gate (3)
  --speedup-ratio R NEW/OLD speedup geo-mean lower gate (0.5)

TRACE OPTIONS (plus the simulate/workload options above):
  --sample N        keep every N-th request's event (16)
  --reservoir C     instead: uniform reservoir of C events per run
  --stride S        load-series sampling stride in requests (64; 0 = off)
  --max-events E    ring-buffer bound per run for --sample mode (4096)
  --events-out PATH JSONL event dump ('-' = stdout, 'none' skips; none)
  --series-out PATH paba-trace-series/1 JSON ('-' = stdout; none)
  --chrome-out PATH Chrome Trace Format spans for Perfetto ('-'; none)

REPRO OPTIONS:
  --scale S         quick | default | full experiment grids (PABA_SCALE or default)
  --quick           shorthand for --scale quick
  --seed S          master seed (20170529)
  --runs R          override every experiment's Monte-Carlo run count
  --out PATH        artifact path (BENCH_repro.json; BENCH_repro_fresh.json
                    under --check; 'none' skips writing)
  --check           statistically diff the fresh run against --golden and
                    fail on regression or gate failure
  --golden PATH     committed golden artifact to diff against (BENCH_repro.json)
  --csv             emit CSV instead of tables

CHURN OPTIONS:
  --scale/--quick/--seed/--runs/--out/--check/--golden/--csv  as for repro
                    (artifact BENCH_churn.json; fresh BENCH_churn_fresh.json)
  --threads T       worker threads (0 = available parallelism)
  --serve-metrics ADDR  expose live counters (churn events, retries, failed
                    requests, repair migrations) at http://ADDR/metrics
  --side/--files/--cache/--gamma/--radius  override the network regime
  --cycle-fraction F    fraction of nodes crashed/left then rejoined (0.2)
  --graceful-fraction F leave (with handoff) vs crash split (0.5)
  --inserts I       mid-run catalogue inserts (scale default)
  --repair P        none | random | two-choices (two-choices)
  --retry-budget B  dead-replica failover retries per request (8)
  --replication R   DHT successor replicas per file (3)

QUEUEING OPTIONS:
  --scale/--quick/--seed/--runs/--out/--check/--golden/--csv  as for repro
                    (artifact BENCH_queueing.json; fresh BENCH_queueing_fresh.json)
  --threads T       worker threads (0 = available parallelism)
  --serve-metrics ADDR  expose run progress at http://ADDR/metrics
  --side/--files/--cache/--gamma/--radius  override the network regime
  --lambda L        per-server arrival rate of the paired arms (0.9)
  --horizon T       simulated time per run (scale default)
  --warmup T        measurement-window start (scale default)
  --stale-period P  stale-signal refresh period in dispatches (4n)

REPORT OPTIONS:
  --dir DIR         directory scanned for BENCH_*.json artifacts (.)
  --out PATH        markdown output path ('-' = stdout, 'none' skips; -)
  exits nonzero on provenance/consistency failures (unknown schema,
  provenance contradicting its artifact); warnings are non-fatal

BALLSBINS OPTIONS:
  --process P       one | two | d | beta | batched (two)
  --bins N          number of bins (4096)
  --balls M         number of balls (= bins)
  --d D             choices for 'd'/'batched' (3)
  --beta B          beta for 'beta' (0.5)
  --batch B         batch size for 'batched' (64)
  --runs/--seed     as above"
    );
}

const SIM_KEYS: &[&str] = &[
    "side",
    "files",
    "cache",
    "gamma",
    "placement",
    "strategy",
    "radius",
    "choices",
    "stale",
    "requests",
    "runs",
    "seed",
    "grid",
    "csv",
    "telemetry",
    "telemetry-out",
    "trace-out",
    "serve-metrics",
];

/// Extra option keys accepted by `paba trace` on top of [`SIM_KEYS`].
const TRACE_KEYS: &[&str] = &[
    "sample",
    "reservoir",
    "stride",
    "max-events",
    "events-out",
    "series-out",
    "chrome-out",
];

/// Workload-family option keys shared by `simulate` and `workload generate`.
const WORKLOAD_KEYS: &[&str] = &[
    "workload",
    "hotspots",
    "hot-radius",
    "hot-fraction",
    "hotspot-seed",
    "origin-gamma",
    "flash-file",
    "flash-start",
    "flash-duration",
    "flash-boost",
    "flash-tau",
    "shift-epoch",
    "shift-step",
    "trace",
    "cycle",
];

fn popularity(gamma: f64) -> Popularity {
    if gamma == 0.0 {
        Popularity::Uniform
    } else {
        Popularity::zipf(gamma)
    }
}

/// Parse the `--workload` family of options into a [`WorkloadSpec`].
fn workload_spec(a: &Args) -> Result<WorkloadSpec, String> {
    match a.str_or("workload", "iid").as_str() {
        "iid" => Ok(WorkloadSpec::Iid),
        "hotspot" => Ok(WorkloadSpec::Hotspot {
            hotspots: a.parse_or("hotspots", 4u32)?,
            radius: a.parse_or("hot-radius", 3u32)?,
            fraction: a.parse_or("hot-fraction", 0.8f64)?,
            seed: a.parse_or("hotspot-seed", 1u64)?,
        }),
        "zipf-origins" => Ok(WorkloadSpec::ZipfOrigins {
            gamma: a.parse_or("origin-gamma", 1.0f64)?,
        }),
        "flash-crowd" => Ok(WorkloadSpec::FlashCrowd {
            file: a.parse_or("flash-file", 0u32)?,
            start: a.parse_or("flash-start", 0u64)?,
            duration: a.parse_or("flash-duration", 1000u64)?,
            boost: a.parse_or("flash-boost", 50.0f64)?,
            tau: a.parse_or("flash-tau", 0.0f64)?,
        }),
        "shifting" => Ok(WorkloadSpec::Shifting {
            epoch: a.parse_or("shift-epoch", 500u64)?,
            step: a.parse_or("shift-step", 1u32)?,
        }),
        "trace" => WorkloadSpec::load(
            a.get("trace")
                .ok_or("--workload trace needs --trace <path>")?,
            a.flag("cycle"),
        ),
        other => Err(format!(
            "--workload: unknown workload '{other}' \
             (iid | hotspot | zipf-origins | flash-crowd | shifting | trace)"
        )),
    }
}

/// Three summaries every run family reports.
#[derive(Debug)]
pub(crate) struct SimStats {
    max_load: Summary,
    cost: Summary,
    fallback: Summary,
}

fn summarize_reports(reports: &[SimReport]) -> SimStats {
    SimStats {
        max_load: paba_mcrunner::summarize(reports.iter().map(|r| r.max_load() as f64)),
        cost: paba_mcrunner::summarize(reports.iter().map(|r| r.comm_cost())),
        fallback: paba_mcrunner::summarize(reports.iter().map(|r| r.fallback_fraction())),
    }
}

/// Error unless the command was invoked without a positional action
/// (only `paba workload <action>` takes one).
fn reject_action(a: &Args) -> Result<(), String> {
    match &a.action {
        Some(action) => Err(format!("unexpected positional argument '{action}'")),
        None => Ok(()),
    }
}

/// Everything one Monte-Carlo run of `paba simulate` needs. Shared by the
/// recorded (`--telemetry`) and unrecorded paths so both run byte-identical
/// simulations — recording never touches the RNG stream.
struct SimRunCfg {
    side: u32,
    k: u32,
    m: u32,
    gamma: f64,
    radius: Option<u32>,
    choices: u32,
    stale: u64,
    seed: u64,
    requests_opt: u64,
    strategy: String,
    placement: String,
    policy: PlacementPolicy,
    spec: WorkloadSpec,
}

/// One `paba simulate` run: build the network, instantiate the workload,
/// run the selected strategy with `rec` threaded through the hot path.
fn sim_run_one<Rec: Recorder + Clone>(
    cfg: &SimRunCfg,
    run_idx: usize,
    rng: &mut SmallRng,
    rec: &Rec,
) -> SimReport {
    let net: CacheNetwork<Torus> = if cfg.placement == "dht" {
        let library = paba_core::Library::new(cfg.k, popularity(cfg.gamma));
        let p = paba_dht::dht_placement(
            cfg.side * cfg.side,
            &library,
            &paba_dht::DhtPlacementConfig {
                vnodes: 128,
                salt: paba_util::mix_seed(cfg.seed, run_idx as u64),
                rule: paba_dht::ReplicationRule::Proportional { m: cfg.m },
            },
        );
        CacheNetwork::from_parts(Torus::new(cfg.side), library, p)
    } else {
        CacheNetwork::builder()
            .torus_side(cfg.side)
            .library(cfg.k, popularity(cfg.gamma))
            .cache_size(cfg.m)
            .placement_policy(cfg.policy)
            .build(rng)
    };
    let mut source = cfg
        .spec
        .build(&net, UncachedPolicy::ResampleFile)
        .expect("spec was validated before spawning runs");
    let requests = if cfg.requests_opt != 0 {
        cfg.requests_opt
    } else {
        // Finite sources (trace replay) default to their length.
        RequestSource::<Torus>::size_hint(&source).unwrap_or(net.n() as u64)
    };
    match cfg.strategy.as_str() {
        "nearest" => {
            let mut s = NearestReplica::new().with_recorder(rec.clone());
            simulate_source_profiled(&net, &mut s, &mut source, requests, rng, rec)
        }
        "two-choice" | "d-choice" => {
            let d = if cfg.strategy == "two-choice" {
                2
            } else {
                cfg.choices
            };
            if cfg.stale > 1 {
                let inner = ProximityChoice::with_choices(cfg.radius, d).with_recorder(rec.clone());
                let mut s = StaleLoad::new(inner, cfg.stale);
                simulate_source_profiled(&net, &mut s, &mut source, requests, rng, rec)
            } else {
                let mut s = ProximityChoice::with_choices(cfg.radius, d).with_recorder(rec.clone());
                simulate_source_profiled(&net, &mut s, &mut source, requests, rng, rec)
            }
        }
        "least-loaded" => {
            let mut s = LeastLoadedInBall::new(cfg.radius).with_recorder(rec.clone());
            simulate_source_profiled(&net, &mut s, &mut source, requests, rng, rec)
        }
        other => unreachable!("strategy '{other}' was validated before spawning"),
    }
}

/// Write `content` to `path`, where `-` means stdout (so artifacts pipe
/// straight into `jq` & co). The "wrote …" notice goes to stderr and only
/// for real files, keeping stdout clean for the piped payload.
fn write_output(path: &str, content: &str, what: &str) -> Result<(), String> {
    if path == "-" {
        print!("{content}");
        Ok(())
    } else {
        std::fs::write(path, content).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {what} to {path}");
        Ok(())
    }
}

/// Spawn the `/metrics` scrape endpoint when `--serve-metrics ADDR` was
/// given. The returned guard keeps the listener thread alive for the
/// duration of the run; dropping it stops the endpoint. The bound
/// address goes to stderr so `--serve-metrics 127.0.0.1:0` (ephemeral
/// port) is usable from scripts.
fn spawn_metrics(a: &Args, live: &LiveRun) -> Result<Option<MetricsServer>, String> {
    let Some(addr) = a.get("serve-metrics") else {
        return Ok(None);
    };
    let render = {
        let live = live.clone();
        move || live.render_metrics()
    };
    let server = MetricsServer::spawn(addr, render)?;
    eprintln!(
        "serving live metrics on http://{}/metrics",
        server.local_addr()
    );
    Ok(Some(server))
}

/// Parse the simulate-family configuration shared by `paba simulate` and
/// `paba trace`. Returns the per-run config plus the run count;
/// `extra_keys` extends the accepted option set.
fn sim_cfg_from_args(a: &Args, extra_keys: &[&str]) -> Result<(SimRunCfg, usize), String> {
    reject_action(a)?;
    let mut known = SIM_KEYS.to_vec();
    known.extend_from_slice(WORKLOAD_KEYS);
    known.extend_from_slice(extra_keys);
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let side: u32 = a.parse_or("side", 45)?;
    let k: u32 = a.parse_or("files", 500)?;
    let m: u32 = a.parse_or("cache", 10)?;
    let gamma: f64 = a.parse_or("gamma", 0.0)?;
    let radius = a.radius("radius")?;
    let choices: u32 = a.parse_or("choices", 2)?;
    let stale: u64 = a.parse_or("stale", 1)?;
    let runs: usize = a.parse_or("runs", 20)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let requests_opt: u64 = a.parse_or("requests", 0)?;
    let strategy = a.str_or("strategy", "two-choice");
    if !matches!(
        strategy.as_str(),
        "nearest" | "two-choice" | "d-choice" | "least-loaded"
    ) {
        return Err(format!("--strategy: unknown strategy '{strategy}'"));
    }
    let placement = a.str_or("placement", "proportional");
    if a.flag("grid") {
        return Err(
            "--grid: the CLI currently drives the torus; use the library API \
                    (CacheNetworkBuilder::build_grid) for grid runs"
                .into(),
        );
    }

    let policy = match placement.as_str() {
        "proportional" => PlacementPolicy::ProportionalWithReplacement,
        "distinct" => PlacementPolicy::ProportionalDistinct,
        "full" => PlacementPolicy::FullLibrary,
        "dht" => PlacementPolicy::ProportionalWithReplacement, // replaced below
        other => return Err(format!("--placement: unknown policy '{other}'")),
    };

    // Workload selection: parsed and validated once (traces load here),
    // then instantiated fresh for every Monte-Carlo run.
    let spec = workload_spec(a)?;
    spec.validate(side * side, k)?;
    if let WorkloadSpec::Replay {
        trace,
        cycle: false,
    } = &spec
    {
        if requests_opt > trace.len() {
            return Err(format!(
                "--requests {requests_opt} exceeds the trace length {} (pass --cycle to wrap)",
                trace.len()
            ));
        }
    }

    let cfg = SimRunCfg {
        side,
        k,
        m,
        gamma,
        radius,
        choices,
        stale,
        seed,
        requests_opt,
        strategy,
        placement,
        policy,
        spec,
    };
    Ok((cfg, runs))
}

/// `paba simulate`.
#[allow(clippy::type_complexity)]
pub(crate) fn simulate_cmd_impl(
    a: &Args,
) -> Result<
    (
        SimStats,
        usize,
        Option<TelemetrySnapshot>,
        Option<TraceReport>,
    ),
    String,
> {
    let (cfg, runs) = sim_cfg_from_args(a, &[])?;
    let seed = cfg.seed;
    let telemetry = a.flag("telemetry") || a.get("telemetry-out").is_some();
    let tracing = a.get("trace-out").is_some();
    let serving = a.get("serve-metrics").is_some();
    let (reports, snapshot, trace): (
        Vec<SimReport>,
        Option<TelemetrySnapshot>,
        Option<TraceReport>,
    ) = if tracing {
        // One traced pass serves both outputs: a TraceRecorder embeds an
        // AtomicRecorder, so the aggregate snapshot comes for free.
        let trace_cfg = paba_telemetry::TraceConfig {
            sampling: paba_telemetry::Sampling::OneIn(1),
            stride: 0,
            max_events: 4096,
            seed,
        };
        let live = serving.then(|| LiveRun::new(runs as u64, false));
        let _server = match &live {
            Some(l) => spawn_metrics(a, l)?,
            None => None,
        };
        let (reports, report) = match &live {
            // `/metrics` needs a recorder it can snapshot mid-run, so tee
            // every worker's TraceRecorder into the shared live one; the
            // lazy candidates iterator goes to the trace side, which is
            // the only consumer that needs it.
            Some(l) => paba_mcrunner::run_parallel_traced(
                runs,
                seed,
                None,
                Some(l.progress.as_ref()),
                trace_cfg,
                |rec, i, rng| sim_run_one(&cfg, i, rng, &Tee(rec, l.recorder.as_ref())),
            ),
            None => paba_mcrunner::run_parallel_traced(
                runs,
                seed,
                None,
                None,
                trace_cfg,
                |rec, i, rng| sim_run_one(&cfg, i, rng, &rec),
            ),
        };
        let snap = telemetry.then(|| report.snapshot.clone());
        (reports, snap, Some(report))
    } else if serving {
        // One AtomicRecorder shared by every worker so a concurrent
        // scrape sees the run as it happens.
        let live = LiveRun::new(runs as u64, false);
        let _server = spawn_metrics(a, &live)?;
        let reports = run_parallel_live(runs, seed, None, &live, |rec, i, rng| {
            sim_run_one(&cfg, i, rng, &rec)
        });
        let snap = telemetry.then(|| live.recorder.snapshot());
        (reports, snap, None)
    } else if telemetry {
        let (reports, recorders) = paba_mcrunner::run_parallel_with_state(
            runs,
            seed,
            None,
            None,
            AtomicRecorder::new,
            |rec, run_idx, rng| sim_run_one(&cfg, run_idx, rng, &rec),
        );
        let mut snap = TelemetrySnapshot::empty();
        for rec in &recorders {
            snap.merge(&rec.snapshot());
        }
        (reports, Some(snap), None)
    } else {
        let reports = paba_mcrunner::run_parallel(runs, seed, None, |run_idx, rng| {
            sim_run_one(&cfg, run_idx, rng, &NullRecorder)
        });
        (reports, None, None)
    };
    Ok((summarize_reports(&reports), runs, snapshot, trace))
}

/// `paba simulate` with printing.
pub fn simulate(a: &Args) -> Result<(), String> {
    let (stats, runs, telemetry, trace) = simulate_cmd_impl(a)?;
    let telemetry_out = a.str_or("telemetry-out", "none");
    let trace_out = a.str_or("trace-out", "none");
    // When an artifact goes to stdout the human summary moves to stderr,
    // so `paba simulate --trace-out - | jq` sees pure JSON.
    let piping = telemetry_out == "-" || trace_out == "-";

    let mut t = Table::new(["metric", "mean", "ci95", "min", "max"]);
    for (name, s) in [
        ("max load L", &stats.max_load),
        ("comm cost C (hops)", &stats.cost),
        ("fallback fraction", &stats.fallback),
    ] {
        t.push_row([
            name.to_string(),
            format!("{:.4}", s.mean),
            format!("±{:.4}", 1.96 * s.std_err),
            format!("{:.4}", s.min),
            format!("{:.4}", s.max),
        ]);
    }
    let mut text = String::new();
    if a.flag("csv") {
        text.push_str(&t.to_csv());
    } else {
        text.push_str(&format!("{runs} runs:\n"));
        text.push_str(&t.to_markdown());
    }
    if let Some(snap) = &telemetry {
        if !a.flag("csv") {
            text.push('\n');
            text.push_str(&snap.table());
        }
    }
    if piping {
        eprint!("{text}");
    } else {
        print!("{text}");
    }

    if let Some(snap) = &telemetry {
        if telemetry_out != "none" {
            let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
            let provenance = Provenance::capture(
                schema::TELEMETRY,
                seed,
                "custom",
                &format!("simulate telemetry runs:{runs}"),
            );
            let json = format!(
                "{{\n  \"schema\": \"{}\",\n  \"provenance\": {},\n  \"requests\": {},\n  \
                 \"telemetry\": {}\n}}\n",
                schema::TELEMETRY,
                provenance.to_json(),
                snap.total_requests(),
                snap.to_json()
            );
            write_output(&telemetry_out, &json, "telemetry snapshot")?;
        }
    }
    if let Some(report) = &trace {
        if trace_out != "none" {
            write_output(&trace_out, &report.events_jsonl(), "trace events")?;
        }
    }
    Ok(())
}

/// `paba trace` — time-resolved tracing over the simulate configuration:
/// sampled per-request events, a load-evolution time series, and
/// Chrome-trace stage spans, all collected deterministically through
/// [`paba_mcrunner::run_parallel_traced`].
pub fn trace(a: &Args) -> Result<(), String> {
    let (cfg, runs) = sim_cfg_from_args(a, TRACE_KEYS)?;
    let sampling = match (a.get("sample"), a.get("reservoir")) {
        (Some(_), Some(_)) => return Err("--sample and --reservoir are mutually exclusive".into()),
        (Some(n), None) => {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("--sample: bad count '{n}'"))?;
            if n == 0 {
                return Err("--sample must be at least 1".into());
            }
            paba_telemetry::Sampling::OneIn(n)
        }
        (None, Some(c)) => {
            let c: usize = c
                .parse()
                .map_err(|_| format!("--reservoir: bad capacity '{c}'"))?;
            if c == 0 {
                return Err("--reservoir must be at least 1".into());
            }
            paba_telemetry::Sampling::Reservoir(c)
        }
        (None, None) => paba_telemetry::Sampling::OneIn(16),
    };
    let trace_cfg = paba_telemetry::TraceConfig {
        sampling,
        stride: a.parse_or("stride", 64u64)?,
        max_events: a.parse_or("max-events", 4096usize)?,
        seed: cfg.seed,
    };
    let stride = trace_cfg.stride;
    let live = a
        .get("serve-metrics")
        .is_some()
        .then(|| LiveRun::new(runs as u64, false));
    let _server = match &live {
        Some(l) => spawn_metrics(a, l)?,
        None => None,
    };
    let (reports, report) = match &live {
        // Tee each worker's TraceRecorder into the shared live recorder
        // so mid-run scrapes see the aggregate counters.
        Some(l) => paba_mcrunner::run_parallel_traced(
            runs,
            cfg.seed,
            None,
            Some(l.progress.as_ref()),
            trace_cfg,
            |rec, i, rng| sim_run_one(&cfg, i, rng, &Tee(rec, l.recorder.as_ref())),
        ),
        None => paba_mcrunner::run_parallel_traced(
            runs,
            cfg.seed,
            None,
            None,
            trace_cfg,
            |rec, i, rng| sim_run_one(&cfg, i, rng, &rec),
        ),
    };

    let events_out = a.str_or("events-out", "none");
    let series_out = a.str_or("series-out", "none");
    let chrome_out = a.str_or("chrome-out", "none");
    // When any artifact goes to stdout the human summary moves to
    // stderr, so `paba trace ... --events-out - | jq` sees pure JSON.
    let piping = [&events_out, &series_out, &chrome_out]
        .iter()
        .any(|p| p.as_str() == "-");

    let stats = summarize_reports(&reports);
    let mean = report.mean_series();
    let mut t = Table::new(["requests", "max load", "mean load", "gap to mean", "p99"]);
    for p in &mean.points {
        t.push_row([
            format!("{}", p.requests),
            format!("{:.3}", p.max_load),
            format!("{:.3}", p.mean_load),
            format!("{:.3}", p.gap_to_mean),
            format!("{:.3}", p.p99),
        ]);
    }
    let mut text = String::new();
    use std::fmt::Write as _;
    if a.flag("csv") {
        text.push_str(&t.to_csv());
    } else {
        writeln!(
            text,
            "{runs} runs, {} requests: max load {:.3} ± {:.3}",
            report.total_requests(),
            stats.max_load.mean,
            1.96 * stats.max_load.std_err
        )
        .unwrap();
        let events: usize = report.runs.iter().map(|r| r.events.len()).sum();
        let dropped: u64 = report.runs.iter().map(|r| r.dropped()).sum();
        writeln!(
            text,
            "retained {events} sampled events ({dropped} evicted by buffer bounds), \
             {} series points/run",
            mean.points.len()
        )
        .unwrap();
        if !mean.points.is_empty() {
            text.push_str("\nmean load evolution across runs:\n");
            text.push_str(&t.to_markdown());
        }
        if a.flag("telemetry") {
            text.push('\n');
            text.push_str(&report.snapshot.table());
        }
    }
    if piping {
        eprint!("{text}");
    } else {
        print!("{text}");
    }

    if events_out != "none" {
        write_output(&events_out, &report.events_jsonl(), "trace events")?;
    }
    if series_out != "none" {
        let provenance = Provenance::capture(
            schema::TRACE_SERIES,
            cfg.seed,
            "custom",
            &format!(
                "trace side:{} files:{} cache:{} runs:{runs} stride:{stride}",
                cfg.side, cfg.k, cfg.m
            ),
        );
        write_output(
            &series_out,
            &report.series_json(&provenance),
            "load time series",
        )?;
    }
    if chrome_out != "none" {
        write_output(&chrome_out, &report.chrome_json(), "Chrome trace")?;
    }
    Ok(())
}

/// `paba queue`.
pub fn queue(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let mut known = vec![
        "side", "files", "cache", "gamma", "radius", "choices", "strategy", "stale", "stride",
        "lambda", "horizon", "warmup", "seed", "csv",
    ];
    known.extend_from_slice(WORKLOAD_KEYS);
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let side: u32 = a.parse_or("side", 24)?;
    let k: u32 = a.parse_or("files", 32)?;
    let m: u32 = a.parse_or("cache", 8)?;
    let gamma: f64 = a.parse_or("gamma", 0.0)?;
    let radius = a.radius("radius")?;
    let choices: u32 = a.parse_or("choices", 2)?;
    let stale: u64 = a.parse_or("stale", 1)?;
    let stride: u64 = a.parse_or("stride", 0)?;
    let lambda: f64 = a.parse_or("lambda", 0.8)?;
    let horizon: f64 = a.parse_or("horizon", 2_000.0)?;
    let warmup: f64 = a.parse_or("warmup", 500.0)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let strategy = a.str_or("strategy", "two-choice");
    if !(0.0..1.0).contains(&lambda) || lambda == 0.0 {
        return Err(format!("--lambda must be in (0,1), got {lambda}"));
    }
    if warmup >= horizon {
        return Err(format!(
            "--warmup must precede --horizon ({warmup} >= {horizon})"
        ));
    }
    if stale == 0 {
        return Err("--stale must be a positive refresh period".into());
    }
    let spec = workload_spec(a)?;
    spec.validate(side * side, k)?;

    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(k, popularity(gamma))
        .cache_size(m)
        .build(&mut rng);
    let mut source = spec.build(&net, UncachedPolicy::ResampleFile)?;
    let cfg = paba_supermarket::QueueSimConfig {
        lambda,
        horizon,
        warmup,
        tail_cap: 24,
        stride,
    };
    let rep = match strategy.as_str() {
        "nearest" => {
            let mut s = NearestReplica::new();
            paba_supermarket::simulate_queueing_source(&net, &mut s, &mut source, &cfg, &mut rng)
        }
        "two-choice" | "d-choice" => {
            let d = if strategy == "two-choice" { 2 } else { choices };
            if stale > 1 {
                let mut s = StaleLoad::new(ProximityChoice::with_choices(radius, d), stale);
                paba_supermarket::simulate_queueing_source(
                    &net,
                    &mut s,
                    &mut source,
                    &cfg,
                    &mut rng,
                )
            } else {
                let mut s = ProximityChoice::with_choices(radius, d);
                paba_supermarket::simulate_queueing_source(
                    &net,
                    &mut s,
                    &mut source,
                    &cfg,
                    &mut rng,
                )
            }
        }
        "least-loaded" => {
            let mut s = LeastLoadedInBall::new(radius);
            paba_supermarket::simulate_queueing_source(&net, &mut s, &mut source, &cfg, &mut rng)
        }
        other => return Err(format!("--strategy: unknown strategy '{other}'")),
    };

    let mut t = Table::new(["metric", "value"]);
    t.push_row(["servers n".to_string(), format!("{}", rep.n)]);
    t.push_row(["lambda".to_string(), format!("{lambda}")]);
    t.push_row(["strategy".to_string(), strategy.clone()]);
    t.push_row(["workload".to_string(), spec.name().to_string()]);
    t.push_row(["max queue".to_string(), format!("{}", rep.max_queue)]);
    t.push_row([
        "max queue (warmup)".to_string(),
        format!("{}", rep.pre_warmup_max_queue),
    ]);
    t.push_row(["mean queue".to_string(), format!("{:.4}", rep.mean_queue)]);
    t.push_row([
        "mean response".to_string(),
        format!("{:.4}", rep.mean_response),
    ]);
    t.push_row(["sojourn p50".to_string(), format!("{:.4}", rep.sojourn_p50)]);
    t.push_row(["sojourn p99".to_string(), format!("{:.4}", rep.sojourn_p99)]);
    t.push_row([
        "sojourn p999".to_string(),
        format!("{:.4}", rep.sojourn_p999),
    ]);
    t.push_row([
        "Little's-law response".to_string(),
        format!("{:.4}", rep.littles_law_response()),
    ]);
    t.push_row([
        "comm cost (hops)".to_string(),
        format!("{:.4}", rep.comm_cost),
    ]);
    for kq in 1..=6usize {
        t.push_row([format!("Pr[Q >= {kq}]"), format!("{:.5}", rep.tail_at(kq))]);
    }
    if stride > 0 {
        t.push_row([
            "series points".to_string(),
            format!("{}", rep.series.points.len()),
        ]);
    }
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_markdown());
    }
    Ok(())
}

/// `paba ballsbins`.
pub fn ballsbins(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let known = [
        "process", "bins", "balls", "d", "beta", "batch", "runs", "seed", "csv",
    ];
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let process = a.str_or("process", "two");
    let n: u32 = a.parse_or("bins", 4096)?;
    let m: u64 = a.parse_or("balls", n as u64)?;
    let d: u32 = a.parse_or("d", 3)?;
    let beta: f64 = a.parse_or("beta", 0.5)?;
    let batch: u64 = a.parse_or("batch", 64)?;
    let runs: usize = a.parse_or("runs", 20)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    if !matches!(process.as_str(), "one" | "two" | "d" | "beta" | "batched") {
        return Err(format!("--process: unknown process '{process}'"));
    }

    let maxes: Vec<f64> = paba_mcrunner::run_parallel(runs, seed, None, |_i, rng| {
        let res = match process.as_str() {
            "one" => paba_ballsbins::one_choice(n, m, rng),
            "two" => paba_ballsbins::two_choice(n, m, rng),
            "d" => paba_ballsbins::d_choice(n, m, d, rng),
            "beta" => paba_ballsbins::one_plus_beta(n, m, beta, rng),
            "batched" => paba_ballsbins::batched_d_choice(n, m, d, batch, rng),
            _ => unreachable!("validated above"),
        };
        res.max_load() as f64
    });
    let s = paba_mcrunner::summarize(maxes.iter().copied());
    let mut t = Table::new([
        "process",
        "bins",
        "balls",
        "max load (mean)",
        "ci95",
        "min",
        "max",
    ]);
    t.push_row([
        process,
        format!("{n}"),
        format!("{m}"),
        format!("{:.4}", s.mean),
        format!("±{:.4}", 1.96 * s.std_err),
        format!("{}", s.min),
        format!("{}", s.max),
    ]);
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_markdown());
    }
    Ok(())
}

/// `paba throughput` — the requests/sec harness of `paba-bench`, exposed
/// on the CLI so perf runs don't require a bench target invocation.
pub fn throughput(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let unknown = a.unknown_keys(&["scale", "seed", "requests", "out", "csv", "serve-metrics"]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let env_cfg = paba_util::envcfg::EnvCfg::from_env();
    let scale = match a.get("scale") {
        None => env_cfg.scale,
        Some(s) => s
            .parse()
            .map_err(|_| format!("--scale: expected quick|default|full, got '{s}'"))?,
    };
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let requests: u64 = a.parse_or("requests", 0)?;
    let out = a.str_or("out", "BENCH_throughput.json");

    // `--serve-metrics` here exposes grid progress only: the timed loops
    // stay uninstrumented, since a recorder in the hot path would perturb
    // exactly what this harness measures.
    let points = paba_bench::throughput::regime_grid(scale).len() as u64;
    let live = a
        .get("serve-metrics")
        .is_some()
        .then(|| LiveRun::new(points, false));
    let _server = match &live {
        Some(l) => spawn_metrics(a, l)?,
        None => None,
    };
    let measurements = paba_bench::throughput::run_grid_with_progress(
        scale,
        seed,
        requests,
        live.as_ref().map(|l| l.progress.as_ref()),
    );
    let table = paba_bench::throughput::to_table(&measurements);
    if a.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
    }
    if out != "none" {
        let path = std::path::PathBuf::from(&out);
        paba_bench::throughput::write_json(&path, &measurements, seed, scale)?;
        eprintln!("wrote {} measurements to {out}", measurements.len());
    }
    Ok(())
}

/// `paba profile` — the telemetry harness of `paba-bench`: run the
/// throughput regime grid under Strategy II with an [`AtomicRecorder`]
/// threaded through the hot path, print per-regime sampler-path
/// breakdowns plus the aggregate counter/timing view, optionally gate on
/// the NullRecorder throughput baseline, and write `BENCH_profile.json`.
pub fn profile(a: &Args) -> Result<(), String> {
    // `paba profile --diff OLD.json NEW.json`: statistically compare two
    // committed profile artifacts instead of running the grid. Must come
    // before reject_action — NEW.json parses as the positional action.
    if let Some(old) = a.get("diff") {
        let new = a
            .action
            .as_deref()
            .ok_or("--diff needs two artifacts: paba profile --diff OLD.json NEW.json")?;
        let unknown = a.unknown_keys(&[
            "diff",
            "diff-z",
            "share-floor",
            "span-ratio",
            "speedup-ratio",
            "csv",
        ]);
        if !unknown.is_empty() {
            return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
        }
        let defaults = paba_bench::diff::DiffGates::default();
        let gates = paba_bench::diff::DiffGates {
            z: a.parse_or("diff-z", defaults.z)?,
            share_floor: a.parse_or("share-floor", defaults.share_floor)?,
            span_ratio: a.parse_or("span-ratio", defaults.span_ratio)?,
            speedup_ratio: a.parse_or("speedup-ratio", defaults.speedup_ratio)?,
        };
        let diff = paba_bench::diff::diff_files(
            std::path::Path::new(old),
            std::path::Path::new(new),
            gates,
        )?;
        let t = paba_bench::diff::diff_table(&diff);
        if a.flag("csv") {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.to_markdown());
        }
        let regressions = diff.regressions();
        eprintln!(
            "compared {} shared regime label(s): {} regression(s)",
            diff.compared_labels, regressions
        );
        if regressions > 0 {
            return Err(format!(
                "{regressions} regression(s) between {old} and {new} \
                 (gates: z>{:.1}, share>{:.3}, span ratio>{:.2}, speedup ratio<{:.2})",
                gates.z, gates.share_floor, gates.span_ratio, gates.speedup_ratio
            ));
        }
        return Ok(());
    }
    reject_action(a)?;
    let unknown = a.unknown_keys(&[
        "scale",
        "seed",
        "runs",
        "requests",
        "out",
        "baseline",
        "tolerance",
        "check",
        "csv",
    ]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let env_cfg = paba_util::envcfg::EnvCfg::from_env();
    let scale = match a.get("scale") {
        None => env_cfg.scale,
        Some(s) => s
            .parse()
            .map_err(|_| format!("--scale: expected quick|default|full, got '{s}'"))?,
    };
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let runs: usize = a.parse_or("runs", 4)?;
    if runs == 0 {
        return Err("--runs must be a positive run count".into());
    }
    let requests: u64 = a.parse_or("requests", 0)?;
    let out = a.str_or("out", "BENCH_profile.json");
    let baseline_path = a.str_or("baseline", "BENCH_throughput.json");
    let tolerance: f64 =
        a.parse_or("tolerance", paba_bench::profile::DEFAULT_BASELINE_TOLERANCE)?;
    let check = a.flag("check");

    let points = paba_bench::profile::run_profile(scale, seed, runs, requests, None);
    let table = paba_bench::profile::to_table(&points);
    if a.flag("csv") {
        print!("{}", table.to_csv());
    } else {
        print!("{}", table.to_markdown());
        println!();
        print!("{}", paba_bench::profile::aggregate(&points).table());
    }

    let baseline = if baseline_path == "none" {
        None
    } else {
        paba_bench::profile::baseline_check(
            std::path::Path::new(&baseline_path),
            scale,
            seed,
            tolerance,
        )?
    };
    if let Some(b) = &baseline {
        let t = paba_bench::profile::baseline_table(b);
        if a.flag("csv") {
            print!("{}", t.to_csv());
        } else {
            println!();
            print!("{}", t.to_markdown());
        }
        eprintln!(
            "baseline {}: geo-mean speedup ratio {:.2} vs {baseline_path} (gate {:.2})",
            if b.pass { "ok" } else { "FAILED" },
            b.geo_mean_ratio,
            b.tolerance
        );
    }
    if out != "none" {
        paba_bench::profile::write_json(
            std::path::Path::new(&out),
            &points,
            baseline.as_ref(),
            seed,
            scale,
        )?;
        eprintln!("wrote {} profiled points to {out}", points.len());
    }
    if check {
        match &baseline {
            None => {
                return Err(format!(
                    "--check needs a committed baseline artifact ('{baseline_path}' not found)"
                ))
            }
            Some(b) if !b.pass => {
                return Err(format!(
                    "NullRecorder throughput regressed: geo-mean speedup ratio {:.3} \
                     below tolerance {:.3} (vs {baseline_path})",
                    b.geo_mean_ratio, b.tolerance
                ))
            }
            _ => {}
        }
    }
    Ok(())
}

/// Do two path spellings name the same file? Canonicalizes each path
/// (falling back to canonicalizing the parent when the file does not
/// exist yet), so `BENCH_repro.json` and `./BENCH_repro.json` compare
/// equal; a raw string comparison backstops paths that cannot resolve.
fn same_file(a: &str, b: &str) -> bool {
    fn canon(p: &str) -> Option<std::path::PathBuf> {
        let path = std::path::Path::new(p);
        if let Ok(c) = std::fs::canonicalize(path) {
            return Some(c);
        }
        let parent = match path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => std::path::Path::new("."),
        };
        Some(std::fs::canonicalize(parent).ok()?.join(path.file_name()?))
    }
    match (canon(a), canon(b)) {
        (Some(x), Some(y)) => x == y,
        _ => a == b,
    }
}

/// `paba repro` — the theorem-gated paper-reproduction suite of
/// `paba-repro`: run the experiments, print the gates, write the
/// versioned artifact, and (with `--check`) statistically diff against
/// the committed golden.
pub fn repro(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let unknown = a.unknown_keys(&[
        "scale", "quick", "seed", "runs", "out", "check", "golden", "csv",
    ]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let env_cfg = paba_util::envcfg::EnvCfg::from_env();
    let scale = if a.flag("quick") {
        paba_util::envcfg::Scale::Quick
    } else {
        match a.get("scale") {
            None => env_cfg.scale,
            Some(s) => s
                .parse()
                .map_err(|_| format!("--scale: expected quick|default|full, got '{s}'"))?,
        }
    };
    let check = a.flag("check");
    let mut cfg = paba_repro::ReproConfig::new(scale);
    cfg.seed = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    cfg.runs_override = match a.get("runs") {
        None => None,
        Some(_) => match a.parse_or("runs", 0usize)? {
            0 => return Err("--runs must be a positive run count".into()),
            r => Some(r),
        },
    };
    let default_out = if check {
        // Never clobber the golden we are about to diff against.
        "BENCH_repro_fresh.json"
    } else {
        "BENCH_repro.json"
    };
    let out = a.str_or("out", default_out);
    let golden_path = a.str_or("golden", "BENCH_repro.json");
    if a.get("golden").is_some() && !check {
        return Err(
            "--golden only makes sense with --check (a plain run would ignore it \
             and regenerate the artifact instead)"
                .into(),
        );
    }
    // Load the golden *before* running or writing anything: a fresh
    // artifact written over the golden would otherwise self-compare
    // (guaranteed green) while destroying the committed baseline.
    let golden = if check {
        if out != "none" && same_file(&out, &golden_path) {
            return Err(format!(
                "--check refuses to overwrite the golden it diffs against \
                 ('{golden_path}'); pass a different --out (or 'none')"
            ));
        }
        Some(paba_repro::Artifact::load(std::path::Path::new(
            &golden_path,
        ))?)
    } else {
        None
    };

    let artifact = paba_repro::run_suite(&cfg);
    let gates = paba_repro::gates_table(&artifact);
    if a.flag("csv") {
        print!("{}", gates.to_csv());
    } else {
        print!("{}", gates.to_markdown());
    }
    if out != "none" {
        artifact.write(std::path::Path::new(&out))?;
        eprintln!(
            "wrote {} gates / {} metrics to {out}",
            artifact.gates.len(),
            artifact.metrics.len()
        );
    }
    if !artifact.all_gates_passed() {
        return Err("reproduction gates failed (see table above)".into());
    }
    if let Some(golden) = golden {
        let rep = paba_repro::check(&artifact, &golden, paba_repro::DEFAULT_CHECK_Z)?;
        let t = paba_repro::check_table(&rep);
        if a.flag("csv") {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.to_markdown());
        }
        if !rep.ok() {
            return Err(format!(
                "golden check failed: {} regression(s) vs {golden_path}",
                rep.regressions.len()
            ));
        }
        eprintln!("golden check passed against {golden_path}");
    }
    Ok(())
}

/// `paba churn` — the churn-robustness suite of `paba-repro`: seeded
/// fault-injection schedules (crash / leave / join / insert) over the
/// dynamic placement engine, with graceful-degradation and repair gates.
/// Writes the versioned `paba-churn/1` artifact and (with `--check`)
/// statistically diffs against the committed golden, exactly like
/// `paba repro`.
pub fn churn(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let unknown = a.unknown_keys(&[
        "scale",
        "quick",
        "seed",
        "runs",
        "threads",
        "out",
        "check",
        "golden",
        "csv",
        "serve-metrics",
        "side",
        "files",
        "cache",
        "gamma",
        "radius",
        "cycle-fraction",
        "graceful-fraction",
        "inserts",
        "repair",
        "retry-budget",
        "replication",
    ]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let env_cfg = paba_util::envcfg::EnvCfg::from_env();
    let scale = if a.flag("quick") {
        paba_util::envcfg::Scale::Quick
    } else {
        match a.get("scale") {
            None => env_cfg.scale,
            Some(s) => s
                .parse()
                .map_err(|_| format!("--scale: expected quick|default|full, got '{s}'"))?,
        }
    };
    let check = a.flag("check");
    let mut cfg = paba_repro::ReproConfig::new(scale);
    cfg.seed = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    cfg.runs_override = match a.get("runs") {
        None => None,
        Some(_) => match a.parse_or("runs", 0usize)? {
            0 => return Err("--runs must be a positive run count".into()),
            r => Some(r),
        },
    };
    cfg.threads = match a.parse_or("threads", 0usize)? {
        0 => None,
        t => Some(t),
    };

    // Regime overrides: absent knobs keep the scale default (the
    // configuration the committed golden was generated with).
    let opt_u32 = |key: &str| -> Result<Option<u32>, String> {
        match a.get(key) {
            None => Ok(None),
            Some(_) => Ok(Some(a.parse_or(key, 0u32)?)),
        }
    };
    let opt_frac = |key: &str| -> Result<Option<f64>, String> {
        match a.get(key) {
            None => Ok(None),
            Some(_) => {
                let v: f64 = a.parse_or(key, 0.0f64)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("--{key}: expected a fraction in [0, 1], got {v}"));
                }
                Ok(Some(v))
            }
        }
    };
    let params = paba_repro::churn_experiments::ChurnParams {
        side: opt_u32("side")?,
        files: opt_u32("files")?,
        cache: opt_u32("cache")?,
        gamma: match a.get("gamma") {
            None => None,
            Some(_) => Some(a.parse_or("gamma", 0.0f64)?),
        },
        radius: opt_u32("radius")?,
        cycle_fraction: opt_frac("cycle-fraction")?,
        graceful_fraction: opt_frac("graceful-fraction")?,
        inserts: opt_u32("inserts")?,
        repair: match a.get("repair") {
            None => None,
            Some(s) => {
                Some(paba_churn::RepairPolicy::parse(s).map_err(|e| format!("--repair: {e}"))?)
            }
        },
        retry_budget: opt_u32("retry-budget")?,
        replication: opt_u32("replication")?,
    };

    let default_out = if check {
        // Never clobber the golden we are about to diff against.
        "BENCH_churn_fresh.json"
    } else {
        "BENCH_churn.json"
    };
    let out = a.str_or("out", default_out);
    let golden_path = a.str_or("golden", "BENCH_churn.json");
    if a.get("golden").is_some() && !check {
        return Err(
            "--golden only makes sense with --check (a plain run would ignore it \
             and regenerate the artifact instead)"
                .into(),
        );
    }
    // Load the golden *before* running or writing anything (see `repro`).
    let golden = if check {
        if out != "none" && same_file(&out, &golden_path) {
            return Err(format!(
                "--check refuses to overwrite the golden it diffs against \
                 ('{golden_path}'); pass a different --out (or 'none')"
            ));
        }
        Some(paba_repro::Artifact::load_expecting(
            std::path::Path::new(&golden_path),
            schema::CHURN,
        )?)
    } else {
        None
    };

    // `--serve-metrics`: every worker shares one recorder, so a scrape
    // mid-suite sees churn events, dead-replica retries, failed requests,
    // and repair migrations accumulate live.
    let live = a.get("serve-metrics").is_some().then(|| {
        LiveRun::new(
            paba_repro::churn_experiments::planned_runs(&cfg) as u64,
            false,
        )
    });
    let _server = match &live {
        Some(l) => spawn_metrics(a, l)?,
        None => None,
    };

    let artifact = paba_repro::run_churn_suite_with(&cfg, &params, live.as_ref());
    let gates = paba_repro::gates_table(&artifact);
    if a.flag("csv") {
        print!("{}", gates.to_csv());
    } else {
        print!("{}", gates.to_markdown());
    }
    if let Some(l) = &live {
        eprint!("{}", l.recorder.snapshot().table());
    }
    if out != "none" {
        artifact.write(std::path::Path::new(&out))?;
        eprintln!(
            "wrote {} gates / {} metrics to {out}",
            artifact.gates.len(),
            artifact.metrics.len()
        );
    }
    if !artifact.all_gates_passed() {
        return Err("churn robustness gates failed (see table above)".into());
    }
    if let Some(golden) = golden {
        let rep = paba_repro::check(&artifact, &golden, paba_repro::DEFAULT_CHECK_Z)?;
        let t = paba_repro::check_table(&rep);
        if a.flag("csv") {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.to_markdown());
        }
        if !rep.ok() {
            return Err(format!(
                "golden check failed: {} regression(s) vs {golden_path}",
                rep.regressions.len()
            ));
        }
        eprintln!("golden check passed against {golden_path}");
    }
    Ok(())
}

/// `paba queueing` — the temporal serving-engine suite of `paba-repro`:
/// paired queueing arms (random, fresh two-choice, stale-signal
/// two-choice) over seeded cache networks plus an M/M/1 closed-form
/// reference, gated on the pow-of-d sojourn collapse, Little's law, and
/// throughput conservation. Writes the versioned `paba-queueing/1`
/// artifact and (with `--check`) statistically diffs against the
/// committed golden, exactly like `paba repro`.
pub fn queueing(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let unknown = a.unknown_keys(&[
        "scale",
        "quick",
        "seed",
        "runs",
        "threads",
        "out",
        "check",
        "golden",
        "csv",
        "serve-metrics",
        "side",
        "files",
        "cache",
        "gamma",
        "radius",
        "lambda",
        "horizon",
        "warmup",
        "stale-period",
    ]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let env_cfg = paba_util::envcfg::EnvCfg::from_env();
    let scale = if a.flag("quick") {
        paba_util::envcfg::Scale::Quick
    } else {
        match a.get("scale") {
            None => env_cfg.scale,
            Some(s) => s
                .parse()
                .map_err(|_| format!("--scale: expected quick|default|full, got '{s}'"))?,
        }
    };
    let check = a.flag("check");
    let mut cfg = paba_repro::ReproConfig::new(scale);
    cfg.seed = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    cfg.runs_override = match a.get("runs") {
        None => None,
        Some(_) => match a.parse_or("runs", 0usize)? {
            0 => return Err("--runs must be a positive run count".into()),
            r => Some(r),
        },
    };
    cfg.threads = match a.parse_or("threads", 0usize)? {
        0 => None,
        t => Some(t),
    };

    // Regime overrides: absent knobs keep the scale default (the
    // configuration the committed golden was generated with).
    let opt_u32 = |key: &str| -> Result<Option<u32>, String> {
        match a.get(key) {
            None => Ok(None),
            Some(_) => Ok(Some(a.parse_or(key, 0u32)?)),
        }
    };
    let opt_f64 = |key: &str| -> Result<Option<f64>, String> {
        match a.get(key) {
            None => Ok(None),
            Some(_) => Ok(Some(a.parse_or(key, 0.0f64)?)),
        }
    };
    let lambda = opt_f64("lambda")?;
    if let Some(l) = lambda {
        if !(0.0..1.0).contains(&l) || l == 0.0 {
            return Err(format!("--lambda must be in (0,1), got {l}"));
        }
    }
    let horizon = opt_f64("horizon")?;
    let warmup = opt_f64("warmup")?;
    if let (Some(w), Some(h)) = (warmup, horizon) {
        if w >= h {
            return Err(format!("--warmup must precede --horizon ({w} >= {h})"));
        }
    }
    let stale_period = match a.get("stale-period") {
        None => None,
        Some(_) => match a.parse_or("stale-period", 0u64)? {
            0 => return Err("--stale-period must be a positive dispatch count".into()),
            p => Some(p),
        },
    };
    let params = paba_repro::queueing_experiments::QueueingParams {
        side: opt_u32("side")?,
        files: opt_u32("files")?,
        cache: opt_u32("cache")?,
        gamma: opt_f64("gamma")?,
        radius: opt_u32("radius")?,
        lambda,
        horizon,
        warmup,
        stale_period,
    };

    let default_out = if check {
        // Never clobber the golden we are about to diff against.
        "BENCH_queueing_fresh.json"
    } else {
        "BENCH_queueing.json"
    };
    let out = a.str_or("out", default_out);
    let golden_path = a.str_or("golden", "BENCH_queueing.json");
    if a.get("golden").is_some() && !check {
        return Err(
            "--golden only makes sense with --check (a plain run would ignore it \
             and regenerate the artifact instead)"
                .into(),
        );
    }
    // Load the golden *before* running or writing anything (see `repro`).
    let golden = if check {
        if out != "none" && same_file(&out, &golden_path) {
            return Err(format!(
                "--check refuses to overwrite the golden it diffs against \
                 ('{golden_path}'); pass a different --out (or 'none')"
            ));
        }
        Some(paba_repro::Artifact::load_expecting(
            std::path::Path::new(&golden_path),
            schema::QUEUEING,
        )?)
    } else {
        None
    };

    // `--serve-metrics`: the queueing engine records no counters, so the
    // live handle exposes run progress only.
    let live = a.get("serve-metrics").is_some().then(|| {
        LiveRun::new(
            paba_repro::queueing_experiments::planned_runs(&cfg) as u64,
            false,
        )
    });
    let _server = match &live {
        Some(l) => spawn_metrics(a, l)?,
        None => None,
    };

    let artifact = paba_repro::run_queueing_suite_with(&cfg, &params, live.as_ref());
    let gates = paba_repro::gates_table(&artifact);
    if a.flag("csv") {
        print!("{}", gates.to_csv());
    } else {
        print!("{}", gates.to_markdown());
    }
    if out != "none" {
        artifact.write(std::path::Path::new(&out))?;
        eprintln!(
            "wrote {} gates / {} metrics to {out}",
            artifact.gates.len(),
            artifact.metrics.len()
        );
    }
    if !artifact.all_gates_passed() {
        return Err("queueing gates failed (see table above)".into());
    }
    if let Some(golden) = golden {
        let rep = paba_repro::check(&artifact, &golden, paba_repro::DEFAULT_CHECK_Z)?;
        let t = paba_repro::check_table(&rep);
        if a.flag("csv") {
            print!("{}", t.to_csv());
        } else {
            print!("{}", t.to_markdown());
        }
        if !rep.ok() {
            return Err(format!(
                "golden check failed: {} regression(s) vs {golden_path}",
                rep.regressions.len()
            ));
        }
        eprintln!("golden check passed against {golden_path}");
    }
    Ok(())
}

/// `paba report` — fold every `BENCH_*.json` artifact in a directory
/// into one markdown report with cross-artifact provenance consistency
/// checks. Warnings (missing provenance, debug builds, seed drift) are
/// reported but non-fatal; failures (unparseable artifact, unknown
/// schema, provenance contradicting its artifact) exit nonzero.
pub fn report(a: &Args) -> Result<(), String> {
    reject_action(a)?;
    let unknown = a.unknown_keys(&["dir", "out"]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let dir = a.str_or("dir", ".");
    let out = a.str_or("out", "-");
    let rep = paba_bench::report::report_dir(std::path::Path::new(&dir))?;
    if out != "none" {
        write_output(&out, &rep.markdown, "benchmark report")?;
    }
    for w in &rep.warnings {
        eprintln!("warning: {w}");
    }
    for f in &rep.failures {
        eprintln!("FAIL: {f}");
    }
    eprintln!(
        "{} artifact(s), {} warning(s), {} failure(s)",
        rep.artifacts,
        rep.warnings.len(),
        rep.failures.len()
    );
    if !rep.failures.is_empty() {
        return Err(format!(
            "{} provenance/consistency failure(s) (see above)",
            rep.failures.len()
        ));
    }
    Ok(())
}

/// `paba workload <generate|inspect>`.
pub fn workload(a: &Args) -> Result<(), String> {
    match a.action.as_deref() {
        Some("generate") => workload_generate(a),
        Some("inspect") => workload_inspect(a),
        Some(other) => Err(format!(
            "unknown workload action '{other}' (generate | inspect)"
        )),
        None => Err("workload needs an action: generate | inspect".into()),
    }
}

fn workload_generate(a: &Args) -> Result<(), String> {
    let mut known = vec!["side", "files", "cache", "gamma", "requests", "seed", "out"];
    known.extend_from_slice(WORKLOAD_KEYS);
    let unknown = a.unknown_keys(&known);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let side: u32 = a.parse_or("side", 45)?;
    let k: u32 = a.parse_or("files", 500)?;
    let m: u32 = a.parse_or("cache", 10)?;
    let gamma: f64 = a.parse_or("gamma", 0.0)?;
    let seed: u64 = a.parse_or("seed", paba_util::envcfg::DEFAULT_SEED)?;
    let requests_opt: u64 = a.parse_or("requests", 0)?;
    let out = a.get("out").ok_or("workload generate needs --out <path>")?;
    let spec = workload_spec(a)?;
    spec.validate(side * side, k)?;

    let mut rng = SmallRng::seed_from_u64(seed);
    let net = CacheNetwork::builder()
        .torus_side(side)
        .library(k, popularity(gamma))
        .cache_size(m)
        .build(&mut rng);
    let mut source = spec.build(&net, UncachedPolicy::ResampleFile)?;
    let requests = if requests_opt != 0 {
        requests_opt
    } else {
        RequestSource::<Torus>::size_hint(&source).unwrap_or(net.n() as u64)
    };
    let mut w = TraceWriter::create(out, net.n(), net.k())?;
    for _ in 0..requests {
        w.write(source.next_request(&net, &mut rng))?;
    }
    let written = w.finish()?;
    eprintln!(
        "wrote {written} requests ({} workload, n={}, K={}) to {out}",
        spec.name(),
        net.n(),
        net.k()
    );
    Ok(())
}

fn workload_inspect(a: &Args) -> Result<(), String> {
    let unknown = a.unknown_keys(&["trace", "top", "csv"]);
    if !unknown.is_empty() {
        return Err(format!("unknown option(s): {unknown:?} (see 'paba help')"));
    }
    let path = a
        .get("trace")
        .ok_or("workload inspect needs --trace <path>")?;
    let top: usize = a.parse_or("top", 5)?;
    let trace = paba_workload::Trace::load(path)?;

    let mut file_counts = vec![0u64; trace.k as usize];
    let mut origin_counts = vec![0u64; trace.n as usize];
    for r in &trace.records {
        file_counts[r.file as usize] += 1;
        origin_counts[r.origin as usize] += 1;
    }
    let total = trace.len().max(1) as f64;
    let ranked = |counts: &[u64]| -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = counts
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    };

    let mut t = Table::new(["property", "value"]);
    t.push_row(["records".to_string(), format!("{}", trace.len())]);
    t.push_row(["nodes n".to_string(), format!("{}", trace.n)]);
    t.push_row(["library K".to_string(), format!("{}", trace.k)]);
    t.push_row([
        "distinct files".to_string(),
        format!("{}", file_counts.iter().filter(|&&c| c > 0).count()),
    ]);
    t.push_row([
        "distinct origins".to_string(),
        format!("{}", origin_counts.iter().filter(|&&c| c > 0).count()),
    ]);
    for (f, c) in ranked(&file_counts) {
        t.push_row([
            format!("top file {f}"),
            format!("{c} requests ({:.2}%)", 100.0 * c as f64 / total),
        ]);
    }
    for (o, c) in ranked(&origin_counts) {
        t.push_row([
            format!("top origin {o}"),
            format!("{c} requests ({:.2}%)", 100.0 * c as f64 / total),
        ]);
    }
    if a.flag("csv") {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_markdown());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn simulate_small_run_works() {
        let a = args("simulate --side 8 --files 20 --cache 3 --runs 3 --radius 3");
        let (stats, runs, telemetry, _) = simulate_cmd_impl(&a).unwrap();
        assert_eq!(runs, 3);
        assert!(telemetry.is_none(), "no --telemetry, no snapshot");
        assert!(stats.max_load.mean >= 1.0);
        assert!(stats.cost.mean >= 0.0);
    }

    #[test]
    fn simulate_nearest_and_least_loaded() {
        for strat in ["nearest", "least-loaded", "d-choice"] {
            let a = args(&format!(
                "simulate --side 6 --files 10 --cache 2 --runs 2 --strategy {strat}"
            ));
            let (stats, _, _, _) = simulate_cmd_impl(&a).unwrap();
            assert!(stats.max_load.mean >= 1.0, "{strat}");
        }
    }

    #[test]
    fn simulate_dht_placement() {
        let a = args("simulate --side 8 --files 30 --cache 3 --runs 2 --placement dht");
        let (stats, _, _, _) = simulate_cmd_impl(&a).unwrap();
        assert!(stats.max_load.mean >= 1.0);
    }

    #[test]
    fn simulate_rejects_unknown_options() {
        let a = args("simulate --sid 8");
        assert!(simulate_cmd_impl(&a).unwrap_err().contains("sid"));
    }

    #[test]
    fn simulate_rejects_unknown_strategy() {
        let a = args("simulate --strategy magic");
        assert!(simulate(&a).unwrap_err().contains("magic"));
    }

    #[test]
    fn queue_validates_lambda() {
        let a = args("queue --lambda 1.5");
        assert!(queue(&a).unwrap_err().contains("lambda"));
    }

    #[test]
    fn queue_runs_every_strategy_and_workload() {
        for strat in ["nearest", "two-choice", "d-choice", "least-loaded"] {
            let a = args(&format!(
                "queue --side 6 --files 8 --cache 2 --lambda 0.6 \
                 --horizon 300 --warmup 50 --strategy {strat}"
            ));
            assert!(queue(&a).is_ok(), "{strat}");
        }
        // Stale load signal, strided series, and a workload family in one.
        let a = args(
            "queue --side 6 --files 8 --cache 2 --lambda 0.6 --horizon 300 \
             --warmup 50 --stale 64 --stride 32 --workload flash-crowd",
        );
        assert!(queue(&a).is_ok());
        assert!(queue(&args("queue --strategy chaos"))
            .unwrap_err()
            .contains("chaos"));
        assert!(queue(&args("queue --stale 0"))
            .unwrap_err()
            .contains("stale"));
        assert!(queue(&args("queue --warmup 900 --horizon 800"))
            .unwrap_err()
            .contains("warmup"));
    }

    #[test]
    fn ballsbins_runs_every_process() {
        for p in ["one", "two", "d", "beta", "batched"] {
            let a = args(&format!(
                "ballsbins --process {p} --bins 64 --balls 64 --runs 2"
            ));
            assert!(ballsbins(&a).is_ok(), "{p}");
        }
    }

    #[test]
    fn ballsbins_rejects_unknown_process() {
        let a = args("ballsbins --process three");
        assert!(ballsbins(&a).unwrap_err().contains("three"));
    }

    #[test]
    fn simulate_runs_every_synthetic_workload() {
        for w in ["hotspot", "zipf-origins", "flash-crowd", "shifting"] {
            let a = args(&format!(
                "simulate --side 6 --files 12 --cache 2 --runs 2 --workload {w}"
            ));
            let (stats, _, _, _) = simulate_cmd_impl(&a).unwrap();
            assert!(stats.max_load.mean >= 1.0, "{w}");
        }
    }

    #[test]
    fn simulate_rejects_unknown_workload() {
        let a = args("simulate --workload chaos");
        assert!(simulate_cmd_impl(&a).unwrap_err().contains("chaos"));
    }

    #[test]
    fn simulate_rejects_invalid_workload_params() {
        let a = args("simulate --side 6 --files 12 --workload flash-crowd --flash-file 99");
        assert!(simulate_cmd_impl(&a).unwrap_err().contains("flash file"));
    }

    #[test]
    fn workload_generate_inspect_and_replay_round_trip() {
        let dir = std::env::temp_dir().join("paba_cli_workload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path_s = path.display();
        let g = args(&format!(
            "workload generate --side 6 --files 12 --cache 2 --requests 300 \
             --workload hotspot --out {path_s}"
        ));
        workload(&g).unwrap();
        let i = args(&format!("workload inspect --trace {path_s}"));
        workload(&i).unwrap();
        // Replaying through `simulate` must work and default to the
        // trace's length.
        let s = args(&format!(
            "simulate --side 6 --files 12 --cache 2 --runs 2 --workload trace --trace {path_s}"
        ));
        let (stats, _, _, _) = simulate_cmd_impl(&s).unwrap();
        assert!(stats.max_load.mean >= 1.0);
        // Replayed workloads are identical across runs and strategies: the
        // request stream is frozen, only assignment randomness differs.
        let too_many = args(&format!(
            "simulate --side 6 --files 12 --cache 2 --requests 301 --workload trace \
             --trace {path_s}"
        ));
        assert!(simulate_cmd_impl(&too_many)
            .unwrap_err()
            .contains("exceeds the trace length"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn throughput_quick_runs_and_writes_json() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_throughput_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_throughput.json");
        let a = args(&format!(
            "throughput --scale quick --requests 400 --csv --out {}",
            path.display()
        ));
        throughput(&a).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"paba-throughput/1\""));
        assert!(json.contains("\"sampler\": \"hybrid\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn throughput_rejects_bad_scale() {
        let a = args("throughput --scale enormous --out none");
        assert!(throughput(&a).unwrap_err().contains("enormous"));
    }

    #[test]
    fn simulate_telemetry_accounts_for_every_request() {
        // side 8 → n = 64 requests per run, 3 runs.
        let a = args("simulate --side 8 --files 20 --cache 3 --runs 3 --radius 3 --telemetry");
        let (_, _, telemetry, _) = simulate_cmd_impl(&a).unwrap();
        let snap = telemetry.expect("--telemetry yields a snapshot");
        assert_eq!(snap.total_requests(), 3 * 64);
    }

    #[test]
    fn simulate_telemetry_does_not_change_results() {
        let base = "simulate --side 8 --files 20 --cache 3 --runs 3 --radius 3";
        let (plain, _, _, _) = simulate_cmd_impl(&args(base)).unwrap();
        let (recorded, _, _, _) = simulate_cmd_impl(&args(&format!("{base} --telemetry"))).unwrap();
        assert_eq!(plain.max_load.mean, recorded.max_load.mean);
        assert_eq!(plain.cost.mean, recorded.cost.mean);
        assert_eq!(plain.fallback.mean, recorded.fallback.mean);
    }

    #[test]
    fn simulate_telemetry_out_writes_snapshot_json() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_telemetry_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("telemetry.json");
        let a = args(&format!(
            "simulate --side 6 --files 12 --cache 2 --runs 2 --csv --telemetry-out {}",
            path.display()
        ));
        simulate(&a).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"schema\": \"paba-telemetry/1\""));
        assert!(json.contains("\"sampler_paths\""));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_quick_writes_valid_artifact() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_profile_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_profile.json");
        let a = args(&format!(
            "profile --scale quick --runs 1 --requests 200 --csv --baseline none --out {}",
            path.display()
        ));
        profile(&a).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        let doc = paba_repro::json::parse(&json).expect("artifact parses");
        assert_eq!(
            doc.get("schema").and_then(paba_repro::json::Json::as_str),
            Some("paba-profile/1")
        );
        // Every point's sampler-path counters sum to its request count.
        for p in doc
            .get("points")
            .and_then(paba_repro::json::Json::as_arr)
            .unwrap()
        {
            let requests = p
                .get("requests")
                .and_then(paba_repro::json::Json::as_u64)
                .unwrap();
            let paths = p.get("telemetry").unwrap().get("sampler_paths").unwrap();
            let sum: u64 = paba_telemetry::SamplerPath::ALL
                .iter()
                .map(|sp| {
                    paths
                        .get(sp.label())
                        .and_then(paba_repro::json::Json::as_u64)
                        .unwrap()
                })
                .sum();
            assert_eq!(sum, requests);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_check_without_baseline_fails() {
        let a = args(
            "profile --scale quick --runs 1 --requests 100 --csv --out none \
             --check --baseline /nonexistent/BENCH_throughput.json",
        );
        let err = profile(&a).unwrap_err();
        assert!(err.contains("--check"), "{err}");
    }

    #[test]
    fn profile_rejects_bad_scale_and_zero_runs() {
        assert!(profile(&args("profile --scale enormous --out none"))
            .unwrap_err()
            .contains("enormous"));
        assert!(profile(&args("profile --runs 0 --out none"))
            .unwrap_err()
            .contains("--runs"));
    }

    #[test]
    fn repro_generate_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("paba_cli_repro_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_repro.json");
        let fresh = dir.join("BENCH_repro_fresh.json");
        // Reduced replication keeps this test fast; 16 runs still clears
        // every gate threshold with margin, and the self-check is exact.
        let gen = args(&format!(
            "repro --quick --runs 16 --out {}",
            golden.display()
        ));
        repro(&gen).unwrap();
        let json = std::fs::read_to_string(&golden).unwrap();
        assert!(json.contains("\"schema\": \"paba-repro/1\""));
        let chk = args(&format!(
            "repro --quick --runs 16 --check --golden {} --out {}",
            golden.display(),
            fresh.display()
        ));
        repro(&chk).unwrap();
        assert!(fresh.exists(), "--check must write the fresh artifact");
        std::fs::remove_file(&golden).ok();
        std::fs::remove_file(&fresh).ok();
    }

    #[test]
    fn repro_check_detects_doctored_golden() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_repro_doctored_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_repro.json");
        repro(&args(&format!(
            "repro --quick --runs 16 --out {}",
            golden.display()
        )))
        .unwrap();
        // Corrupt one deterministic-looking metric far beyond noise.
        let doctored = std::fs::read_to_string(&golden).unwrap().replacen(
            "\"mean\": ",
            "\"mean\": 99999 , \"was\": ",
            1,
        );
        std::fs::write(&golden, doctored).unwrap();
        let err = repro(&args(&format!(
            "repro --quick --runs 16 --check --golden {} --out none",
            golden.display()
        )))
        .unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn repro_rejects_unknown_options() {
        let a = args("repro --sacle quick");
        assert!(repro(&a).unwrap_err().contains("sacle"));
    }

    #[test]
    fn repro_check_refuses_aliased_golden_out_paths() {
        let dir = std::env::temp_dir().join(format!("paba_cli_repro_alias_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_repro.json");
        std::fs::write(&golden, "{}").unwrap();
        // Same file, different spelling (an extra `./` component): the
        // overwrite guard must see through it and refuse before running.
        let aliased = dir.join(".").join("BENCH_repro.json");
        let a = args(&format!(
            "repro --quick --runs 2 --check --golden {} --out {}",
            golden.display(),
            aliased.display()
        ));
        let err = repro(&a).unwrap_err();
        assert!(err.contains("refuses to overwrite"), "{err}");
        // The refusal must happen before anything touched the golden.
        assert_eq!(std::fs::read_to_string(&golden).unwrap(), "{}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn repro_golden_without_check_is_an_error() {
        let a = args("repro --quick --runs 2 --golden /tmp/whatever.json --out none");
        let err = repro(&a).unwrap_err();
        assert!(err.contains("--check"), "{err}");
    }

    #[test]
    fn churn_generate_then_check_round_trips() {
        let dir = std::env::temp_dir().join(format!("paba_cli_churn_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_churn.json");
        let fresh = dir.join("BENCH_churn_fresh.json");
        let gen = args(&format!(
            "churn --quick --runs 8 --threads 2 --out {}",
            golden.display()
        ));
        churn(&gen).unwrap();
        let json = std::fs::read_to_string(&golden).unwrap();
        assert!(json.contains("\"schema\": \"paba-churn/1\""));
        let chk = args(&format!(
            "churn --quick --runs 8 --threads 2 --check --golden {} --out {}",
            golden.display(),
            fresh.display()
        ));
        churn(&chk).unwrap();
        assert!(fresh.exists(), "--check must write the fresh artifact");
        std::fs::remove_file(&golden).ok();
        std::fs::remove_file(&fresh).ok();
    }

    #[test]
    fn churn_check_rejects_wrong_schema_golden() {
        // A repro artifact is structurally valid JSON but the wrong
        // schema; the churn golden loader must name both schemas.
        let dir =
            std::env::temp_dir().join(format!("paba_cli_churn_schema_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_repro.json");
        repro(&args(&format!(
            "repro --quick --runs 16 --out {}",
            golden.display()
        )))
        .unwrap();
        let err = churn(&args(&format!(
            "churn --quick --runs 2 --check --golden {} --out none",
            golden.display()
        )))
        .unwrap_err();
        assert!(err.contains("paba-churn/1"), "{err}");
        assert!(err.contains("paba-repro/1"), "{err}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn churn_check_refuses_aliased_golden_out_paths() {
        let dir = std::env::temp_dir().join(format!("paba_cli_churn_alias_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_churn.json");
        std::fs::write(&golden, "{}").unwrap();
        let aliased = dir.join(".").join("BENCH_churn.json");
        let a = args(&format!(
            "churn --quick --runs 2 --check --golden {} --out {}",
            golden.display(),
            aliased.display()
        ));
        let err = churn(&a).unwrap_err();
        assert!(err.contains("refuses to overwrite"), "{err}");
        assert_eq!(std::fs::read_to_string(&golden).unwrap(), "{}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn churn_rejects_bad_options() {
        assert!(churn(&args("churn --sacle quick"))
            .unwrap_err()
            .contains("sacle"));
        assert!(
            churn(&args("churn --quick --repair best-effort --out none"))
                .unwrap_err()
                .contains("--repair")
        );
        assert!(
            churn(&args("churn --quick --cycle-fraction 1.5 --out none"))
                .unwrap_err()
                .contains("cycle-fraction")
        );
        assert!(churn(&args(
            "churn --quick --runs 2 --golden /tmp/g.json --out none"
        ))
        .unwrap_err()
        .contains("--check"));
    }

    #[test]
    fn queueing_generate_then_check_round_trips() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_queueing_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_queueing.json");
        let fresh = dir.join("BENCH_queueing_fresh.json");
        let gen = args(&format!(
            "queueing --quick --runs 6 --threads 2 --out {}",
            golden.display()
        ));
        queueing(&gen).unwrap();
        let json = std::fs::read_to_string(&golden).unwrap();
        assert!(json.contains("\"schema\": \"paba-queueing/1\""));
        let chk = args(&format!(
            "queueing --quick --runs 6 --threads 2 --check --golden {} --out {}",
            golden.display(),
            fresh.display()
        ));
        queueing(&chk).unwrap();
        assert!(fresh.exists(), "--check must write the fresh artifact");
        std::fs::remove_file(&golden).ok();
        std::fs::remove_file(&fresh).ok();
    }

    #[test]
    fn queueing_check_rejects_wrong_schema_golden() {
        // A churn artifact is structurally valid JSON but the wrong
        // schema; the queueing golden loader must name both schemas.
        let dir =
            std::env::temp_dir().join(format!("paba_cli_queueing_schema_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_churn.json");
        churn(&args(&format!(
            "churn --quick --runs 8 --threads 2 --out {}",
            golden.display()
        )))
        .unwrap();
        let err = queueing(&args(&format!(
            "queueing --quick --runs 2 --check --golden {} --out none",
            golden.display()
        )))
        .unwrap_err();
        assert!(err.contains("paba-queueing/1"), "{err}");
        assert!(err.contains("paba-churn/1"), "{err}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn queueing_check_refuses_aliased_golden_out_paths() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_queueing_alias_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let golden = dir.join("BENCH_queueing.json");
        std::fs::write(&golden, "{}").unwrap();
        let aliased = dir.join(".").join("BENCH_queueing.json");
        let a = args(&format!(
            "queueing --quick --runs 2 --check --golden {} --out {}",
            golden.display(),
            aliased.display()
        ));
        let err = queueing(&a).unwrap_err();
        assert!(err.contains("refuses to overwrite"), "{err}");
        assert_eq!(std::fs::read_to_string(&golden).unwrap(), "{}");
        std::fs::remove_file(&golden).ok();
    }

    #[test]
    fn queueing_rejects_bad_options() {
        assert!(queueing(&args("queueing --sacle quick"))
            .unwrap_err()
            .contains("sacle"));
        assert!(queueing(&args("queueing --quick --lambda 1.2 --out none"))
            .unwrap_err()
            .contains("lambda"));
        assert!(queueing(&args(
            "queueing --quick --warmup 500 --horizon 100 --out none"
        ))
        .unwrap_err()
        .contains("warmup"));
        assert!(
            queueing(&args("queueing --quick --stale-period 0 --out none"))
                .unwrap_err()
                .contains("stale-period")
        );
        assert!(queueing(&args(
            "queueing --quick --runs 2 --golden /tmp/g.json --out none"
        ))
        .unwrap_err()
        .contains("--check"));
    }

    #[test]
    fn workload_requires_action() {
        assert!(workload(&args("workload")).unwrap_err().contains("action"));
        assert!(workload(&args("workload prune"))
            .unwrap_err()
            .contains("prune"));
    }

    #[test]
    fn non_workload_commands_reject_stray_positionals() {
        // Only `workload` takes a second positional; everywhere else a
        // stray one must fail loudly, not be silently absorbed.
        assert!(
            simulate_cmd_impl(&args("simulate bogus --side 6 --files 12"))
                .unwrap_err()
                .contains("bogus")
        );
        assert!(queue(&args("queue bogus")).unwrap_err().contains("bogus"));
        assert!(ballsbins(&args("ballsbins bogus"))
            .unwrap_err()
            .contains("bogus"));
    }

    #[test]
    fn trace_writes_parseable_outputs() {
        let dir = std::env::temp_dir().join(format!("paba_cli_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let events = dir.join("events.jsonl");
        let series = dir.join("series.json");
        let chrome = dir.join("chrome.json");
        let a = args(&format!(
            "trace --side 6 --files 12 --cache 2 --runs 2 --sample 4 --stride 16 --csv \
             --events-out {} --series-out {} --chrome-out {}",
            events.display(),
            series.display(),
            chrome.display()
        ));
        trace(&a).unwrap();
        // Every JSONL line is a standalone JSON object.
        let jsonl = std::fs::read_to_string(&events).unwrap();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            let ev = paba_repro::json::parse(line).expect("event line parses");
            assert!(ev.get("request").is_some(), "{line}");
            assert!(ev.get("server").is_some(), "{line}");
        }
        // The series artifact carries its schema plus per-run and mean series.
        let doc = paba_repro::json::parse(&std::fs::read_to_string(&series).unwrap()).unwrap();
        assert_eq!(
            doc.get("schema").and_then(paba_repro::json::Json::as_str),
            Some("paba-trace-series/1")
        );
        let runs = doc
            .get("runs")
            .and_then(paba_repro::json::Json::as_arr)
            .unwrap();
        assert_eq!(runs.len(), 2);
        assert!(doc.get("mean").is_some());
        // The Chrome trace is a trace_event document with complete events.
        let ct = paba_repro::json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let evs = ct
            .get("traceEvents")
            .and_then(paba_repro::json::Json::as_arr)
            .unwrap();
        assert!(!evs.is_empty());
        for e in evs {
            assert_eq!(
                e.get("ph").and_then(paba_repro::json::Json::as_str),
                Some("X")
            );
        }
        for f in [&events, &series, &chrome] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn trace_rejects_conflicting_and_unknown_options() {
        let a = args("trace --side 6 --files 12 --sample 4 --reservoir 8");
        assert!(trace(&a).unwrap_err().contains("mutually exclusive"));
        let a = args("trace --side 6 --files 12 --smaple 4");
        assert!(trace(&a).unwrap_err().contains("smaple"));
        let a = args("trace --side 6 --files 12 --sample 0");
        assert!(trace(&a).unwrap_err().contains("--sample"));
    }

    #[test]
    fn simulate_trace_out_writes_jsonl() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_sim_trace_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let a = args(&format!(
            "simulate --side 6 --files 12 --cache 2 --runs 2 --csv --trace-out {}",
            path.display()
        ));
        simulate(&a).unwrap();
        let jsonl = std::fs::read_to_string(&path).unwrap();
        // --trace-out samples every request: side 6 → 36 requests × 2 runs.
        assert_eq!(jsonl.lines().count(), 2 * 36);
        for line in jsonl.lines() {
            paba_repro::json::parse(line).expect("event line parses");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn profile_diff_self_is_clean_and_doctored_regresses() {
        let dir =
            std::env::temp_dir().join(format!("paba_cli_profile_diff_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("old_profile.json");
        profile(&args(&format!(
            "profile --scale quick --runs 1 --requests 200 --csv --baseline none --out {}",
            old.display()
        )))
        .unwrap();
        // Self-diff: identical artifacts carry zero regressions.
        profile(&args(&format!(
            "profile --csv --diff {} {}",
            old.display(),
            old.display()
        )))
        .unwrap();
        // Doctor one path counter far beyond any noise gate.
        let text = std::fs::read_to_string(&old).unwrap();
        let doc = paba_repro::json::parse(&text).unwrap();
        let n = doc
            .get("points")
            .and_then(paba_repro::json::Json::as_arr)
            .unwrap()[0]
            .get("telemetry")
            .unwrap()
            .get("sampler_paths")
            .unwrap()
            .get("exact-scan")
            .and_then(paba_repro::json::Json::as_u64)
            .unwrap();
        let doctored_text =
            text.replacen(&format!("\"exact-scan\":{n}"), "\"exact-scan\":999999", 1);
        assert_ne!(text, doctored_text, "perturbation must hit the artifact");
        let doctored = dir.join("new_profile.json");
        std::fs::write(&doctored, doctored_text).unwrap();
        let err = profile(&args(&format!(
            "profile --csv --diff {} {}",
            old.display(),
            doctored.display()
        )))
        .unwrap_err();
        assert!(err.contains("regression"), "{err}");
        std::fs::remove_file(&old).ok();
        std::fs::remove_file(&doctored).ok();
    }

    #[test]
    fn profile_diff_requires_both_artifacts() {
        let err = profile(&args("profile --diff only_one.json")).unwrap_err();
        assert!(err.contains("two artifacts"), "{err}");
    }

    #[test]
    fn simulate_serve_metrics_runs_and_matches_plain_results() {
        // An ephemeral port keeps the test parallel-safe; the endpoint's
        // HTTP behaviour is covered in paba-telemetry, here we check the
        // live path wires up and does not change the simulation.
        let base = "simulate --side 8 --files 20 --cache 3 --runs 3 --radius 3";
        let (plain, _, _, _) = simulate_cmd_impl(&args(base)).unwrap();
        let (live, _, _, _) =
            simulate_cmd_impl(&args(&format!("{base} --serve-metrics 127.0.0.1:0"))).unwrap();
        assert_eq!(plain.max_load.mean, live.max_load.mean);
        assert_eq!(plain.cost.mean, live.cost.mean);
    }

    #[test]
    fn trace_serve_metrics_still_traces() {
        let a = args(
            "trace --side 6 --files 12 --cache 2 --runs 2 --sample 4 --csv \
             --serve-metrics 127.0.0.1:0",
        );
        trace(&a).unwrap();
    }

    #[test]
    fn serve_metrics_rejects_bad_address() {
        let a = args("simulate --side 6 --files 12 --runs 1 --serve-metrics not-an-addr");
        assert!(simulate_cmd_impl(&a).unwrap_err().contains("not-an-addr"));
    }

    #[test]
    fn report_aggregates_generated_artifacts() {
        let dir = std::env::temp_dir().join(format!("paba_cli_report_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let tp = dir.join("BENCH_throughput.json");
        throughput(&args(&format!(
            "throughput --scale quick --requests 200 --csv --out {}",
            tp.display()
        )))
        .unwrap();
        repro(&args(&format!(
            "repro --quick --runs 16 --out {}",
            dir.join("BENCH_repro.json").display()
        )))
        .unwrap();
        let out = dir.join("REPORT.md");
        report(&args(&format!(
            "report --dir {} --out {}",
            dir.display(),
            out.display()
        )))
        .unwrap();
        let md = std::fs::read_to_string(&out).unwrap();
        assert!(md.contains("# paba benchmark report"));
        assert!(md.contains("BENCH_throughput.json"));
        assert!(md.contains("Theorem gates"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_fails_on_unknown_schema() {
        let dir = std::env::temp_dir().join(format!("paba_cli_report_fail_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_alien.json"), r#"{"schema": "alien/9"}"#).unwrap();
        let err = report(&args(&format!("report --dir {} --out none", dir.display()))).unwrap_err();
        assert!(err.contains("failure"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn workload_trace_shape_mismatch_rejected() {
        let dir = std::env::temp_dir().join("paba_cli_workload_mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path_s = path.display();
        let g = args(&format!(
            "workload generate --side 6 --files 12 --cache 2 --requests 50 --out {path_s}"
        ));
        workload(&g).unwrap();
        let s = args(&format!(
            "simulate --side 7 --files 12 --cache 2 --runs 1 --workload trace --trace {path_s}"
        ));
        assert!(simulate_cmd_impl(&s)
            .unwrap_err()
            .contains("does not match"));
        std::fs::remove_file(&path).ok();
    }
}
