//! `paba` — command-line front end for the cache-network simulator.
//!
//! ```text
//! paba simulate --side 45 --files 500 --cache 20 --strategy two-choice --radius 8 --runs 50
//! paba simulate --workload flash-crowd --flash-file 0 --flash-boost 80 --runs 20
//! paba trace    --side 20 --runs 4 --stride 64 --chrome-out trace.json
//! paba profile --diff BENCH_profile.json NEW_profile.json
//! paba queue    --side 24 --lambda 0.9 --radius 4 --choices 2
//! paba ballsbins --process two --bins 4096 --balls 4096 --runs 20
//! paba workload generate --workload hotspot --out hotspot.trace --requests 100000
//! paba workload inspect --trace hotspot.trace
//! paba throughput --scale quick --out BENCH_throughput.json
//! paba profile --scale quick --check --out BENCH_profile.json
//! paba repro --quick --check
//! paba queueing --quick --check
//! paba simulate --side 45 --runs 200 --serve-metrics 127.0.0.1:9464
//! paba report --dir . --out REPORT.md
//! paba help
//! ```

mod args;
mod commands;

use args::Args;

// `--features alloc-track` routes every heap allocation through the
// counting wrapper, so `/metrics` and the profile artifact report
// allocation counts and peak live bytes. Off by default: even relaxed
// atomics in the allocator are measurable overhead for a benchmark
// binary.
#[cfg(feature = "alloc-track")]
#[global_allocator]
static GLOBAL: paba_telemetry::CountingAlloc<std::alloc::System> =
    paba_telemetry::CountingAlloc(std::alloc::System);

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match Args::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            commands::print_help();
            std::process::exit(2);
        }
    };
    let result = match parsed.command.as_deref() {
        Some("simulate") => commands::simulate(&parsed),
        Some("trace") => commands::trace(&parsed),
        Some("queue") => commands::queue(&parsed),
        Some("ballsbins") => commands::ballsbins(&parsed),
        Some("workload") => commands::workload(&parsed),
        Some("throughput") => commands::throughput(&parsed),
        Some("profile") => commands::profile(&parsed),
        Some("repro") => commands::repro(&parsed),
        Some("churn") => commands::churn(&parsed),
        Some("queueing") => commands::queueing(&parsed),
        Some("report") => commands::report(&parsed),
        Some("help") | None => {
            commands::print_help();
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand '{other}' (try 'paba help')")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
