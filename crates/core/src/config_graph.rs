//! The configuration graph `H` (the paper's Definition 4).
//!
//! For a placement and proximity parameter `r`, `H` connects servers `u`
//! and `v` iff they cache a common file **and** `d(u,v) ≤ 2r` on the
//! torus. Lemma 3 shows that — conditioned on placement goodness — `H` is
//! almost Δ-regular with `Δ = Θ(M²r²/K)`, and that Strategy II samples
//! each edge of `H` with probability `O(1/e(H))`; Theorem 5 then yields
//! the `Θ(log log n)` maximum load. The `lemma3_config_graph` bench checks
//! both properties empirically.

use crate::network::CacheNetwork;
use paba_topology::{CsrGraph, GraphBuilder, Topology};

/// How to enumerate candidate pairs when building `H`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ConfigGraphMethod {
    /// Pick whichever enumeration is cheaper for the instance (default).
    #[default]
    Auto,
    /// For each file, test all replica pairs (`Σ_j cnt_j²` distance
    /// checks) — cheap when replica lists are short.
    ReplicaPairs,
    /// For each node, scan its `2r`-ball for sharing partners
    /// (`n · |B_2r|` shared-file checks) — cheap when replicas are dense.
    BallScan,
}

/// Build the configuration graph `H` for proximity parameter `r`.
///
/// A `radius` of `None` removes the distance constraint (edges require
/// only a shared file), matching `r = ∞`.
pub fn build_config_graph<T: Topology>(
    net: &CacheNetwork<T>,
    radius: Option<u32>,
    method: ConfigGraphMethod,
) -> CsrGraph {
    let topo = net.topo();
    let n = topo.n();
    // The constraint is d(u,v) ≤ 2r.
    let limit = radius.map(|r| 2 * r);
    let effective_limit = limit.filter(|&l| l < topo.diameter());

    let method = match method {
        ConfigGraphMethod::Auto => {
            let pair_cost: u128 = (0..net.k())
                .map(|f| {
                    let c = net.placement().replica_count(f) as u128;
                    c * c
                })
                .sum();
            let ball = match effective_limit {
                Some(l) => topo.ball_size_at(0, l) as u128,
                None => n as u128,
            };
            let ball_cost = n as u128 * ball;
            if pair_cost <= ball_cost {
                ConfigGraphMethod::ReplicaPairs
            } else {
                ConfigGraphMethod::BallScan
            }
        }
        m => m,
    };

    let mut builder = GraphBuilder::new(n);
    match method {
        ConfigGraphMethod::ReplicaPairs => {
            assert!(
                !net.placement().is_full(),
                "replica-pair enumeration would be Θ(K·n²) on a full placement; \
                 use BallScan"
            );
            let mut replicas: Vec<u32> = Vec::new();
            for f in 0..net.k() {
                let cnt = net.placement().replica_count(f);
                replicas.clear();
                replicas.reserve(cnt as usize);
                net.placement().for_each_replica(f, |v| replicas.push(v));
                for i in 0..replicas.len() {
                    for j in (i + 1)..replicas.len() {
                        let (u, v) = (replicas[i], replicas[j]);
                        if effective_limit.is_none_or(|l| topo.dist(u, v) <= l) {
                            builder.add_edge(u, v);
                        }
                    }
                }
            }
        }
        ConfigGraphMethod::BallScan => {
            for u in 0..n {
                match effective_limit {
                    Some(l) => {
                        let b = &mut builder;
                        let placement = net.placement();
                        topo.for_each_in_ball(u, l, |v| {
                            if v > u && placement.shares_file(u, v) {
                                b.add_edge(u, v);
                            }
                        });
                    }
                    None => {
                        for v in (u + 1)..n {
                            if net.placement().shares_file(u, v) {
                                builder.add_edge(u, v);
                            }
                        }
                    }
                }
            }
        }
        ConfigGraphMethod::Auto => unreachable!("resolved above"),
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    /// Brute-force H for cross-checking.
    fn brute(net: &CacheNetwork<Torus>, radius: Option<u32>) -> Vec<(u32, u32)> {
        let mut edges = Vec::new();
        for u in 0..net.n() {
            for v in (u + 1)..net.n() {
                let near = radius.is_none_or(|r| net.topo().dist(u, v) <= 2 * r);
                if near && net.placement().t_uv(u, v) >= 1 {
                    edges.push((u, v));
                }
            }
        }
        edges
    }

    #[test]
    fn both_methods_match_bruteforce() {
        let net = net(1, 7, 12, 3);
        for radius in [Some(1), Some(2), Some(3), None] {
            let expect = brute(&net, radius);
            for method in [ConfigGraphMethod::ReplicaPairs, ConfigGraphMethod::BallScan] {
                let g = build_config_graph(&net, radius, method);
                let mut got: Vec<(u32, u32)> = g.edges().collect();
                got.sort_unstable();
                assert_eq!(got, expect, "radius {radius:?} method {method:?}");
            }
            let g = build_config_graph(&net, radius, ConfigGraphMethod::Auto);
            assert_eq!(g.m() as usize, expect.len());
        }
    }

    #[test]
    fn radius_monotonicity() {
        let net = net(2, 8, 20, 2);
        let mut prev = 0u64;
        for r in [0u32, 1, 2, 4, 8] {
            let g = build_config_graph(&net, Some(r), ConfigGraphMethod::Auto);
            assert!(g.m() >= prev, "H must grow with r");
            prev = g.m();
        }
        let unbounded = build_config_graph(&net, None, ConfigGraphMethod::Auto);
        assert!(unbounded.m() >= prev);
    }

    #[test]
    fn full_placement_ball_scan() {
        use crate::{Library, Placement};
        let topo = Torus::new(6);
        let library = Library::new(3, Popularity::Uniform);
        let placement = Placement::full(36, 3);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let g = build_config_graph(&net, Some(1), ConfigGraphMethod::BallScan);
        // With a shared file guaranteed, H = "distance ≤ 2" graph:
        // |B_2| − 1 = 12 neighbors each.
        for v in 0..36 {
            assert_eq!(g.degree(v), 12, "node {v}");
        }
        // Auto must route full placements to BallScan, not panic.
        let auto = build_config_graph(&net, Some(1), ConfigGraphMethod::Auto);
        assert_eq!(auto.m(), g.m());
    }

    #[test]
    fn degree_concentrates_around_lemma3_delta() {
        // Lemma 3(a): Δ = Θ(M²r²/K). Use a mid-size instance and check
        // mean degree is within a small constant factor of M²·(2r)²-ish
        // ball scaling. (The exact constant involves |B_2r| ≈ 2(2r)².)
        let side = 30u32;
        let n = side * side;
        let (k, m, r) = (n, 30u32, 6u32);
        let mut rng = SmallRng::seed_from_u64(5);
        let net = CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng);
        let g = build_config_graph(&net, Some(r), ConfigGraphMethod::Auto);
        let stats = g.degree_stats();
        // Prediction: each of ~|B_2r| neighbors shares a file with
        // probability ≈ 1−(1−t(u)/K)^M ≈ M²/K (for distinct-ish files).
        let ball = net.topo().ball_size(2 * r) as f64 - 1.0;
        let p_share = 1.0 - (1.0 - (m as f64) / (k as f64)).powi(m as i32);
        let predict = ball * p_share;
        assert!(
            stats.mean > 0.4 * predict && stats.mean < 2.5 * predict,
            "mean degree {} vs prediction {predict}",
            stats.mean
        );
    }

    #[test]
    fn zero_radius_keeps_h_empty_under_sparse_placement() {
        // r = 0 ⇒ d(u,v) ≤ 0 ⇒ only self-pairs, which are not edges.
        let net = net(7, 6, 10, 2);
        let g = build_config_graph(&net, Some(0), ConfigGraphMethod::Auto);
        assert_eq!(g.m(), 0);
    }
}
