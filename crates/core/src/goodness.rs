//! Placement goodness (the paper's Definition 5 / Lemma 2).
//!
//! A placement is `(δ, µ)`-good when
//!
//! * every node caches at least `δ·M` **distinct** files (`t(u) ≥ δM`), and
//! * every pair of nodes shares fewer than `µ` files (`t(u,v) < µ`).
//!
//! Lemma 2 proves proportional placement is good w.h.p. in the `K = n`,
//! `M = n^α` regime with `δ = (1−α)/3` and constant `µ ≥ 5/(1−2α)`.
//! [`GoodnessReport`] measures the realized extremes so the
//! `lemma2_goodness` bench can confirm the claim (and locate where it
//! starts failing as `α → 1/2`).

use crate::network::CacheNetwork;
use paba_topology::Topology;
use paba_util::OnlineStats;

/// Measured goodness statistics of a placement.
#[derive(Clone, Debug, PartialEq)]
pub struct GoodnessReport {
    /// Smallest distinct-file count over all nodes.
    pub min_t_u: u32,
    /// Mean distinct-file count.
    pub mean_t_u: f64,
    /// Largest pairwise overlap over the checked pairs.
    pub max_t_uv: u32,
    /// Mean pairwise overlap over the checked pairs.
    pub mean_t_uv: f64,
    /// Number of (unordered) pairs checked.
    pub pairs_checked: u64,
    /// Cache size `M` the placement was generated with.
    pub m: u32,
}

impl GoodnessReport {
    /// Compute goodness statistics for `net`.
    ///
    /// `pair_radius` limits the overlap check to pairs within torus
    /// distance `2·r` — the only pairs the configuration graph (and hence
    /// Theorem 4) cares about; `None` checks all `n(n−1)/2` pairs (use
    /// only for small `n`).
    pub fn measure<T: Topology>(net: &CacheNetwork<T>, pair_radius: Option<u32>) -> Self {
        let n = net.n();
        let placement = net.placement();
        let mut min_t_u = u32::MAX;
        let mut t_u_stats = OnlineStats::new();
        for u in 0..n {
            let t = placement.t_u(u);
            min_t_u = min_t_u.min(t);
            t_u_stats.push(t as f64);
        }
        let mut max_t_uv = 0u32;
        let mut t_uv_stats = OnlineStats::new();
        match pair_radius
            .map(|r| 2 * r)
            .filter(|&l| l < net.topo().diameter())
        {
            Some(limit) => {
                for u in 0..n {
                    let mut local_max = 0u32;
                    net.topo().for_each_in_ball(u, limit, |v| {
                        if v > u {
                            let t = placement.t_uv(u, v);
                            local_max = local_max.max(t);
                            t_uv_stats.push(t as f64);
                        }
                    });
                    max_t_uv = max_t_uv.max(local_max);
                }
            }
            None => {
                for u in 0..n {
                    for v in (u + 1)..n {
                        let t = placement.t_uv(u, v);
                        max_t_uv = max_t_uv.max(t);
                        t_uv_stats.push(t as f64);
                    }
                }
            }
        }
        Self {
            min_t_u,
            mean_t_u: t_u_stats.mean(),
            max_t_uv,
            mean_t_uv: t_uv_stats.mean(),
            pairs_checked: t_uv_stats.count(),
            m: placement.m(),
        }
    }

    /// Is the placement `(δ, µ)`-good per Definition 5?
    pub fn is_good(&self, delta: f64, mu: f64) -> bool {
        self.min_t_u as f64 >= delta * self.m as f64 && (self.max_t_uv as f64) < mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    #[test]
    fn matches_bruteforce_on_small_instance() {
        let net = net(1, 5, 12, 4);
        let rep = GoodnessReport::measure(&net, None);
        let brute_min = (0..net.n()).map(|u| net.placement().t_u(u)).min().unwrap();
        let mut brute_max_uv = 0;
        let mut count = 0u64;
        for u in 0..net.n() {
            for v in (u + 1)..net.n() {
                brute_max_uv = brute_max_uv.max(net.placement().t_uv(u, v));
                count += 1;
            }
        }
        assert_eq!(rep.min_t_u, brute_min);
        assert_eq!(rep.max_t_uv, brute_max_uv);
        assert_eq!(rep.pairs_checked, count);
        assert_eq!(rep.m, 4);
    }

    #[test]
    fn radius_limited_pairs_are_a_subset() {
        let net = net(2, 8, 30, 3);
        let local = GoodnessReport::measure(&net, Some(1));
        let global = GoodnessReport::measure(&net, None);
        assert!(local.pairs_checked < global.pairs_checked);
        assert!(local.max_t_uv <= global.max_t_uv);
        // t(u) statistics are unaffected by the pair radius.
        assert_eq!(local.min_t_u, global.min_t_u);
    }

    #[test]
    fn lemma2_regime_is_good() {
        // K = n = 1024, M = n^0.3 ≈ 8: Lemma 2 predicts (δ, µ)-goodness
        // with δ = (1−0.3)/3 ≈ 0.233 and µ = 5/(1−0.6) = 12.5.
        let side = 32u32;
        let n = side * side;
        let alpha = 0.3f64;
        let m = (n as f64).powf(alpha).round() as u32;
        let net = net(3, side, n, m);
        let rep = GoodnessReport::measure(&net, Some(4));
        let delta = paba_theory::goodness_delta(alpha);
        let mu = paba_theory::goodness_mu(alpha);
        assert!(
            rep.is_good(delta, mu),
            "expected good: min t(u)={} (δM={:.1}), max t(u,v)={} (µ={mu:.1})",
            rep.min_t_u,
            delta * m as f64,
            rep.max_t_uv
        );
    }

    #[test]
    fn full_placement_violates_overlap_bound() {
        use crate::{Library, Placement};
        let topo = Torus::new(4);
        let library = Library::new(6, Popularity::Uniform);
        let placement = Placement::full(16, 6);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let rep = GoodnessReport::measure(&net, None);
        assert_eq!(rep.min_t_u, 6);
        assert_eq!(rep.max_t_uv, 6);
        assert!(rep.is_good(1.0, 7.0));
        assert!(!rep.is_good(1.0, 6.0), "µ bound is strict");
    }

    #[test]
    fn mean_t_u_matches_expectation() {
        let (k, m) = (200u32, 20u32);
        let net = net(5, 16, k, m);
        let rep = GoodnessReport::measure(&net, Some(1));
        let expect = paba_theory::expected_distinct_files(k as f64, m as f64);
        assert!(
            (rep.mean_t_u - expect).abs() < 0.5,
            "mean t(u) {} vs E {expect}",
            rep.mean_t_u
        );
    }
}
