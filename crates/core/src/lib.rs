//! # paba-core — Proximity-Aware Balanced Allocations in Cache Networks
//!
//! The primary contribution of Pourmiri, Jafari Siavoshani & Shariatpanahi
//! (IPDPS 2017), implemented as a reusable simulator library:
//!
//! * a **cache network** of `n` servers on a torus/grid, each holding `M`
//!   files drawn i.i.d. with replacement from a `K`-file library according
//!   to a popularity profile ([`CacheNetwork`], [`Placement`]);
//! * **Strategy I** — nearest-replica assignment with exact uniform
//!   tie-breaking ([`NearestReplica`], the paper's Definition 2);
//! * **Strategy II** — proximity-aware two choices: two uniform random
//!   replica holders within the radius-`r` ball of the request origin, the
//!   request joins the lesser-loaded one ([`ProximityChoice`], Definition
//!   3), generalized to `d` choices;
//! * the analysis artefacts of §IV: per-file **Voronoi tessellations**
//!   (Lemma 1), the **configuration graph** `H` (Definition 4), and the
//!   placement **goodness** property (Definition 5 / Lemma 2);
//! * an end-to-end [`simulate`] driver producing [`SimReport`]s with the
//!   paper's two metrics, maximum load `L` and communication cost `C`
//!   (Definition 1).
//!
//! ## Quick example
//!
//! ```
//! use paba_core::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
//! let net = CacheNetwork::builder()
//!     .torus_side(15)          // n = 225 servers
//!     .library(50, Popularity::Uniform)
//!     .cache_size(4)           // M = 4 draws per server
//!     .build(&mut rng);
//!
//! // Strategy II with proximity radius r = 5, n requests:
//! let mut strategy = ProximityChoice::two_choice(Some(5));
//! let report = simulate(&net, &mut strategy, net.n() as u64, &mut rng);
//! assert!(report.max_load() >= 1);
//! assert!(report.comm_cost() <= 10.0); // ≤ 2r by construction (no fallbacks ⇒ ≤ r)
//! ```

pub mod config_graph;
pub mod goodness;
pub mod library;
pub mod metrics;
pub mod network;
pub mod placement;
pub mod request;
pub mod simulate;
pub mod source;
pub mod strategy;
pub mod voronoi;

pub use config_graph::{build_config_graph, ConfigGraphMethod};
pub use goodness::GoodnessReport;
pub use library::Library;
pub use metrics::{FallbackKind, SimReport};
pub use network::{CacheNetwork, CacheNetworkBuilder};
pub use placement::{Placement, PlacementPolicy};
pub use request::{apply_uncached_policy, Request, UncachedPolicy};
pub use simulate::{
    simulate, simulate_observed, simulate_source, simulate_source_observed,
    simulate_source_profiled, simulate_with_policy,
};
pub use source::{IidUniform, RequestSource};
pub use strategy::{
    Assignment, LeastLoadedInBall, NearestReplica, PairMode, ProximityChoice, RadiusFallback,
    SamplerKind, StaleLoad, Strategy,
};
pub use voronoi::{VoronoiCells, VoronoiComputer};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::{
        simulate, simulate_observed, simulate_source, CacheNetwork, IidUniform, Library,
        NearestReplica, Placement, PlacementPolicy, ProximityChoice, RequestSource, SimReport,
        Strategy,
    };
    pub use paba_popularity::Popularity;
    pub use paba_topology::{Grid, Topology, Torus};
}
