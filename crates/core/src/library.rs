//! The file library `W = {W_1, …, W_K}` with its popularity profile.

use paba_popularity::{FileId, FileSampler, Popularity};
use rand::Rng;

/// A content library: `K` files and a popularity profile `P`, with a
/// prebuilt O(1) sampler for request/placement draws.
#[derive(Clone, Debug)]
pub struct Library {
    k: u32,
    popularity: Popularity,
    weights: Vec<f64>,
    sampler: FileSampler,
}

impl Library {
    /// Build a library of `k` files under `popularity`.
    ///
    /// # Panics
    /// If `k == 0` (a cache network needs something to serve).
    pub fn new(k: u32, popularity: Popularity) -> Self {
        assert!(k > 0, "library must contain at least one file");
        let weights = popularity.weights(k as usize);
        let sampler = FileSampler::new(&popularity, k);
        Self {
            k,
            popularity,
            weights,
            sampler,
        }
    }

    /// Library size `K`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The popularity profile.
    pub fn popularity(&self) -> &Popularity {
        &self.popularity
    }

    /// Normalized popularity vector `p_1..p_K`.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Popularity of file `f`.
    #[inline]
    pub fn probability(&self, f: FileId) -> f64 {
        self.weights[f as usize]
    }

    /// Draw one file id from `P` in O(1).
    #[inline]
    pub fn sample_file<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        self.sampler.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_library() {
        let lib = Library::new(10, Popularity::Uniform);
        assert_eq!(lib.k(), 10);
        assert!((lib.probability(3) - 0.1).abs() < 1e-12);
        assert!((lib.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_library_sampling_in_range() {
        let lib = Library::new(64, Popularity::zipf(0.9));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(lib.sample_file(&mut rng) < 64);
        }
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn empty_library_panics() {
        let _ = Library::new(0, Popularity::Uniform);
    }
}
