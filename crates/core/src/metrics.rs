//! Simulation metrics: the paper's Definition 1.
//!
//! * **Maximum load** `L = max_i T_i` — the largest number of requests any
//!   single server ends up handling.
//! * **Communication cost** `C` — the average hop distance between request
//!   origins and their serving nodes.
//!
//! [`SimReport`] additionally tracks the full load vector/histogram and the
//! fallback events Strategy II's finite radius can trigger (see
//! DESIGN.md §5.4), so experiments can verify fallbacks are rare in the
//! paper's regimes.

use paba_topology::NodeId;
use paba_util::Histogram;

/// Why an assignment deviated from the strategy's primary rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FallbackKind {
    /// The radius-`r` ball held exactly one replica; it was used without a
    /// load comparison (Strategy II only).
    SingleCandidate,
    /// The radius-`r` ball held no replica; the strategy escalated (to the
    /// global nearest replica, or the origin — per its configuration).
    NoCandidateInBall,
    /// The requested file had no replica anywhere and
    /// [`crate::UncachedPolicy::ServeAtOrigin`] served it locally.
    Uncached,
}

/// Aggregated outcome of one simulated delivery phase.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SimReport {
    /// Final per-server load vector `T_i`.
    pub loads: Vec<u32>,
    /// Number of requests processed.
    pub total_requests: u64,
    /// Sum of hop distances over all requests.
    pub total_hops: u64,
    /// Requests decided between exactly one candidate (Strategy II).
    pub single_candidate: u64,
    /// Requests whose ball held no replica.
    pub no_candidate_in_ball: u64,
    /// Requests for files with no replica anywhere.
    pub uncached: u64,
}

impl SimReport {
    /// Empty report for `n` servers.
    pub fn new(n: u32) -> Self {
        Self {
            loads: vec![0; n as usize],
            ..Default::default()
        }
    }

    /// Record one served request.
    #[inline]
    pub fn record(&mut self, server: NodeId, hops: u32, fallback: Option<FallbackKind>) {
        self.loads[server as usize] += 1;
        self.total_requests += 1;
        self.total_hops += hops as u64;
        match fallback {
            None => {}
            Some(FallbackKind::SingleCandidate) => self.single_candidate += 1,
            Some(FallbackKind::NoCandidateInBall) => self.no_candidate_in_ball += 1,
            Some(FallbackKind::Uncached) => self.uncached += 1,
        }
    }

    /// Number of servers.
    pub fn n(&self) -> u32 {
        self.loads.len() as u32
    }

    /// Maximum load `L = max_i T_i`.
    pub fn max_load(&self) -> u32 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// Mean load (requests per server).
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.total_requests as f64 / self.loads.len() as f64
        }
    }

    /// Communication cost `C`: average hops per request (0 if no requests).
    pub fn comm_cost(&self) -> f64 {
        if self.total_requests == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.total_requests as f64
        }
    }

    /// Fraction of requests that hit any fallback path.
    pub fn fallback_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            return 0.0;
        }
        (self.single_candidate + self.no_candidate_in_ball + self.uncached) as f64
            / self.total_requests as f64
    }

    /// Load quantile by the nearest-rank definition: the smallest load `l`
    /// such that at least `⌈q·n⌉` servers carry load `≤ l`.
    ///
    /// `q = 0.5` is the median server load, `q = 0.99` the p99, and
    /// `q = 1.0` equals [`SimReport::max_load`]. Computed by a counting
    /// pass over the load histogram (O(n + L)), so the repro gates can
    /// query several quantiles per run without sorting.
    ///
    /// # Panics
    /// If `q ∉ [0, 1]`.
    pub fn load_quantile(&self, q: f64) -> u32 {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.loads.is_empty() {
            return 0;
        }
        let mut counts = vec![0u64; self.max_load() as usize + 1];
        for &l in &self.loads {
            counts[l as usize] += 1;
        }
        // Nearest rank, clamped to [1, n] so q = 0 returns the minimum.
        let rank = ((q * self.loads.len() as f64).ceil() as u64).clamp(1, self.loads.len() as u64);
        let mut seen = 0u64;
        for (load, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return load as u32;
            }
        }
        unreachable!("cumulative count must reach rank ≤ n")
    }

    /// Population standard deviation of the per-server load vector.
    ///
    /// The paper's theorems bound the *spread* of the allocation; the repro
    /// gates use this as a scale-free balance measure alongside
    /// [`SimReport::max_load`].
    pub fn load_stddev(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        let n = self.loads.len() as f64;
        let mean = self.total_requests as f64 / n;
        let ss: f64 = self
            .loads
            .iter()
            .map(|&l| {
                let d = l as f64 - mean;
                d * d
            })
            .sum();
        (ss / n).sqrt()
    }

    /// Load histogram (bucket = number of requests, count = servers).
    pub fn load_histogram(&self) -> Histogram {
        let mut h = Histogram::with_capacity(self.max_load() as usize + 1);
        for &l in &self.loads {
            h.record(l as usize);
        }
        h
    }

    /// Internal consistency: loads must sum to the request count.
    pub fn check_conservation(&self) -> bool {
        self.loads.iter().map(|&l| l as u64).sum::<u64>() == self.total_requests
    }

    /// Merge another report over the *same* network shape (for batching
    /// several request waves); panics on shape mismatch.
    pub fn merge(&mut self, other: &SimReport) {
        assert_eq!(self.loads.len(), other.loads.len(), "shape mismatch");
        for (a, b) in self.loads.iter_mut().zip(other.loads.iter()) {
            *a += b;
        }
        self.total_requests += other.total_requests;
        self.total_hops += other.total_hops;
        self.single_candidate += other.single_candidate;
        self.no_candidate_in_ball += other.no_candidate_in_ball;
        self.uncached += other.uncached;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_metrics() {
        let mut r = SimReport::new(4);
        r.record(0, 3, None);
        r.record(0, 1, Some(FallbackKind::SingleCandidate));
        r.record(2, 0, Some(FallbackKind::NoCandidateInBall));
        assert_eq!(r.max_load(), 2);
        assert_eq!(r.total_requests, 3);
        assert!((r.comm_cost() - 4.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_load() - 0.75).abs() < 1e-12);
        assert_eq!(r.single_candidate, 1);
        assert_eq!(r.no_candidate_in_ball, 1);
        assert!((r.fallback_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.check_conservation());
    }

    #[test]
    fn histogram_reflects_loads() {
        let mut r = SimReport::new(3);
        r.record(1, 0, None);
        r.record(1, 0, None);
        let h = r.load_histogram();
        assert_eq!(h.count(0), 2); // two idle servers
        assert_eq!(h.count(2), 1);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SimReport::new(2);
        a.record(0, 5, None);
        let mut b = SimReport::new(2);
        b.record(1, 7, Some(FallbackKind::Uncached));
        a.merge(&b);
        assert_eq!(a.total_requests, 2);
        assert_eq!(a.total_hops, 12);
        assert_eq!(a.uncached, 1);
        assert_eq!(a.loads, vec![1, 1]);
        assert!(a.check_conservation());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merge_rejects_different_shapes() {
        let mut a = SimReport::new(2);
        a.merge(&SimReport::new(3));
    }

    #[test]
    fn empty_report() {
        let r = SimReport::new(5);
        assert_eq!(r.max_load(), 0);
        assert_eq!(r.comm_cost(), 0.0);
        assert_eq!(r.fallback_fraction(), 0.0);
        assert!(r.check_conservation());
        assert_eq!(r.load_quantile(0.5), 0);
        assert_eq!(r.load_stddev(), 0.0);
    }

    /// Brute-force nearest-rank quantile on a sorted copy, for cross-checks.
    fn brute_quantile(loads: &[u32], q: f64) -> u32 {
        let mut v = loads.to_vec();
        v.sort_unstable();
        let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
        v[rank - 1]
    }

    #[test]
    fn quantiles_match_sorted_rank() {
        let mut r = SimReport::new(10);
        // loads: [4, 1, 0, 2, 0, 0, 1, 0, 0, 0]
        for (server, times) in [(0u32, 4u32), (1, 1), (3, 2), (6, 1)] {
            for _ in 0..times {
                r.record(server, 1, None);
            }
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(r.load_quantile(q), brute_quantile(&r.loads, q), "q={q}");
        }
        assert_eq!(r.load_quantile(1.0), r.max_load());
        assert_eq!(r.load_quantile(0.0), 0);
        assert_eq!(r.load_quantile(0.5), 0); // 6 of 10 servers are idle
    }

    #[test]
    fn stddev_matches_two_pass() {
        let mut r = SimReport::new(4);
        for (server, times) in [(0u32, 3u32), (1, 1), (2, 2)] {
            for _ in 0..times {
                r.record(server, 0, None);
            }
        }
        // loads [3, 1, 2, 0]: mean 1.5, population variance 1.25.
        assert!((r.load_stddev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantile_and_stddev_survive_merge() {
        let mut a = SimReport::new(6);
        let mut b = SimReport::new(6);
        for s in [0u32, 0, 1, 2, 2, 2] {
            a.record(s, 1, None);
        }
        for s in [3u32, 3, 3, 3, 5, 0] {
            b.record(s, 2, None);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        // Reference: element-wise summed load vector.
        let combined: Vec<u32> = a
            .loads
            .iter()
            .zip(b.loads.iter())
            .map(|(&x, &y)| x + y)
            .collect();
        assert_eq!(merged.loads, combined);
        for q in [0.0, 0.5, 0.75, 0.99, 1.0] {
            assert_eq!(
                merged.load_quantile(q),
                brute_quantile(&combined, q),
                "q={q}"
            );
        }
        let n = combined.len() as f64;
        let mean = combined.iter().map(|&l| l as f64).sum::<f64>() / n;
        let var = combined
            .iter()
            .map(|&l| (l as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        assert!((merged.load_stddev() - var.sqrt()).abs() < 1e-12);
        assert!(merged.check_conservation());
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_rejects_out_of_range() {
        let _ = SimReport::new(2).load_quantile(1.5);
    }
}
