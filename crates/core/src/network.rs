//! The cache network: topology + library + placement, wired together.

use crate::library::Library;
use crate::placement::{Placement, PlacementPolicy};
use paba_popularity::Popularity;
use paba_topology::{Grid, Topology, Torus};
use rand::Rng;

/// A fully instantiated cache network (the paper's §II-B model): `n`
/// servers on a topology, a `K`-file library with popularity `P`, and a
/// concrete cache placement.
#[derive(Clone, Debug)]
pub struct CacheNetwork<T: Topology> {
    topo: T,
    library: Library,
    placement: Placement,
    cached_file_count: u32,
}

impl<T: Topology> CacheNetwork<T> {
    /// Assemble a network from parts (placement must match `topo.n()` and
    /// `library.k()`).
    ///
    /// # Panics
    /// On any shape mismatch.
    pub fn from_parts(topo: T, library: Library, placement: Placement) -> Self {
        assert_eq!(placement.n(), topo.n(), "placement/topology node count");
        assert_eq!(placement.k(), library.k(), "placement/library size");
        let cached_file_count =
            (0..library.k()).filter(|&f| placement.replica_count(f) > 0).count() as u32;
        Self {
            topo,
            library,
            placement,
            cached_file_count,
        }
    }

    /// The topology.
    #[inline]
    pub fn topo(&self) -> &T {
        &self.topo
    }

    /// The library.
    #[inline]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The placement.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of servers `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.topo.n()
    }

    /// Library size `K`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.library.k()
    }

    /// Cache size `M`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.placement.m()
    }

    /// Number of files with at least one replica.
    #[inline]
    pub fn cached_file_count(&self) -> u32 {
        self.cached_file_count
    }

    /// Draw a file id from the library's popularity profile.
    #[inline]
    pub fn sample_file<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.library.sample_file(rng)
    }
}

impl CacheNetwork<Torus> {
    /// Start a [`CacheNetworkBuilder`] (torus topology; call
    /// [`CacheNetworkBuilder::build_grid`] for the bounded grid).
    pub fn builder() -> CacheNetworkBuilder {
        CacheNetworkBuilder::default()
    }
}

/// Fluent builder for [`CacheNetwork`] on a [`Torus`] or [`Grid`].
///
/// ```
/// use paba_core::{CacheNetwork, PlacementPolicy};
/// use paba_popularity::Popularity;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let net = CacheNetwork::builder()
///     .torus_side(10)
///     .library(100, Popularity::zipf(0.8))
///     .cache_size(5)
///     .build(&mut rng);
/// assert_eq!(net.n(), 100);
/// assert_eq!(net.m(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct CacheNetworkBuilder {
    side: u32,
    k: u32,
    popularity: Popularity,
    m: u32,
    policy: PlacementPolicy,
}

impl Default for CacheNetworkBuilder {
    fn default() -> Self {
        Self {
            side: 10,
            k: 100,
            popularity: Popularity::Uniform,
            m: 1,
            policy: PlacementPolicy::ProportionalWithReplacement,
        }
    }
}

impl CacheNetworkBuilder {
    /// Side length of the lattice (`n = side²`).
    pub fn torus_side(mut self, side: u32) -> Self {
        self.side = side;
        self
    }

    /// Number of nodes; must be a perfect square.
    pub fn nodes(mut self, n: u32) -> Self {
        let side = (n as f64).sqrt().round() as u32;
        assert!(side * side == n, "n={n} is not a perfect square");
        self.side = side;
        self
    }

    /// Library size and popularity profile.
    pub fn library(mut self, k: u32, popularity: Popularity) -> Self {
        self.k = k;
        self.popularity = popularity;
        self
    }

    /// Cache size `M` (number of placement draws per node).
    pub fn cache_size(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Placement policy (default: the paper's with-replacement model).
    pub fn placement_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build on a torus (the paper's default topology).
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> CacheNetwork<Torus> {
        let topo = Torus::new(self.side);
        let library = Library::new(self.k, self.popularity.clone());
        let placement =
            Placement::generate(topo.n(), &library, self.m, self.policy, rng);
        CacheNetwork::from_parts(topo, library, placement)
    }

    /// Build on a bounded grid (Remark 1 ablation).
    pub fn build_grid<R: Rng + ?Sized>(self, rng: &mut R) -> CacheNetwork<Grid> {
        let topo = Grid::new(self.side);
        let library = Library::new(self.k, self.popularity.clone());
        let placement =
            Placement::generate(topo.n(), &library, self.m, self.policy, rng);
        CacheNetwork::from_parts(topo, library, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn builder_wires_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = CacheNetwork::builder()
            .torus_side(6)
            .library(20, Popularity::Uniform)
            .cache_size(3)
            .build(&mut rng);
        assert_eq!(net.n(), 36);
        assert_eq!(net.k(), 20);
        assert_eq!(net.m(), 3);
        assert!(net.cached_file_count() <= 20);
        assert!(net.cached_file_count() > 0);
    }

    #[test]
    fn nodes_accepts_perfect_square() {
        let mut rng = SmallRng::seed_from_u64(2);
        let net = CacheNetwork::builder()
            .nodes(2025)
            .library(10, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        assert_eq!(net.n(), 2025);
        assert_eq!(net.topo().side(), 45);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn nodes_rejects_non_square() {
        let _ = CacheNetwork::builder().nodes(2026);
    }

    #[test]
    fn grid_build_works() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = CacheNetwork::builder()
            .torus_side(5)
            .library(8, Popularity::Uniform)
            .cache_size(2)
            .build_grid(&mut rng);
        assert_eq!(net.n(), 25);
        assert_eq!(net.topo().diameter(), 8); // grid 2(side−1), torus would be 4
    }

    #[test]
    fn full_library_policy() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = CacheNetwork::builder()
            .torus_side(4)
            .library(12, Popularity::Uniform)
            .cache_size(999) // ignored by FullLibrary
            .placement_policy(PlacementPolicy::FullLibrary)
            .build(&mut rng);
        assert_eq!(net.m(), 12);
        assert_eq!(net.cached_file_count(), 12);
        assert!(net.placement().is_full());
    }

    #[test]
    #[should_panic(expected = "placement/topology")]
    fn from_parts_rejects_mismatch() {
        let topo = Torus::new(3);
        let library = Library::new(5, Popularity::Uniform);
        let placement = Placement::full(8, 5); // 8 ≠ 9 nodes
        let _ = CacheNetwork::from_parts(topo, library, placement);
    }
}
