//! The cache network: topology + library + placement, wired together.

use crate::library::Library;
use crate::placement::{Placement, PlacementPolicy};
use paba_popularity::{AliasTable, FileId, Popularity};
use paba_topology::{Grid, Topology, Torus};
use rand::Rng;

/// O(1) sampler over the *cached* sub-library, i.e. the popularity
/// profile conditioned on `replica_count(f) > 0`.
///
/// Precomputed once per network so [`crate::UncachedPolicy::ResampleFile`]
/// never has to redraw in a loop: with a tiny cached sub-library the old
/// rejection loop took O(K) expected draws per request.
#[derive(Clone, Debug)]
enum CachedSampler {
    /// Every file has a replica — the unconditional library sampler is
    /// already the conditional one.
    Full,
    /// Uniform popularity over a strict subset: one uniform index draw.
    UniformSubset { ids: Vec<FileId> },
    /// Skewed popularity over a strict subset: alias table over the
    /// renormalized conditional weights.
    WeightedSubset { ids: Vec<FileId>, table: AliasTable },
    /// No file has any replica; drawing panics.
    Empty,
}

/// A fully instantiated cache network (the paper's §II-B model): `n`
/// servers on a topology, a `K`-file library with popularity `P`, and a
/// concrete cache placement.
#[derive(Clone, Debug)]
pub struct CacheNetwork<T: Topology> {
    topo: T,
    library: Library,
    placement: Placement,
    cached_file_count: u32,
    cached_sampler: CachedSampler,
}

impl<T: Topology> CacheNetwork<T> {
    /// Assemble a network from parts (placement must match `topo.n()` and
    /// `library.k()`).
    ///
    /// # Panics
    /// On any shape mismatch.
    pub fn from_parts(topo: T, library: Library, placement: Placement) -> Self {
        assert_eq!(placement.n(), topo.n(), "placement/topology node count");
        assert_eq!(placement.k(), library.k(), "placement/library size");
        let (cached_file_count, cached_sampler) = build_cached_sampler(&library, &placement);
        Self {
            topo,
            library,
            placement,
            cached_file_count,
            cached_sampler,
        }
    }

    /// Mutate the placement through `f` (a batch of
    /// [`Placement::insert`]/[`Placement::remove`] calls), then rebuild the
    /// derived conditional cached-file sampler once. All derived state is
    /// re-synchronized when this returns, so
    /// [`CacheNetwork::sample_cached_file`] and every strategy keep
    /// working mid-churn; the placement's own indices stay consistent
    /// incrementally.
    pub fn mutate_placement<F, O>(&mut self, f: F) -> O
    where
        F: FnOnce(&mut Placement) -> O,
    {
        let out = f(&mut self.placement);
        let (count, sampler) = build_cached_sampler(&self.library, &self.placement);
        self.cached_file_count = count;
        self.cached_sampler = sampler;
        out
    }

    /// The topology.
    #[inline]
    pub fn topo(&self) -> &T {
        &self.topo
    }

    /// The library.
    #[inline]
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// The placement.
    #[inline]
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Number of servers `n`.
    #[inline]
    pub fn n(&self) -> u32 {
        self.topo.n()
    }

    /// Library size `K`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.library.k()
    }

    /// Cache size `M`.
    #[inline]
    pub fn m(&self) -> u32 {
        self.placement.m()
    }

    /// Number of files with at least one replica.
    #[inline]
    pub fn cached_file_count(&self) -> u32 {
        self.cached_file_count
    }

    /// Draw a file id from the library's popularity profile.
    #[inline]
    pub fn sample_file<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        self.library.sample_file(rng)
    }

    /// Draw a file id from the popularity profile *conditioned on the file
    /// being cached somewhere* — O(1), no rejection loop.
    ///
    /// # Panics
    /// If no file has any replica.
    #[inline]
    pub fn sample_cached_file<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        match &self.cached_sampler {
            CachedSampler::Full => self.library.sample_file(rng),
            CachedSampler::UniformSubset { ids } => ids[rng.gen_range(0..ids.len())],
            CachedSampler::WeightedSubset { ids, table } => ids[table.sample(rng) as usize],
            CachedSampler::Empty => {
                panic!("no file has any replica; cannot sample a cached file")
            }
        }
    }
}

impl CacheNetwork<Torus> {
    /// Start a [`CacheNetworkBuilder`] (torus topology; call
    /// [`CacheNetworkBuilder::build_grid`] for the bounded grid).
    pub fn builder() -> CacheNetworkBuilder {
        CacheNetworkBuilder::default()
    }
}

/// Compute the cached-file count and the O(1) conditional sampler for the
/// current placement (shared by construction and post-mutation resync).
fn build_cached_sampler(library: &Library, placement: &Placement) -> (u32, CachedSampler) {
    let cached: Vec<FileId> = (0..library.k())
        .filter(|&f| placement.replica_count(f) > 0)
        .collect();
    let cached_file_count = cached.len() as u32;
    let sampler = if cached_file_count == library.k() {
        CachedSampler::Full
    } else if cached.is_empty() {
        CachedSampler::Empty
    } else if library.popularity().is_uniform() {
        CachedSampler::UniformSubset { ids: cached }
    } else {
        let weights: Vec<f64> = cached.iter().map(|&f| library.probability(f)).collect();
        CachedSampler::WeightedSubset {
            table: AliasTable::new(&weights),
            ids: cached,
        }
    };
    (cached_file_count, sampler)
}

/// Fluent builder for [`CacheNetwork`] on a [`Torus`] or [`Grid`].
///
/// ```
/// use paba_core::{CacheNetwork, PlacementPolicy};
/// use paba_popularity::Popularity;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let net = CacheNetwork::builder()
///     .torus_side(10)
///     .library(100, Popularity::zipf(0.8))
///     .cache_size(5)
///     .build(&mut rng);
/// assert_eq!(net.n(), 100);
/// assert_eq!(net.m(), 5);
/// ```
#[derive(Clone, Debug)]
pub struct CacheNetworkBuilder {
    side: u32,
    k: u32,
    popularity: Popularity,
    m: u32,
    policy: PlacementPolicy,
}

impl Default for CacheNetworkBuilder {
    fn default() -> Self {
        Self {
            side: 10,
            k: 100,
            popularity: Popularity::Uniform,
            m: 1,
            policy: PlacementPolicy::ProportionalWithReplacement,
        }
    }
}

impl CacheNetworkBuilder {
    /// Side length of the lattice (`n = side²`).
    pub fn torus_side(mut self, side: u32) -> Self {
        self.side = side;
        self
    }

    /// Number of nodes; must be a perfect square.
    pub fn nodes(mut self, n: u32) -> Self {
        // Compare in u64: near u32::MAX the rounded square root is 65536
        // and `side * side` would wrap to 0 in u32 arithmetic.
        let side = (n as f64).sqrt().round() as u64;
        assert!(side * side == n as u64, "n={n} is not a perfect square");
        self.side = side as u32;
        self
    }

    /// Library size and popularity profile.
    pub fn library(mut self, k: u32, popularity: Popularity) -> Self {
        self.k = k;
        self.popularity = popularity;
        self
    }

    /// Cache size `M` (number of placement draws per node).
    pub fn cache_size(mut self, m: u32) -> Self {
        self.m = m;
        self
    }

    /// Placement policy (default: the paper's with-replacement model).
    pub fn placement_policy(mut self, policy: PlacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Build on a torus (the paper's default topology).
    pub fn build<R: Rng + ?Sized>(self, rng: &mut R) -> CacheNetwork<Torus> {
        let topo = Torus::new(self.side);
        let library = Library::new(self.k, self.popularity.clone());
        let placement = Placement::generate(topo.n(), &library, self.m, self.policy, rng);
        CacheNetwork::from_parts(topo, library, placement)
    }

    /// Build on a bounded grid (Remark 1 ablation).
    pub fn build_grid<R: Rng + ?Sized>(self, rng: &mut R) -> CacheNetwork<Grid> {
        let topo = Grid::new(self.side);
        let library = Library::new(self.k, self.popularity.clone());
        let placement = Placement::generate(topo.n(), &library, self.m, self.policy, rng);
        CacheNetwork::from_parts(topo, library, placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn builder_wires_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let net = CacheNetwork::builder()
            .torus_side(6)
            .library(20, Popularity::Uniform)
            .cache_size(3)
            .build(&mut rng);
        assert_eq!(net.n(), 36);
        assert_eq!(net.k(), 20);
        assert_eq!(net.m(), 3);
        assert!(net.cached_file_count() <= 20);
        assert!(net.cached_file_count() > 0);
    }

    #[test]
    fn nodes_accepts_perfect_square() {
        let mut rng = SmallRng::seed_from_u64(2);
        let net = CacheNetwork::builder()
            .nodes(2025)
            .library(10, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        assert_eq!(net.n(), 2025);
        assert_eq!(net.topo().side(), 45);
    }

    #[test]
    #[should_panic(expected = "not a perfect square")]
    fn nodes_rejects_non_square() {
        let _ = CacheNetwork::builder().nodes(2026);
    }

    #[test]
    fn grid_build_works() {
        let mut rng = SmallRng::seed_from_u64(3);
        let net = CacheNetwork::builder()
            .torus_side(5)
            .library(8, Popularity::Uniform)
            .cache_size(2)
            .build_grid(&mut rng);
        assert_eq!(net.n(), 25);
        assert_eq!(net.topo().diameter(), 8); // grid 2(side−1), torus would be 4
    }

    #[test]
    fn full_library_policy() {
        let mut rng = SmallRng::seed_from_u64(4);
        let net = CacheNetwork::builder()
            .torus_side(4)
            .library(12, Popularity::Uniform)
            .cache_size(999) // ignored by FullLibrary
            .placement_policy(PlacementPolicy::FullLibrary)
            .build(&mut rng);
        assert_eq!(net.m(), 12);
        assert_eq!(net.cached_file_count(), 12);
        assert!(net.placement().is_full());
    }

    #[test]
    fn cached_sampler_only_returns_cached_files() {
        // K ≫ total cache slots: many uncached files, uniform profile.
        let mut rng = SmallRng::seed_from_u64(11);
        let net = CacheNetwork::builder()
            .torus_side(5)
            .library(500, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        assert!(net.cached_file_count() < net.k());
        for _ in 0..5000 {
            let f = net.sample_cached_file(&mut rng);
            assert!(net.placement().replica_count(f) > 0, "uncached draw {f}");
        }
    }

    #[test]
    fn cached_sampler_matches_conditional_distribution() {
        // Zipf profile with a sparse placement: empirical frequencies must
        // match the library weights renormalized over the cached subset.
        let mut rng = SmallRng::seed_from_u64(12);
        let net = CacheNetwork::builder()
            .torus_side(5)
            .library(200, Popularity::zipf(1.0))
            .cache_size(1)
            .build(&mut rng);
        let cached: Vec<u32> = (0..net.k())
            .filter(|&f| net.placement().replica_count(f) > 0)
            .collect();
        assert!(cached.len() > 3 && (cached.len() as u32) < net.k());
        let z: f64 = cached.iter().map(|&f| net.library().probability(f)).sum();
        let trials = 200_000u32;
        let mut counts = vec![0u32; net.k() as usize];
        for _ in 0..trials {
            counts[net.sample_cached_file(&mut rng) as usize] += 1;
        }
        for &f in &cached {
            let expect = trials as f64 * net.library().probability(f) / z;
            let got = counts[f as usize] as f64;
            assert!(
                (got - expect).abs() < 6.0 * expect.sqrt().max(3.0),
                "file {f}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn mutate_placement_resyncs_cached_sampler() {
        // K ≫ slots so some files start uncached; evicting the last copy
        // of a cached file must drop it from the conditional sampler, and
        // inserting a previously uncached file must add it.
        let mut rng = SmallRng::seed_from_u64(21);
        let mut net = CacheNetwork::builder()
            .torus_side(4)
            .library(200, Popularity::zipf(0.8))
            .cache_size(2)
            .build(&mut rng);
        let before = net.cached_file_count();
        let singleton = (0..net.k())
            .find(|&f| net.placement().replica_count(f) == 1)
            .expect("some file has exactly one replica");
        let holder = net.placement().replica_at(singleton, 0);
        let uncached = (0..net.k())
            .find(|&f| net.placement().replica_count(f) == 0)
            .expect("some file is uncached");
        net.mutate_placement(|p| {
            assert!(p.remove(holder, singleton));
            assert!(p.insert(holder, uncached));
        });
        assert_eq!(net.cached_file_count(), before);
        for _ in 0..20_000 {
            let f = net.sample_cached_file(&mut rng);
            assert_ne!(f, singleton, "evicted file drawn from cached sampler");
            assert!(net.placement().replica_count(f) > 0);
        }
    }

    #[test]
    #[should_panic(expected = "placement/topology")]
    fn from_parts_rejects_mismatch() {
        let topo = Torus::new(3);
        let library = Library::new(5, Popularity::Uniform);
        let placement = Placement::full(8, 5); // 8 ≠ 9 nodes
        let _ = CacheNetwork::from_parts(topo, library, placement);
    }
}
