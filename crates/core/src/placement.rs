//! Cache content placement (the paper's §II-B placement phase).
//!
//! Each of the `n` servers caches `M` files drawn i.i.d. **with
//! replacement** from the library's popularity distribution — the paper's
//! "proportional" placement. Duplicated draws waste cache slots, so a
//! node's *distinct* file count `t(u)` can be below `M`; Lemma 2 is exactly
//! about bounding `t(u)` from below and pairwise overlaps `t(u,v)` from
//! above. We also provide a without-replacement variant and the degenerate
//! full-replication placement (`M = K`, used by Examples 1/4 and Theorem 6)
//! for ablations.

use crate::library::Library;
use paba_popularity::FileId;
use paba_topology::NodeId;
use rand::Rng;

/// How cache contents are drawn.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// The paper's model: `M` i.i.d. draws from `P` *with replacement*.
    #[default]
    ProportionalWithReplacement,
    /// `M` *distinct* files drawn proportionally to `P` (rejection
    /// sampling); requires `M ≤ K`.
    ProportionalDistinct,
    /// Every node stores the entire library (the `M = K` regime). The
    /// cache-size argument is ignored; `M` is forced to `K`.
    FullLibrary,
}

/// An immutable placement: which node caches which files, indexed both ways.
#[derive(Clone, Debug)]
pub struct Placement {
    n: u32,
    k: u32,
    m: u32,
    policy: PlacementPolicy,
    kind: Kind,
}

#[derive(Clone, Debug)]
enum Kind {
    Sparse {
        /// CSR offsets into `node_files` (length `n + 1`).
        node_offsets: Vec<u64>,
        /// Concatenated sorted distinct file lists, per node.
        node_files: Vec<FileId>,
        /// Per-file ascending node lists.
        replicas: Vec<Vec<NodeId>>,
        /// Direct-indexed membership bitmaps for dense files.
        dense: DenseIndex,
    },
    /// Every node caches every file; nothing is materialized.
    Full,
}

/// One-bit-per-node membership bitmaps for **dense** files (replica count
/// `≥ n/16`), making the hot-path [`Placement::caches`] check a single
/// word load instead of a binary search. Popularity-skewed workloads send
/// the bulk of their requests to exactly these files, and the ball-side
/// rejection sampler pays one membership check per trial.
///
/// At most `16M` files can qualify (their replica counts sum to `≤ nM`),
/// so the index occupies at most `2nM` bits total.
#[derive(Clone, Debug, Default)]
struct DenseIndex {
    /// Per-file offset into `words`, [`DenseIndex::NONE`] if not indexed.
    offsets: Vec<u32>,
    words: Vec<u64>,
    /// Bitmap block length (`⌈n/64⌉` words), fixed per placement.
    words_per_file: usize,
    /// Offsets of blocks whose file was demoted below the density
    /// threshold, reused by the next promotion so sustained churn does not
    /// grow `words` without bound.
    free: Vec<u32>,
}

impl DenseIndex {
    const NONE: u32 = u32::MAX;

    fn build(n: u32, replicas: &[Vec<NodeId>]) -> Self {
        let words_per_file = n.div_ceil(64) as usize;
        let mut offsets = vec![Self::NONE; replicas.len()];
        let mut words: Vec<u64> = Vec::new();
        for (f, reps) in replicas.iter().enumerate() {
            if (reps.len() as u64) * 16 < n as u64 {
                continue;
            }
            // Offsets are u32: stop indexing rather than overflow (only
            // reachable near the u32 node-count ceiling with huge M).
            let Ok(off) = u32::try_from(words.len()) else {
                break;
            };
            offsets[f] = off;
            words.resize(words.len() + words_per_file, 0u64);
            let w = &mut words[off as usize..];
            for &v in reps {
                w[(v / 64) as usize] |= 1u64 << (v % 64);
            }
        }
        Self {
            offsets,
            words,
            words_per_file,
            free: Vec::new(),
        }
    }

    /// `Some(cached?)` when file `f` is indexed, `None` otherwise.
    #[inline]
    fn contains(&self, f: FileId, u: NodeId) -> Option<bool> {
        let off = self.offsets[f as usize];
        if off == Self::NONE {
            return None;
        }
        let w = self.words[off as usize + (u / 64) as usize];
        Some((w >> (u % 64)) & 1 == 1)
    }

    /// Set (`val = true`) or clear the membership bit for `(f, u)`; no-op
    /// when `f` is not indexed.
    #[inline]
    fn set(&mut self, f: FileId, u: NodeId, val: bool) {
        let off = self.offsets[f as usize];
        if off == Self::NONE {
            return;
        }
        let w = &mut self.words[off as usize + (u / 64) as usize];
        if val {
            *w |= 1u64 << (u % 64);
        } else {
            *w &= !(1u64 << (u % 64));
        }
    }

    /// Start indexing file `f`, which just crossed the density threshold:
    /// reuse a freed block if one exists, else append one. Skips silently
    /// at the u32 offset ceiling (same behavior as [`DenseIndex::build`]).
    fn promote(&mut self, f: FileId, reps: &[NodeId]) {
        debug_assert_eq!(self.offsets[f as usize], Self::NONE);
        let off = if let Some(off) = self.free.pop() {
            self.words[off as usize..off as usize + self.words_per_file].fill(0);
            off
        } else {
            let Ok(off) = u32::try_from(self.words.len()) else {
                return;
            };
            self.words
                .resize(self.words.len() + self.words_per_file, 0u64);
            off
        };
        self.offsets[f as usize] = off;
        let w = &mut self.words[off as usize..];
        for &v in reps {
            w[(v / 64) as usize] |= 1u64 << (v % 64);
        }
    }

    /// Stop indexing file `f`, which dropped below the density threshold;
    /// its bitmap block goes on the free list for the next promotion.
    fn demote(&mut self, f: FileId) {
        let off = self.offsets[f as usize];
        debug_assert_ne!(off, Self::NONE);
        self.offsets[f as usize] = Self::NONE;
        self.free.push(off);
    }
}

impl Placement {
    /// Generate a placement for `n` nodes over `library` with cache size
    /// `m` under `policy`.
    ///
    /// # Panics
    /// * `n == 0` or (`m == 0` under a non-full policy);
    /// * `ProportionalDistinct` with `m > K`.
    pub fn generate<R: Rng + ?Sized>(
        n: u32,
        library: &Library,
        m: u32,
        policy: PlacementPolicy,
        rng: &mut R,
    ) -> Self {
        assert!(n > 0, "placement needs at least one node");
        let k = library.k();
        match policy {
            PlacementPolicy::FullLibrary => Self {
                n,
                k,
                m: k,
                policy,
                kind: Kind::Full,
            },
            PlacementPolicy::ProportionalWithReplacement => {
                assert!(m > 0, "cache size must be positive");
                Self::generate_sparse(n, library, m, policy, rng, false)
            }
            PlacementPolicy::ProportionalDistinct => {
                assert!(m > 0, "cache size must be positive");
                assert!(m <= k, "distinct placement needs M ≤ K (got M={m}, K={k})");
                // Zero-probability files can never be drawn; rejection
                // sampling must have at least M drawable files or it
                // would loop forever.
                let drawable = library.weights().iter().filter(|&&w| w > 0.0).count();
                assert!(
                    drawable >= m as usize,
                    "distinct placement needs ≥ M files with positive popularity \
                     (M={m}, positive-weight files={drawable})"
                );
                Self::generate_sparse(n, library, m, policy, rng, true)
            }
        }
    }

    fn generate_sparse<R: Rng + ?Sized>(
        n: u32,
        library: &Library,
        m: u32,
        policy: PlacementPolicy,
        rng: &mut R,
        distinct: bool,
    ) -> Self {
        let k = library.k();
        let mut node_offsets = Vec::with_capacity(n as usize + 1);
        let mut node_files: Vec<FileId> = Vec::with_capacity((n as u64 * m as u64) as usize);
        let mut replicas: Vec<Vec<NodeId>> = vec![Vec::new(); k as usize];
        let mut draws: Vec<FileId> = Vec::with_capacity(m as usize);
        node_offsets.push(0u64);
        for u in 0..n {
            draws.clear();
            if distinct {
                // Rejection-sample M distinct files proportional to P.
                while draws.len() < m as usize {
                    let f = library.sample_file(rng);
                    if !draws.contains(&f) {
                        draws.push(f);
                    }
                }
                draws.sort_unstable();
            } else {
                for _ in 0..m {
                    draws.push(library.sample_file(rng));
                }
                draws.sort_unstable();
                draws.dedup();
            }
            for &f in &draws {
                node_files.push(f);
                replicas[f as usize].push(u);
            }
            node_offsets.push(node_files.len() as u64);
        }
        let dense = DenseIndex::build(n, &replicas);
        Self {
            n,
            k,
            m,
            policy,
            kind: Kind::Sparse {
                node_offsets,
                node_files,
                replicas,
                dense,
            },
        }
    }

    /// Build a placement from explicit per-node file lists (deduplicated
    /// and sorted internally) — the entry point for externally computed
    /// placements such as the consistent-hashing scheme of `paba-dht`.
    ///
    /// `m` records the nominal cache size for reporting; each node's
    /// distinct list may be shorter (never longer).
    ///
    /// # Panics
    /// If `lists.len() != n`, any file id is `≥ k`, or any list exceeds
    /// `m` distinct files.
    pub fn from_node_files(n: u32, k: u32, m: u32, lists: Vec<Vec<FileId>>) -> Self {
        assert_eq!(lists.len(), n as usize, "need one list per node");
        let mut node_offsets = Vec::with_capacity(n as usize + 1);
        let mut node_files: Vec<FileId> = Vec::new();
        let mut replicas: Vec<Vec<NodeId>> = vec![Vec::new(); k as usize];
        node_offsets.push(0u64);
        for (u, mut files) in lists.into_iter().enumerate() {
            files.sort_unstable();
            files.dedup();
            assert!(
                files.len() <= m as usize,
                "node {u} holds {} distinct files > M={m}",
                files.len()
            );
            for &f in &files {
                assert!(f < k, "file id {f} out of range (K={k})");
                node_files.push(f);
                replicas[f as usize].push(u as NodeId);
            }
            node_offsets.push(node_files.len() as u64);
        }
        let dense = DenseIndex::build(n, &replicas);
        Self {
            n,
            k,
            m,
            policy: PlacementPolicy::ProportionalWithReplacement,
            kind: Kind::Sparse {
                node_offsets,
                node_files,
                replicas,
                dense,
            },
        }
    }

    /// Full-replication placement (`M = K`) without materializing `n·K`
    /// entries.
    pub fn full(n: u32, k: u32) -> Self {
        assert!(n > 0 && k > 0);
        Self {
            n,
            k,
            m: k,
            policy: PlacementPolicy::FullLibrary,
            kind: Kind::Full,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Library size.
    #[inline]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Cache size (number of placement draws; `= K` for full placement).
    #[inline]
    pub fn m(&self) -> u32 {
        self.m
    }

    /// The policy this placement was generated under.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Whether this is the implicit full-replication placement.
    pub fn is_full(&self) -> bool {
        matches!(self.kind, Kind::Full)
    }

    /// Number of nodes caching file `f`.
    #[inline]
    pub fn replica_count(&self, f: FileId) -> u32 {
        debug_assert!(f < self.k);
        match &self.kind {
            Kind::Sparse { replicas, .. } => replicas[f as usize].len() as u32,
            Kind::Full => self.n,
        }
    }

    /// The `idx`-th node (in ascending order) caching file `f`.
    ///
    /// # Panics
    /// If `idx ≥ replica_count(f)` (debug builds; unchecked release index
    /// panics come from the underlying slice).
    #[inline]
    pub fn replica_at(&self, f: FileId, idx: u32) -> NodeId {
        match &self.kind {
            Kind::Sparse { replicas, .. } => replicas[f as usize][idx as usize],
            Kind::Full => idx,
        }
    }

    /// The sorted (ascending) node list caching `f`, or `None` for the
    /// implicit full placement (where it would be `0..n` for every file).
    ///
    /// Sortedness is what makes the list range-searchable: node ids are
    /// row-major lattice coordinates, so "replicas inside a ball" is a
    /// handful of contiguous sub-slices found by binary search (see
    /// [`paba_topology::Topology::for_each_ball_id_range`]).
    #[inline]
    pub fn replica_list(&self, f: FileId) -> Option<&[NodeId]> {
        match &self.kind {
            Kind::Sparse { replicas, .. } => Some(&replicas[f as usize]),
            Kind::Full => None,
        }
    }

    /// Visit each node caching `f`, in ascending node order.
    pub fn for_each_replica<F: FnMut(NodeId)>(&self, f: FileId, mut cb: F) {
        match &self.kind {
            Kind::Sparse { replicas, .. } => {
                for &u in &replicas[f as usize] {
                    cb(u);
                }
            }
            Kind::Full => {
                for u in 0..self.n {
                    cb(u);
                }
            }
        }
    }

    /// Does node `u` cache file `f`? (O(1) for full placements.)
    ///
    /// Binary-searches whichever index is shorter — `node_files(u)`
    /// (length `t(u) ≤ M`) or `replicas[f]` (length `cnt(f)`, as low as 1
    /// for tail files) — so the cost is `O(min(log t(u), log cnt(f)))`.
    /// This is the membership primitive of the assignment hot path: the
    /// ball-side rejection sampler calls it once per attempt.
    #[inline]
    pub fn caches(&self, u: NodeId, f: FileId) -> bool {
        match &self.kind {
            Kind::Sparse {
                replicas,
                node_offsets,
                node_files,
                dense,
            } => {
                if let Some(hit) = dense.contains(f, u) {
                    return hit;
                }
                let reps = &replicas[f as usize];
                let lo = node_offsets[u as usize] as usize;
                let hi = node_offsets[u as usize + 1] as usize;
                let files = &node_files[lo..hi];
                if reps.len() < files.len() {
                    reps.binary_search(&u).is_ok()
                } else {
                    files.binary_search(&f).is_ok()
                }
            }
            Kind::Full => true,
        }
    }

    /// Whether membership queries for file `f` are answered by the dense
    /// bitmap index (head files) rather than binary search (tail files).
    /// Telemetry uses this to attribute [`Placement::caches`] costs; full
    /// placements answer in O(1) without either structure.
    #[inline]
    pub fn has_dense_index(&self, f: FileId) -> bool {
        match &self.kind {
            Kind::Sparse { dense, .. } => dense.offsets[f as usize] != DenseIndex::NONE,
            Kind::Full => false,
        }
    }

    /// Sorted distinct files cached by node `u`.
    ///
    /// For the full placement this would be `0..K` for every node; call
    /// sites that support full placements should branch on
    /// [`Placement::is_full`] instead of forcing materialization.
    ///
    /// # Panics
    /// On a full placement (to avoid silently allocating `K` entries).
    pub fn node_files(&self, u: NodeId) -> &[FileId] {
        match &self.kind {
            Kind::Sparse {
                node_offsets,
                node_files,
                ..
            } => {
                let lo = node_offsets[u as usize] as usize;
                let hi = node_offsets[u as usize + 1] as usize;
                &node_files[lo..hi]
            }
            Kind::Full => panic!("node_files() is implicit (0..K) for a full placement"),
        }
    }

    /// `t(u)`: number of distinct files cached at `u` (Definition 5).
    #[inline]
    pub fn t_u(&self, u: NodeId) -> u32 {
        match &self.kind {
            Kind::Sparse { node_offsets, .. } => {
                (node_offsets[u as usize + 1] - node_offsets[u as usize]) as u32
            }
            Kind::Full => self.k,
        }
    }

    /// `t(u, v)`: number of distinct files cached at both `u` and `v`
    /// (Definition 5). Sorted-merge intersection, O(t(u) + t(v)).
    pub fn t_uv(&self, u: NodeId, v: NodeId) -> u32 {
        match &self.kind {
            Kind::Full => self.k,
            Kind::Sparse { .. } => {
                let (mut a, mut b) = (self.node_files(u), self.node_files(v));
                // Iterate the shorter list against the longer one.
                if a.len() > b.len() {
                    std::mem::swap(&mut a, &mut b);
                }
                let mut count = 0u32;
                let mut i = 0usize;
                for &f in a {
                    while i < b.len() && b[i] < f {
                        i += 1;
                    }
                    if i == b.len() {
                        break;
                    }
                    if b[i] == f {
                        count += 1;
                        i += 1;
                    }
                }
                count
            }
        }
    }

    /// Do `u` and `v` share at least one cached file? Early-exit variant of
    /// [`Placement::t_uv`] used when building the configuration graph.
    pub fn shares_file(&self, u: NodeId, v: NodeId) -> bool {
        match &self.kind {
            Kind::Full => true,
            Kind::Sparse { .. } => {
                let (mut a, mut b) = (self.node_files(u), self.node_files(v));
                if a.len() > b.len() {
                    std::mem::swap(&mut a, &mut b);
                }
                let mut i = 0usize;
                for &f in a {
                    while i < b.len() && b[i] < f {
                        i += 1;
                    }
                    if i == b.len() {
                        return false;
                    }
                    if b[i] == f {
                        return true;
                    }
                }
                false
            }
        }
    }

    /// Insert file `f` into node `u`'s cache, keeping every index
    /// consistent: the sorted replica list, the CSR node-file list, and the
    /// dense bitmap (promoting `f` at the `n/16` density threshold exactly
    /// where a from-scratch rebuild would index it). Returns `false`
    /// without changes when `u` already caches `f`.
    ///
    /// Cost: two binary searches plus the CSR shift — O(total entries)
    /// worst case, a memmove in practice. Churn events are rare relative
    /// to requests, so this beats rebuilding the whole placement.
    ///
    /// # Panics
    /// On the implicit full placement, if `f ≥ K`, or if node `u` already
    /// holds `M` distinct files (capacity is the caller's invariant).
    pub fn insert(&mut self, u: NodeId, f: FileId) -> bool {
        assert!(f < self.k, "file id {f} out of range (K={})", self.k);
        let (n, m) = (self.n, self.m);
        match &mut self.kind {
            Kind::Full => panic!("cannot mutate the implicit full placement"),
            Kind::Sparse {
                node_offsets,
                node_files,
                replicas,
                dense,
            } => {
                let reps = &mut replicas[f as usize];
                let Err(pos) = reps.binary_search(&u) else {
                    return false;
                };
                let lo = node_offsets[u as usize] as usize;
                let hi = node_offsets[u as usize + 1] as usize;
                assert!(hi - lo < m as usize, "node {u} is full (M={m})");
                reps.insert(pos, u);
                let fpos = node_files[lo..hi]
                    .binary_search(&f)
                    .expect_err("replica list said f was absent");
                node_files.insert(lo + fpos, f);
                for off in &mut node_offsets[u as usize + 1..] {
                    *off += 1;
                }
                if dense.offsets[f as usize] != DenseIndex::NONE {
                    dense.set(f, u, true);
                } else if (reps.len() as u64) * 16 >= n as u64 {
                    dense.promote(f, reps);
                }
                true
            }
        }
    }

    /// Remove file `f` from node `u`'s cache, the inverse of
    /// [`Placement::insert`] (the dense bitmap demotes `f` when its replica
    /// count drops below the `n/16` threshold). Returns `false` without
    /// changes when `u` does not cache `f`.
    ///
    /// # Panics
    /// On the implicit full placement or if `f ≥ K`.
    pub fn remove(&mut self, u: NodeId, f: FileId) -> bool {
        assert!(f < self.k, "file id {f} out of range (K={})", self.k);
        let n = self.n;
        match &mut self.kind {
            Kind::Full => panic!("cannot mutate the implicit full placement"),
            Kind::Sparse {
                node_offsets,
                node_files,
                replicas,
                dense,
            } => {
                let reps = &mut replicas[f as usize];
                let Ok(pos) = reps.binary_search(&u) else {
                    return false;
                };
                reps.remove(pos);
                let lo = node_offsets[u as usize] as usize;
                let hi = node_offsets[u as usize + 1] as usize;
                let fpos = node_files[lo..hi]
                    .binary_search(&f)
                    .expect("replica list said f was present");
                node_files.remove(lo + fpos);
                for off in &mut node_offsets[u as usize + 1..] {
                    *off -= 1;
                }
                if dense.offsets[f as usize] != DenseIndex::NONE {
                    if (reps.len() as u64) * 16 < n as u64 {
                        dense.demote(f);
                    } else {
                        dense.set(f, u, false);
                    }
                }
                true
            }
        }
    }

    /// Drop every file cached at node `u`, returning the removed list
    /// (sorted). Used when a node crashes without handoff: its entries
    /// must stop serving immediately, and the returned list is what a
    /// repair policy re-replicates elsewhere.
    ///
    /// # Panics
    /// On the implicit full placement.
    pub fn remove_node_entries(&mut self, u: NodeId) -> Vec<FileId> {
        let files: Vec<FileId> = match &self.kind {
            Kind::Full => panic!("cannot mutate the implicit full placement"),
            Kind::Sparse { .. } => self.node_files(u).to_vec(),
        };
        for &f in &files {
            let removed = self.remove(u, f);
            debug_assert!(removed);
        }
        files
    }

    /// Number of files with no replica anywhere (possible under the
    /// with-replacement model; the request stream must handle them — see
    /// [`crate::UncachedPolicy`]).
    pub fn uncached_files(&self) -> u32 {
        match &self.kind {
            Kind::Full => 0,
            Kind::Sparse { replicas, .. } => {
                replicas.iter().filter(|r| r.is_empty()).count() as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lib(k: u32) -> Library {
        Library::new(k, Popularity::Uniform)
    }

    fn rng(seed: u64) -> SmallRng {
        SmallRng::seed_from_u64(seed)
    }

    #[test]
    fn with_replacement_invariants() {
        let library = lib(20);
        let p = Placement::generate(
            50,
            &library,
            6,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(1),
        );
        assert_eq!(p.n(), 50);
        assert_eq!(p.m(), 6);
        for u in 0..50 {
            let files = p.node_files(u);
            assert!(!files.is_empty() && files.len() <= 6);
            // sorted + distinct
            assert!(files.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(p.t_u(u) as usize, files.len());
            for &f in files {
                assert!(p.caches(u, f));
            }
        }
        // Index consistency both ways.
        for f in 0..20u32 {
            let cnt = p.replica_count(f);
            for i in 0..cnt {
                let u = p.replica_at(f, i);
                assert!(p.caches(u, f), "file {f} replica {u}");
            }
        }
    }

    #[test]
    fn replicas_sorted_ascending() {
        let library = lib(10);
        let p = Placement::generate(
            100,
            &library,
            3,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(2),
        );
        for f in 0..10u32 {
            let nodes: Vec<u32> = (0..p.replica_count(f))
                .map(|i| p.replica_at(f, i))
                .collect();
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "file {f}: {nodes:?}");
        }
    }

    #[test]
    fn distinct_policy_gives_exactly_m_files() {
        let library = lib(12);
        let p = Placement::generate(
            30,
            &library,
            5,
            PlacementPolicy::ProportionalDistinct,
            &mut rng(3),
        );
        for u in 0..30 {
            assert_eq!(p.t_u(u), 5, "node {u}");
        }
    }

    #[test]
    fn distinct_policy_with_m_equal_k() {
        let library = lib(4);
        let p = Placement::generate(
            10,
            &library,
            4,
            PlacementPolicy::ProportionalDistinct,
            &mut rng(4),
        );
        for u in 0..10 {
            assert_eq!(p.node_files(u), &[0, 1, 2, 3]);
        }
        assert_eq!(p.uncached_files(), 0);
    }

    #[test]
    #[should_panic(expected = "M ≤ K")]
    fn distinct_policy_rejects_m_above_k() {
        let library = lib(3);
        let _ = Placement::generate(
            5,
            &library,
            4,
            PlacementPolicy::ProportionalDistinct,
            &mut rng(0),
        );
    }

    #[test]
    fn full_placement_is_implicit() {
        let p = Placement::full(100, 1000);
        assert!(p.is_full());
        assert_eq!(p.m(), 1000);
        assert_eq!(p.replica_count(999), 100);
        assert_eq!(p.replica_at(999, 57), 57);
        assert!(p.caches(3, 7));
        assert_eq!(p.t_u(42), 1000);
        assert_eq!(p.t_uv(1, 2), 1000);
        assert!(p.shares_file(0, 99));
        assert_eq!(p.uncached_files(), 0);
        let mut count = 0;
        p.for_each_replica(0, |_| count += 1);
        assert_eq!(count, 100);
    }

    #[test]
    #[should_panic(expected = "implicit")]
    fn full_placement_node_files_panics() {
        let p = Placement::full(4, 4);
        let _ = p.node_files(0);
    }

    #[test]
    fn t_uv_matches_bruteforce() {
        let library = lib(15);
        let p = Placement::generate(
            20,
            &library,
            8,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(5),
        );
        for u in 0..20 {
            for v in 0..20 {
                let brute = p
                    .node_files(u)
                    .iter()
                    .filter(|f| p.node_files(v).contains(f))
                    .count() as u32;
                assert_eq!(p.t_uv(u, v), brute, "({u},{v})");
                assert_eq!(p.shares_file(u, v), brute > 0);
                assert_eq!(p.t_uv(u, v), p.t_uv(v, u), "symmetry");
            }
            assert_eq!(p.t_uv(u, u), p.t_u(u));
        }
    }

    #[test]
    fn uncached_files_counted() {
        // n=5 nodes, M=1 draw, K=50 files: most files have no replica.
        let library = lib(50);
        let p = Placement::generate(
            5,
            &library,
            1,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(6),
        );
        assert!(p.uncached_files() >= 45);
        let cached: u32 = (0..50).map(|f| u32::from(p.replica_count(f) > 0)).sum();
        assert_eq!(cached + p.uncached_files(), 50);
    }

    #[test]
    fn from_node_files_roundtrip() {
        let lists = vec![vec![2u32, 0, 2], vec![1], vec![], vec![0, 1, 2]];
        let p = Placement::from_node_files(4, 3, 3, lists);
        assert_eq!(p.node_files(0), &[0, 2]); // sorted, deduped
        assert_eq!(p.node_files(2), &[] as &[u32]);
        assert_eq!(p.replica_count(0), 2);
        assert_eq!(p.replica_count(1), 2);
        assert_eq!(p.replica_at(2, 0), 0);
        assert_eq!(p.replica_at(2, 1), 3);
        assert!(p.caches(3, 1));
        assert!(!p.caches(1, 0));
        assert_eq!(p.t_uv(0, 3), 2);
        assert_eq!(p.uncached_files(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_node_files_rejects_bad_ids() {
        let _ = Placement::from_node_files(1, 2, 4, vec![vec![5]]);
    }

    #[test]
    #[should_panic(expected = "one list per node")]
    fn from_node_files_rejects_bad_arity() {
        let _ = Placement::from_node_files(3, 2, 1, vec![vec![0]]);
    }

    #[test]
    fn zipf_placement_respects_popularity() {
        // Under a heavy Zipf profile the top file must collect far more
        // replicas than a tail file.
        let library = Library::new(100, Popularity::zipf(1.5));
        let p = Placement::generate(
            2000,
            &library,
            4,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(7),
        );
        assert!(
            p.replica_count(0) > 10 * p.replica_count(99).max(1),
            "top {} vs tail {}",
            p.replica_count(0),
            p.replica_count(99)
        );
    }

    /// Rebuild `p` from scratch and check every queryable surface agrees:
    /// node lists, replica lists, membership (dense-or-not), and which
    /// files carry a dense index.
    fn assert_matches_rebuild(p: &Placement) {
        let lists: Vec<Vec<FileId>> = (0..p.n()).map(|u| p.node_files(u).to_vec()).collect();
        let r = Placement::from_node_files(p.n(), p.k(), p.m(), lists);
        for u in 0..p.n() {
            assert_eq!(p.node_files(u), r.node_files(u), "node {u}");
        }
        for f in 0..p.k() {
            assert_eq!(p.replica_list(f), r.replica_list(f), "file {f}");
            assert_eq!(
                p.has_dense_index(f),
                r.has_dense_index(f),
                "dense index for file {f}"
            );
            for u in 0..p.n() {
                assert_eq!(p.caches(u, f), r.caches(u, f), "caches({u},{f})");
            }
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let library = lib(20);
        let mut p = Placement::generate(
            40,
            &library,
            6,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(11),
        );
        // Find a node with spare capacity (with-replacement draws can
        // fill a node to exactly M distinct files, where `insert` is a
        // contract violation) and a file it does not hold.
        let u = (0..p.n()).find(|&u| p.t_u(u) < p.m()).unwrap();
        let f = (0..20).find(|&f| !p.caches(u, f)).unwrap();
        assert!(p.insert(u, f));
        assert!(p.caches(u, f));
        assert!(!p.insert(u, f), "double insert is a no-op");
        assert_matches_rebuild(&p);
        assert!(p.remove(u, f));
        assert!(!p.caches(u, f));
        assert!(!p.remove(u, f), "double remove is a no-op");
        assert_matches_rebuild(&p);
    }

    #[test]
    fn dense_index_promotes_and_demotes_at_threshold() {
        // n=64: a file becomes dense at exactly 4 replicas (4*16 = 64).
        let mut p = Placement::from_node_files(64, 2, 4, vec![Vec::new(); 64]);
        for u in 0..3 {
            assert!(p.insert(u, 0));
            assert!(!p.has_dense_index(0), "below threshold at {} reps", u + 1);
        }
        assert!(p.insert(3, 0));
        assert!(p.has_dense_index(0), "threshold crossing must promote");
        assert_matches_rebuild(&p);
        assert!(p.remove(1, 0));
        assert!(!p.has_dense_index(0), "dropping below threshold demotes");
        assert_matches_rebuild(&p);
        // Freed block is reused: promote a second file, then the first
        // again — membership stays exact throughout.
        for u in 10..14 {
            assert!(p.insert(u, 1));
        }
        assert!(p.insert(1, 0));
        assert!(p.has_dense_index(0) && p.has_dense_index(1));
        assert_matches_rebuild(&p);
    }

    #[test]
    fn remove_node_entries_clears_node() {
        let library = lib(10);
        let mut p = Placement::generate(
            30,
            &library,
            5,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(12),
        );
        let before = p.node_files(7).to_vec();
        let removed = p.remove_node_entries(7);
        assert_eq!(removed, before);
        assert!(p.node_files(7).is_empty());
        for &f in &removed {
            assert!(!p.caches(7, f));
        }
        assert_matches_rebuild(&p);
    }

    #[test]
    #[should_panic(expected = "is full")]
    fn insert_rejects_over_capacity() {
        let mut p = Placement::from_node_files(2, 3, 2, vec![vec![0, 1], vec![]]);
        let _ = p.insert(0, 2);
    }

    #[test]
    #[should_panic(expected = "full placement")]
    fn insert_rejects_full_placement() {
        let mut p = Placement::full(4, 4);
        let _ = p.insert(0, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let library = lib(16);
        let a = Placement::generate(
            64,
            &library,
            4,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(9),
        );
        let b = Placement::generate(
            64,
            &library,
            4,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng(9),
        );
        for u in 0..64 {
            assert_eq!(a.node_files(u), b.node_files(u));
        }
    }
}
