//! Request generation (the paper's §II-B delivery phase).
//!
//! `n` sequential requests arrive; each picks its origin uniformly among
//! the `n` servers and its file from the popularity profile `P` (so the
//! per-server demand `D_i → Po(1)` as `n` grows). Under the paper's
//! with-replacement placement a file can end up with *zero* replicas; the
//! theory conditions on regimes where this does not happen w.h.p., but a
//! simulator must decide. [`UncachedPolicy`] makes that decision explicit.

use crate::network::CacheNetwork;
use paba_popularity::FileId;
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// A single content request: which node asked for which file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// The requesting server (chosen uniformly).
    pub origin: NodeId,
    /// The requested file (popularity-distributed).
    pub file: FileId,
}

/// What to do when a sampled file has no replica anywhere in the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UncachedPolicy {
    /// Condition the request distribution on the cached sub-library (an
    /// O(1) draw from [`crate::CacheNetwork::sample_cached_file`]'s
    /// precomputed conditional sampler). Keeps "n balls, all served"
    /// exactly like the paper's balls-into-bins framing. Default.
    #[default]
    ResampleFile,
    /// Serve the request at its origin (models a backhaul fetch): the
    /// origin's load increases, zero hops are charged, and the event is
    /// counted as [`crate::metrics::FallbackKind::Uncached`].
    ServeAtOrigin,
    /// Panic — for experiments whose regime guarantees full coverage and
    /// where an uncached file indicates a configuration error.
    Forbid,
}

impl Request {
    /// Sample the next request for `net` under `policy`.
    ///
    /// # Panics
    /// With [`UncachedPolicy::Forbid`] if the drawn file is uncached, and
    /// with [`UncachedPolicy::ResampleFile`] if *no* file is cached.
    pub fn sample<T: Topology, R: Rng + ?Sized>(
        net: &CacheNetwork<T>,
        policy: UncachedPolicy,
        rng: &mut R,
    ) -> Self {
        let origin = rng.gen_range(0..net.n());
        let file = net.library().sample_file(rng);
        let file = apply_uncached_policy(net, file, policy, rng);
        Self { origin, file }
    }
}

/// Post-process a popularity draw according to `policy`: resample an
/// uncached `file` from the conditional cached-files sampler, pass it
/// through, or panic — the shared tail of every request source.
///
/// # Panics
/// See [`Request::sample`].
#[inline]
pub fn apply_uncached_policy<T: Topology, R: Rng + ?Sized>(
    net: &CacheNetwork<T>,
    file: FileId,
    policy: UncachedPolicy,
    rng: &mut R,
) -> FileId {
    match policy {
        UncachedPolicy::ResampleFile => {
            if net.placement().replica_count(file) == 0 {
                assert!(
                    net.cached_file_count() > 0,
                    "no file has any replica; cannot resample"
                );
                // One O(1) draw from the precomputed conditional sampler —
                // the old redraw loop needed O(K) expected draws when only
                // a few files were cached.
                return net.sample_cached_file(rng);
            }
            file
        }
        UncachedPolicy::ServeAtOrigin => file,
        UncachedPolicy::Forbid => {
            assert!(
                net.placement().replica_count(file) > 0,
                "file {file} has no replica (UncachedPolicy::Forbid)"
            );
            file
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CacheNetwork;
    use paba_popularity::Popularity;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tiny_net(seed: u64, k: u32, m: u32) -> CacheNetwork<paba_topology::Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(5)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    #[test]
    fn resample_only_yields_cached_files() {
        // K much larger than total cache slots: many uncached files.
        let net = tiny_net(3, 500, 1);
        assert!(net.placement().uncached_files() > 0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..2000 {
            let r = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            assert!(r.origin < net.n());
            assert!(
                net.placement().replica_count(r.file) > 0,
                "resampled request hit uncached file {}",
                r.file
            );
        }
    }

    #[test]
    fn serve_at_origin_can_yield_uncached() {
        let net = tiny_net(3, 500, 1);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut saw_uncached = false;
        for _ in 0..2000 {
            let r = Request::sample(&net, UncachedPolicy::ServeAtOrigin, &mut rng);
            if net.placement().replica_count(r.file) == 0 {
                saw_uncached = true;
            }
        }
        assert!(saw_uncached, "expected some uncached draws in this regime");
    }

    #[test]
    fn forbid_passes_when_everything_cached() {
        // K=4 files, 25 nodes with M=4 distinct: all files cached.
        let mut rng = SmallRng::seed_from_u64(6);
        let net = CacheNetwork::builder()
            .torus_side(5)
            .library(4, Popularity::Uniform)
            .cache_size(4)
            .placement_policy(crate::PlacementPolicy::ProportionalDistinct)
            .build(&mut rng);
        for _ in 0..100 {
            let _ = Request::sample(&net, UncachedPolicy::Forbid, &mut rng);
        }
    }

    #[test]
    fn origins_are_uniformish() {
        let net = tiny_net(8, 10, 2);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = vec![0u32; net.n() as usize];
        let trials = 25_000;
        for _ in 0..trials {
            counts
                [Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng).origin as usize] +=
                1;
        }
        let expect = trials as f64 / net.n() as f64;
        for (u, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "origin {u}: {c} vs {expect}"
            );
        }
    }
}
