//! End-to-end delivery-phase simulation.
//!
//! Replays the paper's experiment loop: `requests` sequential requests
//! (origin uniform, file popularity-distributed), each assigned by the
//! strategy *given the loads accumulated so far* — the sequential
//! balls-into-bins dynamic all the theorems are about.

use crate::metrics::SimReport;
use crate::network::CacheNetwork;
use crate::request::{Request, UncachedPolicy};
use crate::source::{IidUniform, RequestSource};
use crate::strategy::{Assignment, Strategy};
use paba_telemetry::{Recorder, SpanTimer, Stage};
use paba_topology::Topology;
use rand::Rng;

/// Run `requests` sequential requests through `strategy` and return the
/// aggregated [`SimReport`].
///
/// Uses [`UncachedPolicy::ResampleFile`] (the workspace default — see
/// DESIGN.md §5); use [`simulate_with_policy`] to override.
pub fn simulate<T: Topology, S: Strategy<T>, R: Rng + ?Sized>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    requests: u64,
    rng: &mut R,
) -> SimReport {
    simulate_with_policy(net, strategy, requests, UncachedPolicy::ResampleFile, rng)
}

/// [`simulate`] with an explicit uncached-file policy.
pub fn simulate_with_policy<T: Topology, S: Strategy<T>, R: Rng + ?Sized>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    requests: u64,
    policy: UncachedPolicy,
    rng: &mut R,
) -> SimReport {
    simulate_observed(net, strategy, requests, policy, rng, |_, _| {})
}

/// [`simulate`] variant invoking `observer(request, assignment)` after
/// every decision — used by tests and by experiments needing per-request
/// traces (e.g. the Lemma 3 edge-frequency check).
pub fn simulate_observed<T, S, R, F>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    requests: u64,
    policy: UncachedPolicy,
    rng: &mut R,
    observer: F,
) -> SimReport
where
    T: Topology,
    S: Strategy<T>,
    R: Rng + ?Sized,
    F: FnMut(Request, Assignment),
{
    let mut source = IidUniform::with_policy(policy);
    simulate_source_observed(net, strategy, &mut source, requests, rng, observer)
}

/// Run `requests` sequential requests drawn from an arbitrary
/// [`RequestSource`] through `strategy`.
///
/// This is the primitive every other `simulate*` entry point wraps; the
/// legacy entry points are thin wrappers over [`IidUniform`]. For a finite
/// source (e.g. a trace replay), `requests` may not exceed the source's
/// remaining length — finite sources panic when drawn past the end.
pub fn simulate_source<T, S, W, R>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    source: &mut W,
    requests: u64,
    rng: &mut R,
) -> SimReport
where
    T: Topology,
    S: Strategy<T>,
    W: RequestSource<T>,
    R: Rng + ?Sized,
{
    simulate_source_observed(net, strategy, source, requests, rng, |_, _| {})
}

/// [`simulate_source`] with stage-level span timing and per-request load
/// observation: the whole request loop runs inside a [`Stage::AssignLoop`]
/// span on `rec`, and after each request is recorded `rec` observes the
/// full load vector via [`Recorder::loads`] (feeding load-evolution time
/// series; a no-op for recorders that don't collect them).
///
/// The recorder passed here times the loop and watches loads; to
/// additionally count sampler paths the *strategy* must carry a recorder
/// too (see `ProximityChoice::with_recorder`) — typically the same one.
pub fn simulate_source_profiled<T, S, W, R, Rec>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    source: &mut W,
    requests: u64,
    rng: &mut R,
    rec: &Rec,
) -> SimReport
where
    T: Topology,
    S: Strategy<T>,
    W: RequestSource<T>,
    R: Rng + ?Sized,
    Rec: Recorder,
{
    let timer = SpanTimer::start(rec, Stage::AssignLoop);
    let mut report = SimReport::new(net.n());
    for i in 0..requests {
        let req = source.next_request(net, rng);
        let a = strategy.assign(net, &report.loads, req, rng);
        report.record(a.server, a.hops, a.fallback);
        if Rec::ENABLED {
            rec.loads(i, &report.loads);
        }
    }
    debug_assert!(report.check_conservation());
    timer.stop(rec);
    report
}

/// [`simulate_source`] invoking `observer(request, assignment)` after
/// every decision.
pub fn simulate_source_observed<T, S, W, R, F>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    source: &mut W,
    requests: u64,
    rng: &mut R,
    mut observer: F,
) -> SimReport
where
    T: Topology,
    S: Strategy<T>,
    W: RequestSource<T>,
    R: Rng + ?Sized,
    F: FnMut(Request, Assignment),
{
    let mut report = SimReport::new(net.n());
    for _ in 0..requests {
        let req = source.next_request(net, rng);
        let a = strategy.assign(net, &report.loads, req, rng);
        report.record(a.server, a.hops, a.fallback);
        observer(req, a);
    }
    debug_assert!(report.check_conservation());
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{NearestReplica, ProximityChoice};
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(8)
            .library(16, Popularity::Uniform)
            .cache_size(3)
            .build(&mut rng)
    }

    #[test]
    fn report_conserves_requests() {
        let net = net(1);
        let mut s = NearestReplica::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let rep = simulate(&net, &mut s, 300, &mut rng);
        assert_eq!(rep.total_requests, 300);
        assert!(rep.check_conservation());
        assert!(rep.max_load() >= (300 / net.n()).max(1));
    }

    #[test]
    fn observer_sees_every_request() {
        let net = net(3);
        let mut s = ProximityChoice::two_choice(Some(2));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut seen = 0u64;
        let rep = simulate_observed(
            &net,
            &mut s,
            123,
            UncachedPolicy::ResampleFile,
            &mut rng,
            |req, a| {
                seen += 1;
                assert!(req.origin < net.n());
                assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
            },
        );
        assert_eq!(seen, 123);
        assert_eq!(rep.total_requests, 123);
    }

    #[test]
    fn loads_are_visible_to_the_strategy_as_they_accumulate() {
        // With a single file and full replication, two-choice spreads
        // requests: no node should end up with more than a small multiple
        // of the mean while a load-oblivious origin-server would not.
        let topo = Torus::new(8);
        let library = crate::Library::new(1, Popularity::Uniform);
        let placement = crate::Placement::full(64, 1);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let mut s = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(5);
        let rep = simulate(&net, &mut s, 64 * 8, &mut rng);
        // mean load 8; classic two-choice keeps the max within mean+O(loglog n).
        assert!(rep.max_load() <= 13, "max load {} too high", rep.max_load());
    }

    #[test]
    fn zero_requests() {
        let net = net(6);
        let mut s = NearestReplica::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let rep = simulate(&net, &mut s, 0, &mut rng);
        assert_eq!(rep.total_requests, 0);
        assert_eq!(rep.max_load(), 0);
    }

    #[test]
    fn serve_at_origin_policy_counts_uncached() {
        let mut rng = SmallRng::seed_from_u64(8);
        let sparse = CacheNetwork::builder()
            .torus_side(4)
            .library(500, Popularity::Uniform)
            .cache_size(1)
            .build(&mut rng);
        let mut s = NearestReplica::new();
        let rep = simulate_with_policy(
            &sparse,
            &mut s,
            2000,
            UncachedPolicy::ServeAtOrigin,
            &mut rng,
        );
        assert!(rep.uncached > 0, "this regime must hit uncached files");
        assert!(rep.check_conservation());
    }
}
