//! Pluggable request sources: who asks for what, and in which order.
//!
//! The paper's delivery phase fixes one workload — origin uniform over the
//! `n` servers, file i.i.d. from the popularity profile ([`IidUniform`],
//! exactly [`Request::sample`]). Everything richer (flash crowds, skewed
//! client geography, drifting popularity, recorded traces) implements the
//! same [`RequestSource`] trait in the `paba-workload` crate and plugs
//! into [`crate::simulate_source`] unchanged.

use crate::network::CacheNetwork;
use crate::request::{Request, UncachedPolicy};
use paba_topology::Topology;
use rand::Rng;

/// A stream of requests against a fixed cache network.
///
/// Sources are stateful (`&mut self`): a flash crowd tracks elapsed
/// requests, a trace replay tracks its cursor. Determinism contract: the
/// emitted stream must be a pure function of the source's construction
/// parameters, the network, and the RNG stream.
pub trait RequestSource<T: Topology> {
    /// Produce the next request.
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request;

    /// Remaining stream length, if finite (e.g. a trace replay). `None`
    /// means unbounded.
    fn size_hint(&self) -> Option<u64> {
        None
    }

    /// Human-readable source name for reports.
    fn name(&self) -> &'static str;
}

/// The paper's baseline workload: origin uniform among the `n` servers,
/// file i.i.d. from the library's popularity profile, uncached draws
/// handled per [`UncachedPolicy`].
///
/// Bit-for-bit compatible with the legacy [`Request::sample`] stream: for
/// the same network, policy, and RNG state it emits exactly the same
/// requests, consuming exactly the same random draws.
#[derive(Clone, Copy, Debug, Default)]
pub struct IidUniform {
    policy: UncachedPolicy,
}

impl IidUniform {
    /// Baseline source with the workspace-default
    /// [`UncachedPolicy::ResampleFile`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Baseline source with an explicit uncached-file policy.
    pub fn with_policy(policy: UncachedPolicy) -> Self {
        Self { policy }
    }

    /// The configured uncached-file policy.
    pub fn policy(&self) -> UncachedPolicy {
        self.policy
    }
}

impl<T: Topology> RequestSource<T> for IidUniform {
    #[inline]
    fn next_request<R: Rng + ?Sized>(&mut self, net: &CacheNetwork<T>, rng: &mut R) -> Request {
        Request::sample(net, self.policy, rng)
    }

    fn name(&self) -> &'static str {
        "iid-uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(6)
            .library(80, Popularity::zipf(0.9))
            .cache_size(2)
            .build(&mut rng)
    }

    #[test]
    fn iid_uniform_matches_legacy_request_sample_bit_for_bit() {
        let net = net(1);
        for policy in [UncachedPolicy::ResampleFile, UncachedPolicy::ServeAtOrigin] {
            let mut a = SmallRng::seed_from_u64(42);
            let mut b = a.clone();
            let mut src = IidUniform::with_policy(policy);
            for _ in 0..500 {
                let legacy = Request::sample(&net, policy, &mut a);
                let sourced = src.next_request(&net, &mut b);
                assert_eq!(legacy, sourced);
            }
            // Same number of draws consumed: the streams stay in lockstep.
            assert_eq!(a, b);
        }
    }

    #[test]
    fn iid_uniform_is_unbounded() {
        let src = IidUniform::new();
        assert_eq!(RequestSource::<Torus>::size_hint(&src), None);
        assert_eq!(RequestSource::<Torus>::name(&src), "iid-uniform");
    }
}
