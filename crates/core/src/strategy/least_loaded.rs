//! Full-information baseline: least-loaded replica within the ball.
//!
//! The paper's introduction contrasts distributed server selection with a
//! centralized authority that "employs network status information to
//! optimally allocate requests". This strategy is that upper bound,
//! localized: among **all** replicas of the requested file within
//! `B_r(u)`, pick the least-loaded (ties uniform). Comparing it against
//! [`crate::ProximityChoice`] quantifies the classic power-of-two-choices
//! punchline — two random probes recover almost all of the benefit of
//! probing everyone, at O(1) probe cost instead of Θ(|B_r|).

use crate::metrics::FallbackKind;
use crate::network::CacheNetwork;
use crate::request::Request;
use crate::strategy::sampler::PoolSampler;
use crate::strategy::{nearest_replica, Assignment, Strategy};
use paba_telemetry::{NullRecorder, Recorder};
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// Greedy full-information assignment: the least-loaded replica within
/// radius `r` (or globally, with `radius = None`).
#[derive(Clone, Debug)]
pub struct LeastLoadedInBall<Rec: Recorder = NullRecorder> {
    radius: Option<u32>,
    /// Windowed pool materializer shared with Strategy II's sampler.
    sampler: PoolSampler,
    /// Instrumentation sink (zero-sized no-op by default).
    rec: Rec,
}

impl LeastLoadedInBall {
    /// Create the strategy with an optional proximity radius.
    pub fn new(radius: Option<u32>) -> Self {
        Self {
            radius,
            sampler: PoolSampler::default(),
            rec: NullRecorder,
        }
    }
}

impl<Rec: Recorder> LeastLoadedInBall<Rec> {
    /// Swap in a different instrumentation sink, preserving configuration.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> LeastLoadedInBall<R2> {
        LeastLoadedInBall {
            radius: self.radius,
            sampler: self.sampler,
            rec,
        }
    }

    /// The configured radius.
    pub fn radius(&self) -> Option<u32> {
        self.radius
    }
}

impl<T: Topology, Rec: Recorder> Strategy<T> for LeastLoadedInBall<Rec> {
    fn assign<R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment {
        let placement = net.placement();
        let topo = net.topo();
        let cnt = placement.replica_count(req.file);
        if cnt == 0 {
            if Rec::ENABLED {
                self.rec.request(
                    req.file as u64,
                    req.origin as u64,
                    req.origin as u64,
                    0,
                    &mut std::iter::empty(),
                );
            }
            return Assignment {
                server: req.origin,
                hops: 0,
                fallback: Some(FallbackKind::Uncached),
            };
        }
        let r_eff = match self.radius {
            Some(r) if r < topo.diameter() => Some(r),
            _ => None,
        };

        // Reservoir-argmin over the eligible pool, uniform among ties.
        let mut best: Option<NodeId> = None;
        let mut ties = 0u32;
        let mut consider = |v: NodeId, rng: &mut R| match best {
            None => {
                best = Some(v);
                ties = 1;
            }
            Some(b) => {
                let (lv, lb) = (loads[v as usize], loads[b as usize]);
                if lv < lb {
                    best = Some(v);
                    ties = 1;
                } else if lv == lb {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        best = Some(v);
                    }
                }
            }
        };

        match r_eff {
            None => {
                if placement.is_full() {
                    // Global least-loaded node: scan everything.
                    for v in 0..topo.n() {
                        consider(v, rng);
                    }
                } else {
                    for i in 0..cnt {
                        consider(placement.replica_at(req.file, i), rng);
                    }
                }
            }
            Some(r) => {
                if placement.is_full() {
                    topo.for_each_in_ball(req.origin, r, |v| consider(v, rng));
                } else {
                    // Full information still means visiting the whole
                    // pool, but the windowed materializer finds it via
                    // O(r) binary searches instead of a per-node scan.
                    for &v in self
                        .sampler
                        .materialize_pool(net, req.origin, req.file, r, &self.rec)
                    {
                        consider(v, rng);
                    }
                }
            }
        }

        let a = match best {
            Some(server) => Assignment {
                server,
                hops: topo.dist(req.origin, server),
                fallback: None,
            },
            None => {
                // Empty ball: escalate to the global nearest replica.
                let (server, hops) = nearest_replica(net, req.origin, req.file, rng, &self.rec)
                    .expect("cnt > 0 implies a replica exists");
                Assignment {
                    server,
                    hops,
                    fallback: Some(FallbackKind::NoCandidateInBall),
                }
            }
        };
        if Rec::ENABLED {
            // The scanned pool can be the whole network; report only the
            // winner (its load is the pool minimum by construction).
            self.rec.request(
                req.file as u64,
                req.origin as u64,
                a.server as u64,
                a.hops,
                &mut std::iter::once((a.server as u64, loads[a.server as usize])),
            );
        }
        a
    }

    fn name(&self) -> &'static str {
        "least-loaded-in-ball"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UncachedPolicy;
    use crate::simulate::simulate;
    use crate::strategy::ProximityChoice;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    #[test]
    fn picks_a_globally_least_loaded_replica() {
        let net = net(1, 8, 10, 3);
        let mut s = LeastLoadedInBall::new(None);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut loads = vec![0u32; net.n() as usize];
        // Preload arbitrary asymmetric loads.
        for (i, l) in loads.iter_mut().enumerate() {
            *l = (i as u32 * 7) % 13;
        }
        for _ in 0..300 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            assert!(net.placement().caches(a.server, req.file));
            // No eligible replica may be strictly less loaded.
            for v in 0..net.n() {
                if net.placement().caches(v, req.file) {
                    assert!(loads[v as usize] >= loads[a.server as usize]);
                }
            }
        }
    }

    #[test]
    fn respects_radius_or_declares_fallback() {
        let net = net(3, 9, 80, 1);
        let mut s = LeastLoadedInBall::new(Some(2));
        let loads = vec![0u32; net.n() as usize];
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..300 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            match a.fallback {
                None => assert!(a.hops <= 2),
                Some(FallbackKind::NoCandidateInBall) => assert!(a.hops > 2),
                other => panic!("unexpected fallback {other:?}"),
            }
        }
    }

    #[test]
    fn never_worse_than_two_choice_on_average() {
        let mut full = 0.0;
        let mut two = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let net = net(100 + seed, 16, 30, 6);
            let mut rng = SmallRng::seed_from_u64(200 + seed);
            let mut s = LeastLoadedInBall::new(None);
            full += simulate(&net, &mut s, net.n() as u64, &mut rng).max_load() as f64;
            let mut rng = SmallRng::seed_from_u64(300 + seed);
            let mut s2 = ProximityChoice::two_choice(None);
            two += simulate(&net, &mut s2, net.n() as u64, &mut rng).max_load() as f64;
        }
        assert!(
            full <= two + 0.5 * runs as f64 / runs as f64,
            "full info {full} should not lose to two-choice {two}"
        );
    }

    #[test]
    fn full_placement_global_scan() {
        use crate::{Library, Placement};
        let topo = Torus::new(5);
        let library = Library::new(3, Popularity::Uniform);
        let placement = Placement::full(25, 3);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let mut s = LeastLoadedInBall::new(None);
        let mut loads = vec![5u32; 25];
        loads[17] = 0;
        let mut rng = SmallRng::seed_from_u64(5);
        let a = s.assign(&net, &loads, Request { origin: 0, file: 1 }, &mut rng);
        assert_eq!(a.server, 17, "must find the unique least-loaded node");
    }

    #[test]
    fn tie_break_is_uniform() {
        use crate::{Library, Placement};
        let topo = Torus::new(4);
        let library = Library::new(1, Popularity::Uniform);
        let placement = Placement::full(16, 1);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let mut s = LeastLoadedInBall::new(None);
        let loads = vec![0u32; 16];
        let mut rng = SmallRng::seed_from_u64(6);
        let mut counts = [0u32; 16];
        let trials = 16_000;
        for _ in 0..trials {
            let a = s.assign(&net, &loads, Request { origin: 3, file: 0 }, &mut rng);
            counts[a.server as usize] += 1;
        }
        let expect = trials as f64 / 16.0;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "node {v}: {c} vs {expect}"
            );
        }
    }
}
