//! Request-assignment strategies.
//!
//! * [`NearestReplica`] — the paper's **Strategy I** (Definition 2):
//!   minimum communication cost, no load awareness.
//! * [`ProximityChoice`] — the paper's **Strategy II** (Definition 3):
//!   two uniform random replica holders within distance `r` of the origin,
//!   request joins the lesser-loaded; generalized to `d ≥ 1` choices
//!   (`d = 1` is the load-oblivious "random nearby replica" baseline, and
//!   `d = 2` with `radius = None` recovers the classic two-choice process
//!   when `M = K` — the paper's Example 1).

mod least_loaded;
mod nearest;
mod proximity;
mod sampler;
mod stale;

pub use least_loaded::LeastLoadedInBall;
pub use nearest::NearestReplica;
pub use proximity::{PairMode, ProximityChoice, RadiusFallback};
pub use sampler::SamplerKind;
pub use stale::StaleLoad;

use crate::metrics::FallbackKind;
use crate::network::CacheNetwork;
use crate::request::Request;
use paba_telemetry::{Counter, Recorder};
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// The serving decision for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// The chosen server.
    pub server: NodeId,
    /// Hop distance from the request origin to `server`.
    pub hops: u32,
    /// Whether a fallback path produced this assignment.
    pub fallback: Option<FallbackKind>,
}

/// A sequential request-assignment strategy.
///
/// `assign` receives the current load vector (`loads[v]` = requests already
/// assigned to `v`) because Strategy II's decisions depend on it; Strategy
/// I ignores it. Strategies carry internal scratch buffers, hence
/// `&mut self`.
pub trait Strategy<T: Topology> {
    /// Decide the serving node for `req` given current `loads`.
    fn assign<R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment;

    /// Human-readable strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Find the nearest replica of `file` to `origin` with **exact uniform
/// tie-breaking** (Definition 2's random tie rule). Returns the chosen
/// server and its distance, or `None` when the file has no replica.
///
/// Uses an expanding **row-band** search over the sorted replica list:
/// scan only the replicas whose row lies within `w` of the origin's
/// (a couple of binary searches plus a contiguous slice, courtesy of
/// row-major node ids — [`Topology::row_band`]), and stop once the best
/// distance found is `≤ w`, since everything outside the band is farther.
/// Doubling `w` from `≈ side/cnt` touches `O(√cnt)` expected replicas
/// instead of all `cnt` (the nearest replica sits at distance
/// `Θ(√(n/cnt))`, where the band holds `Θ(√cnt)` entries).
///
/// Each doubling beyond the initial estimate is recorded on `rec` as a
/// [`Counter::RowBandExpansion`] — a proxy for how often the density
/// estimate undershoots.
pub(crate) fn nearest_replica<T: Topology, R: Rng + ?Sized, Rec: Recorder>(
    net: &CacheNetwork<T>,
    origin: NodeId,
    file: u32,
    rng: &mut R,
    rec: &Rec,
) -> Option<(NodeId, u32)> {
    let placement = net.placement();
    let cnt = placement.replica_count(file);
    if cnt == 0 {
        return None;
    }
    if placement.is_full() {
        // Every node caches the file: the origin serves itself.
        return Some((origin, 0));
    }
    let topo = net.topo();
    let reps = placement
        .replica_list(file)
        .expect("sparse placement has explicit replica lists");
    let oc = topo.coord_of(origin);
    let full_range = Some((0, topo.n() - 1));
    // Start at the expected nearest distance Θ(√(n/cnt)), so the first
    // band usually already contains the winner.
    let mut w = (((topo.n() / cnt) as f64).sqrt() as u32).max(1);
    let mut expansions = 0u64;
    loop {
        let band = topo.row_band(oc, w);
        let mut best_d = u32::MAX;
        let mut ties = 0u32;
        let mut chosen = 0u32;
        for (lo, hi) in band.into_iter().flatten() {
            let a = sampler::interp_lower_bound(reps, lo, topo.n());
            let b = sampler::interp_lower_bound(reps, hi + 1, topo.n());
            for &v in &reps[a..b] {
                let d = topo.dist_from(oc, v);
                if d < best_d {
                    best_d = d;
                    ties = 1;
                    chosen = v;
                } else if d == best_d {
                    ties += 1;
                    if rng.gen_range(0..ties) == 0 {
                        chosen = v;
                    }
                }
            }
        }
        let complete = band[0] == full_range;
        if best_d != u32::MAX && (best_d <= w || complete) {
            // Unscanned nodes are at row distance > w ≥ best_d, hence
            // strictly farther: the winner (and its tie set) is global.
            if Rec::ENABLED && expansions > 0 {
                rec.count(Counter::RowBandExpansion, expansions);
            }
            return Some((chosen, best_d));
        }
        assert!(
            !complete,
            "replica_count > 0 but no replica found in the full band"
        );
        w = w.saturating_mul(2);
        if Rec::ENABLED {
            expansions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;
    use paba_telemetry::NullRecorder;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    /// Brute-force nearest distance for cross-checking.
    fn brute_nearest_dist(net: &CacheNetwork<Torus>, origin: u32, file: u32) -> Option<u32> {
        let mut best = None;
        for v in 0..net.n() {
            if net.placement().caches(v, file) {
                let d = net.topo().dist(origin, v);
                best = Some(best.map_or(d, |b: u32| b.min(d)));
            }
        }
        best
    }

    #[test]
    fn nearest_matches_bruteforce_distance() {
        let net = net(1, 9, 30, 3);
        let mut rng = SmallRng::seed_from_u64(2);
        for origin in 0..net.n() {
            for file in 0..net.k() {
                let got = nearest_replica(&net, origin, file, &mut rng, &NullRecorder);
                let expect = brute_nearest_dist(&net, origin, file);
                match (got, expect) {
                    (None, None) => {}
                    (Some((server, d)), Some(bd)) => {
                        assert_eq!(d, bd, "origin={origin} file={file}");
                        assert!(net.placement().caches(server, file));
                        assert_eq!(net.topo().dist(origin, server), d);
                    }
                    other => panic!("mismatch {other:?} at origin={origin} file={file}"),
                }
            }
        }
    }

    #[test]
    fn nearest_band_search_agrees_on_dense_files() {
        // High replica count keeps the expanding band at width 1-2;
        // compare against a brute-force answer.
        let net = net(3, 12, 4, 3); // K=4 small → each file has ~100 replicas
        let mut rng = SmallRng::seed_from_u64(4);
        for origin in (0..net.n()).step_by(7) {
            for file in 0..net.k() {
                let cnt = net.placement().replica_count(file);
                if cnt == 0 {
                    continue;
                }
                let (_, d) = nearest_replica(&net, origin, file, &mut rng, &NullRecorder).unwrap();
                assert_eq!(Some(d), brute_nearest_dist(&net, origin, file));
            }
        }
    }

    #[test]
    fn nearest_tie_break_is_uniform() {
        // Construct a placement where file 0 sits at exactly two nodes
        // equidistant from the origin; both must be picked ~50/50.
        use crate::{Library, Placement, PlacementPolicy};
        let topo = Torus::new(5);
        let library = Library::new(2, Popularity::Uniform);
        // Build a custom placement by generating until file 0 has exactly
        // the two replicas we want is fiddly; instead use generate with a
        // distinct policy and locate any equidistant pair scenario.
        let mut rng = SmallRng::seed_from_u64(9);
        let placement = Placement::generate(
            25,
            &library,
            1,
            PlacementPolicy::ProportionalDistinct,
            &mut rng,
        );
        let net = CacheNetwork::from_parts(topo, library, placement);
        // Find an (origin, file) with ≥2 nearest ties.
        'outer: for origin in 0..net.n() {
            for file in 0..net.k() {
                let Some(best) = brute_nearest_dist(&net, origin, file) else {
                    continue;
                };
                let ties: Vec<u32> = (0..net.n())
                    .filter(|&v| {
                        net.placement().caches(v, file) && net.topo().dist(origin, v) == best
                    })
                    .collect();
                if ties.len() < 2 {
                    continue;
                }
                let mut counts = std::collections::HashMap::new();
                let trials = 4000;
                for _ in 0..trials {
                    let (srv, _) =
                        nearest_replica(&net, origin, file, &mut rng, &NullRecorder).unwrap();
                    *counts.entry(srv).or_insert(0u32) += 1;
                }
                let expect = trials as f64 / ties.len() as f64;
                for &t in &ties {
                    let c = counts.get(&t).copied().unwrap_or(0) as f64;
                    assert!(
                        (c - expect).abs() < 6.0 * expect.sqrt(),
                        "tie {t}: {c} vs {expect}"
                    );
                }
                break 'outer;
            }
        }
    }

    #[test]
    fn nearest_on_full_placement_is_origin() {
        use crate::{Library, Placement};
        let topo = Torus::new(6);
        let library = Library::new(9, Popularity::Uniform);
        let placement = Placement::full(36, 9);
        let net = CacheNetwork::from_parts(topo, library, placement);
        let mut rng = SmallRng::seed_from_u64(5);
        for origin in 0..net.n() {
            let (srv, d) = nearest_replica(&net, origin, 3, &mut rng, &NullRecorder).unwrap();
            assert_eq!(srv, origin);
            assert_eq!(d, 0);
        }
    }

    #[test]
    fn nearest_none_for_uncached_file() {
        // Tiny network, huge library: find an uncached file.
        let net = net(6, 3, 500, 1);
        let uncached = (0..net.k())
            .find(|&f| net.placement().replica_count(f) == 0)
            .expect("regime guarantees uncached files");
        let mut rng = SmallRng::seed_from_u64(6);
        assert!(nearest_replica(&net, 0, uncached, &mut rng, &NullRecorder).is_none());
    }
}
