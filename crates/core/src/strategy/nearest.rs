//! Strategy I: nearest-replica assignment (the paper's Definition 2).
//!
//! Every request goes to the closest node (graph-distance) holding the
//! file, ties broken uniformly at random. This minimizes communication
//! cost — `C = Θ(√(K/M))` under Uniform popularity (Theorem 3) — but is
//! load-oblivious: the maximum load grows as `Θ(log n)` (Theorem 1) or at
//! least `Ω(log n / log log n)` (Theorem 2).

use crate::metrics::FallbackKind;
use crate::network::CacheNetwork;
use crate::request::Request;
use crate::strategy::{nearest_replica, Assignment, Strategy};
use paba_telemetry::{NullRecorder, Recorder};
use paba_topology::Topology;
use rand::Rng;

/// Strategy I — nearest replica, uniform random tie-break.
///
/// Generic over a [`Recorder`] so the row-band expansion counter of the
/// nearest-replica search is observable; it records no sampler-path events
/// (no candidate pool is ever drawn from).
#[derive(Clone, Debug, Default)]
pub struct NearestReplica<Rec: Recorder = NullRecorder> {
    rec: Rec,
}

impl NearestReplica {
    /// Create the strategy (stateless).
    pub fn new() -> Self {
        Self::default()
    }
}

impl<Rec: Recorder> NearestReplica<Rec> {
    /// Swap in a different instrumentation sink.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> NearestReplica<R2> {
        NearestReplica { rec }
    }
}

impl<T: Topology, Rec: Recorder> Strategy<T> for NearestReplica<Rec> {
    fn assign<R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        _loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment {
        let a = match nearest_replica(net, req.origin, req.file, rng, &self.rec) {
            Some((server, hops)) => Assignment {
                server,
                hops,
                fallback: None,
            },
            // Uncached file (only reachable under UncachedPolicy::ServeAtOrigin):
            // the origin fetches from outside the network and serves locally.
            None => Assignment {
                server: req.origin,
                hops: 0,
                fallback: Some(FallbackKind::Uncached),
            },
        };
        if Rec::ENABLED {
            // Nearest-replica compares no loads: no candidates to report.
            self.rec.request(
                req.file as u64,
                req.origin as u64,
                a.server as u64,
                a.hops,
                &mut std::iter::empty(),
            );
        }
        a
    }

    fn name(&self) -> &'static str {
        "nearest-replica"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UncachedPolicy;
    use crate::simulate::simulate;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    #[test]
    fn serves_from_a_caching_node_at_minimum_distance() {
        let net = net(1, 8, 16, 2);
        let mut strat = NearestReplica::new();
        let mut rng = SmallRng::seed_from_u64(2);
        let loads = vec![0u32; net.n() as usize];
        for _ in 0..500 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = strat.assign(&net, &loads, req, &mut rng);
            assert!(net.placement().caches(a.server, req.file));
            assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
            // No closer replica may exist.
            for v in 0..net.n() {
                if net.placement().caches(v, req.file) {
                    assert!(net.topo().dist(req.origin, v) >= a.hops);
                }
            }
            assert_eq!(a.fallback, None);
        }
    }

    #[test]
    fn ignores_load_vector() {
        let net = net(3, 6, 10, 2);
        let mut strat = NearestReplica::new();
        let req = Request { origin: 7, file: 3 };
        if net.placement().replica_count(3) == 0 {
            return; // placement didn't cache file 3; nothing to compare
        }
        let quiet = vec![0u32; net.n() as usize];
        let busy = vec![1000u32; net.n() as usize];
        // Same rng stream → same tie-break decisions → same server.
        let a = strat.assign(&net, &quiet, req, &mut SmallRng::seed_from_u64(5));
        let b = strat.assign(&net, &busy, req, &mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn end_to_end_cost_tracks_sqrt_k_over_m() {
        // Theorem 3 shape check at one configuration pair: quadrupling K
        // at fixed M should ≈ double the cost.
        let mut rng = SmallRng::seed_from_u64(8);
        let mut cost = |k: u32, seed: u64| -> f64 {
            let mut inner = SmallRng::seed_from_u64(seed);
            let net = CacheNetwork::builder()
                .torus_side(45)
                .library(k, Popularity::Uniform)
                .cache_size(1)
                .build(&mut inner);
            let mut s = NearestReplica::new();
            let rep = simulate(&net, &mut s, 4 * net.n() as u64, &mut rng);
            rep.comm_cost()
        };
        let mut avg = |k: u32| (0..4).map(|s| cost(k, 100 + s)).sum::<f64>() / 4.0;
        let c100 = avg(100);
        let c400 = avg(400);
        let ratio = c400 / c100;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "cost ratio {ratio} should be ≈ 2 (√(400/100))"
        );
    }

    #[test]
    fn uncached_served_at_origin() {
        let net = net(5, 3, 400, 1);
        let uncached = (0..net.k())
            .find(|&f| net.placement().replica_count(f) == 0)
            .unwrap();
        let mut strat = NearestReplica::new();
        let loads = vec![0u32; net.n() as usize];
        let req = Request {
            origin: 4,
            file: uncached,
        };
        let a = strat.assign(&net, &loads, req, &mut SmallRng::seed_from_u64(6));
        assert_eq!(a.server, 4);
        assert_eq!(a.hops, 0);
        assert_eq!(a.fallback, Some(FallbackKind::Uncached));
    }
}
