//! Strategy II: proximity-aware two choices (the paper's Definition 3).
//!
//! For each request born at node `u`, sample two uniform random nodes from
//! `B_r(u)` *that have cached the requested file*, and assign the request
//! to the lesser-loaded of the two (ties uniform). The radius `r` caps the
//! communication cost at `Θ(r)` while — in the regimes of Theorems 4 and 6
//! — retaining the `Θ(log log n)` maximum load of the unconstrained
//! two-choice process.
//!
//! The implementation generalizes the definition along three axes, all
//! defaulting to the paper's setting:
//!
//! * **`d` choices** (`d = 2` in the paper; `d = 1` yields the
//!   load-oblivious "random nearby replica" baseline);
//! * **pair sampling** — unordered *distinct* pairs (matching Lemma 3's
//!   `1/C(F_j(w), 2)` edge probability) or independent with-replacement
//!   draws, for ablation;
//! * **radius fallback** — what to do when `B_r(u)` holds no replica at
//!   all (impossible w.h.p. in the analyzed regimes, but a simulator must
//!   answer): escalate to the global nearest replica (default) or serve at
//!   the origin.

use crate::metrics::FallbackKind;
use crate::network::CacheNetwork;
use crate::request::Request;
use crate::strategy::sampler::{sample_by_index, PoolDraw, PoolSampler};
use crate::strategy::{nearest_replica, Assignment, SamplerKind, Strategy};
use paba_telemetry::{NullRecorder, Recorder, SamplerPath};
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// How the candidate multiset is drawn from the eligible pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PairMode {
    /// `d` *distinct* candidates, uniform over subsets (the paper's model;
    /// Lemma 3 samples unordered pairs).
    #[default]
    Distinct,
    /// `d` independent draws with replacement (classic Greedy\[d\] style).
    WithReplacement,
}

/// What to do when no replica lies within the proximity ball.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RadiusFallback {
    /// Escalate to the global nearest replica (keeps every request served
    /// by a caching node; the extra hops are visible in the cost metric).
    #[default]
    NearestGlobal,
    /// Serve at the origin (models a backhaul fetch; zero hops charged).
    ServeAtOrigin,
}

/// Strategy II — proximity-aware `d`-choice assignment.
///
/// Generic over a [`Recorder`]; the default [`NullRecorder`] compiles the
/// instrumentation away entirely. Attach an active recorder with
/// [`ProximityChoice::with_recorder`] — every assignment then records
/// exactly one [`SamplerPath`] event, so path counts sum to the request
/// count.
#[derive(Clone, Debug)]
pub struct ProximityChoice<Rec: Recorder = NullRecorder> {
    radius: Option<u32>,
    d: u32,
    pair_mode: PairMode,
    fallback: RadiusFallback,
    /// Workhorse: hybrid pool sampler for finite radii (owns the
    /// exact-path materialization buffer).
    sampler: PoolSampler,
    /// Workhorse: the d sampled candidates.
    picks: Vec<NodeId>,
    /// Instrumentation sink (zero-sized no-op by default).
    rec: Rec,
}

impl ProximityChoice {
    /// The paper's Strategy II: two choices within radius `radius`
    /// (`None` = no proximity constraint, the paper's `r = ∞ ≡ √n`).
    pub fn two_choice(radius: Option<u32>) -> Self {
        Self::with_choices(radius, 2)
    }

    /// Generalized `d`-choice variant.
    ///
    /// # Panics
    /// If `d == 0`.
    pub fn with_choices(radius: Option<u32>, d: u32) -> Self {
        assert!(d >= 1, "need at least one choice");
        Self {
            radius,
            d,
            pair_mode: PairMode::default(),
            fallback: RadiusFallback::default(),
            sampler: PoolSampler::new(SamplerKind::default()),
            picks: Vec::with_capacity(d as usize),
            rec: NullRecorder,
        }
    }
}

impl<Rec: Recorder> ProximityChoice<Rec> {
    /// Swap in a different instrumentation sink (typically a
    /// `&AtomicRecorder` shared with other strategies on the same thread),
    /// preserving all other configuration.
    pub fn with_recorder<R2: Recorder>(self, rec: R2) -> ProximityChoice<R2> {
        ProximityChoice {
            radius: self.radius,
            d: self.d,
            pair_mode: self.pair_mode,
            fallback: self.fallback,
            sampler: self.sampler,
            picks: self.picks,
            rec,
        }
    }

    /// The attached instrumentation sink.
    pub fn recorder(&self) -> &Rec {
        &self.rec
    }

    /// Override the candidate sampling mode.
    pub fn pair_mode(mut self, mode: PairMode) -> Self {
        self.pair_mode = mode;
        self
    }

    /// Override the pool sampler ([`SamplerKind::Hybrid`] by default).
    pub fn sampler(mut self, kind: SamplerKind) -> Self {
        self.sampler.set_kind(kind);
        self
    }

    /// The configured pool sampler.
    pub fn sampler_kind(&self) -> SamplerKind {
        self.sampler.kind()
    }

    /// Override the empty-ball fallback behaviour.
    pub fn radius_fallback(mut self, fb: RadiusFallback) -> Self {
        self.fallback = fb;
        self
    }

    /// The configured radius (`None` = unconstrained).
    pub fn radius(&self) -> Option<u32> {
        self.radius
    }

    /// The configured number of choices.
    pub fn choices(&self) -> u32 {
        self.d
    }

    /// Sample the unordered candidate **pair** Strategy II would compare
    /// for a request at `origin` for `file`, without committing a load
    /// decision. Returns `None` when fewer than two eligible candidates
    /// exist.
    ///
    /// This is the edge-sampling process of Lemma 3(b): the returned pair
    /// is an edge of the configuration graph `H` (both endpoints cache the
    /// file and lie within `B_r(origin)`, hence within `2r` of each
    /// other). The `lemma3_config_graph` bench uses it to verify each edge
    /// is picked with probability `O(1/e(H))`.
    pub fn sample_pair<T: Topology, R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        origin: NodeId,
        file: u32,
        rng: &mut R,
    ) -> Option<(NodeId, NodeId)> {
        let placement = net.placement();
        let topo = net.topo();
        let cnt = placement.replica_count(file);
        if cnt < 2 {
            return None;
        }
        let r_eff = match self.radius {
            Some(r) if r < topo.diameter() => Some(r),
            _ => None,
        };
        match r_eff {
            None => {
                sample_by_index(
                    cnt,
                    2,
                    PairMode::Distinct,
                    |i| placement.replica_at(file, i),
                    &mut self.picks,
                    rng,
                );
                Some((self.picks[0], self.picks[1]))
            }
            Some(r) if placement.is_full() => {
                if topo.ball_size_at(origin, r) < 2 {
                    None
                } else {
                    let a = topo.sample_in_ball(origin, r, rng);
                    let b = loop {
                        let v = topo.sample_in_ball(origin, r, rng);
                        if v != a {
                            break v;
                        }
                    };
                    Some((a, b))
                }
            }
            Some(r) => {
                let drawn = self.sampler.draw(
                    net,
                    origin,
                    file,
                    r,
                    2,
                    PairMode::Distinct,
                    &mut self.picks,
                    rng,
                    &NullRecorder, // diagnostic path: keep out of profiles
                );
                match drawn {
                    PoolDraw::Drawn if self.picks.len() == 2 => {
                        Some((self.picks[0], self.picks[1]))
                    }
                    _ => None,
                }
            }
        }
    }

    /// Pick the least-loaded node among `picks` (uniform among ties).
    fn least_loaded<R: Rng + ?Sized>(picks: &[NodeId], loads: &[u32], rng: &mut R) -> NodeId {
        debug_assert!(!picks.is_empty());
        let mut best = picks[0];
        let mut ties = 1u32;
        for &c in &picks[1..] {
            let (lc, lb) = (loads[c as usize], loads[best as usize]);
            if lc < lb {
                best = c;
                ties = 1;
            } else if lc == lb {
                ties += 1;
                if rng.gen_range(0..ties) == 0 {
                    best = c;
                }
            }
        }
        best
    }
}

impl<Rec: Recorder> ProximityChoice<Rec> {
    /// The assignment logic proper; `Strategy::assign` wraps it so the
    /// per-request trace event is emitted at a single exit point.
    fn assign_inner<T: Topology, R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment {
        let placement = net.placement();
        let topo = net.topo();
        let cnt = placement.replica_count(req.file);
        if cnt == 0 {
            self.rec.path(SamplerPath::Uncached);
            return Assignment {
                server: req.origin,
                hops: 0,
                fallback: Some(FallbackKind::Uncached),
            };
        }

        // A radius at or above the diameter is no constraint at all.
        let r_eff = match self.radius {
            Some(r) if r < topo.diameter() => Some(r),
            _ => None,
        };

        let server = match r_eff {
            None => {
                // Unconstrained: the pool is the whole replica list;
                // sample by index without materializing anything.
                self.rec.path(SamplerPath::IndexSample);
                if cnt == 1 && self.d >= 2 {
                    let server = placement.replica_at(req.file, 0);
                    return Assignment {
                        server,
                        hops: topo.dist(req.origin, server),
                        fallback: Some(FallbackKind::SingleCandidate),
                    };
                }
                sample_by_index(
                    cnt,
                    self.d,
                    self.pair_mode,
                    |i| placement.replica_at(req.file, i),
                    &mut self.picks,
                    rng,
                );
                Self::least_loaded(&self.picks, loads, rng)
            }
            Some(r) if placement.is_full() => {
                // Every node is a candidate: sample directly in the ball.
                self.rec.path(SamplerPath::BallSample);
                let ball = topo.ball_size_at(req.origin, r);
                if ball == 1 && self.d >= 2 {
                    return Assignment {
                        server: req.origin,
                        hops: 0,
                        fallback: Some(FallbackKind::SingleCandidate),
                    };
                }
                self.picks.clear();
                if matches!(self.pair_mode, PairMode::Distinct) && ball <= self.d as u64 {
                    // Fewer ball nodes than choices: take them all.
                    let picks = &mut self.picks;
                    topo.for_each_in_ball(req.origin, r, |v| picks.push(v));
                } else {
                    for _ in 0..self.d {
                        loop {
                            let v = topo.sample_in_ball(req.origin, r, rng);
                            if matches!(self.pair_mode, PairMode::WithReplacement)
                                || !self.picks.contains(&v)
                            {
                                self.picks.push(v);
                                break;
                            }
                        }
                    }
                }
                Self::least_loaded(&self.picks, loads, rng)
            }
            Some(r) => {
                // Sparse placement, finite radius: hybrid rejection
                // sampling over B_r(origin) ∩ replicas — O(1) expected,
                // exact scan only when the pool is too thin to sample.
                let drawn = self.sampler.draw(
                    net,
                    req.origin,
                    req.file,
                    r,
                    self.d,
                    self.pair_mode,
                    &mut self.picks,
                    rng,
                    &self.rec,
                );
                match drawn {
                    PoolDraw::Empty => {
                        // Empty ball: escalate per the configured fallback.
                        return match self.fallback {
                            RadiusFallback::NearestGlobal => {
                                let (server, hops) =
                                    nearest_replica(net, req.origin, req.file, rng, &self.rec)
                                        .expect("cnt > 0 implies a nearest replica exists");
                                Assignment {
                                    server,
                                    hops,
                                    fallback: Some(FallbackKind::NoCandidateInBall),
                                }
                            }
                            RadiusFallback::ServeAtOrigin => Assignment {
                                server: req.origin,
                                hops: 0,
                                fallback: Some(FallbackKind::NoCandidateInBall),
                            },
                        };
                    }
                    PoolDraw::Drawn if self.picks.len() == 1 && self.d >= 2 => {
                        let server = self.picks[0];
                        return Assignment {
                            server,
                            hops: topo.dist(req.origin, server),
                            fallback: Some(FallbackKind::SingleCandidate),
                        };
                    }
                    PoolDraw::Drawn => Self::least_loaded(&self.picks, loads, rng),
                }
            }
        };
        Assignment {
            server,
            hops: topo.dist(req.origin, server),
            fallback: None,
        }
    }
}

impl<T: Topology, Rec: Recorder> Strategy<T> for ProximityChoice<Rec> {
    fn assign<R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment {
        if Rec::ENABLED {
            // Paths that return before sampling (uncached, single
            // candidate) must not leak the previous request's picks into
            // this request's trace event.
            self.picks.clear();
        }
        let a = self.assign_inner(net, loads, req, rng);
        if Rec::ENABLED {
            self.rec.request(
                req.file as u64,
                req.origin as u64,
                a.server as u64,
                a.hops,
                &mut self.picks.iter().map(|&p| (p as u64, loads[p as usize])),
            );
        }
        a
    }

    fn name(&self) -> &'static str {
        "proximity-choice"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UncachedPolicy;
    use crate::simulate::simulate;
    use crate::strategy::NearestReplica;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    #[test]
    fn chosen_server_caches_the_file_and_respects_radius() {
        let net = net(1, 9, 20, 4);
        let mut strat = ProximityChoice::two_choice(Some(3));
        let loads = vec![0u32; net.n() as usize];
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = strat.assign(&net, &loads, req, &mut rng);
            assert!(net.placement().caches(a.server, req.file));
            assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
            match a.fallback {
                None | Some(FallbackKind::SingleCandidate) => {
                    assert!(a.hops <= 3, "in-ball assignment beyond radius")
                }
                Some(FallbackKind::NoCandidateInBall) => {
                    assert!(a.hops > 3, "fallback should mean no in-ball replica")
                }
                Some(FallbackKind::Uncached) => unreachable!("resample policy"),
            }
        }
    }

    #[test]
    fn picks_the_lesser_loaded_candidate() {
        // With radius ≥ diameter and K=1, M=1-distinct... simpler: craft
        // loads and verify the decision marginal: run many assignments
        // with an extreme load imbalance and check the busy node is
        // avoided whenever an alternative exists.
        let net = net(3, 7, 5, 3);
        let file = (0..net.k())
            .max_by_key(|&f| net.placement().replica_count(f))
            .unwrap();
        let cnt = net.placement().replica_count(file);
        assert!(cnt >= 2, "need ≥2 replicas for the test");
        let busy = net.placement().replica_at(file, 0);
        let mut loads = vec![0u32; net.n() as usize];
        loads[busy as usize] = 1_000_000;
        let mut strat = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut busy_hits = 0u32;
        for _ in 0..2000 {
            let req = Request { origin: 0, file };
            let a = strat.assign(&net, &loads, req, &mut rng);
            if a.server == busy {
                busy_hits += 1;
            }
        }
        // busy is chosen only when both picks are busy — impossible for
        // distinct pairs. (It can never win a comparison.)
        assert_eq!(busy_hits, 0, "overloaded node should never win");
    }

    #[test]
    fn single_replica_is_flagged() {
        let net = net(5, 6, 300, 1); // K ≫ slots: many single-replica files
        let file = (0..net.k())
            .find(|&f| net.placement().replica_count(f) == 1)
            .expect("regime yields single-replica files");
        let mut strat = ProximityChoice::two_choice(None);
        let loads = vec![0u32; net.n() as usize];
        let mut rng = SmallRng::seed_from_u64(6);
        let a = strat.assign(&net, &loads, Request { origin: 2, file }, &mut rng);
        assert_eq!(a.fallback, Some(FallbackKind::SingleCandidate));
        assert!(net.placement().caches(a.server, file));
    }

    #[test]
    fn empty_ball_escalates_to_nearest() {
        let net = net(7, 10, 400, 1);
        // Find (origin, file) with replicas but none within radius 1.
        let r = 1u32;
        let mut found = None;
        'search: for origin in 0..net.n() {
            for file in 0..net.k() {
                let cnt = net.placement().replica_count(file);
                if cnt == 0 {
                    continue;
                }
                let any_near = (0..cnt)
                    .any(|i| net.topo().dist(origin, net.placement().replica_at(file, i)) <= r);
                if !any_near {
                    found = Some((origin, file));
                    break 'search;
                }
            }
        }
        let (origin, file) = found.expect("sparse placement must have distant files");
        let loads = vec![0u32; net.n() as usize];
        let mut rng = SmallRng::seed_from_u64(8);

        let mut strat = ProximityChoice::two_choice(Some(r));
        let a = strat.assign(&net, &loads, Request { origin, file }, &mut rng);
        assert_eq!(a.fallback, Some(FallbackKind::NoCandidateInBall));
        assert!(a.hops > r);
        assert!(net.placement().caches(a.server, file));

        let mut strat =
            ProximityChoice::two_choice(Some(r)).radius_fallback(RadiusFallback::ServeAtOrigin);
        let b = strat.assign(&net, &loads, Request { origin, file }, &mut rng);
        assert_eq!(b.server, origin);
        assert_eq!(b.hops, 0);
        assert_eq!(b.fallback, Some(FallbackKind::NoCandidateInBall));
    }

    #[test]
    fn full_placement_unbounded_matches_classic_two_choice() {
        // Example 1: M = K, r = ∞ reduces to the standard process. Compare
        // average max loads against paba-ballsbins' implementation.
        let side = 32u32;
        let n = side * side;
        let mut ours = 0.0;
        let mut classic = 0.0;
        for seed in 0..6 {
            let topo = Torus::new(side);
            let library = crate::Library::new(4, Popularity::Uniform);
            let placement = crate::Placement::full(n, 4);
            let net = CacheNetwork::from_parts(topo, library, placement);
            let mut strat = ProximityChoice::two_choice(None).pair_mode(PairMode::WithReplacement);
            let mut rng = SmallRng::seed_from_u64(seed);
            let rep = simulate(&net, &mut strat, n as u64, &mut rng);
            ours += rep.max_load() as f64 / 6.0;
            let mut rng2 = SmallRng::seed_from_u64(1000 + seed);
            classic += paba_ballsbins::two_choice(n, n as u64, &mut rng2).max_load() as f64 / 6.0;
        }
        assert!(
            (ours - classic).abs() <= 0.75,
            "Example 1 equivalence: ours {ours} vs classic {classic}"
        );
    }

    #[test]
    fn two_choice_balances_better_than_nearest() {
        // End-to-end: same network, both strategies, many runs; Strategy II
        // (r=∞) must beat Strategy I on average max load.
        let mut near_avg = 0.0;
        let mut two_avg = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let net = net(100 + seed, 20, 50, 4);
            let mut rng = SmallRng::seed_from_u64(200 + seed);
            let mut near = NearestReplica::new();
            near_avg += simulate(&net, &mut near, net.n() as u64, &mut rng).max_load() as f64;
            let mut rng = SmallRng::seed_from_u64(300 + seed);
            let mut two = ProximityChoice::two_choice(None);
            two_avg += simulate(&net, &mut two, net.n() as u64, &mut rng).max_load() as f64;
        }
        near_avg /= runs as f64;
        two_avg /= runs as f64;
        assert!(
            two_avg < near_avg,
            "two-choice ({two_avg}) should balance better than nearest ({near_avg})"
        );
    }

    #[test]
    fn more_choices_help() {
        let mut d1 = 0.0;
        let mut d4 = 0.0;
        let runs = 6;
        for seed in 0..runs {
            let net = net(400 + seed, 18, 30, 5);
            let mut rng = SmallRng::seed_from_u64(500 + seed);
            let mut s1 = ProximityChoice::with_choices(None, 1);
            d1 += simulate(&net, &mut s1, net.n() as u64, &mut rng).max_load() as f64;
            let mut rng = SmallRng::seed_from_u64(600 + seed);
            let mut s4 = ProximityChoice::with_choices(None, 4);
            d4 += simulate(&net, &mut s4, net.n() as u64, &mut rng).max_load() as f64;
        }
        assert!(
            d4 < d1,
            "Greedy[4] ({d4}) should beat random replica ({d1})"
        );
    }

    #[test]
    fn radius_bounds_cost() {
        let net = net(9, 45, 100, 10);
        for r in [2u32, 5, 10] {
            let mut strat = ProximityChoice::two_choice(Some(r));
            let mut rng = SmallRng::seed_from_u64(r as u64);
            let rep = simulate(&net, &mut strat, net.n() as u64, &mut rng);
            // Essentially every assignment is in-ball in this regime, so
            // the average cost must be ≤ r (fallbacks could exceed it, but
            // must be rare).
            assert!(
                rep.comm_cost() <= r as f64 + 0.5,
                "r={r}: cost {} too high (fallback fraction {})",
                rep.comm_cost(),
                rep.fallback_fraction()
            );
        }
    }

    #[test]
    fn pair_modes_statistically_close() {
        let mut dist_avg = 0.0;
        let mut repl_avg = 0.0;
        let runs = 6;
        for seed in 0..runs {
            let net = net(700 + seed, 20, 40, 10);
            let mut rng = SmallRng::seed_from_u64(800 + seed);
            let mut sd = ProximityChoice::two_choice(None).pair_mode(PairMode::Distinct);
            dist_avg += simulate(&net, &mut sd, net.n() as u64, &mut rng).max_load() as f64;
            let mut rng = SmallRng::seed_from_u64(900 + seed);
            let mut sr = ProximityChoice::two_choice(None).pair_mode(PairMode::WithReplacement);
            repl_avg += simulate(&net, &mut sr, net.n() as u64, &mut rng).max_load() as f64;
        }
        assert!(
            (dist_avg - repl_avg).abs() / runs as f64 <= 0.5,
            "pair modes should agree: {dist_avg} vs {repl_avg}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = net(11, 10, 25, 3);
        for kind in [SamplerKind::Hybrid, SamplerKind::ExactScan] {
            let run = || {
                let mut strat = ProximityChoice::two_choice(Some(4)).sampler(kind);
                let mut rng = SmallRng::seed_from_u64(12);
                simulate(&net, &mut strat, 500, &mut rng)
            };
            assert_eq!(run(), run(), "{kind:?}");
        }
    }

    #[test]
    fn sampler_kinds_statistically_close() {
        // Hybrid and exact-scan draw from identical distributions, so
        // end-to-end load statistics must agree within Monte-Carlo noise
        // — across a radius sweep spanning rejection, windowed, and
        // fallback-heavy regimes.
        for r in [2u32, 5, 9] {
            let mut hybrid = 0.0;
            let mut exact = 0.0;
            let runs = 8;
            for seed in 0..runs {
                let net = net(1000 + seed, 16, 40, 4);
                let mut rng = SmallRng::seed_from_u64(1100 + seed);
                let mut sh = ProximityChoice::two_choice(Some(r)).sampler(SamplerKind::Hybrid);
                hybrid += simulate(&net, &mut sh, net.n() as u64, &mut rng).max_load() as f64;
                let mut rng = SmallRng::seed_from_u64(1200 + seed);
                let mut se = ProximityChoice::two_choice(Some(r)).sampler(SamplerKind::ExactScan);
                exact += simulate(&net, &mut se, net.n() as u64, &mut rng).max_load() as f64;
            }
            assert!(
                (hybrid - exact).abs() / runs as f64 <= 0.75,
                "r={r}: hybrid {hybrid} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sampler_kind_is_configurable() {
        let s = ProximityChoice::two_choice(Some(3));
        assert_eq!(s.sampler_kind(), SamplerKind::Hybrid);
        let s = s.sampler(SamplerKind::ExactScan);
        assert_eq!(s.sampler_kind(), SamplerKind::ExactScan);
    }

    #[test]
    #[should_panic(expected = "at least one choice")]
    fn zero_choices_panics() {
        let _ = ProximityChoice::with_choices(None, 0);
    }

    #[test]
    fn sample_pair_yields_valid_h_edges() {
        let net = net(21, 9, 15, 4);
        let mut strat = ProximityChoice::two_choice(Some(3));
        let mut rng = SmallRng::seed_from_u64(22);
        let mut pairs_seen = 0;
        for _ in 0..500 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            if let Some((a, b)) = strat.sample_pair(&net, req.origin, req.file, &mut rng) {
                pairs_seen += 1;
                assert_ne!(a, b, "pair must be distinct");
                assert!(net.placement().caches(a, req.file));
                assert!(net.placement().caches(b, req.file));
                assert!(net.topo().dist(req.origin, a) <= 3);
                assert!(net.topo().dist(req.origin, b) <= 3);
                // Both in B_r(origin) ⇒ d(a,b) ≤ 2r: an edge of H.
                assert!(net.topo().dist(a, b) <= 6);
                assert!(net.placement().shares_file(a, b));
            }
        }
        assert!(pairs_seen > 100, "too few pairs sampled: {pairs_seen}");
    }

    #[test]
    fn sample_pair_restores_configuration() {
        let net = net(23, 8, 10, 3);
        let mut strat =
            ProximityChoice::with_choices(Some(2), 5).pair_mode(PairMode::WithReplacement);
        let mut rng = SmallRng::seed_from_u64(24);
        let _ = strat.sample_pair(&net, 0, 0, &mut rng);
        assert_eq!(strat.choices(), 5);
        assert!(matches!(strat.pair_mode, PairMode::WithReplacement));
    }
}
