//! Hybrid candidate sampling over the eligible pool
//! `B_r(origin) ∩ replicas(file)` — the assignment hot path.
//!
//! Strategy II only ever needs `d` (= 2) uniform candidates from the pool,
//! yet the original implementation *materialized* the whole pool per
//! request with per-node membership or distance checks:
//! `O(min(cnt, |B_r|)) ≈ O(r²)` work for an `O(1)` decision. This module
//! replaces that with an adaptive sampler that is **exactly uniform** over
//! the pool and `O(1)` expected in the paper's regimes. Two mechanisms:
//!
//! * **Two-sided rejection sampling** (dense pools). Draw either a uniform
//!   index into the replica list and accept if the node lies within radius
//!   `r` (expected `cnt / |pool| = n / |B_r|` trials per accept, one
//!   [`Topology::dist_from`] each), or [`Topology::sample_in_ball`] and
//!   accept on cache membership (expected `|B_r| / |pool| = n / cnt`
//!   trials, one adaptive [`crate::Placement::caches`] each). The cheaper
//!   side is chosen by comparing `cnt` against `|B_r|`; attempts are
//!   capped so a surprisingly thin pool degrades into the exact path
//!   below instead of spinning.
//!
//! * **Windowed exact materialization** (sparse pools). Node ids are
//!   row-major lattice coordinates and replica lists are sorted, so the
//!   pool is the union of at most `2(2r + 1)` contiguous sub-slices of
//!   the replica list ([`Topology::for_each_ball_id_range`]): `O(r log
//!   cnt)` cache-friendly binary searches and block copies, not a scan of
//!   either side. Candidates are then drawn by index. This path settles
//!   the empty-pool / single-candidate cases exactly.
//!
//! Every path draws uniformly from the same pool, so the mixture is
//! exactly the paper's candidate distribution; only the wall-clock
//! changes. The throughput harness (`paba-bench`, `BENCH_throughput.json`)
//! holds the speedup to ≥ 5× on the sparse finite-radius regimes.

use crate::network::CacheNetwork;
use crate::placement::Placement;
use crate::strategy::proximity::PairMode;
use paba_telemetry::{Counter, Recorder, SamplerPath};
use paba_topology::{NodeId, Topology};
use rand::Rng;

/// How [`crate::ProximityChoice`] draws candidates from the eligible pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SamplerKind {
    /// Adaptive hybrid sampling: two-sided rejection for dense pools,
    /// windowed exact materialization otherwise (the default; `O(1)`
    /// expected per request in the paper's regimes).
    ///
    /// Identical in distribution to [`SamplerKind::ExactScan`], with one
    /// reporting nuance: under [`PairMode::WithReplacement`] a pool of
    /// exactly one node may be returned as `d` accepted copies instead of
    /// being flagged `SingleCandidate` (rejection sampling cannot learn
    /// the pool size). The paper's default distinct mode is
    /// flag-identical.
    #[default]
    Hybrid,
    /// Always materialize the pool per request by scanning whichever of
    /// the replica list / ball enumeration is smaller, then sample by
    /// index — the pre-sampler behaviour, kept for A/B throughput
    /// comparisons (`paba throughput` measures both).
    ExactScan,
}

impl SamplerKind {
    /// Stable label used by the throughput harness and JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            SamplerKind::Hybrid => "hybrid",
            SamplerKind::ExactScan => "exact-scan",
        }
    }
}

/// Outcome of a pool draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum PoolDraw {
    /// `picks` holds the candidates: `d` of them, or the entire pool if it
    /// is smaller (distinct mode), or a single node when the pool proved
    /// to be a singleton.
    Drawn,
    /// The pool is empty (no replica within the ball).
    Empty,
}

/// Rejection sampling is attempted only when the expected number of
/// trials per accepted draw, `n / max(cnt, |B_r|)`, is at most this;
/// beyond it the windowed exact path is cheaper (one cold binary search
/// plus `O(r)` cache-resident ones, regardless of density).
const REJECTION_TRIALS_MAX: u64 = 16;

/// Attempt budget per requested candidate, as a multiple of the expected
/// trial count: succeeds with overwhelming probability when the density
/// estimate holds, and bounds wasted work by a constant factor of the
/// windowed-scan cost it falls back to.
const ATTEMPT_MULT: u64 = 4;

/// Reusable scratch + configuration for pool sampling.
///
/// Owned by a strategy; holds the materialization buffer so the exact
/// path stays allocation-free across requests.
#[derive(Clone, Debug, Default)]
pub(crate) struct PoolSampler {
    kind: SamplerKind,
    /// Materialized pool for the exact path.
    candidates: Vec<NodeId>,
}

impl PoolSampler {
    pub(crate) fn new(kind: SamplerKind) -> Self {
        Self {
            kind,
            candidates: Vec::new(),
        }
    }

    pub(crate) fn kind(&self) -> SamplerKind {
        self.kind
    }

    pub(crate) fn set_kind(&mut self, kind: SamplerKind) {
        self.kind = kind;
    }

    /// Draw `d` uniform candidates from `B_r(origin) ∩ replicas(file)`
    /// into `picks` under `mode`, assuming `replica_count(file) > 0`, a
    /// finite effective radius `r < diameter`, and a sparse placement.
    ///
    /// Records exactly one [`SamplerPath`] per call on `rec` (including
    /// calls that end in [`PoolDraw::Empty`], which went through a
    /// materialization path to learn the pool is empty).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn draw<T: Topology, R: Rng + ?Sized, Rec: Recorder>(
        &mut self,
        net: &CacheNetwork<T>,
        origin: NodeId,
        file: u32,
        r: u32,
        d: u32,
        mode: PairMode,
        picks: &mut Vec<NodeId>,
        rng: &mut R,
        rec: &Rec,
    ) -> PoolDraw {
        let topo = net.topo();
        let placement = net.placement();
        let cnt = placement.replica_count(file);
        debug_assert!(cnt > 0, "caller filters uncached files");
        debug_assert!(!placement.is_full(), "caller handles full placements");
        let n = topo.n() as u64;
        // |B_r| estimate: exact (2r(r+1) + 1) in the non-wrapping regime,
        // saturated at n otherwise. Only steers path choice — every path
        // is exactly uniform — so the estimate is free to be rough.
        let est_ball = (2 * r as u64 * (r as u64 + 1) + 1).min(n);
        let trials_est = n / (cnt as u64).max(est_ball);
        if self.kind == SamplerKind::Hybrid && trials_est <= REJECTION_TRIALS_MAX {
            let replica_side = (cnt as u64) < est_ball;
            let budget = ATTEMPT_MULT * d as u64 * (trials_est + 2);
            let oc = topo.coord_of(origin);
            picks.clear();
            let mut attempts = 0u64;
            let mut ball_attempts = 0u64;
            while (picks.len() as u32) < d && attempts < budget {
                attempts += 1;
                let v = if replica_side {
                    let v = placement.replica_at(file, rng.gen_range(0..cnt));
                    if topo.dist_from(oc, v) > r {
                        continue;
                    }
                    v
                } else {
                    if Rec::ENABLED {
                        ball_attempts += 1;
                    }
                    let v = topo.sample_in_ball_from(oc, r, rng);
                    if !placement.caches(v, file) {
                        continue;
                    }
                    v
                };
                if mode == PairMode::Distinct && picks.contains(&v) {
                    continue;
                }
                picks.push(v);
            }
            if Rec::ENABLED && ball_attempts > 0 {
                record_caches(rec, placement, file, ball_attempts);
            }
            if picks.len() as u32 == d {
                rec.path(if replica_side {
                    SamplerPath::RejectionReplica
                } else {
                    SamplerPath::RejectionBall
                });
                return PoolDraw::Drawn;
            }
            // Budget exhausted: the pool is thinner than the density
            // estimate promised (possibly empty, or a singleton in
            // distinct mode). Settle it exactly below; partial picks are
            // discarded and redrawn from scratch, so the result stays
            // exactly uniform.
            rec.count(Counter::RejectionBudgetExhausted, 1);
        }
        match self.kind {
            SamplerKind::Hybrid => {
                self.materialize_windowed(net, origin, file, r, cnt);
                rec.path(SamplerPath::Windowed);
            }
            SamplerKind::ExactScan => {
                self.materialize_scan(net, origin, file, r, cnt, rec);
                rec.path(SamplerPath::ExactScan);
            }
        }
        rec.pool_size(self.candidates.len());
        match self.candidates.len() {
            0 => PoolDraw::Empty,
            1 => {
                picks.clear();
                picks.push(self.candidates[0]);
                PoolDraw::Drawn
            }
            len => {
                sample_by_index(
                    len as u32,
                    d,
                    mode,
                    |i| self.candidates[i as usize],
                    picks,
                    rng,
                );
                PoolDraw::Drawn
            }
        }
    }

    /// Materialize the pool into `candidates` via the sorted replica
    /// list restricted to the ball's contiguous id intervals, and return
    /// it. `O(min(cnt, r log cnt) + |pool|)`. Recorded as a
    /// [`SamplerPath::Windowed`] event with the resulting pool size.
    pub(crate) fn materialize_pool<T: Topology, Rec: Recorder>(
        &mut self,
        net: &CacheNetwork<T>,
        origin: NodeId,
        file: u32,
        r: u32,
        rec: &Rec,
    ) -> &[NodeId] {
        let cnt = net.placement().replica_count(file);
        self.materialize_windowed(net, origin, file, r, cnt);
        rec.path(SamplerPath::Windowed);
        rec.pool_size(self.candidates.len());
        &self.candidates
    }

    fn materialize_windowed<T: Topology>(
        &mut self,
        net: &CacheNetwork<T>,
        origin: NodeId,
        file: u32,
        r: u32,
        cnt: u32,
    ) {
        let topo = net.topo();
        let reps = net
            .placement()
            .replica_list(file)
            .expect("windowed materialization needs a sparse placement");
        self.candidates.clear();
        let oc = topo.coord_of(origin);
        if (cnt as u64) <= 2 * (2 * r as u64 + 1) {
            // Fewer replicas than ball row-intervals: a straight scan of
            // the (contiguous) replica list is cheaper than searching it.
            for &v in reps {
                if topo.dist_from(oc, v) <= r {
                    self.candidates.push(v);
                }
            }
            return;
        }
        // Narrow to the ball's row band first — one pair of binary
        // searches on the full list; the O(r) per-row interval searches
        // then run on band sub-slices small enough to stay in cache.
        let n = topo.n();
        let mut bands: [Option<(NodeId, NodeId, &[NodeId])>; 2] = [None, None];
        for (slot, range) in bands.iter_mut().zip(topo.row_band(oc, r)) {
            if let Some((blo, bhi)) = range {
                let a = interp_lower_bound(reps, blo, n);
                let b = interp_lower_bound(reps, bhi + 1, n);
                *slot = Some((blo, bhi, &reps[a..b]));
            }
        }
        let candidates = &mut self.candidates;
        let band_total: usize = bands.iter().flatten().map(|(_, _, s)| s.len()).sum();
        if band_total as u64 <= 8 * (4 * r as u64 + 2) {
            // Thin band: a sequential distance-filtered sweep of the band
            // slices beats the per-interval searches below.
            for (_, _, slice) in bands.iter().flatten() {
                for &v in *slice {
                    if topo.dist_from(oc, v) <= r {
                        candidates.push(v);
                    }
                }
            }
            return;
        }
        topo.for_each_ball_id_range(origin, r, |lo, hi| {
            // Each interval sits in whole rows, hence inside one band range.
            for band in bands.iter().flatten() {
                let (blo, bhi, slice) = *band;
                if blo <= lo && hi <= bhi {
                    let a = slice.partition_point(|&v| v < lo);
                    let b = a + slice[a..].partition_point(|&v| v <= hi);
                    candidates.extend_from_slice(&slice[a..b]);
                    break;
                }
            }
        });
    }

    /// The pre-sampler materialization: per-node scan of whichever side
    /// is smaller. Kept verbatim as the [`SamplerKind::ExactScan`]
    /// baseline the throughput harness compares against.
    fn materialize_scan<T: Topology, Rec: Recorder>(
        &mut self,
        net: &CacheNetwork<T>,
        origin: NodeId,
        file: u32,
        r: u32,
        cnt: u32,
        rec: &Rec,
    ) {
        let topo = net.topo();
        let placement = net.placement();
        self.candidates.clear();
        if (cnt as u64) <= topo.ball_size_at(origin, r) {
            for i in 0..cnt {
                let v = placement.replica_at(file, i);
                if topo.dist(origin, v) <= r {
                    self.candidates.push(v);
                }
            }
        } else {
            let candidates = &mut self.candidates;
            let mut caches_calls = 0u64;
            topo.for_each_in_ball(origin, r, |v| {
                if Rec::ENABLED {
                    caches_calls += 1;
                }
                if placement.caches(v, file) {
                    candidates.push(v);
                }
            });
            if Rec::ENABLED && caches_calls > 0 {
                record_caches(rec, placement, file, caches_calls);
            }
        }
    }
}

/// Attribute `calls` [`Placement::caches`] membership checks for `file` to
/// the index structure that answered them.
fn record_caches<Rec: Recorder>(rec: &Rec, placement: &Placement, file: u32, calls: u64) {
    let counter = if placement.has_dense_index(file) {
        Counter::CachesBitmap
    } else {
        Counter::CachesBinarySearch
    };
    rec.count(counter, calls);
}

/// Lower-bound index of `target` in `sorted` (the first element `≥
/// target`), assuming values lie in `0..n`.
///
/// Replica lists are near-uniform over the id space, so the
/// interpolation guess `target·len/n` lands within `O(√len)` of the
/// answer; galloping out from it converges in a handful of probes that
/// touch *adjacent* memory, where a cold binary search would take
/// `log₂ len` scattered probes (each a cache miss on large lists).
/// Correct for arbitrary sorted input — the distribution assumption only
/// affects speed.
pub(crate) fn interp_lower_bound(sorted: &[NodeId], target: NodeId, n: u32) -> usize {
    let len = sorted.len();
    if len == 0 {
        return 0;
    }
    let guess = (((target as u64) * (len as u64)) / (n as u64).max(1)) as usize;
    let guess = guess.min(len - 1);
    // Establish lo with (lo == 0 or sorted[lo] < target) and hi with
    // (hi == len or sorted[hi] ≥ target): the boundary lies in [lo, hi].
    let mut lo = guess;
    let mut step = 8usize;
    while lo > 0 && sorted[lo] >= target {
        lo = lo.saturating_sub(step);
        step *= 2;
    }
    let mut hi = guess;
    step = 8;
    while hi < len && sorted[hi] < target {
        hi = (hi + step).min(len);
        step *= 2;
    }
    lo + sorted[lo..hi].partition_point(|&v| v < target)
}

/// Sample `d` candidate *indices* from `0..cnt` into `picks` (as ids via
/// `map`), honouring the pair mode. `cnt ≥ 1`. In distinct mode with
/// `cnt ≤ d` the entire index range is taken.
pub(crate) fn sample_by_index<R: Rng + ?Sized, F: Fn(u32) -> NodeId>(
    cnt: u32,
    d: u32,
    mode: PairMode,
    map: F,
    picks: &mut Vec<NodeId>,
    rng: &mut R,
) {
    picks.clear();
    match mode {
        PairMode::WithReplacement => {
            for _ in 0..d {
                picks.push(map(rng.gen_range(0..cnt)));
            }
        }
        PairMode::Distinct => {
            if cnt <= d {
                for i in 0..cnt {
                    picks.push(map(i));
                }
            } else if d == 2 {
                // Exact unordered distinct pair in two draws.
                let i = rng.gen_range(0..cnt);
                let mut j = rng.gen_range(0..cnt - 1);
                if j >= i {
                    j += 1;
                }
                picks.push(map(i));
                picks.push(map(j));
            } else {
                // Small-d rejection sampling over indices.
                let mut idxs: [u32; 16] = [u32::MAX; 16];
                let d = d.min(16) as usize;
                let mut filled = 0usize;
                while filled < d {
                    let i = rng.gen_range(0..cnt);
                    if !idxs[..filled].contains(&i) {
                        idxs[filled] = i;
                        filled += 1;
                    }
                }
                for &i in &idxs[..d] {
                    picks.push(map(i));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::CacheNetwork;
    use paba_popularity::Popularity;
    use paba_telemetry::NullRecorder;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn net(seed: u64, side: u32, k: u32, m: u32) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(side)
            .library(k, Popularity::Uniform)
            .cache_size(m)
            .build(&mut rng)
    }

    /// Brute-force pool for cross-checking.
    fn pool(net: &CacheNetwork<Torus>, origin: u32, file: u32, r: u32) -> Vec<u32> {
        (0..net.n())
            .filter(|&v| net.placement().caches(v, file) && net.topo().dist(origin, v) <= r)
            .collect()
    }

    /// Find a (origin, file) pair matching `pred(cnt, pool_len)`.
    fn find_case(
        net: &CacheNetwork<Torus>,
        r: u32,
        pred: impl Fn(u64, usize) -> bool,
    ) -> (u32, u32) {
        for origin in 0..net.n() {
            for file in 0..net.k() {
                let cnt = net.placement().replica_count(file) as u64;
                if cnt == 0 {
                    continue;
                }
                let p = pool(net, origin, file, r).len();
                if pred(cnt, p) {
                    return (origin, file);
                }
            }
        }
        panic!("no (origin, file) case matches the requested regime");
    }

    /// Draw `trials` single candidates and chi-square-check uniformity
    /// over the brute-forced pool.
    fn check_uniform_draws(
        net: &CacheNetwork<Torus>,
        origin: u32,
        file: u32,
        r: u32,
        kind: SamplerKind,
        seed: u64,
    ) {
        let expect_pool = pool(net, origin, file, r);
        assert!(expect_pool.len() >= 2, "test regime needs a real pool");
        let mut sampler = PoolSampler::new(kind);
        let mut picks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(seed);
        let trials = 4_000 * expect_pool.len();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..trials {
            let out = sampler.draw(
                net,
                origin,
                file,
                r,
                1,
                PairMode::Distinct,
                &mut picks,
                &mut rng,
                &NullRecorder,
            );
            assert_eq!(out, PoolDraw::Drawn);
            assert_eq!(picks.len(), 1);
            *counts.entry(picks[0]).or_insert(0) += 1;
        }
        // Every draw must land in the pool, cover it, and be uniform.
        assert_eq!(counts.len(), expect_pool.len(), "pool coverage");
        let expect = trials as f64 / expect_pool.len() as f64;
        for &v in &expect_pool {
            let c = counts.get(&v).copied().unwrap_or(0) as f64;
            assert!(
                (c - expect).abs() < 5.0 * expect.sqrt() + 1.0,
                "node {v}: {c} vs {expect} (kind {kind:?})"
            );
        }
    }

    #[test]
    fn ball_side_rejection_regime_is_uniform() {
        // K=4, M=3 on a 20-torus: cnt ≈ n/2 ≥ |B_5| = 61, so the hybrid
        // path samples the ball and rejects on membership.
        let net = net(2, 20, 4, 3);
        let r = 5;
        let (origin, file) = find_case(&net, r, |cnt, p| cnt >= 61 && p >= 8);
        check_uniform_draws(&net, origin, file, r, SamplerKind::Hybrid, 13);
        check_uniform_draws(&net, origin, file, r, SamplerKind::ExactScan, 14);
    }

    #[test]
    fn replica_side_rejection_regime_is_uniform() {
        // K=10, M=2 on a 20-torus at r=9: |B_9| = 181 > cnt ≈ 76, and
        // n / 181 ≈ 2 expected trials — the hybrid path draws replica
        // indices and rejects on distance.
        let net = net(1, 20, 10, 2);
        let r = 9;
        let (origin, file) = find_case(&net, r, |cnt, p| (40..181).contains(&cnt) && p >= 8);
        check_uniform_draws(&net, origin, file, r, SamplerKind::Hybrid, 11);
        check_uniform_draws(&net, origin, file, r, SamplerKind::ExactScan, 12);
    }

    #[test]
    fn windowed_interval_regime_is_uniform() {
        // K=20, M=1 on a 20-torus at r=2: cnt ≈ 20 ≫ expected pool, so
        // rejection is gated off and the windowed binary-search
        // materialization runs (cnt > 2(2r+1) = 10 intervals).
        let net = net(3, 20, 20, 1);
        let r = 2;
        let (origin, file) = find_case(&net, r, |cnt, p| cnt > 10 && p >= 2);
        check_uniform_draws(&net, origin, file, r, SamplerKind::Hybrid, 15);
        check_uniform_draws(&net, origin, file, r, SamplerKind::ExactScan, 16);
    }

    #[test]
    fn windowed_linear_regime_is_uniform() {
        // K=60, M=2 on a 15-torus: cnt ≈ 7 ≤ 2(2r+1), so the windowed
        // path degenerates to a linear scan of the short replica list.
        let net = net(4, 15, 60, 2);
        let r = 6;
        let (origin, file) = find_case(&net, r, |cnt, p| cnt <= 12 && p >= 2);
        check_uniform_draws(&net, origin, file, r, SamplerKind::Hybrid, 17);
    }

    #[test]
    fn empty_pool_reported() {
        let net = net(4, 10, 400, 1);
        let r = 1;
        let (origin, file) = find_case(&net, r, |_cnt, p| p == 0);
        let mut sampler = PoolSampler::new(SamplerKind::Hybrid);
        let mut picks = vec![99];
        let mut rng = SmallRng::seed_from_u64(16);
        let out = sampler.draw(
            &net,
            origin,
            file,
            r,
            2,
            PairMode::Distinct,
            &mut picks,
            &mut rng,
            &NullRecorder,
        );
        assert_eq!(out, PoolDraw::Empty);
    }

    #[test]
    fn singleton_pool_yields_one_pick() {
        let net = net(5, 12, 200, 1);
        let r = 2;
        let (origin, file) = find_case(&net, r, |_cnt, p| p == 1);
        let expect = pool(&net, origin, file, r);
        let mut sampler = PoolSampler::new(SamplerKind::Hybrid);
        let mut picks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(17);
        let out = sampler.draw(
            &net,
            origin,
            file,
            r,
            2,
            PairMode::Distinct,
            &mut picks,
            &mut rng,
            &NullRecorder,
        );
        assert_eq!(out, PoolDraw::Drawn);
        assert_eq!(picks, expect);
    }

    #[test]
    fn distinct_pairs_are_distinct_and_in_pool() {
        let net = net(6, 20, 4, 3);
        let r = 5;
        let (origin, file) = find_case(&net, r, |cnt, p| cnt >= 61 && p >= 8);
        let expect: std::collections::HashSet<u32> =
            pool(&net, origin, file, r).into_iter().collect();
        let mut sampler = PoolSampler::new(SamplerKind::Hybrid);
        let mut picks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(18);
        for _ in 0..2_000 {
            let out = sampler.draw(
                &net,
                origin,
                file,
                r,
                2,
                PairMode::Distinct,
                &mut picks,
                &mut rng,
                &NullRecorder,
            );
            assert_eq!(out, PoolDraw::Drawn);
            assert_eq!(picks.len(), 2);
            assert_ne!(picks[0], picks[1]);
            assert!(expect.contains(&picks[0]) && expect.contains(&picks[1]));
        }
    }

    #[test]
    fn with_replacement_draws_stay_in_pool() {
        let net = net(7, 20, 10, 2);
        let r = 9;
        let (origin, file) = find_case(&net, r, |cnt, p| (40..181).contains(&cnt) && p >= 4);
        let expect: std::collections::HashSet<u32> =
            pool(&net, origin, file, r).into_iter().collect();
        let mut sampler = PoolSampler::new(SamplerKind::Hybrid);
        let mut picks = Vec::new();
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..2_000 {
            let out = sampler.draw(
                &net,
                origin,
                file,
                r,
                3,
                PairMode::WithReplacement,
                &mut picks,
                &mut rng,
                &NullRecorder,
            );
            assert_eq!(out, PoolDraw::Drawn);
            assert_eq!(picks.len(), 3);
            assert!(picks.iter().all(|v| expect.contains(v)));
        }
    }

    #[test]
    fn materialize_pool_matches_bruteforce() {
        let net = net(9, 15, 40, 2);
        let mut sampler = PoolSampler::new(SamplerKind::Hybrid);
        for r in [1u32, 3, 6, 10, 14] {
            for origin in (0..net.n()).step_by(31) {
                for file in 0..net.k() {
                    if net.placement().replica_count(file) == 0 {
                        continue;
                    }
                    let mut got: Vec<u32> = sampler
                        .materialize_pool(&net, origin, file, r, &NullRecorder)
                        .to_vec();
                    got.sort_unstable();
                    assert_eq!(
                        got,
                        pool(&net, origin, file, r),
                        "origin={origin} file={file} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed_across_regimes() {
        // One network whose files span all sampler paths (rejection on
        // both sides, windowed, empty-pool) at these radii.
        let net = net(8, 20, 10, 2);
        for r in [2u32, 5, 9] {
            let run = |kind: SamplerKind| {
                let mut sampler = PoolSampler::new(kind);
                let mut picks = Vec::new();
                let mut rng = SmallRng::seed_from_u64(21);
                let mut transcript = Vec::new();
                for origin in (0..net.n()).step_by(13) {
                    for file in 0..net.k() {
                        if net.placement().replica_count(file) == 0 {
                            continue;
                        }
                        let out = sampler.draw(
                            &net,
                            origin,
                            file,
                            r,
                            2,
                            PairMode::Distinct,
                            &mut picks,
                            &mut rng,
                            &NullRecorder,
                        );
                        transcript.push((out == PoolDraw::Drawn, picks.clone()));
                    }
                }
                transcript
            };
            assert_eq!(run(SamplerKind::Hybrid), run(SamplerKind::Hybrid), "r={r}");
            assert_eq!(
                run(SamplerKind::ExactScan),
                run(SamplerKind::ExactScan),
                "r={r}"
            );
        }
    }
}
