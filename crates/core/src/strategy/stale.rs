//! Stale load information (the paper's §VI implementation discussion).
//!
//! In a real deployment, Strategy II learns queue lengths "by polling or
//! piggybacking" — so decisions are made against a *snapshot* of the
//! loads, not their live values. [`StaleLoad`] wraps any inner strategy
//! and refreshes its load snapshot only every `period` requests,
//! quantifying how much staleness the power of two choices tolerates (the
//! `ablation_design` bench shows the degradation curve; the classic
//! "herd effect" appears when many requests act on one stale view).

use crate::network::CacheNetwork;
use crate::request::Request;
use crate::strategy::{Assignment, Strategy};
use paba_topology::Topology;
use rand::Rng;

/// Wrapper strategy that feeds its inner strategy a periodically
/// refreshed snapshot of the load vector.
#[derive(Clone, Debug)]
pub struct StaleLoad<S> {
    inner: S,
    period: u64,
    seen: u64,
    snapshot: Vec<u32>,
}

impl<S> StaleLoad<S> {
    /// Wrap `inner`, refreshing its view of the loads every `period`
    /// requests (`period = 1` ⇒ always fresh; larger ⇒ staler).
    ///
    /// # Panics
    /// If `period == 0`.
    pub fn new(inner: S, period: u64) -> Self {
        assert!(period >= 1, "refresh period must be ≥ 1");
        Self {
            inner,
            period,
            seen: 0,
            snapshot: Vec::new(),
        }
    }

    /// The wrapped strategy.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The refresh period.
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl<T: Topology, S: Strategy<T>> Strategy<T> for StaleLoad<S> {
    fn assign<R: Rng + ?Sized>(
        &mut self,
        net: &CacheNetwork<T>,
        loads: &[u32],
        req: Request,
        rng: &mut R,
    ) -> Assignment {
        if self.seen.is_multiple_of(self.period) || self.snapshot.len() != loads.len() {
            self.snapshot.clear();
            self.snapshot.extend_from_slice(loads);
        }
        self.seen += 1;
        self.inner.assign(net, &self.snapshot, req, rng)
    }

    fn name(&self) -> &'static str {
        "stale-load"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::UncachedPolicy;
    use crate::simulate::simulate;
    use crate::strategy::ProximityChoice;
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn net(seed: u64) -> CacheNetwork<Torus> {
        let mut rng = SmallRng::seed_from_u64(seed);
        CacheNetwork::builder()
            .torus_side(16)
            .library(30, Popularity::Uniform)
            .cache_size(6)
            .build(&mut rng)
    }

    #[test]
    fn period_one_matches_fresh_strategy_exactly() {
        let net = net(1);
        let run_fresh = || {
            let mut s = ProximityChoice::two_choice(Some(4));
            let mut rng = SmallRng::seed_from_u64(2);
            simulate(&net, &mut s, 500, &mut rng)
        };
        let run_stale = || {
            let mut s = StaleLoad::new(ProximityChoice::two_choice(Some(4)), 1);
            let mut rng = SmallRng::seed_from_u64(2);
            simulate(&net, &mut s, 500, &mut rng)
        };
        assert_eq!(run_fresh(), run_stale());
    }

    #[test]
    fn staleness_degrades_balance_monotonically_on_average() {
        // Fresh two-choice must (statistically) beat an effectively
        // never-refreshed one; the latter still sees all-zero loads and
        // degenerates to a random-pair pick.
        let runs = 10u64;
        let avg = |period: u64, base: u64| -> f64 {
            (0..runs)
                .map(|s| {
                    let net = net(100 + s);
                    let mut strat = StaleLoad::new(ProximityChoice::two_choice(None), period);
                    let mut rng = SmallRng::seed_from_u64(base + s);
                    simulate(&net, &mut strat, net.n() as u64, &mut rng).max_load() as f64
                })
                .sum::<f64>()
                / runs as f64
        };
        let fresh = avg(1, 1000);
        let stale = avg(1_000_000, 2000);
        assert!(
            fresh < stale,
            "fresh ({fresh}) should balance better than fully stale ({stale})"
        );
    }

    #[test]
    fn invariants_preserved_under_staleness() {
        let net = net(3);
        let mut s = StaleLoad::new(ProximityChoice::two_choice(Some(3)), 50);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut loads = vec![0u32; net.n() as usize];
        for _ in 0..300 {
            let req = Request::sample(&net, UncachedPolicy::ResampleFile, &mut rng);
            let a = s.assign(&net, &loads, req, &mut rng);
            assert!(net.placement().caches(a.server, req.file));
            assert_eq!(a.hops, net.topo().dist(req.origin, a.server));
            loads[a.server as usize] += 1;
        }
    }

    #[test]
    fn accessors() {
        let s = StaleLoad::new(ProximityChoice::two_choice(None), 7);
        assert_eq!(s.period(), 7);
        assert_eq!(s.inner().choices(), 2);
    }

    #[test]
    #[should_panic(expected = "period must be ≥ 1")]
    fn zero_period_panics() {
        let _ = StaleLoad::new(ProximityChoice::two_choice(None), 0);
    }
}
