//! Per-file Voronoi tessellations (the paper's Lemma 1 machinery).
//!
//! Under Strategy I, the set `S_j` of nodes caching file `W_j` induces a
//! Voronoi tessellation `V_j` of the torus: each node belongs to the cell
//! of its nearest replica. Lemma 1 bounds the largest cell by
//! `O(K log n / M)` and exhibits a cell of size `Θ(K log n / M)` in the
//! sparse regime — which is exactly why Strategy I's maximum load grows
//! logarithmically.
//!
//! Cells are computed by multi-source BFS with **epoch-stamped** visited
//! buffers (no O(n) clearing between files — the perf-book "workhorse
//! collection" idiom). Boundary ties are broken by BFS arrival order,
//! which is *arbitrary but deterministic*; this is fine for cell-size
//! statistics (the strategies themselves use exact uniform tie-breaking,
//! implemented separately in [`crate::strategy`]).

use paba_topology::{NodeId, Topology};
use paba_util::FxHashMap;
use std::collections::VecDeque;

/// Reusable multi-source BFS engine for Voronoi computations.
#[derive(Clone, Debug)]
pub struct VoronoiComputer {
    n: u32,
    dist: Vec<u32>,
    owner: Vec<NodeId>,
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<NodeId>,
}

impl VoronoiComputer {
    /// Engine for an `n`-node topology.
    pub fn new(n: u32) -> Self {
        Self {
            n,
            dist: vec![0; n as usize],
            owner: vec![0; n as usize],
            stamp: vec![0; n as usize],
            epoch: 0,
            queue: VecDeque::new(),
        }
    }

    /// Run multi-source BFS from `sources`; afterwards `self.dist` /
    /// `self.owner` are valid for all nodes (every node is reached since
    /// the lattice is connected).
    ///
    /// # Panics
    /// If `sources` is empty or contains an out-of-range node.
    fn bfs<T: Topology>(&mut self, topo: &T, sources: &[NodeId]) {
        assert_eq!(topo.n(), self.n, "topology size mismatch");
        assert!(!sources.is_empty(), "Voronoi needs at least one source");
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: invalidate everything once per 2^32 runs.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
        for &s in sources {
            assert!(s < self.n, "source {s} out of range");
            if self.stamp[s as usize] != self.epoch {
                self.stamp[s as usize] = self.epoch;
                self.dist[s as usize] = 0;
                self.owner[s as usize] = s;
                self.queue.push_back(s);
            }
        }
        while let Some(u) = self.queue.pop_front() {
            let du = self.dist[u as usize];
            let ou = self.owner[u as usize];
            let (dist, owner, stamp, queue, epoch) = (
                &mut self.dist,
                &mut self.owner,
                &mut self.stamp,
                &mut self.queue,
                self.epoch,
            );
            topo.for_each_neighbor(u, |v| {
                if stamp[v as usize] != epoch {
                    stamp[v as usize] = epoch;
                    dist[v as usize] = du + 1;
                    owner[v as usize] = ou;
                    queue.push_back(v);
                }
            });
        }
    }

    /// Compute the full tessellation snapshot for `sources`.
    pub fn compute<T: Topology>(&mut self, topo: &T, sources: &[NodeId]) -> VoronoiCells {
        self.bfs(topo, sources);
        VoronoiCells {
            owner: self.owner.clone(),
            dist: self.dist.clone(),
            sources: sources.to_vec(),
        }
    }

    /// Compute only per-cell sizes and the maximum cell radius — the
    /// quantities Lemma 1 bounds — without materializing a snapshot.
    ///
    /// Returns `(sizes_by_source, max_cell_radius)`.
    pub fn cell_sizes<T: Topology>(
        &mut self,
        topo: &T,
        sources: &[NodeId],
    ) -> (FxHashMap<NodeId, u32>, u32) {
        self.bfs(topo, sources);
        let mut sizes: FxHashMap<NodeId, u32> = FxHashMap::default();
        // All sources appear (each owns at least itself), including
        // duplicate-free handling of repeated sources.
        for &s in sources {
            sizes.entry(s).or_insert(0);
        }
        let mut max_radius = 0u32;
        for v in 0..self.n as usize {
            *sizes
                .get_mut(&self.owner[v])
                .expect("owner must be a source") += 1;
            max_radius = max_radius.max(self.dist[v]);
        }
        (sizes, max_radius)
    }
}

/// A full Voronoi tessellation snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoronoiCells {
    /// `owner[v]` = the source whose cell contains `v`.
    pub owner: Vec<NodeId>,
    /// `dist[v]` = distance from `v` to its owning source.
    pub dist: Vec<u32>,
    sources: Vec<NodeId>,
}

impl VoronoiCells {
    /// The sources this tessellation was computed from.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Size of each cell, keyed by source.
    pub fn cell_sizes(&self) -> FxHashMap<NodeId, u32> {
        let mut sizes: FxHashMap<NodeId, u32> = FxHashMap::default();
        for &s in &self.sources {
            sizes.entry(s).or_insert(0);
        }
        for &o in &self.owner {
            *sizes.get_mut(&o).expect("owner must be a source") += 1;
        }
        sizes
    }

    /// Size of the largest cell — Lemma 1's `O(K log n / M)` quantity.
    pub fn max_cell_size(&self) -> u32 {
        self.cell_sizes().values().copied().max().unwrap_or(0)
    }

    /// Largest node-to-owner distance — Lemma 1's containment radius
    /// (`O(√(K log n / M))`).
    pub fn max_cell_radius(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_topology::{Grid, Torus};

    #[test]
    fn single_source_owns_everything() {
        let t = Torus::new(6);
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &[7]);
        assert!(cells.owner.iter().all(|&o| o == 7));
        assert_eq!(cells.max_cell_size(), 36);
        // BFS distance equals the metric distance for every node.
        for v in 0..t.n() {
            assert_eq!(cells.dist[v as usize], t.dist(7, v), "node {v}");
        }
        assert_eq!(cells.max_cell_radius(), t.diameter());
    }

    #[test]
    fn bfs_distance_equals_min_over_sources() {
        let t = Torus::new(7);
        let sources = [0u32, 24, 30];
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &sources);
        for v in 0..t.n() {
            let want = sources.iter().map(|&s| t.dist(s, v)).min().unwrap();
            assert_eq!(cells.dist[v as usize], want, "node {v}");
            // Owner must be one of the nearest sources.
            let o = cells.owner[v as usize];
            assert!(sources.contains(&o));
            assert_eq!(t.dist(o, v), want, "owner of {v} is not nearest");
        }
    }

    #[test]
    fn cells_partition_the_torus() {
        let t = Torus::new(9);
        let sources = [3u32, 40, 41, 77];
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &sources);
        let sizes = cells.cell_sizes();
        assert_eq!(sizes.len(), sources.len());
        let total: u32 = sizes.values().sum();
        assert_eq!(total, t.n());
    }

    #[test]
    fn cell_sizes_fast_path_matches_snapshot() {
        let t = Torus::new(8);
        let sources = [0u32, 9, 54, 33];
        let mut vc = VoronoiComputer::new(t.n());
        let snapshot = vc.compute(&t, &sources);
        let (sizes, radius) = vc.cell_sizes(&t, &sources);
        assert_eq!(sizes, snapshot.cell_sizes());
        assert_eq!(radius, snapshot.max_cell_radius());
    }

    #[test]
    fn epoch_reuse_gives_fresh_results() {
        let t = Torus::new(5);
        let mut vc = VoronoiComputer::new(t.n());
        let a = vc.compute(&t, &[0]);
        let b = vc.compute(&t, &[24]);
        let a2 = vc.compute(&t, &[0]);
        assert_ne!(a.owner, b.owner);
        assert_eq!(a, a2, "recomputation must be stable");
    }

    #[test]
    fn duplicate_sources_are_harmless() {
        let t = Torus::new(5);
        let mut vc = VoronoiComputer::new(t.n());
        let cells = vc.compute(&t, &[3, 3, 18, 3]);
        let sizes = cells.cell_sizes();
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes.values().sum::<u32>(), 25);
    }

    #[test]
    fn works_on_bounded_grid() {
        let g = Grid::new(6);
        let mut vc = VoronoiComputer::new(g.n());
        let cells = vc.compute(&g, &[0, 35]);
        for v in 0..g.n() {
            let want = g.dist(0, v).min(g.dist(35, v));
            assert_eq!(cells.dist[v as usize], want);
        }
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn empty_sources_panic() {
        let t = Torus::new(4);
        let mut vc = VoronoiComputer::new(t.n());
        let _ = vc.compute(&t, &[]);
    }

    #[test]
    fn more_sources_shrink_the_largest_cell() {
        let t = Torus::new(12);
        let mut vc = VoronoiComputer::new(t.n());
        let few = vc.compute(&t, &[0, 77]).max_cell_size();
        let many = vc
            .compute(&t, &[0, 77, 30, 100, 60, 130, 8, 90])
            .max_cell_size();
        assert!(
            many < few,
            "more replicas should shrink cells: {many} vs {few}"
        );
    }
}
