//! Randomized equivalence tests for the *mutable* placement.
//!
//! `Placement::insert`/`remove` maintain three indices incrementally —
//! sorted replica lists, the CSR node-file lists, and the dense bitmap
//! index (with block reuse across the `n/16` promotion threshold). The
//! contract: after **any** event sequence the placement is
//! indistinguishable from one rebuilt from scratch over the same
//! node-file lists, and the hybrid sampler stays statistically equivalent
//! to the exact-scan reference on the mutated placement (companion to
//! `placement_probes.rs`, which covers static placements).

use paba_core::{
    simulate, CacheNetwork, Library, Placement, PlacementPolicy, ProximityChoice, SamplerKind,
};
use paba_popularity::Popularity;
use paba_topology::Torus;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// From-scratch rebuild over the mutated placement's own node lists.
fn rebuild(p: &Placement) -> Placement {
    let lists: Vec<Vec<u32>> = (0..p.n()).map(|u| p.node_files(u).to_vec()).collect();
    Placement::from_node_files(p.n(), p.k(), p.m(), lists)
}

/// Every queryable surface must agree between the incrementally mutated
/// placement and its rebuild: CSR lists, replica lists, dense-index
/// assignment, membership probes, and brute-force counts.
fn assert_matches_rebuild(p: &Placement, probes: usize, seed: u64) {
    let r = rebuild(p);
    for u in 0..p.n() {
        assert_eq!(p.node_files(u), r.node_files(u), "node {u} CSR list");
        assert_eq!(p.t_u(u), r.t_u(u));
    }
    for f in 0..p.k() {
        assert_eq!(p.replica_list(f), r.replica_list(f), "file {f} replicas");
        assert_eq!(
            p.has_dense_index(f),
            r.has_dense_index(f),
            "file {f} dense-index assignment (cnt={})",
            p.replica_count(f)
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..probes {
        let u = rng.gen_range(0..p.n());
        let f = rng.gen_range(0..p.k());
        assert_eq!(p.caches(u, f), r.caches(u, f), "probe {i}: caches({u},{f})");
    }
    for f in 0..p.k() {
        let brute = (0..p.n()).filter(|&u| p.caches(u, f)).count() as u32;
        assert_eq!(brute, p.replica_count(f), "file {f} membership count");
    }
}

/// Apply `events` random capacity-respecting insert/remove events.
fn churn(p: &mut Placement, events: usize, rng: &mut SmallRng) {
    for _ in 0..events {
        let u = rng.gen_range(0..p.n());
        let f = rng.gen_range(0..p.k());
        if p.caches(u, f) {
            assert!(p.remove(u, f));
        } else if p.t_u(u) < p.m() {
            assert!(p.insert(u, f));
        }
    }
}

#[test]
fn random_event_sequences_match_rebuild() {
    // Three regimes, matching placement_probes.rs: all-dense, all-sparse,
    // and a Zipf mix whose head files cross the threshold under churn.
    let regimes: [(u32, u32, u32, Popularity); 3] = [
        (1024, 8, 3, Popularity::Uniform),    // dense: cnt ≫ n/16
        (400, 3000, 4, Popularity::Uniform),  // sparse: cnt ≪ n/16
        (900, 300, 6, Popularity::zipf(1.4)), // mixed: threshold traffic
    ];
    for (idx, (n, k, m, pop)) in regimes.into_iter().enumerate() {
        let mut rng = SmallRng::seed_from_u64(31 + idx as u64);
        let library = Library::new(k, pop);
        let mut p = Placement::generate(
            n,
            &library,
            m,
            PlacementPolicy::ProportionalWithReplacement,
            &mut rng,
        );
        for round in 0..4 {
            churn(&mut p, 1500, &mut rng);
            assert_matches_rebuild(&p, 20_000, 100 * idx as u64 + round);
        }
    }
}

#[test]
fn threshold_oscillation_keeps_bitmaps_exact() {
    // n = 64 ⇒ dense at exactly 4 replicas. Drive several files back and
    // forth across the boundary so demoted blocks are freed, reused for
    // *other* files, and re-promoted — any stale bit shows up as a
    // membership disagreement.
    let n = 64u32;
    let k = 6u32;
    let mut p = Placement::from_node_files(n, k, 8, vec![Vec::new(); n as usize]);
    let mut rng = SmallRng::seed_from_u64(77);
    for round in 0u64..40 {
        for f in 0..k {
            // Grow file f to 3–6 replicas, then shrink to 0–3.
            let grow = rng.gen_range(3..=6);
            let mut added = Vec::new();
            for _ in 0..grow {
                let u = rng.gen_range(0..n);
                if !p.caches(u, f) && p.t_u(u) < p.m() {
                    p.insert(u, f);
                    added.push(u);
                }
            }
            let shrink = rng.gen_range(0..=added.len());
            for &u in added.iter().take(shrink) {
                p.remove(u, f);
            }
        }
        assert_matches_rebuild(&p, 5_000, 1000 + round);
    }
}

#[test]
fn hybrid_sampler_equivalent_on_mutated_placement() {
    // After churn the hybrid sampler must still draw from the same
    // distribution as the exact-scan reference: end-to-end max-load
    // statistics agree within Monte-Carlo noise (the placement_probes
    // tolerance, mirrored from sampler_kinds_statistically_close).
    for r in [2u32, 5] {
        let mut hybrid = 0.0;
        let mut exact = 0.0;
        let runs = 8;
        for seed in 0..runs {
            let side = 16u32;
            let mut rng = SmallRng::seed_from_u64(2000 + seed);
            let library = Library::new(40, Popularity::zipf(1.2));
            let mut p = Placement::generate(
                side * side,
                &library,
                4,
                PlacementPolicy::ProportionalWithReplacement,
                &mut rng,
            );
            churn(&mut p, 600, &mut rng);
            assert_matches_rebuild(&p, 2_000, 3000 + seed);
            let mk = |placement: Placement| {
                CacheNetwork::from_parts(
                    Torus::new(side),
                    Library::new(40, Popularity::zipf(1.2)),
                    placement,
                )
            };
            let net_h = mk(p.clone());
            let net_e = mk(p);
            let mut rng_h = SmallRng::seed_from_u64(4000 + seed);
            let mut sh = ProximityChoice::two_choice(Some(r)).sampler(SamplerKind::Hybrid);
            hybrid += simulate(&net_h, &mut sh, net_h.n() as u64, &mut rng_h).max_load() as f64;
            let mut rng_e = SmallRng::seed_from_u64(5000 + seed);
            let mut se = ProximityChoice::two_choice(Some(r)).sampler(SamplerKind::ExactScan);
            exact += simulate(&net_e, &mut se, net_e.n() as u64, &mut rng_e).max_load() as f64;
        }
        assert!(
            (hybrid - exact).abs() / runs as f64 <= 0.75,
            "r={r}: hybrid {hybrid} vs exact {exact} on mutated placements"
        );
    }
}
