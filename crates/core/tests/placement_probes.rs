//! Randomized equivalence probes for [`Placement::caches`].
//!
//! The hot-path membership check has two internal answers for the same
//! question: the **dense bitmap** fast path (files with replica count
//! `≥ n/16`) and the **binary-search** path over the shorter of the
//! per-node file list and the per-file replica list. A disagreement
//! between them would silently bias the rejection sampler, so this suite
//! fires ~10⁵ random `(node, file)` probes per placement against a
//! reference membership set built independently from `node_files`, across
//! placements engineered to exercise both paths.

use paba_core::{Library, Placement, PlacementPolicy};
use paba_popularity::Popularity;
use paba_util::FxHashSet;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Reference membership relation rebuilt from the per-node CSR lists only
/// (never through `caches`, whose two paths are under test).
fn reference_pairs(p: &Placement) -> FxHashSet<(u32, u32)> {
    let mut set = FxHashSet::default();
    for u in 0..p.n() {
        for &f in p.node_files(u) {
            set.insert((u, f));
        }
    }
    set
}

/// Fire `probes` random probes plus full replica-list cross-checks.
fn probe(p: &Placement, probes: usize, seed: u64) {
    let reference = reference_pairs(p);
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in 0..probes {
        let u = rng.gen_range(0..p.n());
        let f = rng.gen_range(0..p.k());
        assert_eq!(
            p.caches(u, f),
            reference.contains(&(u, f)),
            "probe {i}: caches({u}, {f}) disagrees with the node_files reference"
        );
    }
    // Every recorded replica must answer true, and replica counts must
    // match the reference exactly (catches a bitmap that over-sets bits).
    for f in 0..p.k() {
        let mut listed = 0u32;
        p.for_each_replica(f, |u| {
            listed += 1;
            assert!(p.caches(u, f), "replica list says {u} caches {f}");
        });
        assert_eq!(listed, p.replica_count(f));
        let brute = (0..p.n()).filter(|&u| p.caches(u, f)).count() as u32;
        assert_eq!(brute, p.replica_count(f), "file {f} membership count");
    }
}

#[test]
fn dense_placement_probes_agree() {
    // K = 8 files over n = 1024 nodes, M = 3: every file collects far more
    // than n/16 = 64 replicas, so every lookup rides the bitmap fast path.
    let mut rng = SmallRng::seed_from_u64(1);
    let library = Library::new(8, Popularity::Uniform);
    let p = Placement::generate(
        1024,
        &library,
        3,
        PlacementPolicy::ProportionalWithReplacement,
        &mut rng,
    );
    assert!(
        (0..8).all(|f| p.replica_count(f) as u64 * 16 >= 1024),
        "regime must make every file dense-indexed"
    );
    probe(&p, 100_000, 11);
}

#[test]
fn sparse_placement_probes_agree() {
    // K = 3000 files over n = 400 nodes, M = 4: replica counts hover near
    // 0–3, far below the n/16 = 25 dense threshold, so every lookup takes
    // the binary-search path (including uncached files).
    let mut rng = SmallRng::seed_from_u64(2);
    let library = Library::new(3000, Popularity::Uniform);
    let p = Placement::generate(
        400,
        &library,
        4,
        PlacementPolicy::ProportionalWithReplacement,
        &mut rng,
    );
    assert!(
        (0..3000).all(|f| (p.replica_count(f) as u64) * 16 < 400),
        "regime must keep every file below the dense threshold"
    );
    assert!(p.uncached_files() > 0, "want uncached probes too");
    probe(&p, 100_000, 12);
}

#[test]
fn mixed_zipf_placement_probes_agree() {
    // Zipf 1.4 head files go dense, tail files stay sparse: random probes
    // cross the bitmap/binary-search boundary inside one placement.
    let mut rng = SmallRng::seed_from_u64(3);
    let library = Library::new(300, Popularity::zipf(1.4));
    let p = Placement::generate(
        900,
        &library,
        6,
        PlacementPolicy::ProportionalWithReplacement,
        &mut rng,
    );
    let dense = (0..300)
        .filter(|&f| p.replica_count(f) as u64 * 16 >= 900)
        .count();
    assert!(
        dense > 0 && dense < 300,
        "regime must mix paths (dense files: {dense})"
    );
    probe(&p, 100_000, 13);
}

#[test]
fn handcrafted_boundary_placement_probes_agree() {
    // Straddle the n/16 threshold exactly: with n = 64 the cutoff is 4
    // replicas. File 0 gets 3 (sparse), file 1 gets 4 (dense), file 2
    // gets every node, file 3 none.
    let n = 64u32;
    let mut lists = vec![Vec::new(); n as usize];
    for u in [5u32, 17, 40] {
        lists[u as usize].push(0u32);
    }
    for u in [3u32, 19, 33, 63] {
        lists[u as usize].push(1u32);
    }
    for l in lists.iter_mut() {
        l.push(2u32);
    }
    let p = Placement::from_node_files(n, 4, 4, lists);
    assert_eq!(p.replica_count(0), 3);
    assert_eq!(p.replica_count(1), 4);
    assert_eq!(p.replica_count(2), n);
    assert_eq!(p.replica_count(3), 0);
    probe(&p, 100_000, 14);
}

#[test]
fn distinct_policy_probes_agree() {
    let mut rng = SmallRng::seed_from_u64(4);
    let library = Library::new(40, Popularity::zipf(0.7));
    let p = Placement::generate(
        500,
        &library,
        12,
        PlacementPolicy::ProportionalDistinct,
        &mut rng,
    );
    probe(&p, 100_000, 15);
}
