//! Telemetry integration: recording must not perturb simulation results,
//! and sampler-path accounting must match the sampler's design — exactly
//! one path per assigned request, with the expected path dominating in
//! each placement regime.

use paba_core::prelude::*;
use paba_core::SamplerKind;
use paba_telemetry::{AtomicRecorder, SamplerPath};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn build_net(
    side: u32,
    k: u32,
    m: u32,
    policy: PlacementPolicy,
    seed: u64,
) -> CacheNetwork<paba_topology::Torus> {
    let mut rng = SmallRng::seed_from_u64(seed);
    CacheNetwork::builder()
        .torus_side(side)
        .library(k, Popularity::Uniform)
        .cache_size(m)
        .placement_policy(policy)
        .build(&mut rng)
}

fn sparse(side: u32, k: u32, m: u32, seed: u64) -> CacheNetwork<paba_topology::Torus> {
    build_net(
        side,
        k,
        m,
        PlacementPolicy::ProportionalWithReplacement,
        seed,
    )
}

#[test]
fn recording_does_not_change_simulation_results() {
    for radius in [Some(3), None] {
        let net = sparse(12, 60, 4, 5);
        let requests = net.n() as u64;

        let mut plain_rng = SmallRng::seed_from_u64(77);
        let mut strat = ProximityChoice::two_choice(radius);
        let plain = simulate(&net, &mut strat, requests, &mut plain_rng);

        let rec = AtomicRecorder::new();
        let mut rec_rng = SmallRng::seed_from_u64(77);
        let mut strat = ProximityChoice::two_choice(radius).with_recorder(&rec);
        let recorded = simulate(&net, &mut strat, requests, &mut rec_rng);

        assert_eq!(plain.max_load(), recorded.max_load(), "radius={radius:?}");
        assert_eq!(plain.comm_cost(), recorded.comm_cost(), "radius={radius:?}");
        assert_eq!(
            plain.fallback_fraction(),
            recorded.fallback_fraction(),
            "radius={radius:?}"
        );
    }
}

#[test]
fn paths_sum_to_request_count_across_regimes() {
    let regimes = [
        // (K, M, policy, radius): dense, sparse, full, unconstrained.
        (4, 8, PlacementPolicy::ProportionalWithReplacement, Some(4)),
        (
            2_000,
            1,
            PlacementPolicy::ProportionalWithReplacement,
            Some(2),
        ),
        (30, 30, PlacementPolicy::FullLibrary, Some(3)),
        (60, 4, PlacementPolicy::ProportionalWithReplacement, None),
    ];
    for (k, m, policy, radius) in regimes {
        let net = build_net(20, k, m, policy, 9);
        let requests = 2 * net.n() as u64;
        let rec = AtomicRecorder::new();
        let mut strat = ProximityChoice::two_choice(radius).with_recorder(&rec);
        let mut rng = SmallRng::seed_from_u64(13);
        simulate(&net, &mut strat, requests, &mut rng);
        assert_eq!(
            rec.snapshot().total_requests(),
            requests,
            "K={k} M={m} radius={radius:?}: exactly one sampler path per request"
        );
    }
}

#[test]
fn dense_pools_take_rejection_paths() {
    // K = 4, M = 8: nearly every node holds every file, so the hybrid
    // sampler's rejection estimate is far under budget and the ball-side
    // acceptance probability is ≈ 0.9 — rejection must dominate.
    let net = sparse(20, 4, 8, 9);
    let requests = 4 * net.n() as u64;
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(Some(4)).with_recorder(&rec);
    let mut rng = SmallRng::seed_from_u64(21);
    simulate(&net, &mut strat, requests, &mut rng);
    let snap = rec.snapshot();
    let rejection = snap.path_count(SamplerPath::RejectionReplica)
        + snap.path_count(SamplerPath::RejectionBall);
    assert!(
        rejection * 10 >= requests * 9,
        "dense pools should resolve ≥90% of requests by rejection, got {rejection}/{requests}"
    );
}

#[test]
fn sparse_pools_fall_back_to_windowed_materialization() {
    // K = 2000, M = 1 on n = 400: ~0.2 replicas per file, so the trial
    // estimate blows the rejection budget and the windowed materialization
    // must dominate.
    let net = sparse(20, 2_000, 1, 11);
    let requests = 4 * net.n() as u64;
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(Some(2)).with_recorder(&rec);
    let mut rng = SmallRng::seed_from_u64(23);
    simulate(&net, &mut strat, requests, &mut rng);
    let snap = rec.snapshot();
    let windowed = snap.path_count(SamplerPath::Windowed);
    assert!(
        windowed * 2 > requests,
        "sparse pools should mostly materialize windowed, got {windowed}/{requests}"
    );
}

#[test]
fn exact_scan_kind_records_only_exact_scan_draws() {
    let net = sparse(12, 60, 4, 5);
    let requests = 2 * net.n() as u64;
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(Some(3))
        .sampler(SamplerKind::ExactScan)
        .with_recorder(&rec);
    let mut rng = SmallRng::seed_from_u64(31);
    simulate(&net, &mut strat, requests, &mut rng);
    let snap = rec.snapshot();
    assert_eq!(snap.path_count(SamplerPath::RejectionReplica), 0);
    assert_eq!(snap.path_count(SamplerPath::RejectionBall), 0);
    assert_eq!(snap.path_count(SamplerPath::Windowed), 0);
    assert!(snap.path_count(SamplerPath::ExactScan) > 0);
    assert_eq!(snap.total_requests(), requests);
}

#[test]
fn full_placement_and_unbounded_radius_take_direct_paths() {
    // Full placement + finite radius: every request samples directly in
    // the ball. Unbounded radius: every request samples replicas by index.
    let full = build_net(15, 25, 25, PlacementPolicy::FullLibrary, 3);
    let requests = full.n() as u64;
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(Some(4)).with_recorder(&rec);
    let mut rng = SmallRng::seed_from_u64(41);
    simulate(&full, &mut strat, requests, &mut rng);
    let snap = rec.snapshot();
    assert_eq!(snap.path_count(SamplerPath::BallSample), requests);

    let net = sparse(15, 60, 4, 3);
    let rec = AtomicRecorder::new();
    let mut strat = ProximityChoice::two_choice(None).with_recorder(&rec);
    let mut rng = SmallRng::seed_from_u64(43);
    simulate(&net, &mut strat, requests, &mut rng);
    let snap = rec.snapshot();
    assert_eq!(snap.path_count(SamplerPath::IndexSample), requests);
}
