//! Consistent-hashing (DHT) placement.
//!
//! The paper's §VI notes that "cache content placement at each server can
//! be implemented via efficient Distributed Hash Table (DHT) schemes
//! (see, e.g., \[29\] and \[30\])" — Karger et al.'s consistent hashing and
//! replica placement over it. This crate provides that substrate:
//!
//! * [`HashRing`] — a classic consistent-hash ring over the `u64` key
//!   space with virtual nodes, O(log V) successor lookup, k-distinct-
//!   successor replication, and the minimal-disruption property on
//!   membership change (tested, not just asserted);
//! * [`dht_placement`] — deterministic cache placement for a
//!   [`paba_core::CacheNetwork`]: each file lands on the `R_j` distinct
//!   successors of its key, with per-file replication either fixed or
//!   proportional to popularity (the DHT analogue of the paper's
//!   proportional placement).
//!
//! Unlike the paper's i.i.d. placement, DHT placement is *deterministic
//! given the ring*, reproducible across nodes without coordination, and
//! adapts to churn with minimal movement — the properties that make the
//! scheme deployable. The `ablation_design` bench compares both under
//! Strategy I/II.

pub mod placement;
pub mod ring;

pub use placement::{dht_placement, DhtPlacementConfig, ReplicationRule};
pub use ring::HashRing;
