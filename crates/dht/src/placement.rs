//! DHT-driven cache placement for a cache network.
//!
//! Each file's key is hashed onto the ring and the file is cached at its
//! `R_j` distinct successor servers. Replication is either uniform
//! (`R_j = R`) or proportional to popularity — the deterministic analogue
//! of the paper's proportional placement: `R_j ∝ p_j`, normalized so the
//! total number of placed copies matches a target slot budget `n·M`.

use crate::ring::HashRing;
use paba_core::{Library, Placement};
use paba_popularity::FileId;

/// How many replicas each file receives.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ReplicationRule {
    /// Every file gets exactly `r` replicas.
    Fixed(u32),
    /// File `j` gets `max(1, round(n·M·p_j))` replicas — proportional to
    /// popularity under a total budget of `n·M` copies.
    Proportional {
        /// Per-server cache size the budget is derived from.
        m: u32,
    },
}

/// Configuration for [`dht_placement`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DhtPlacementConfig {
    /// Virtual nodes per server (128 is a good default).
    pub vnodes: u32,
    /// Ring salt (vary per experiment run).
    pub salt: u64,
    /// Replication rule.
    pub rule: ReplicationRule,
}

impl Default for DhtPlacementConfig {
    fn default() -> Self {
        Self {
            vnodes: 128,
            salt: 0,
            rule: ReplicationRule::Fixed(3),
        }
    }
}

/// Compute a deterministic DHT placement for `n` servers over `library`.
///
/// Returns a [`Placement`] whose nominal cache size `M` is the *largest
/// realized* per-node distinct count (so `Placement::m()` reflects the
/// actual worst-case cache usage, which DHT placement does not bound a
/// priori the way i.i.d. placement does).
///
/// # Panics
/// If a `Fixed(r)` rule requests more replicas than servers.
pub fn dht_placement(n: u32, library: &Library, cfg: &DhtPlacementConfig) -> Placement {
    let k = library.k();
    let ring = HashRing::new(n, cfg.vnodes, cfg.salt);
    let mut lists: Vec<Vec<FileId>> = vec![Vec::new(); n as usize];
    for f in 0..k {
        let replicas = match cfg.rule {
            ReplicationRule::Fixed(r) => {
                assert!(r <= n, "Fixed({r}) replicas exceed {n} servers");
                r
            }
            ReplicationRule::Proportional { m } => {
                let budget = n as f64 * m as f64;
                ((budget * library.probability(f)).round() as u32).clamp(1, n)
            }
        };
        for server in ring.lookup_replicas(f as u64, replicas as usize) {
            lists[server as usize].push(f);
        }
    }
    let realized_m = lists.iter().map(|l| l.len()).max().unwrap_or(0).max(1) as u32;
    Placement::from_node_files(n, k, realized_m, lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_popularity::Popularity;

    fn library(k: u32) -> Library {
        Library::new(k, Popularity::Uniform)
    }

    #[test]
    fn fixed_rule_gives_exact_replica_counts() {
        let lib = library(50);
        let p = dht_placement(
            30,
            &lib,
            &DhtPlacementConfig {
                vnodes: 64,
                salt: 3,
                rule: ReplicationRule::Fixed(4),
            },
        );
        for f in 0..50 {
            assert_eq!(p.replica_count(f), 4, "file {f}");
        }
        assert_eq!(p.uncached_files(), 0);
    }

    #[test]
    fn deterministic_given_salt() {
        let lib = library(40);
        let cfg = DhtPlacementConfig {
            vnodes: 32,
            salt: 9,
            rule: ReplicationRule::Fixed(3),
        };
        let a = dht_placement(20, &lib, &cfg);
        let b = dht_placement(20, &lib, &cfg);
        for u in 0..20 {
            assert_eq!(a.node_files(u), b.node_files(u));
        }
        let c = dht_placement(20, &lib, &DhtPlacementConfig { salt: 10, ..cfg });
        let same = (0..20).all(|u| a.node_files(u) == c.node_files(u));
        assert!(!same, "different salt should relocate files");
    }

    #[test]
    fn proportional_rule_tracks_popularity() {
        let lib = Library::new(100, Popularity::zipf(1.2));
        let p = dht_placement(
            400,
            &lib,
            &DhtPlacementConfig {
                vnodes: 64,
                salt: 1,
                rule: ReplicationRule::Proportional { m: 2 },
            },
        );
        // Most popular file ≈ round(n·M·p_0); every file ≥ 1 replica.
        let expect0 = (800.0 * lib.probability(0)).round() as u32;
        assert_eq!(p.replica_count(0), expect0.clamp(1, 400));
        assert!(p.replica_count(0) > 10 * p.replica_count(99).max(1) / 2);
        for f in 0..100 {
            assert!(p.replica_count(f) >= 1, "file {f} uncached");
        }
        assert_eq!(p.uncached_files(), 0);
    }

    #[test]
    fn load_is_spread_across_servers() {
        // With uniform popularity and enough files, per-server cache
        // occupancy should concentrate around K·R/n.
        let lib = library(600);
        let n = 60u32;
        let p = dht_placement(
            n,
            &lib,
            &DhtPlacementConfig {
                vnodes: 128,
                salt: 5,
                rule: ReplicationRule::Fixed(3),
            },
        );
        let expect = 600.0 * 3.0 / n as f64;
        for u in 0..n {
            let t = p.t_u(u) as f64;
            assert!(
                t > 0.3 * expect && t < 2.5 * expect,
                "server {u} holds {t} files vs expected {expect}"
            );
        }
    }

    #[test]
    fn works_as_cache_network_placement() {
        use paba_core::{simulate, CacheNetwork, NearestReplica};
        use paba_topology::Torus;
        use rand::SeedableRng;
        let lib = library(64);
        let placement = dht_placement(
            256,
            &lib,
            &DhtPlacementConfig {
                vnodes: 64,
                salt: 2,
                rule: ReplicationRule::Fixed(4),
            },
        );
        let net = CacheNetwork::from_parts(Torus::new(16), lib, placement);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut s = NearestReplica::new();
        let rep = simulate(&net, &mut s, 256, &mut rng);
        assert!(rep.check_conservation());
        assert!(rep.max_load() >= 1);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn fixed_rule_rejects_oversized_replication() {
        let lib = library(5);
        let _ = dht_placement(
            3,
            &lib,
            &DhtPlacementConfig {
                vnodes: 8,
                salt: 0,
                rule: ReplicationRule::Fixed(4),
            },
        );
    }
}
