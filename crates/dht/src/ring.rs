//! The consistent-hash ring (Karger et al., STOC 1997 — the paper's \[30\]).
//!
//! Servers own `V` *virtual nodes* each, hashed onto the `u64` ring; a key
//! is served by the server owning the first virtual node at or after the
//! key's hash (wrapping). Virtual nodes smooth the per-server arc length
//! to `Θ(1/n)` with relative deviation `O(1/√V)`, and membership changes
//! move only the keys in the arcs adjacent to the joining/leaving server —
//! the *minimal disruption* property that motivates DHTs for cache
//! networks.

use paba_util::{mix64, mix_seed};

/// A consistent-hash ring over servers `0..n` with `V` virtual nodes each.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// Sorted `(position, server)` pairs.
    points: Vec<(u64, u32)>,
    vnodes: u32,
    salt: u64,
}

impl HashRing {
    /// Build a ring for servers `0..n` with `vnodes` virtual nodes each.
    /// `salt` varies the whole layout (e.g. per-experiment).
    ///
    /// # Panics
    /// If `n == 0` or `vnodes == 0`.
    pub fn new(n: u32, vnodes: u32, salt: u64) -> Self {
        assert!(n > 0, "ring needs at least one server");
        assert!(vnodes > 0, "need at least one virtual node per server");
        let mut points = Vec::with_capacity(n as usize * vnodes as usize);
        for server in 0..n {
            for v in 0..vnodes {
                points.push((Self::vnode_hash(server, v, salt), server));
            }
        }
        points.sort_unstable();
        // Hash collisions across distinct (server, vnode) pairs are
        // astronomically unlikely (64-bit, ≤ 2^26 points) but would make
        // ownership ambiguous; dedupe keeps the first owner.
        points.dedup_by_key(|p| p.0);
        Self {
            points,
            vnodes,
            salt,
        }
    }

    #[inline]
    fn vnode_hash(server: u32, vnode: u32, salt: u64) -> u64 {
        mix_seed(salt, ((server as u64) << 32) | vnode as u64)
    }

    /// Hash an arbitrary key onto the ring.
    #[inline]
    pub fn key_position(&self, key: u64) -> u64 {
        mix64(key ^ self.salt.rotate_left(17))
    }

    /// Number of distinct servers on the ring.
    pub fn server_count(&self) -> u32 {
        let mut seen: Vec<u32> = self.points.iter().map(|&(_, s)| s).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len() as u32
    }

    /// Virtual nodes per server.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The server owning `key`: the successor virtual node of the key's
    /// ring position (wrapping past the top of the key space).
    pub fn lookup(&self, key: u64) -> u32 {
        let pos = self.key_position(key);
        let idx = self.points.partition_point(|&(p, _)| p < pos);
        let idx = if idx == self.points.len() { 0 } else { idx };
        self.points[idx].1
    }

    /// The first `k` *distinct* servers at or after `key`'s position —
    /// the replica set in successor-list replication (the paper's \[29\]).
    /// Returns fewer than `k` only if the ring has fewer distinct servers.
    pub fn lookup_replicas(&self, key: u64, k: usize) -> Vec<u32> {
        let pos = self.key_position(key);
        let start = self.points.partition_point(|&(p, _)| p < pos);
        let mut out: Vec<u32> = Vec::with_capacity(k);
        for i in 0..self.points.len() {
            let (_, server) = self.points[(start + i) % self.points.len()];
            if !out.contains(&server) {
                out.push(server);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// A new ring with server `gone` removed (its arcs fall to their
    /// successors; everyone else's assignments are untouched).
    ///
    /// # Panics
    /// If removing `gone` would empty the ring.
    pub fn without_server(&self, gone: u32) -> Self {
        let points: Vec<(u64, u32)> = self
            .points
            .iter()
            .copied()
            .filter(|&(_, s)| s != gone)
            .collect();
        assert!(!points.is_empty(), "cannot remove the last server");
        Self {
            points,
            vnodes: self.vnodes,
            salt: self.salt,
        }
    }

    /// A new ring with server `added` joined: its `V` virtual nodes claim
    /// the arcs immediately before them, and no key whose owner is not
    /// `added` afterwards changes hands. Exact inverse of
    /// [`HashRing::without_server`] — the result is point-for-point the
    /// ring [`HashRing::new`] would build with `added` present (equal
    /// hash positions keep the smaller server id, matching `new`'s
    /// sort-then-dedup order).
    ///
    /// # Panics
    /// If `added` already owns points on the ring.
    pub fn with_server(&self, added: u32) -> Self {
        assert!(
            !self.points.iter().any(|&(_, s)| s == added),
            "server {added} is already on the ring"
        );
        let mut points = self.points.clone();
        points.reserve(self.vnodes as usize);
        for v in 0..self.vnodes {
            points.push((Self::vnode_hash(added, v, self.salt), added));
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);
        Self {
            points,
            vnodes: self.vnodes,
            salt: self.salt,
        }
    }

    /// Fraction of `keys` whose owner differs between `self` and `other`
    /// — the disruption metric of consistent hashing.
    pub fn disruption(&self, other: &HashRing, keys: impl Iterator<Item = u64>) -> f64 {
        let mut moved = 0u64;
        let mut total = 0u64;
        for key in keys {
            total += 1;
            if self.lookup(key) != other.lookup(key) {
                moved += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            moved as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_deterministic_and_in_range() {
        let ring = HashRing::new(16, 32, 7);
        for key in 0..1000u64 {
            let a = ring.lookup(key);
            assert_eq!(a, ring.lookup(key));
            assert!(a < 16);
        }
    }

    #[test]
    fn replicas_are_distinct_and_lead_with_owner() {
        let ring = HashRing::new(10, 16, 3);
        for key in 0..200u64 {
            let reps = ring.lookup_replicas(key, 4);
            assert_eq!(reps.len(), 4);
            assert_eq!(reps[0], ring.lookup(key), "first replica is the owner");
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "replicas must be distinct");
        }
    }

    #[test]
    fn replicas_capped_by_server_count() {
        let ring = HashRing::new(3, 8, 1);
        let reps = ring.lookup_replicas(42, 10);
        assert_eq!(reps.len(), 3);
    }

    #[test]
    fn keys_spread_evenly_with_many_vnodes() {
        let n = 20u32;
        let ring = HashRing::new(n, 128, 11);
        let mut counts = vec![0u32; n as usize];
        let keys = 40_000u64;
        for key in 0..keys {
            counts[ring.lookup(key) as usize] += 1;
        }
        let expect = keys as f64 / n as f64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > 0.55 * expect && (c as f64) < 1.6 * expect,
                "server {s} owns {c} keys vs expected {expect} — imbalance too high"
            );
        }
    }

    #[test]
    fn fewer_vnodes_means_worse_balance() {
        let n = 20u32;
        let spread = |vnodes: u32| -> f64 {
            let ring = HashRing::new(n, vnodes, 5);
            let mut counts = vec![0u32; n as usize];
            for key in 0..20_000u64 {
                counts[ring.lookup(key) as usize] += 1;
            }
            let max = *counts.iter().max().unwrap() as f64;
            let min = *counts.iter().min().unwrap() as f64;
            max / min.max(1.0)
        };
        assert!(spread(1) > spread(256), "vnodes must smooth the ring");
    }

    #[test]
    fn minimal_disruption_on_leave() {
        // Removing one of n servers must move ≈ 1/n of keys — and never
        // reassign a key whose owner survives.
        let n = 25u32;
        let ring = HashRing::new(n, 64, 9);
        let gone = 7u32;
        let smaller = ring.without_server(gone);
        let keys = 20_000u64;
        let mut moved = 0u64;
        for key in 0..keys {
            let before = ring.lookup(key);
            let after = smaller.lookup(key);
            if before == after {
                continue;
            }
            assert_eq!(before, gone, "key moved although its owner survived");
            moved += 1;
        }
        let frac = moved as f64 / keys as f64;
        let expect = 1.0 / n as f64;
        assert!(
            frac > 0.3 * expect && frac < 3.0 * expect,
            "disruption {frac:.4} should be ≈ 1/n = {expect:.4}"
        );
        assert!((ring.disruption(&smaller, 0..keys) - frac).abs() < 1e-12);
    }

    #[test]
    fn join_is_inverse_of_leave() {
        // leave(s) then join(s) must reproduce the original ring exactly:
        // every lookup (and replica set) agrees on a large key sample.
        let ring = HashRing::new(12, 32, 13);
        let rejoined = ring.without_server(5).with_server(5);
        for key in 0..5_000u64 {
            assert_eq!(ring.lookup(key), rejoined.lookup(key), "key {key}");
            assert_eq!(
                ring.lookup_replicas(key, 3),
                rejoined.lookup_replicas(key, 3),
                "key {key}"
            );
        }
    }

    #[test]
    fn minimal_disruption_on_join() {
        // Joining an (n+1)-th server must move ≈ 1/(n+1) of keys — and
        // every moved key must move *to* the joiner.
        let ring = HashRing::new(24, 64, 17);
        let grown = ring.with_server(24);
        let keys = 20_000u64;
        let mut moved = 0u64;
        for key in 0..keys {
            let before = ring.lookup(key);
            let after = grown.lookup(key);
            if before == after {
                continue;
            }
            assert_eq!(after, 24, "key moved to a pre-existing server");
            moved += 1;
        }
        let frac = moved as f64 / keys as f64;
        let expect = 1.0 / 25.0;
        assert!(
            frac > 0.3 * expect && frac < 3.0 * expect,
            "disruption {frac:.4} should be ≈ 1/(n+1) = {expect:.4}"
        );
    }

    #[test]
    #[should_panic(expected = "already on the ring")]
    fn join_rejects_present_server() {
        let _ = HashRing::new(4, 8, 1).with_server(2);
    }

    #[test]
    fn different_salts_give_different_layouts() {
        let a = HashRing::new(8, 16, 1);
        let b = HashRing::new(8, 16, 2);
        let differing = (0..500u64).filter(|&k| a.lookup(k) != b.lookup(k)).count();
        assert!(
            differing > 100,
            "salt should reshuffle the ring ({differing})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_ring_panics() {
        let _ = HashRing::new(0, 4, 0);
    }
}
