//! Property tests for [`HashRing`] under *batched* churn.
//!
//! Two properties drive the churn engine's correctness:
//!
//! 1. **History independence** — the ring reached through any
//!    interleaving of joins and leaves depends only on the final
//!    membership set, not the path: lookups and k-distinct-successor
//!    sets equal those of a ring rebuilt from scratch for that set.
//! 2. **Minimal disruption** — across each step, a key changes hands
//!    only if its old owner left or its new owner just joined, and the
//!    moved fraction stays near the 1/|servers| ideal.

use paba_dht::HashRing;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const N: u32 = 24;
const VNODES: u32 = 64;
const SALT: u64 = 0x5EED;
const KEYS: u64 = 6_000;
const REPLICAS: usize = 3;

/// Canonical ring for an arbitrary membership subset: start from the
/// full ring and remove the absent servers in ascending order. Removal
/// is a pure point filter, so this is order-independent — the
/// "rebuilt from scratch" reference.
fn reference(members: &[bool]) -> HashRing {
    let mut ring = HashRing::new(N, VNODES, SALT);
    for s in 0..N {
        if !members[s as usize] {
            ring = ring.without_server(s);
        }
    }
    ring
}

fn assert_rings_equal(a: &HashRing, b: &HashRing, context: &str) {
    for key in 0..KEYS {
        assert_eq!(a.lookup(key), b.lookup(key), "{context}: key {key}");
        assert_eq!(
            a.lookup_replicas(key, REPLICAS),
            b.lookup_replicas(key, REPLICAS),
            "{context}: replica set of key {key}"
        );
    }
}

#[test]
fn any_interleaving_matches_rebuilt_ring() {
    for trial in 0u64..8 {
        let mut rng = SmallRng::seed_from_u64(40 + trial);
        let mut members = vec![true; N as usize];
        let mut live = N;
        let mut ring = HashRing::new(N, VNODES, SALT);
        for step in 0..40 {
            // Random join/leave keeping at least 4 servers alive.
            let down: Vec<u32> = (0..N).filter(|&s| !members[s as usize]).collect();
            let join = !down.is_empty() && (live <= 4 || rng.gen_bool(0.5));
            if join {
                let s = down[rng.gen_range(0..down.len())];
                ring = ring.with_server(s);
                members[s as usize] = true;
                live += 1;
            } else {
                let ups: Vec<u32> = (0..N).filter(|&s| members[s as usize]).collect();
                let s = ups[rng.gen_range(0..ups.len())];
                ring = ring.without_server(s);
                members[s as usize] = false;
                live -= 1;
            }
            assert_rings_equal(
                &ring,
                &reference(&members),
                &format!("trial {trial} step {step}"),
            );
        }
    }
}

#[test]
fn each_step_moves_only_keys_touching_the_churned_server() {
    let mut rng = SmallRng::seed_from_u64(99);
    let mut members = vec![true; N as usize];
    let mut live = N;
    let mut ring = HashRing::new(N, VNODES, SALT);
    for step in 0..60 {
        let down: Vec<u32> = (0..N).filter(|&s| !members[s as usize]).collect();
        let join = !down.is_empty() && (live <= 4 || rng.gen_bool(0.5));
        let (next, churned) = if join {
            let s = down[rng.gen_range(0..down.len())];
            (ring.with_server(s), s)
        } else {
            let ups: Vec<u32> = (0..N).filter(|&s| members[s as usize]).collect();
            let s = ups[rng.gen_range(0..ups.len())];
            (ring.without_server(s), s)
        };
        let mut moved = 0u64;
        for key in 0..KEYS {
            let before = ring.lookup(key);
            let after = next.lookup(key);
            if before == after {
                continue;
            }
            moved += 1;
            if join {
                assert_eq!(
                    after, churned,
                    "step {step}: key {key} moved to a bystander"
                );
            } else {
                assert_eq!(
                    before, churned,
                    "step {step}: key {key} moved although its owner survived"
                );
            }
        }
        // Quantitative minimal disruption: ≈ 1/(live servers after a
        // join, live before a leave) of keys move; allow wide MC slack.
        let pool = if join { live + 1 } else { live } as f64;
        let frac = moved as f64 / KEYS as f64;
        assert!(
            frac < 4.0 / pool,
            "step {step}: moved fraction {frac:.4} ≫ 1/{pool}"
        );
        assert!(
            (ring.disruption(&next, 0..KEYS) - frac).abs() < 1e-12,
            "disruption() disagrees with the hand count"
        );
        ring = next;
        members[churned as usize] = !members[churned as usize];
        live = if join { live + 1 } else { live - 1 };
    }
}
