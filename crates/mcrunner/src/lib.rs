//! Deterministic parallel Monte-Carlo execution.
//!
//! The paper's figures average hundreds to tens of thousands of
//! independent simulation runs per data point. This crate runs those
//! replications across threads with one hard guarantee: **the result is a
//! pure function of `(master_seed, run_index)`** — never of thread count
//! or scheduling. Two design rules deliver that:
//!
//! 1. every run gets its own RNG seeded via
//!    [`paba_util::split_seed`]`(master_seed, run_index)`;
//! 2. per-run outputs are collected *by run index* and folded
//!    sequentially, so floating-point accumulation order is fixed.
//!
//! Work is distributed by an atomic work-stealing counter over
//! `std::thread::scope` scoped threads (no executor dependency, no
//! unsafety).
//!
//! ```
//! use paba_mcrunner::run_parallel;
//! use rand::Rng;
//!
//! // 100 runs of a toy experiment, any thread count → same outputs.
//! let a = run_parallel(100, 42, Some(1), |_idx, rng| rng.gen::<u64>());
//! let b = run_parallel(100, 42, Some(4), |_idx, rng| rng.gen::<u64>());
//! assert_eq!(a, b);
//! ```

pub mod live;
pub mod progress;
pub mod runner;
pub mod sweep;
pub mod traced;

pub use live::{run_parallel_live, LiveRun};
pub use progress::Progress;
pub use runner::{run_parallel, run_parallel_with_progress, run_parallel_with_state, summarize};
pub use sweep::{sweep, sweep_summaries, PointSummary, SweepOutcome};
pub use traced::run_parallel_traced;
