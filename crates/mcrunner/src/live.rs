//! Live observability handle for in-flight parallel runs.
//!
//! The per-thread recorder pattern of [`run_parallel_with_state`] is
//! ideal for post-join merging but invisible mid-run: each worker's
//! recorder is private until it joins. [`LiveRun`] inverts that for the
//! `--serve-metrics` path: every strided worker shares **one**
//! [`AtomicRecorder`] (its counters are relaxed atomics, so concurrent
//! recording is lossless and [`AtomicRecorder::snapshot`] is safe while
//! writers are still running) plus one [`Progress`] tracker, and the
//! scrape thread renders both into a Prometheus page on demand.
//!
//! Sharing one recorder instead of per-thread instances trades a little
//! cache-line contention for mid-run visibility — acceptable for an
//! explicitly opted-in observability mode, and irrelevant to the
//! `NullRecorder` fast path, which never constructs a `LiveRun`.

use std::sync::Arc;

use rand::rngs::SmallRng;

use paba_telemetry::serve::{render_metrics, ProgressView};
use paba_telemetry::{alloc, AtomicRecorder};

use crate::progress::Progress;
use crate::runner::run_parallel_with_state;

/// Shared state of one live-observable run: a recorder every worker
/// feeds and a progress tracker. Cheap to clone (two `Arc`s) so the
/// scrape thread's render closure can own a handle.
#[derive(Clone, Debug)]
pub struct LiveRun {
    /// The recorder all strided workers share.
    pub recorder: Arc<AtomicRecorder>,
    /// Completed-run tracker (also drives the stderr progress lines).
    pub progress: Arc<Progress>,
}

impl LiveRun {
    /// Fresh handle for `total` work units; `verbose` enables the usual
    /// stderr progress lines alongside the scrape endpoint.
    pub fn new(total: u64, verbose: bool) -> Self {
        Self {
            recorder: Arc::new(AtomicRecorder::new()),
            progress: Arc::new(Progress::new(total, verbose)),
        }
    }

    /// Plain-data progress view for the metrics renderer.
    pub fn progress_view(&self) -> ProgressView {
        ProgressView {
            completed: self.progress.completed(),
            total: self.progress.total(),
            elapsed_s: self.progress.elapsed().as_secs_f64(),
            rate: self.progress.rate(),
            eta_s: self.progress.eta_seconds(),
        }
    }

    /// Render the full Prometheus page: live recorder snapshot, progress,
    /// and allocator stats when the counting allocator is installed.
    pub fn render_metrics(&self) -> String {
        render_metrics(
            &self.recorder.snapshot(),
            Some(&self.progress_view()),
            alloc::snapshot().as_ref(),
        )
    }
}

/// [`run_parallel_with_state`] over a shared live recorder: every worker
/// records into `live.recorder` and ticks `live.progress`; outputs come
/// back in run-index order with the usual `(master_seed, run_index)`
/// determinism.
pub fn run_parallel_live<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    live: &LiveRun,
    run_fn: F,
) -> Vec<O>
where
    O: Send,
    F: Fn(&AtomicRecorder, usize, &mut SmallRng) -> O + Sync,
{
    let (outputs, _states) = run_parallel_with_state(
        runs,
        master_seed,
        threads,
        Some(live.progress.as_ref()),
        || Arc::clone(&live.recorder),
        |rec, i, rng| run_fn(rec, i, rng),
    );
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_telemetry::{Recorder, SamplerPath, Stage};
    use rand::Rng;

    #[test]
    fn workers_share_one_recorder_and_tick_progress() {
        let live = LiveRun::new(40, false);
        let out = run_parallel_live(40, 11, Some(4), &live, |rec, i, rng| {
            for _ in 0..10 {
                rec.path(SamplerPath::Windowed);
            }
            rec.span_ns(Stage::AssignLoop, rng.gen_range(1..1000));
            i
        });
        assert_eq!(out, (0..40).collect::<Vec<_>>());
        assert_eq!(live.progress.completed(), 40);
        let snap = live.recorder.snapshot();
        assert_eq!(snap.path_count(SamplerPath::Windowed), 400);
        assert_eq!(snap.span(Stage::AssignLoop).count, 40);
    }

    #[test]
    fn outputs_deterministic_across_thread_counts() {
        let run = |threads: usize| {
            let live = LiveRun::new(30, false);
            run_parallel_live(30, 77, Some(threads), &live, |_rec, _i, rng| {
                rng.gen::<u64>()
            })
        };
        let t1 = run(1);
        assert_eq!(t1, run(3));
        assert_eq!(t1, run(8));
    }

    #[test]
    fn render_metrics_mid_run_is_safe_and_monotone() {
        let live = LiveRun::new(16, false);
        // Scrape concurrently with the workers — must not tear or panic.
        let pages = std::thread::scope(|s| {
            let scraper = {
                let live = live.clone();
                s.spawn(move || {
                    let mut pages = Vec::new();
                    for _ in 0..20 {
                        pages.push(live.render_metrics());
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    pages
                })
            };
            let _ = run_parallel_live(16, 5, Some(4), &live, |rec, i, _rng| {
                for _ in 0..500 {
                    rec.path(SamplerPath::RejectionBall);
                }
                i
            });
            scraper.join().unwrap()
        });
        let totals: Vec<u64> = pages
            .iter()
            .map(|p| {
                p.lines()
                    .find(|l| l.starts_with("paba_requests_total "))
                    .and_then(|l| l.rsplit(' ').next())
                    .and_then(|v| v.parse().ok())
                    .unwrap()
            })
            .collect();
        assert!(totals.windows(2).all(|w| w[1] >= w[0]), "{totals:?}");
        let final_page = live.render_metrics();
        assert!(final_page.contains("paba_requests_total 8000"));
        assert!(final_page.contains("paba_progress_completed_runs 16"));
        assert!(final_page.contains("paba_progress_total_runs 16"));
    }
}
