//! Lightweight progress reporting for long experiment sweeps.
//!
//! Long benches (Figure 3 sweeps to n = 1.2·10⁵) should tell the user they
//! are alive. [`Progress`] is a shared atomic counter that prints a line to
//! stderr every ~10% of completed work — cheap enough to tick from every
//! worker thread.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared completed-work counter with optional stderr reporting.
#[derive(Debug)]
pub struct Progress {
    total: u64,
    completed: AtomicU64,
    /// Next decile to announce (×10%); u64::MAX disables printing.
    next_announce: AtomicU64,
}

impl Progress {
    /// Tracker for `total` units; `verbose` enables stderr lines.
    pub fn new(total: u64, verbose: bool) -> Self {
        Self {
            total: total.max(1),
            completed: AtomicU64::new(0),
            next_announce: AtomicU64::new(if verbose { 1 } else { u64::MAX }),
        }
    }

    /// Record one completed unit.
    pub fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let decile = done * 10 / self.total;
        let next = self.next_announce.load(Ordering::Relaxed);
        if decile >= next
            && self
                .next_announce
                .compare_exchange(next, decile + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            eprintln!(
                "  … {done}/{} runs ({}%)",
                self.total,
                done * 100 / self.total
            );
        }
    }

    /// Units completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Total units.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks() {
        let p = Progress::new(10, false);
        for _ in 0..7 {
            p.tick();
        }
        assert_eq!(p.completed(), 7);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn zero_total_clamped() {
        let p = Progress::new(0, false);
        p.tick(); // must not divide by zero
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn concurrent_ticks_all_counted() {
        let p = Progress::new(1000, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        p.tick();
                    }
                });
            }
        });
        assert_eq!(p.completed(), 1000);
    }
}
