//! Lightweight progress reporting for long experiment sweeps.
//!
//! Long benches (Figure 3 sweeps to n = 1.2·10⁵) should tell the user they
//! are alive. [`Progress`] is a shared atomic counter that prints a line to
//! stderr every ~10% of completed work — cheap enough to tick from every
//! worker thread. Each announce line also reports elapsed wall time, the
//! completion rate in units/s, and an ETA for the remaining work.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Shared completed-work counter with optional stderr reporting.
#[derive(Debug)]
pub struct Progress {
    total: u64,
    completed: AtomicU64,
    /// Next decile to announce (×10%); u64::MAX disables printing.
    next_announce: AtomicU64,
    start: Instant,
}

impl Progress {
    /// Tracker for `total` units; `verbose` enables stderr lines.
    pub fn new(total: u64, verbose: bool) -> Self {
        Self {
            total: total.max(1),
            completed: AtomicU64::new(0),
            next_announce: AtomicU64::new(if verbose { 1 } else { u64::MAX }),
            start: Instant::now(),
        }
    }

    /// Record one completed unit.
    pub fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        let decile = done * 10 / self.total;
        let next = self.next_announce.load(Ordering::Relaxed);
        if decile >= next
            && self
                .next_announce
                .compare_exchange(next, decile + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            let elapsed = self.elapsed().as_secs_f64();
            eprintln!("{}", announce_line(done, self.total, elapsed, self.rate()));
        }
    }

    /// Units completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Total units.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Wall time since the tracker was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Completion rate in units/s (0.0 until any work completes or any
    /// measurable time elapses).
    pub fn rate(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.completed() as f64 / secs
    }

    /// Estimated seconds until completion, `None` until a rate is known.
    pub fn eta_seconds(&self) -> Option<f64> {
        let rate = self.rate();
        if rate <= 0.0 {
            return None;
        }
        Some(self.total.saturating_sub(self.completed()) as f64 / rate)
    }
}

/// Format one announce line. Pure so tests can pin the exact output.
///
/// A first announce can land with zero measurable elapsed time (`rate`
/// 0.0, or non-finite if a caller divides by zero elapsed themselves);
/// the rate/ETA segment is printed only when both are positive finite
/// numbers, so `inf`/`NaN` never reach the terminal.
fn announce_line(done: u64, total: u64, elapsed_s: f64, rate: f64) -> String {
    let total = total.max(1);
    let pct = done * 100 / total;
    if rate.is_finite() && rate > 0.0 {
        let eta = total.saturating_sub(done) as f64 / rate;
        if eta.is_finite() {
            return format!(
                "  … {done}/{total} runs ({pct}%) | {elapsed_s:.1}s elapsed | {rate:.1} runs/s | ETA {eta:.1}s"
            );
        }
    }
    format!("  … {done}/{total} runs ({pct}%) | {elapsed_s:.1}s elapsed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks() {
        let p = Progress::new(10, false);
        for _ in 0..7 {
            p.tick();
        }
        assert_eq!(p.completed(), 7);
        assert_eq!(p.total(), 10);
    }

    #[test]
    fn zero_total_clamped() {
        let p = Progress::new(0, false);
        p.tick(); // must not divide by zero
        assert_eq!(p.completed(), 1);
    }

    #[test]
    fn concurrent_ticks_all_counted() {
        let p = Progress::new(1000, false);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..250 {
                        p.tick();
                    }
                });
            }
        });
        assert_eq!(p.completed(), 1000);
    }

    #[test]
    fn rate_and_eta_after_work() {
        let p = Progress::new(100, false);
        assert_eq!(p.completed(), 0);
        for _ in 0..50 {
            p.tick();
        }
        // Some wall time has necessarily elapsed by now.
        std::thread::sleep(Duration::from_millis(2));
        let rate = p.rate();
        assert!(rate > 0.0, "rate should be positive after 50 ticks");
        let eta = p.eta_seconds().expect("eta known once rate is positive");
        assert!(eta >= 0.0);
        // ETA ≈ remaining / rate by definition.
        let expected = 50.0 / rate;
        assert!((eta - expected).abs() / expected < 0.5);
    }

    #[test]
    fn eta_none_before_any_work() {
        let p = Progress::new(10, false);
        assert_eq!(p.rate(), 0.0);
        assert!(p.eta_seconds().is_none());
    }

    #[test]
    fn announce_line_pins_both_formats() {
        assert_eq!(
            announce_line(5, 10, 2.0, 2.5),
            "  … 5/10 runs (50%) | 2.0s elapsed | 2.5 runs/s | ETA 2.0s"
        );
        assert_eq!(
            announce_line(1, 10, 0.0, 0.0),
            "  … 1/10 runs (10%) | 0.0s elapsed"
        );
    }

    #[test]
    fn announce_line_guards_non_finite_rates() {
        // Zero-elapsed first announce: a naive rate = done/elapsed would
        // be inf (or NaN at 0/0); the line must fall back to the short
        // form rather than print them.
        for bad in [f64::INFINITY, f64::NAN, -1.0] {
            assert_eq!(
                announce_line(1, 10, 0.0, bad),
                "  … 1/10 runs (10%) | 0.0s elapsed",
                "rate={bad}"
            );
        }
        assert_eq!(
            announce_line(0, 10, 0.0, f64::MIN_POSITIVE),
            "  … 0/10 runs (0%) | 0.0s elapsed",
            "overflowing ETA falls back to the short form"
        );
    }

    #[test]
    fn ticks_beyond_total_do_not_underflow() {
        let p = Progress::new(2, false);
        for _ in 0..5 {
            p.tick();
        }
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(p.eta_seconds(), Some(0.0));
    }
}
