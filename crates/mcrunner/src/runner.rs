//! The core parallel runner.

use crate::progress::Progress;
use paba_util::{split_seed, OnlineStats, Summary};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Execute `runs` independent runs of `run_fn` in parallel and return the
/// outputs **in run-index order**.
///
/// * `run_fn(run_index, rng)` receives an RNG deterministically derived
///   from `(master_seed, run_index)`.
/// * `threads = None` uses available parallelism (capped at `runs`).
///
/// Panics in `run_fn` propagate to the caller (via the scoped join).
pub fn run_parallel<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    run_fn: F,
) -> Vec<O>
where
    O: Send,
    F: Fn(usize, &mut SmallRng) -> O + Sync,
{
    run_parallel_with_progress(runs, master_seed, threads, None, run_fn)
}

/// [`run_parallel`] with an optional shared [`Progress`] tracker that is
/// ticked once per completed run.
pub fn run_parallel_with_progress<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    progress: Option<&Progress>,
    run_fn: F,
) -> Vec<O>
where
    O: Send,
    F: Fn(usize, &mut SmallRng) -> O + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let n_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(runs);

    if n_threads == 1 {
        // Fast single-threaded path (also keeps tests easy to reason about).
        let mut out = Vec::with_capacity(runs);
        for i in 0..runs {
            let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
            out.push(run_fn(i, &mut rng));
            if let Some(p) = progress {
                p.tick();
            }
        }
        return out;
    }

    // Lock-free collection: thread `t` owns the strided index set
    // {t, t + T, t + 2T, …} and appends into its private output vector, so
    // workers never contend on a shared lock. Striding (rather than
    // contiguous chunks) keeps the load balanced when run costs vary
    // systematically with the index, as in flattened sweep grids. Results
    // are interleaved back into run order afterwards; determinism is
    // untouched because each run's RNG depends only on
    // `(master_seed, run_index)`.
    let per_thread: Vec<Vec<O>> = std::thread::scope(|scope| {
        let run_fn = &run_fn;
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local: Vec<O> = Vec::with_capacity(runs.div_ceil(n_threads));
                    let mut i = t;
                    while i < runs {
                        let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
                        local.push(run_fn(i, &mut rng));
                        if let Some(p) = progress {
                            p.tick();
                        }
                        i += n_threads;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("a Monte-Carlo worker panicked"))
            })
            .collect()
    });

    let mut iters: Vec<std::vec::IntoIter<O>> =
        per_thread.into_iter().map(Vec::into_iter).collect();
    (0..runs)
        .map(|i| {
            iters[i % n_threads]
                .next()
                .unwrap_or_else(|| panic!("run {i} produced no output"))
        })
        .collect()
}

/// Fold an iterator of observations into a [`Summary`] with a fixed
/// (sequential) accumulation order.
pub fn summarize<I: IntoIterator<Item = f64>>(values: I) -> Summary {
    values.into_iter().collect::<OnlineStats>().summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn outputs_in_run_order() {
        let out = run_parallel(100, 7, Some(4), |i, _| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let f = |_i: usize, rng: &mut SmallRng| rng.gen_range(0..1_000_000u64);
        let t1 = run_parallel(257, 99, Some(1), f);
        let t3 = run_parallel(257, 99, Some(3), f);
        let t8 = run_parallel(257, 99, Some(8), f);
        assert_eq!(t1, t3);
        assert_eq!(t1, t8);
    }

    #[test]
    fn different_seeds_differ() {
        let f = |_i: usize, rng: &mut SmallRng| rng.gen::<u64>();
        assert_ne!(run_parallel(16, 1, None, f), run_parallel(16, 2, None, f));
    }

    #[test]
    fn each_run_sees_distinct_rng() {
        let outs = run_parallel(64, 5, Some(2), |_i, rng| rng.gen::<u64>());
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len(), "colliding run RNGs");
    }

    #[test]
    fn zero_runs() {
        let outs: Vec<u32> = run_parallel(0, 0, None, |_, _| 1);
        assert!(outs.is_empty());
    }

    #[test]
    fn run_index_passed_correctly() {
        let outs = run_parallel(50, 3, Some(4), |i, _| i);
        assert_eq!(outs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = run_parallel(8, 0, Some(2), |i, _| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn progress_ticks_once_per_run() {
        let p = Progress::new(120, false);
        let _ = run_parallel_with_progress(120, 1, Some(4), Some(&p), |i, _| i);
        assert_eq!(p.completed(), 120);
    }

    #[test]
    fn summarize_basic() {
        let s = summarize([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn heavy_output_type_works() {
        // Outputs with allocation (Vec) cross threads fine.
        let outs = run_parallel(20, 4, Some(4), |i, rng: &mut SmallRng| {
            (0..i).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>()
        });
        for (i, v) in outs.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }
}
