//! The core parallel runner.

use crate::progress::Progress;
use paba_util::{split_seed, OnlineStats, Summary};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Execute `runs` independent runs of `run_fn` in parallel and return the
/// outputs **in run-index order**.
///
/// * `run_fn(run_index, rng)` receives an RNG deterministically derived
///   from `(master_seed, run_index)`.
/// * `threads = None` uses available parallelism (capped at `runs`).
///
/// Panics in `run_fn` propagate to the caller (via the scoped join).
pub fn run_parallel<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    run_fn: F,
) -> Vec<O>
where
    O: Send,
    F: Fn(usize, &mut SmallRng) -> O + Sync,
{
    run_parallel_with_progress(runs, master_seed, threads, None, run_fn)
}

/// [`run_parallel`] with an optional shared [`Progress`] tracker that is
/// ticked once per completed run.
pub fn run_parallel_with_progress<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    progress: Option<&Progress>,
    run_fn: F,
) -> Vec<O>
where
    O: Send,
    F: Fn(usize, &mut SmallRng) -> O + Sync,
{
    if runs == 0 {
        return Vec::new();
    }
    let n_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(runs);

    if n_threads == 1 {
        // Fast single-threaded path (also keeps tests easy to reason about).
        let mut out = Vec::with_capacity(runs);
        for i in 0..runs {
            let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
            out.push(run_fn(i, &mut rng));
            if let Some(p) = progress {
                p.tick();
            }
        }
        return out;
    }

    // Lock-free collection: thread `t` owns the strided index set
    // {t, t + T, t + 2T, …} and appends into its private output vector, so
    // workers never contend on a shared lock. Striding (rather than
    // contiguous chunks) keeps the load balanced when run costs vary
    // systematically with the index, as in flattened sweep grids. Results
    // are interleaved back into run order afterwards; determinism is
    // untouched because each run's RNG depends only on
    // `(master_seed, run_index)`.
    let per_thread: Vec<Vec<O>> = std::thread::scope(|scope| {
        let run_fn = &run_fn;
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut local: Vec<O> = Vec::with_capacity(runs.div_ceil(n_threads));
                    let mut i = t;
                    while i < runs {
                        let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
                        local.push(run_fn(i, &mut rng));
                        if let Some(p) = progress {
                            p.tick();
                        }
                        i += n_threads;
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("a Monte-Carlo worker panicked"))
            })
            .collect()
    });

    let mut iters: Vec<std::vec::IntoIter<O>> =
        per_thread.into_iter().map(Vec::into_iter).collect();
    (0..runs)
        .map(|i| {
            iters[i % n_threads]
                .next()
                .unwrap_or_else(|| panic!("run {i} produced no output"))
        })
        .collect()
}

/// [`run_parallel_with_progress`] variant giving each worker thread its
/// own state built by `init` — e.g. a telemetry recorder — returned
/// alongside the outputs for post-join merging.
///
/// Returns `(outputs, states)`: outputs in **run-index order** (exactly as
/// [`run_parallel`]), states one per effective worker thread in thread
/// order (a single state on the single-threaded path). Determinism of the
/// outputs is untouched — each run's RNG still depends only on
/// `(master_seed, run_index)` and the strided ownership pattern is reused
/// verbatim; the state is for side-channel accumulation whose merge must
/// be order-insensitive (which thread ran which runs *does* vary with the
/// thread count).
pub fn run_parallel_with_state<O, S, I, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    progress: Option<&Progress>,
    init: I,
    run_fn: F,
) -> (Vec<O>, Vec<S>)
where
    O: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&S, usize, &mut SmallRng) -> O + Sync,
{
    if runs == 0 {
        return (Vec::new(), Vec::new());
    }
    let n_threads = threads
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(runs);

    if n_threads == 1 {
        let state = init();
        let mut out = Vec::with_capacity(runs);
        for i in 0..runs {
            let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
            out.push(run_fn(&state, i, &mut rng));
            if let Some(p) = progress {
                p.tick();
            }
        }
        return (out, vec![state]);
    }

    // Same strided lock-free pattern as run_parallel_with_progress, with
    // each worker owning one state for its whole stride.
    let results: Vec<(Vec<O>, S)> = std::thread::scope(|scope| {
        let run_fn = &run_fn;
        let init = &init;
        let handles: Vec<_> = (0..n_threads)
            .map(|t| {
                scope.spawn(move || {
                    let state = init();
                    let mut local: Vec<O> = Vec::with_capacity(runs.div_ceil(n_threads));
                    let mut i = t;
                    while i < runs {
                        let mut rng = SmallRng::seed_from_u64(split_seed(master_seed, i as u64));
                        local.push(run_fn(&state, i, &mut rng));
                        if let Some(p) = progress {
                            p.tick();
                        }
                        i += n_threads;
                    }
                    (local, state)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| panic!("a Monte-Carlo worker panicked"))
            })
            .collect()
    });

    let (per_thread, states): (Vec<Vec<O>>, Vec<S>) = results.into_iter().unzip();
    let mut iters: Vec<std::vec::IntoIter<O>> =
        per_thread.into_iter().map(Vec::into_iter).collect();
    let outputs = (0..runs)
        .map(|i| {
            iters[i % n_threads]
                .next()
                .unwrap_or_else(|| panic!("run {i} produced no output"))
        })
        .collect();
    (outputs, states)
}

/// Fold an iterator of observations into a [`Summary`] with a fixed
/// (sequential) accumulation order.
pub fn summarize<I: IntoIterator<Item = f64>>(values: I) -> Summary {
    values.into_iter().collect::<OnlineStats>().summary()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn outputs_in_run_order() {
        let out = run_parallel(100, 7, Some(4), |i, _| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let f = |_i: usize, rng: &mut SmallRng| rng.gen_range(0..1_000_000u64);
        let t1 = run_parallel(257, 99, Some(1), f);
        let t3 = run_parallel(257, 99, Some(3), f);
        let t8 = run_parallel(257, 99, Some(8), f);
        assert_eq!(t1, t3);
        assert_eq!(t1, t8);
    }

    #[test]
    fn different_seeds_differ() {
        let f = |_i: usize, rng: &mut SmallRng| rng.gen::<u64>();
        assert_ne!(run_parallel(16, 1, None, f), run_parallel(16, 2, None, f));
    }

    #[test]
    fn each_run_sees_distinct_rng() {
        let outs = run_parallel(64, 5, Some(2), |_i, rng| rng.gen::<u64>());
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len(), "colliding run RNGs");
    }

    #[test]
    fn zero_runs() {
        let outs: Vec<u32> = run_parallel(0, 0, None, |_, _| 1);
        assert!(outs.is_empty());
    }

    #[test]
    fn run_index_passed_correctly() {
        let outs = run_parallel(50, 3, Some(4), |i, _| i);
        assert_eq!(outs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        let _ = run_parallel(8, 0, Some(2), |i, _| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn progress_ticks_once_per_run() {
        let p = Progress::new(120, false);
        let _ = run_parallel_with_progress(120, 1, Some(4), Some(&p), |i, _| i);
        assert_eq!(p.completed(), 120);
    }

    #[test]
    fn with_state_outputs_match_stateless_runner() {
        let f = |_i: usize, rng: &mut SmallRng| rng.gen_range(0..1_000_000u64);
        let plain = run_parallel(257, 99, Some(3), f);
        for threads in [1, 3, 8] {
            let (outs, states) = run_parallel_with_state(
                257,
                99,
                Some(threads),
                None,
                || (),
                |&(), i, rng| f(i, rng),
            );
            assert_eq!(outs, plain, "threads={threads}");
            assert_eq!(states.len(), threads.min(257));
        }
    }

    #[test]
    fn with_state_one_state_per_worker_thread() {
        use std::sync::atomic::{AtomicU64, Ordering};
        // Each worker accumulates its stride's run indices in its state;
        // the union across states must be exactly 0..runs.
        let (_, states) = run_parallel_with_state(
            100,
            7,
            Some(4),
            None,
            || AtomicU64::new(0),
            |state, i, _rng| {
                state.fetch_add(i as u64, Ordering::Relaxed);
            },
        );
        assert_eq!(states.len(), 4);
        let sum: u64 = states.iter().map(|s| s.load(Ordering::Relaxed)).sum();
        assert_eq!(sum, (0..100u64).sum());
    }

    #[test]
    fn with_state_zero_runs() {
        let (outs, states): (Vec<u32>, Vec<()>) =
            run_parallel_with_state(0, 0, None, None, || (), |&(), _, _| 1);
        assert!(outs.is_empty());
        assert!(states.is_empty());
    }

    #[test]
    fn with_state_ticks_progress() {
        let p = Progress::new(60, false);
        let _ = run_parallel_with_state(60, 1, Some(3), Some(&p), || (), |&(), i, _| i);
        assert_eq!(p.completed(), 60);
    }

    #[test]
    fn summarize_basic() {
        let s = summarize([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn heavy_output_type_works() {
        // Outputs with allocation (Vec) cross threads fine.
        let outs = run_parallel(20, 4, Some(4), |i, rng: &mut SmallRng| {
            (0..i).map(|_| rng.gen::<u8>()).collect::<Vec<u8>>()
        });
        for (i, v) in outs.iter().enumerate() {
            assert_eq!(v.len(), i);
        }
    }
}
