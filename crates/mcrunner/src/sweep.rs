//! Parameter sweeps: the figure-regeneration workhorse.
//!
//! Every paper figure is a sweep — "max load vs `n` for each cache size
//! `M`". [`sweep`] runs `runs_per_point` Monte-Carlo replications for each
//! parameter point, parallelizing across the **entire** `(point, run)`
//! grid so small points don't leave threads idle, while keeping results
//! grouped per point and deterministic in `(master_seed, point_index,
//! run_index)`.

use crate::progress::Progress;
use crate::runner::run_parallel_with_progress;
use paba_util::{mix_seed, Summary};
use rand::rngs::SmallRng;

/// Results of one sweep point: the parameter and its per-run outputs (in
/// run order).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepOutcome<P, O> {
    /// The parameter value of this point.
    pub param: P,
    /// One output per Monte-Carlo run.
    pub outputs: Vec<O>,
}

impl<P, O> SweepOutcome<P, O> {
    /// Summarize a scalar metric extracted from each output.
    pub fn summarize<F: FnMut(&O) -> f64>(&self, metric: F) -> Summary {
        crate::runner::summarize(self.outputs.iter().map(metric))
    }
}

/// Run `runs_per_point` replications of `run_fn` for every point.
///
/// `run_fn(param, run_index, rng)` gets an RNG derived from
/// `(master_seed, point_index, run_index)`: changing the thread count or
/// reordering points never changes any output.
pub fn sweep<P, O, F>(
    points: &[P],
    runs_per_point: usize,
    master_seed: u64,
    threads: Option<usize>,
    verbose: bool,
    run_fn: F,
) -> Vec<SweepOutcome<P, O>>
where
    P: Clone + Sync,
    O: Send,
    F: Fn(&P, usize, &mut SmallRng) -> O + Sync,
{
    let total = points.len() * runs_per_point;
    let progress = Progress::new(total as u64, verbose);
    // Flatten to a single work grid: job i ↦ (point i / runs, run i % runs).
    let flat: Vec<O> = run_parallel_with_progress(
        total,
        master_seed,
        threads,
        Some(&progress),
        |job, _outer_rng| {
            let (pi, ri) = (job / runs_per_point, job % runs_per_point);
            // Re-derive a seed that is stable per (point, run) regardless of
            // how many points/runs other sweeps used.
            let seed = mix_seed(mix_seed(master_seed, pi as u64), ri as u64);
            let mut rng = <SmallRng as rand::SeedableRng>::seed_from_u64(seed);
            run_fn(&points[pi], ri, &mut rng)
        },
    );
    // Regroup by point, preserving run order.
    let mut iter = flat.into_iter();
    points
        .iter()
        .map(|p| SweepOutcome {
            param: p.clone(),
            outputs: iter.by_ref().take(runs_per_point).collect(),
        })
        .collect()
}

/// Per-point summary of a metric-vector sweep: one [`Summary`] per metric
/// column, folded in run order.
#[derive(Clone, Debug, PartialEq)]
pub struct PointSummary<P> {
    /// The parameter value of this point.
    pub param: P,
    /// Number of Monte-Carlo runs folded in.
    pub runs: usize,
    /// One summary per metric column (in `run_fn` emission order).
    pub metrics: Vec<Summary>,
}

/// Seed-streamed variant of [`sweep`] for experiments whose per-run output
/// is a fixed vector of scalar metrics.
///
/// `run_fn(param, run_index, rng, metrics)` runs one replication and writes
/// its `n_metrics` observations into the provided slice (pre-zeroed). Only
/// those scalars cross the thread boundary — the run's heavyweight state
/// (e.g. a per-server load vector) never accumulates, so a sweep over
/// thousands of seeds at large `n` stays O(points × runs × n_metrics) in
/// memory instead of O(points × runs × n).
///
/// Seeding matches [`sweep`] exactly (`(master_seed, point_index,
/// run_index)`), and the per-point fold happens sequentially in run order,
/// so summaries are bit-identical across thread counts.
pub fn sweep_summaries<P, F>(
    points: &[P],
    runs_per_point: usize,
    n_metrics: usize,
    master_seed: u64,
    threads: Option<usize>,
    verbose: bool,
    run_fn: F,
) -> Vec<PointSummary<P>>
where
    P: Clone + Sync,
    F: Fn(&P, usize, &mut SmallRng, &mut [f64]) + Sync,
{
    let outcomes = sweep(
        points,
        runs_per_point,
        master_seed,
        threads,
        verbose,
        |p, run, rng| {
            let mut m = vec![0.0f64; n_metrics];
            run_fn(p, run, rng, &mut m);
            m
        },
    );
    outcomes
        .into_iter()
        .map(|o| {
            let mut acc = vec![paba_util::OnlineStats::new(); n_metrics];
            for run in &o.outputs {
                debug_assert_eq!(run.len(), n_metrics);
                for (stats, &x) in acc.iter_mut().zip(run.iter()) {
                    stats.push(x);
                }
            }
            PointSummary {
                param: o.param,
                runs: o.outputs.len(),
                metrics: acc.iter().map(|s| s.summary()).collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn grouping_preserves_point_and_run_order() {
        let points = vec![10u32, 20, 30];
        let res = sweep(&points, 4, 1, Some(3), false, |p, run, _| (*p, run));
        assert_eq!(res.len(), 3);
        for (i, out) in res.iter().enumerate() {
            assert_eq!(out.param, points[i]);
            assert_eq!(
                out.outputs,
                (0..4).map(|r| (points[i], r)).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let points = vec![1u64, 2, 3, 4, 5];
        let f = |p: &u64, _run: usize, rng: &mut SmallRng| *p * rng.gen_range(1..100u64);
        let a = sweep(&points, 7, 42, Some(1), false, f);
        let b = sweep(&points, 7, 42, Some(8), false, f);
        assert_eq!(a, b);
    }

    #[test]
    fn point_results_independent_of_other_points() {
        // The same (seed, point-index, run) triple must give the same
        // output whether or not other points exist in the sweep.
        let f = |p: &u64, _run: usize, rng: &mut SmallRng| (*p, rng.gen::<u64>());
        let solo = sweep(&[7u64], 3, 9, Some(2), false, f);
        let multi = sweep(&[7u64, 8, 9], 3, 9, Some(2), false, f);
        assert_eq!(solo[0], multi[0]);
    }

    #[test]
    fn summarize_metric() {
        let res = sweep(&[0u32], 100, 5, Some(2), false, |_, run, _| run as f64);
        let s = res[0].summarize(|&o| o);
        assert_eq!(s.count, 100);
        assert!((s.mean - 49.5).abs() < 1e-9);
    }

    #[test]
    fn empty_points() {
        let res: Vec<SweepOutcome<u32, u32>> = sweep(&[], 10, 1, None, false, |_, _, _| 0u32);
        assert!(res.is_empty());
    }

    #[test]
    fn zero_runs_per_point() {
        let res = sweep(&[1u32, 2], 0, 1, None, false, |_, _, _| 0u32);
        assert_eq!(res.len(), 2);
        assert!(res.iter().all(|o| o.outputs.is_empty()));
    }

    #[test]
    fn summaries_match_raw_sweep() {
        let points = vec![3u64, 5, 9];
        let raw = sweep(&points, 40, 17, Some(4), false, |p, _run, rng| {
            let x = rng.gen_range(0..100u64) as f64;
            (x, x * *p as f64)
        });
        let summed = sweep_summaries(&points, 40, 2, 17, Some(4), false, |p, _run, rng, m| {
            let x = rng.gen_range(0..100u64) as f64;
            m[0] = x;
            m[1] = x * *p as f64;
        });
        assert_eq!(summed.len(), 3);
        for (r, s) in raw.iter().zip(summed.iter()) {
            assert_eq!(r.param, s.param);
            assert_eq!(s.runs, 40);
            assert_eq!(s.metrics.len(), 2);
            let expect0 = r.summarize(|o| o.0);
            let expect1 = r.summarize(|o| o.1);
            assert_eq!(s.metrics[0], expect0);
            assert_eq!(s.metrics[1], expect1);
        }
    }

    #[test]
    fn summaries_deterministic_across_threads() {
        let f = |p: &u32, _run: usize, rng: &mut SmallRng, m: &mut [f64]| {
            m[0] = *p as f64 * rng.gen::<f64>();
        };
        let a = sweep_summaries(&[1u32, 2, 3], 9, 1, 5, Some(1), false, f);
        let b = sweep_summaries(&[1u32, 2, 3], 9, 1, 5, Some(8), false, f);
        assert_eq!(a, b);
    }
}
