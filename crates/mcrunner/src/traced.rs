//! Trace collection over the parallel Monte-Carlo runner.
//!
//! [`run_parallel_traced`] is the deterministic collection path behind
//! `paba trace`: each worker thread owns one
//! [`TraceRecorder`] (built on [`run_parallel_with_state`]), every run
//! calls [`TraceRecorder::begin_run`] with its *run index* before
//! executing, and the per-thread states are merged with
//! [`TraceReport::collect`], which re-sorts by run index. Since every
//! sampling decision inside the recorder depends only on
//! `(run index, request counter)` — never on the thread — the merged
//! event streams and time series are bit-identical across thread counts.
//!
//! All recorders share one epoch `Instant`, so their wall-clock span
//! events land on a common Chrome-trace timeline.

use std::time::Instant;

use rand::rngs::SmallRng;

use paba_telemetry::{TraceConfig, TraceRecorder, TraceReport};

use crate::progress::Progress;
use crate::runner::run_parallel_with_state;

/// Run `runs` traced Monte-Carlo runs; returns the per-run outputs (in
/// run-index order, as [`crate::run_parallel`]) plus the merged
/// [`TraceReport`].
///
/// `run_fn(rec, run_index, rng)` executes one run; it should pass `rec`
/// to the instrumented strategy/simulation. `begin_run` is called for it
/// — the closure must not call it again.
pub fn run_parallel_traced<O, F>(
    runs: usize,
    master_seed: u64,
    threads: Option<usize>,
    progress: Option<&Progress>,
    cfg: TraceConfig,
    run_fn: F,
) -> (Vec<O>, TraceReport)
where
    O: Send,
    F: Fn(&TraceRecorder, usize, &mut SmallRng) -> O + Sync,
{
    let epoch = Instant::now();
    let cfg = &cfg;
    let (outputs, states) = run_parallel_with_state(
        runs,
        master_seed,
        threads,
        progress,
        move || TraceRecorder::with_epoch(cfg.clone(), epoch),
        |rec, i, rng| {
            rec.begin_run(i as u64);
            run_fn(rec, i, rng)
        },
    );
    (outputs, TraceReport::collect(states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_telemetry::{Recorder, Sampling};
    use rand::Rng;

    fn trace_with(threads: usize) -> (Vec<u64>, TraceReport) {
        let cfg = TraceConfig {
            sampling: Sampling::Reservoir(8),
            stride: 16,
            max_events: 64,
            seed: 99,
        };
        run_parallel_traced(6, 4242, Some(threads), None, cfg, |rec, _i, rng| {
            // A synthetic "simulation": random assignments over 10 nodes.
            let mut loads = vec![0u32; 10];
            for r in 0..64u64 {
                let server = rng.gen_range(0..10usize);
                rec.request(
                    r % 3,
                    rng.gen_range(0..10u64),
                    server as u64,
                    1,
                    &mut std::iter::once((server as u64, loads[server])),
                );
                loads[server] += 1;
                rec.loads(r, &loads);
            }
            loads.iter().map(|&l| l as u64).sum()
        })
    }

    #[test]
    fn outputs_in_run_order_and_report_merged() {
        let (out, report) = trace_with(3);
        assert_eq!(out.len(), 6);
        assert!(out.iter().all(|&s| s == 64));
        let order: Vec<u64> = report.runs.iter().map(|r| r.run).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(report.total_requests(), 6 * 64);
        for r in &report.runs {
            assert_eq!(r.events.len(), 8);
            assert_eq!(r.series.points.len(), 4);
        }
    }

    #[test]
    fn trace_is_identical_across_thread_counts() {
        let (out1, rep1) = trace_with(1);
        for threads in [2, 8] {
            let (out, rep) = trace_with(threads);
            assert_eq!(out, out1);
            assert_eq!(rep.runs, rep1.runs, "threads={threads}");
            assert_eq!(rep.mean_series(), rep1.mean_series(), "threads={threads}");
        }
    }
}
