//! Walker–Vose alias method: O(1) sampling from a discrete distribution.
//!
//! Placement draws `n·M` file ids per run and the request stream another
//! `n`; with `n = 1.2·10⁵` and `M = 100` that is 12M draws per Monte-Carlo
//! run, so constant-time sampling matters. The alias table costs O(K) to
//! build and two uniforms per draw.

use crate::FileId;
use rand::Rng;

/// Alias table for a discrete distribution over `0..k`.
#[derive(Clone, Debug)]
pub struct AliasTable {
    /// Acceptance threshold per cell, scaled to [0, 1].
    prob: Vec<f64>,
    /// Alias target per cell.
    alias: Vec<FileId>,
}

impl AliasTable {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        let k = weights.len();
        assert!(k > 0, "alias table needs ≥1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");

        // Vose's algorithm with two worklists of under/over-full cells.
        let scale = k as f64 / sum;
        let mut scaled: Vec<f64> = weights.iter().map(|w| w * scale).collect();
        let mut prob = vec![1.0f64; k];
        let mut alias: Vec<FileId> = (0..k as u32).collect();
        let mut small: Vec<u32> = Vec::with_capacity(k);
        let mut large: Vec<u32> = Vec::with_capacity(k);
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s as usize] = scaled[s as usize];
            alias[s as usize] = l;
            scaled[l as usize] -= 1.0 - scaled[s as usize];
            if scaled[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical leftovers: both lists drain to cells with weight ~1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Self { prob, alias }
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has exactly one category.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false // a table always has ≥1 category (enforced at build)
    }

    /// Draw a category in O(1).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        let k = self.prob.len();
        let i = rng.gen_range(0..k);
        if rng.gen::<f64>() < self.prob[i] {
            i as FileId
        } else {
            self.alias[i]
        }
    }

    /// Exact probability this table assigns to category `i` (reconstructed
    /// from the internal representation; used by tests).
    pub fn reconstructed_probability(&self, i: FileId) -> f64 {
        let k = self.prob.len() as f64;
        let mut p = self.prob[i as usize];
        for (j, &a) in self.alias.iter().enumerate() {
            if a == i && j as u32 != i {
                p += 1.0 - self.prob[j];
            }
        }
        p / k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn reconstruction_matches_input_distribution() {
        let weights = [0.1, 0.4, 0.2, 0.3];
        let t = AliasTable::new(&weights);
        for (i, &w) in weights.iter().enumerate() {
            let p = t.reconstructed_probability(i as u32);
            assert!((p - w).abs() < 1e-12, "i={i}: {p} vs {w}");
        }
    }

    #[test]
    fn unnormalized_weights_are_scaled() {
        let t = AliasTable::new(&[2.0, 6.0]);
        assert!((t.reconstructed_probability(0) - 0.25).abs() < 1e-12);
        assert!((t.reconstructed_probability(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_categories_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight category {s}");
        }
    }

    #[test]
    fn single_category() {
        let t = AliasTable::new(&[5.0]);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(t.sample(&mut rng), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empirical_frequencies_match_weights() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let t = AliasTable::new(&weights);
        let mut rng = SmallRng::seed_from_u64(123);
        let trials = 200_000;
        let mut counts = [0u64; 4];
        for _ in 0..trials {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = trials as f64 * w / total;
            let got = counts[i] as f64;
            // 5-sigma binomial tolerance
            let sigma = (expect * (1.0 - w / total)).sqrt();
            assert!(
                (got - expect).abs() < 5.0 * sigma,
                "cat {i}: {got} vs {expect} ± {sigma}"
            );
        }
    }

    #[test]
    fn large_skewed_table_builds_and_reconstructs() {
        // Zipf-like heavy skew over 10k categories.
        let weights: Vec<f64> = (1..=10_000).map(|i| 1.0 / (i as f64).powf(1.2)).collect();
        let t = AliasTable::new(&weights);
        let sum: f64 = weights.iter().sum();
        let mut total_err = 0.0;
        for i in (0..10_000).step_by(997) {
            let p = t.reconstructed_probability(i as u32);
            total_err += (p - weights[i] / sum).abs();
        }
        assert!(total_err < 1e-9, "err={total_err}");
    }

    #[test]
    #[should_panic(expected = "≥1 weight")]
    fn empty_weights_panic() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn zero_sum_panics() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }
}
