//! Inverse-CDF sampling by binary search — the O(log K) alternative to the
//! alias table, used for cross-validation and one-shot draws.

use crate::FileId;
use rand::Rng;

/// Cumulative-distribution sampler over `0..k`.
#[derive(Clone, Debug)]
pub struct CdfSampler {
    /// Strictly increasing partial sums ending at ~1.0.
    cdf: Vec<f64>,
}

impl CdfSampler {
    /// Build from non-negative weights (need not be normalized).
    ///
    /// # Panics
    /// On empty/negative/non-finite/zero-sum weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "cdf sampler needs ≥1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        let sum: f64 = weights.iter().sum();
        assert!(sum > 0.0, "weights must not all be zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / sum;
            cdf.push(acc);
        }
        // Clamp the final entry so a draw of u ≈ 1.0 cannot fall off the end.
        *cdf.last_mut().unwrap() = 1.0;
        Self { cdf }
    }

    /// Number of categories.
    #[inline]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no categories (never: construction enforces ≥1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw a category in O(log K).
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// Smallest index `i` with `cdf[i] > u` (the generalized inverse CDF).
    pub fn quantile(&self, u: f64) -> FileId {
        debug_assert!((0.0..=1.0).contains(&u));
        // partition_point returns the first index where the predicate fails.
        let i = self.cdf.partition_point(|&c| c <= u);
        i.min(self.cdf.len() - 1) as FileId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn quantile_boundaries() {
        let s = CdfSampler::new(&[0.25, 0.25, 0.5]);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(0.2499), 0);
        assert_eq!(s.quantile(0.25), 1);
        assert_eq!(s.quantile(0.4999), 1);
        assert_eq!(s.quantile(0.5), 2);
        assert_eq!(s.quantile(1.0), 2);
    }

    #[test]
    fn zero_weight_categories_skipped() {
        let s = CdfSampler::new(&[0.0, 1.0, 0.0]);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn agrees_with_alias_table_statistically() {
        let weights: Vec<f64> = (1..=64).map(|i| 1.0 / i as f64).collect();
        let cdf = CdfSampler::new(&weights);
        let alias = crate::AliasTable::new(&weights);
        let mut rng1 = SmallRng::seed_from_u64(10);
        let mut rng2 = SmallRng::seed_from_u64(20);
        let trials = 100_000;
        let mut c1 = vec![0f64; 64];
        let mut c2 = vec![0f64; 64];
        for _ in 0..trials {
            c1[cdf.sample(&mut rng1) as usize] += 1.0;
            c2[alias.sample(&mut rng2) as usize] += 1.0;
        }
        // Compare the two empirical distributions cellwise.
        for i in 0..64 {
            let diff = (c1[i] - c2[i]).abs();
            let scale = (c1[i].max(c2[i])).sqrt().max(1.0);
            assert!(diff < 6.0 * scale, "cat {i}: {} vs {}", c1[i], c2[i]);
        }
    }

    #[test]
    fn single_category_always_zero() {
        let s = CdfSampler::new(&[42.0]);
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "≥1 weight")]
    fn empty_panics() {
        let _ = CdfSampler::new(&[]);
    }
}
