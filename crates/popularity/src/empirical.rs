//! Empirical frequency counting and goodness-of-fit statistics.
//!
//! Used by the test suites to validate samplers against their target
//! distributions, and by the experiment harnesses to report the realized
//! request mix.

use crate::FileId;

/// Frequency counter over file ids `0..k`.
#[derive(Clone, Debug)]
pub struct FrequencyCounter {
    counts: Vec<u64>,
    total: u64,
}

impl FrequencyCounter {
    /// Counter for a library of `k` files.
    pub fn new(k: u32) -> Self {
        Self {
            counts: vec![0; k as usize],
            total: 0,
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, f: FileId) {
        self.counts[f as usize] += 1;
        self.total += 1;
    }

    /// Observation count for file `f`.
    pub fn count(&self, f: FileId) -> u64 {
        self.counts[f as usize]
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Empirical probabilities (`NaN`-free; zero when nothing recorded).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Pearson χ² statistic against expected probabilities.
    ///
    /// Cells with zero expected probability must have zero observations
    /// (else returns `f64::INFINITY`). Degrees of freedom are
    /// `#nonzero cells − 1`.
    pub fn chi_squared(&self, expected: &[f64]) -> f64 {
        assert_eq!(expected.len(), self.counts.len(), "arity mismatch");
        let mut stat = 0.0;
        for (&obs, &p) in self.counts.iter().zip(expected.iter()) {
            let e = p * self.total as f64;
            if e == 0.0 {
                if obs > 0 {
                    return f64::INFINITY;
                }
                continue;
            }
            let d = obs as f64 - e;
            stat += d * d / e;
        }
        stat
    }

    /// Total-variation distance between the empirical distribution and
    /// `expected`.
    pub fn total_variation(&self, expected: &[f64]) -> f64 {
        assert_eq!(expected.len(), self.counts.len(), "arity mismatch");
        0.5 * self
            .frequencies()
            .iter()
            .zip(expected.iter())
            .map(|(f, p)| (f - p).abs())
            .sum::<f64>()
    }
}

/// Rough upper critical value for a χ² test at ~3 standard deviations
/// above the mean: `df + 3·√(2·df)`.
///
/// The χ² distribution with `df` degrees of freedom has mean `df` and
/// variance `2·df`; this normal-approximation bound keeps the sampler tests
/// simple without a full inverse-CDF implementation, at a false-positive
/// rate ≈ 0.1%.
pub fn chi_squared_critical(df: usize) -> f64 {
    let df = df as f64;
    df + 3.0 * (2.0 * df).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn counting() {
        let mut c = FrequencyCounter::new(3);
        for f in [0u32, 1, 1, 2, 2, 2] {
            c.record(f);
        }
        assert_eq!(c.total(), 6);
        assert_eq!(c.count(2), 3);
        let freqs = c.frequencies();
        assert!((freqs[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn chi_squared_zero_for_exact_match() {
        let mut c = FrequencyCounter::new(2);
        for _ in 0..50 {
            c.record(0);
        }
        for _ in 0..50 {
            c.record(1);
        }
        assert!(c.chi_squared(&[0.5, 0.5]) < 1e-12);
    }

    #[test]
    fn chi_squared_accepts_true_distribution() {
        let mut rng = SmallRng::seed_from_u64(8);
        let k = 20u32;
        let mut c = FrequencyCounter::new(k);
        for _ in 0..100_000 {
            c.record(rng.gen_range(0..k));
        }
        let expected = vec![1.0 / k as f64; k as usize];
        let stat = c.chi_squared(&expected);
        assert!(stat < chi_squared_critical(k as usize - 1), "χ²={stat}");
    }

    #[test]
    fn chi_squared_rejects_wrong_distribution() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut c = FrequencyCounter::new(2);
        for _ in 0..10_000 {
            c.record(if rng.gen::<f64>() < 0.7 { 0 } else { 1 });
        }
        let stat = c.chi_squared(&[0.5, 0.5]);
        assert!(stat > chi_squared_critical(1), "χ²={stat} should reject");
    }

    #[test]
    fn zero_expected_cell_with_observations_is_infinite() {
        let mut c = FrequencyCounter::new(2);
        c.record(1);
        assert!(c.chi_squared(&[1.0, 0.0]).is_infinite());
    }

    #[test]
    fn total_variation_bounds() {
        let mut c = FrequencyCounter::new(2);
        for _ in 0..100 {
            c.record(0);
        }
        assert!((c.total_variation(&[0.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(c.total_variation(&[1.0, 0.0]) < 1e-12);
    }

    #[test]
    fn empty_counter_frequencies_are_zero() {
        let c = FrequencyCounter::new(4);
        assert_eq!(c.frequencies(), vec![0.0; 4]);
        assert_eq!(c.chi_squared(&[0.25; 4]), 0.0);
    }
}
