//! File-popularity profiles and fast sampling for the cache-network model.
//!
//! The paper (§II-B) assumes requests draw file types from a popularity
//! distribution `P = {p_1, …, p_K}` — either **Uniform** (`p_i = 1/K`) or
//! **Zipf** with parameter `γ` (`p_i ∝ i^{−γ}`), the empirically observed
//! law for web and video workloads (\[26\], \[27\] in the paper). Cache content
//! placement samples from the *same* distribution ("proportional
//! placement"), so both the request stream and the placement need millions
//! of fast draws:
//!
//! * [`Popularity`] — the profile itself (Uniform / Zipf / custom weights).
//! * [`AliasTable`] — Walker–Vose alias sampling: O(K) build, O(1) draw.
//! * [`CdfSampler`] — inverse-CDF sampling via binary search (O(log K)
//!   draw); used to cross-validate the alias table and where build cost
//!   dominates.
//! * [`FileSampler`] — profile-aware dispatcher picking the cheapest exact
//!   sampler (direct uniform draw / alias table).
//! * [`empirical`] — frequency counting and χ² statistics for tests.

pub mod alias;
pub mod cdf;
pub mod empirical;
pub mod profile;
pub mod sampler;

pub use alias::AliasTable;
pub use cdf::CdfSampler;
pub use profile::Popularity;
pub use sampler::FileSampler;

/// File identifier: an index in `0..K`.
pub type FileId = u32;
