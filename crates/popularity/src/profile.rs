//! Popularity profiles: Uniform, Zipf(γ), and custom weight vectors.

/// A popularity profile over a library of `K` files.
///
/// Profiles are *shapes*; they are instantiated for a concrete library size
/// via [`Popularity::weights`] (normalized probabilities) or directly by a
/// sampler. File ids are 0-based; for Zipf, file `0` is the most popular
/// (`p_i ∝ (i+1)^{−γ}`).
#[derive(Clone, Debug, PartialEq)]
pub enum Popularity {
    /// Equal popularity: `p_i = 1/K` (the paper's main analytical setting).
    Uniform,
    /// Zipf law with exponent `gamma ≥ 0`: `p_i ∝ (i+1)^{−γ}`.
    /// `gamma = 0` coincides with `Uniform`.
    Zipf {
        /// The Zipf exponent `γ`.
        gamma: f64,
    },
    /// Arbitrary non-negative weights (need not be normalized). The library
    /// size is fixed to `weights.len()`.
    Custom(Vec<f64>),
}

impl Popularity {
    /// Convenience constructor for [`Popularity::Zipf`].
    ///
    /// # Panics
    /// If `gamma` is negative or not finite.
    pub fn zipf(gamma: f64) -> Self {
        assert!(
            gamma.is_finite() && gamma >= 0.0,
            "Zipf exponent must be finite and non-negative, got {gamma}"
        );
        Popularity::Zipf { gamma }
    }

    /// Construct a custom profile from weights.
    ///
    /// # Panics
    /// If empty, or any weight is negative/non-finite, or all are zero.
    pub fn custom(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "custom profile needs ≥1 weight");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "at least one weight must be positive"
        );
        Popularity::Custom(weights)
    }

    /// Normalized probability vector for a library of `k` files.
    ///
    /// # Panics
    /// If `k == 0`, or the profile is `Custom` with a different length.
    pub fn weights(&self, k: usize) -> Vec<f64> {
        assert!(k > 0, "library must be non-empty");
        match self {
            Popularity::Uniform => vec![1.0 / k as f64; k],
            Popularity::Zipf { gamma } => {
                let mut w: Vec<f64> = (1..=k).map(|i| (i as f64).powf(-gamma)).collect();
                let sum: f64 = w.iter().sum();
                for x in w.iter_mut() {
                    *x /= sum;
                }
                w
            }
            Popularity::Custom(w) => {
                assert_eq!(
                    w.len(),
                    k,
                    "custom profile has {} weights but k={k}",
                    w.len()
                );
                let sum: f64 = w.iter().sum();
                w.iter().map(|x| x / sum).collect()
            }
        }
    }

    /// Probability of file `i` in a library of `k` files.
    pub fn probability(&self, i: usize, k: usize) -> f64 {
        assert!(i < k, "file index {i} out of range for k={k}");
        match self {
            Popularity::Uniform => 1.0 / k as f64,
            _ => self.weights(k)[i],
        }
    }

    /// True if the profile is exactly uniform over any library size.
    pub fn is_uniform(&self) -> bool {
        match self {
            Popularity::Uniform => true,
            Popularity::Zipf { gamma } => *gamma == 0.0,
            Popularity::Custom(w) => {
                let first = w[0];
                w.iter().all(|&x| (x - first).abs() < 1e-15)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_normalized(w: &[f64]) {
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum={sum}");
        assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn uniform_weights() {
        let w = Popularity::Uniform.weights(4);
        assert_normalized(&w);
        assert!(w.iter().all(|&x| (x - 0.25).abs() < 1e-15));
    }

    #[test]
    fn zipf_weights_monotone_and_normalized() {
        let w = Popularity::zipf(0.8).weights(100);
        assert_normalized(&w);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "Zipf weights must decrease");
        }
    }

    #[test]
    fn zipf_matches_papers_formula() {
        // p_i = (1/i^γ) / Σ_j 1/j^γ  (paper §II-B)
        let gamma = 1.5;
        let k = 50;
        let w = Popularity::zipf(gamma).weights(k);
        let norm: f64 = (1..=k).map(|j| (j as f64).powf(-gamma)).sum();
        for (i, &p) in w.iter().enumerate() {
            let expect = ((i + 1) as f64).powf(-gamma) / norm;
            assert!((p - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_zero_gamma_is_uniform() {
        let w = Popularity::zipf(0.0).weights(7);
        assert!(w.iter().all(|&x| (x - 1.0 / 7.0).abs() < 1e-12));
        assert!(Popularity::zipf(0.0).is_uniform());
    }

    #[test]
    fn custom_weights_normalize() {
        let p = Popularity::custom(vec![2.0, 1.0, 1.0]);
        let w = p.weights(3);
        assert_normalized(&w);
        assert!((w[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "custom profile has")]
    fn custom_length_mismatch_panics() {
        Popularity::custom(vec![1.0, 1.0]).weights(3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        let _ = Popularity::custom(vec![1.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn all_zero_weights_panic() {
        let _ = Popularity::custom(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn invalid_gamma_panics() {
        let _ = Popularity::zipf(f64::NAN);
    }

    #[test]
    fn probability_accessor() {
        let p = Popularity::zipf(1.0);
        let w = p.weights(10);
        for (i, &wi) in w.iter().enumerate() {
            assert!((p.probability(i, 10) - wi).abs() < 1e-15);
        }
        assert!((Popularity::Uniform.probability(3, 8) - 0.125).abs() < 1e-15);
    }

    #[test]
    fn is_uniform_detection() {
        assert!(Popularity::Uniform.is_uniform());
        assert!(!Popularity::zipf(0.5).is_uniform());
        assert!(Popularity::custom(vec![1.0, 1.0]).is_uniform());
        assert!(!Popularity::custom(vec![1.0, 2.0]).is_uniform());
    }
}
