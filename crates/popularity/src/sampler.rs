//! Profile-aware sampler dispatch.
//!
//! Uniform profiles need no table at all (a single `gen_range` is both
//! exact and ~2× faster than an alias draw), while skewed profiles get the
//! alias table. This is the sampler the cache network and request stream
//! actually use.

use crate::{AliasTable, FileId, Popularity};
use rand::Rng;

/// A sampler over file ids `0..k` following a [`Popularity`] profile.
#[derive(Clone, Debug)]
pub enum FileSampler {
    /// Exact uniform draw over `0..k`.
    Uniform {
        /// Library size.
        k: u32,
    },
    /// Alias-table draw for non-uniform profiles.
    Alias(AliasTable),
}

impl FileSampler {
    /// Build a sampler for `k` files under `profile`.
    ///
    /// # Panics
    /// If `k == 0` or a custom profile's length differs from `k`.
    pub fn new(profile: &Popularity, k: u32) -> Self {
        assert!(k > 0, "library must be non-empty");
        if profile.is_uniform() {
            FileSampler::Uniform { k }
        } else {
            FileSampler::Alias(AliasTable::new(&profile.weights(k as usize)))
        }
    }

    /// Library size.
    pub fn k(&self) -> u32 {
        match self {
            FileSampler::Uniform { k } => *k,
            FileSampler::Alias(t) => t.len() as u32,
        }
    }

    /// Draw one file id.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> FileId {
        match self {
            FileSampler::Uniform { k } => rng.gen_range(0..*k),
            FileSampler::Alias(t) => t.sample(rng),
        }
    }

    /// Fill `out` with i.i.d. draws (placement helper).
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [FileId]) {
        for slot in out.iter_mut() {
            *slot = self.sample(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_profile_uses_fast_path() {
        let s = FileSampler::new(&Popularity::Uniform, 10);
        assert!(matches!(s, FileSampler::Uniform { k: 10 }));
        let s = FileSampler::new(&Popularity::zipf(0.0), 5);
        assert!(matches!(s, FileSampler::Uniform { k: 5 }));
    }

    #[test]
    fn zipf_profile_uses_alias() {
        let s = FileSampler::new(&Popularity::zipf(0.9), 10);
        assert!(matches!(s, FileSampler::Alias(_)));
        assert_eq!(s.k(), 10);
    }

    #[test]
    fn samples_in_range() {
        let mut rng = SmallRng::seed_from_u64(5);
        for profile in [Popularity::Uniform, Popularity::zipf(1.2)] {
            let s = FileSampler::new(&profile, 17);
            for _ in 0..1000 {
                assert!(s.sample(&mut rng) < 17);
            }
        }
    }

    #[test]
    fn zipf_rank_ordering_respected_empirically() {
        let s = FileSampler::new(&Popularity::zipf(1.0), 8);
        let mut rng = SmallRng::seed_from_u64(77);
        let mut counts = [0u64; 8];
        for _ in 0..100_000 {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        // Popularity must be (statistically) decreasing in rank.
        for i in 0..7 {
            assert!(
                counts[i] as f64 > counts[i + 1] as f64 * 0.95,
                "rank order violated at {i}: {counts:?}"
            );
        }
        // File 0 should get ~ p_0 = 1 / H_8 ≈ 0.368 of requests.
        let h8: f64 = (1..=8).map(|j| 1.0 / j as f64).sum();
        let expect = 100_000.0 / h8;
        assert!((counts[0] as f64 - expect).abs() < 0.05 * expect);
    }

    #[test]
    fn sample_many_fills_buffer() {
        let s = FileSampler::new(&Popularity::Uniform, 4);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut buf = vec![999u32; 64];
        s.sample_many(&mut rng, &mut buf);
        assert!(buf.iter().all(|&f| f < 4));
    }
}
