//! The versioned `paba-repro/1` artifact: gates + metrics, JSON in and
//! out, and the statistical golden diff behind `paba repro --check`.
//!
//! An artifact is the complete machine-readable output of one suite run:
//!
//! * **gates** — the theorem-derived pass/fail assertions, each with its
//!   standardized statistic, threshold, and an explicit bound on the
//!   probability that a *broken* (null) implementation would slip past;
//! * **metrics** — every measured mean with its standard error and run
//!   count, keyed by a stable id.
//!
//! The diff mode compares a fresh artifact against a committed golden
//! metric-by-metric via the two-sample z-score
//! `|m_f − m_g| / √(se_f² + se_g²)`, which separates **noise** (an RNG
//! reshuffle from refactoring moves every mean a little, z stays small)
//! from **regression** (a behavioral change moves some mean many combined
//! standard errors, z explodes). Id-set or schema drift is a hard error:
//! it means the suite itself changed and the golden must be regenerated.

use crate::json::{self, Json};
use paba_util::envcfg::Scale;
use paba_util::Provenance;

/// Current artifact schema identifier (shared with every reader via
/// [`paba_util::schema`]).
pub const SCHEMA: &str = paba_util::schema::REPRO;

/// Default noise/regression boundary for the golden diff: a metric moving
/// more than this many combined standard errors is flagged. The diff is
/// two-sided, so at `z = 6` each metric false-alarms with probability
/// `Pr[|Z| ≥ 6] ≤ 2·e⁻¹⁸ ≈ 3.0·10⁻⁸` (sub-Gaussian bound) — even
/// hundreds of metrics stay far below any practical flake rate.
pub const DEFAULT_CHECK_Z: f64 = 6.0;

/// One theorem-derived pass/fail assertion.
#[derive(Clone, Debug, PartialEq)]
pub struct Gate {
    /// Stable gate id, e.g. `growth/ordering/nearest-vs-two-rinf`.
    pub id: String,
    /// Did the suite pass this gate?
    pub passed: bool,
    /// Standardized gate statistic (usually a z-score; a ratio for
    /// structural gates). Pass iff `statistic ≥ threshold`.
    pub statistic: f64,
    /// Pass threshold the statistic is compared against.
    pub threshold: f64,
    /// Bound on the probability that a null implementation (one *without*
    /// the asserted effect) passes — `exp(−threshold²/2)` for z-gates,
    /// NaN for structural gates where no sampling model applies.
    pub p_false_pass: f64,
    /// Human-readable one-line summary of what was measured.
    pub detail: String,
}

/// One measured quantity with its Monte-Carlo uncertainty.
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// Stable metric id, e.g. `growth/nearest/side30/max_load`.
    pub id: String,
    /// Sample mean over the runs.
    pub mean: f64,
    /// Standard error of the mean (0 for deterministic quantities).
    pub std_err: f64,
    /// Number of Monte-Carlo runs behind the mean.
    pub runs: u64,
}

/// A complete suite output.
#[derive(Clone, Debug, PartialEq)]
pub struct Artifact {
    /// Schema id ([`SCHEMA`]).
    pub schema: String,
    /// Master seed the suite ran with.
    pub seed: u64,
    /// Scale the suite ran at (`quick` / `default` / `full`).
    pub scale: String,
    /// All gates, in suite order.
    pub gates: Vec<Gate>,
    /// All metrics, in suite order.
    pub metrics: Vec<Metric>,
}

/// Lower-case scale label used in artifacts.
pub fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Quick => "quick",
        Scale::Default => "default",
        Scale::Full => "full",
    }
}

impl Artifact {
    /// Did every gate pass?
    pub fn all_gates_passed(&self) -> bool {
        self.gates.iter().all(|g| g.passed)
    }

    /// Serialize to the `paba-repro/1` JSON layout.
    ///
    /// The provenance block is captured at write time (wall clock, thread
    /// count, build profile of the *writing* process) and is not part of
    /// the parsed [`Artifact`] — [`check`] compares suite results, not
    /// the machines that produced them.
    pub fn to_json(&self) -> String {
        let config: Vec<String> = self
            .gates
            .iter()
            .map(|g| g.id.as_str().to_string())
            .chain(self.metrics.iter().map(|m| format!("{}:{}", m.id, m.runs)))
            .collect();
        let provenance = Provenance::capture(
            &self.schema,
            self.seed,
            &self.scale,
            &format!("repro {}", config.join(" ")),
        );
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema\": \"{}\",\n",
            json::escape(&self.schema)
        ));
        s.push_str(&format!("  \"provenance\": {},\n", provenance.to_json()));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            json::escape(&self.scale)
        ));
        s.push_str("  \"gates\": [\n");
        for (i, g) in self.gates.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"passed\": {}, \"statistic\": {}, \
                 \"threshold\": {}, \"p_false_pass\": {}, \"detail\": \"{}\"}}{}\n",
                json::escape(&g.id),
                g.passed,
                json::num(g.statistic),
                json::num(g.threshold),
                json::num(g.p_false_pass),
                json::escape(&g.detail),
                if i + 1 == self.gates.len() { "" } else { "," },
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"mean\": {}, \"std_err\": {}, \"runs\": {}}}{}\n",
                json::escape(&m.id),
                json::num(m.mean),
                json::num(m.std_err),
                m.runs,
                if i + 1 == self.metrics.len() { "" } else { "," },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Parse an artifact from JSON, requiring the [`SCHEMA`]
    /// (`paba-repro/1`) schema id.
    pub fn from_json(src: &str) -> Result<Self, String> {
        Self::from_json_expecting(src, SCHEMA)
    }

    /// Parse an artifact from JSON, validating the schema id against
    /// `expected` (any gates+metrics schema, e.g. `paba-churn/1`).
    pub fn from_json_expecting(src: &str, expected: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_str)
            .ok_or("artifact missing 'schema'")?
            .to_string();
        if schema != expected {
            return Err(format!(
                "unsupported artifact schema '{schema}' (expected '{expected}')"
            ));
        }
        let seed = doc
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("artifact missing integer 'seed'")?;
        let scale = doc
            .get("scale")
            .and_then(Json::as_str)
            .ok_or("artifact missing 'scale'")?
            .to_string();
        let gates = doc
            .get("gates")
            .and_then(Json::as_arr)
            .ok_or("artifact missing 'gates' array")?
            .iter()
            .map(parse_gate)
            .collect::<Result<Vec<_>, _>>()?;
        let metrics = doc
            .get("metrics")
            .and_then(Json::as_arr)
            .ok_or("artifact missing 'metrics' array")?
            .iter()
            .map(parse_metric)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            schema,
            seed,
            scale,
            gates,
            metrics,
        })
    }

    /// Write to `path`, creating parent directories as needed.
    pub fn write(&self, path: &std::path::Path) -> Result<(), String> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating {}: {e}", dir.display()))?;
            }
        }
        std::fs::write(path, self.to_json()).map_err(|e| format!("writing {}: {e}", path.display()))
    }

    /// Load and parse from `path`, requiring the `paba-repro/1` schema.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        Self::load_expecting(path, SCHEMA)
    }

    /// Load and parse from `path`, validating against `expected`.
    pub fn load_expecting(path: &std::path::Path, expected: &str) -> Result<Self, String> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Self::from_json_expecting(&src, expected).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn field<'a>(v: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or(format!("{what} missing '{key}'"))
}

fn parse_gate(v: &Json) -> Result<Gate, String> {
    Ok(Gate {
        id: field(v, "id", "gate")?
            .as_str()
            .ok_or("gate 'id' must be a string")?
            .to_string(),
        passed: field(v, "passed", "gate")?
            .as_bool()
            .ok_or("gate 'passed' must be a boolean")?,
        statistic: field(v, "statistic", "gate")?
            .as_f64()
            .ok_or("gate 'statistic' must be numeric or null")?,
        threshold: field(v, "threshold", "gate")?
            .as_f64()
            .ok_or("gate 'threshold' must be numeric or null")?,
        p_false_pass: field(v, "p_false_pass", "gate")?
            .as_f64()
            .ok_or("gate 'p_false_pass' must be numeric or null")?,
        detail: field(v, "detail", "gate")?
            .as_str()
            .ok_or("gate 'detail' must be a string")?
            .to_string(),
    })
}

fn parse_metric(v: &Json) -> Result<Metric, String> {
    Ok(Metric {
        id: field(v, "id", "metric")?
            .as_str()
            .ok_or("metric 'id' must be a string")?
            .to_string(),
        mean: field(v, "mean", "metric")?
            .as_f64()
            .ok_or("metric 'mean' must be numeric or null")?,
        std_err: field(v, "std_err", "metric")?
            .as_f64()
            .ok_or("metric 'std_err' must be numeric or null")?,
        runs: field(v, "runs", "metric")?
            .as_u64()
            .ok_or("metric 'runs' must be a non-negative integer")?,
    })
}

/// One metric's fresh-vs-golden displacement.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricDelta {
    /// The metric id.
    pub id: String,
    /// Two-sample z-score of the displacement (`+∞` when a deterministic
    /// metric changed value).
    pub z: f64,
    /// Mean recorded in the golden artifact.
    pub golden_mean: f64,
    /// Mean measured by the fresh run.
    pub fresh_mean: f64,
}

/// Result of a golden diff.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckReport {
    /// Number of metric ids compared.
    pub compared: usize,
    /// The noise/regression z boundary used.
    pub z_threshold: f64,
    /// Metrics whose displacement exceeded the boundary (sorted, worst
    /// first) — statistically incompatible with pure RNG noise.
    pub regressions: Vec<MetricDelta>,
    /// Largest observed displacement (NaN when nothing was compared).
    pub worst_z: f64,
    /// Id of the metric with the largest displacement.
    pub worst_id: String,
    /// Ids of gates that failed in the fresh run.
    pub gate_failures: Vec<String>,
}

impl CheckReport {
    /// Check verdict: no regressions and every fresh gate passed.
    pub fn ok(&self) -> bool {
        self.regressions.is_empty() && self.gate_failures.is_empty()
    }
}

/// Diff `fresh` against `golden` within statistical tolerance
/// (`z_threshold`, see [`DEFAULT_CHECK_Z`]).
///
/// Errors (rather than reporting a regression) when the artifacts are not
/// comparable: different schema or scale, or different metric id sets —
/// those mean the *suite* changed and the golden must be regenerated, not
/// that the simulator regressed.
pub fn check(fresh: &Artifact, golden: &Artifact, z_threshold: f64) -> Result<CheckReport, String> {
    if fresh.schema != golden.schema {
        return Err(format!(
            "schema mismatch: fresh '{}' vs golden '{}'",
            fresh.schema, golden.schema
        ));
    }
    if fresh.scale != golden.scale {
        return Err(format!(
            "scale mismatch: fresh ran at '{}' but the golden was generated at '{}' \
             (rerun with --scale {} or regenerate the golden)",
            fresh.scale, golden.scale, golden.scale
        ));
    }
    // Id-set drift — metrics *and* gates — is a hard error: a fresh run
    // that silently dropped a theorem gate must not report green against
    // a golden that still records it.
    let id_drift = |kind: &str, fresh_ids: Vec<&str>, golden_ids: Vec<&str>| {
        let missing: Vec<&str> = golden_ids
            .iter()
            .filter(|id| !fresh_ids.contains(id))
            .copied()
            .collect();
        let extra: Vec<&str> = fresh_ids
            .iter()
            .filter(|id| !golden_ids.contains(id))
            .copied()
            .collect();
        if missing.is_empty() && extra.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{kind} id sets differ (suite changed — regenerate the golden): \
                 missing from fresh: {missing:?}, new in fresh: {extra:?}"
            ))
        }
    };
    id_drift(
        "metric",
        fresh.metrics.iter().map(|m| m.id.as_str()).collect(),
        golden.metrics.iter().map(|m| m.id.as_str()).collect(),
    )?;
    id_drift(
        "gate",
        fresh.gates.iter().map(|g| g.id.as_str()).collect(),
        golden.gates.iter().map(|g| g.id.as_str()).collect(),
    )?;

    let mut regressions = Vec::new();
    let mut worst_z = f64::NAN;
    let mut worst_id = String::new();
    for g in &golden.metrics {
        let f = fresh
            .metrics
            .iter()
            .find(|m| m.id == g.id)
            .expect("id sets verified equal above");
        let raw = paba_theory::mean_gap_z(f.mean, f.std_err, g.mean, g.std_err).abs();
        // A NaN displacement means a non-finite mean or standard error on
        // either side (the writer emits `null` for those). Two NaN means
        // agree ("still non-finite"); anything else is incomparable and
        // must read as a regression, never be skipped.
        let z = if raw.is_nan() {
            if f.mean.is_nan() && g.mean.is_nan() {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            raw
        };
        if worst_z.is_nan() || z > worst_z {
            worst_z = z;
            worst_id = g.id.clone();
        }
        if z > z_threshold {
            regressions.push(MetricDelta {
                id: g.id.clone(),
                z,
                golden_mean: g.mean,
                fresh_mean: f.mean,
            });
        }
    }
    regressions.sort_by(|a, b| b.z.partial_cmp(&a.z).unwrap_or(std::cmp::Ordering::Equal));
    let gate_failures = fresh
        .gates
        .iter()
        .filter(|g| !g.passed)
        .map(|g| g.id.clone())
        .collect();
    Ok(CheckReport {
        compared: golden.metrics.len(),
        z_threshold,
        regressions,
        worst_z,
        worst_id,
        gate_failures,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Artifact {
        Artifact {
            schema: SCHEMA.into(),
            seed: 7,
            scale: "quick".into(),
            gates: vec![Gate {
                id: "g/one".into(),
                passed: true,
                statistic: 8.5,
                threshold: 4.0,
                p_false_pass: 3.4e-4,
                detail: "nearest 6.1 vs two-choice 3.2".into(),
            }],
            metrics: vec![
                Metric {
                    id: "m/a".into(),
                    mean: 6.1,
                    std_err: 0.2,
                    runs: 24,
                },
                Metric {
                    id: "m/b".into(),
                    mean: 3.2,
                    std_err: 0.1,
                    runs: 24,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip() {
        let a = sample();
        let parsed = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed, a);
    }

    #[test]
    fn schema_const_matches_util_registry() {
        assert_eq!(SCHEMA, paba_util::schema::REPRO);
    }

    #[test]
    fn written_artifact_carries_matching_provenance() {
        let json = sample().to_json();
        let doc = crate::json::parse(&json).unwrap();
        let prov = doc.get("provenance").expect("provenance block present");
        assert_eq!(prov.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(prov.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(prov.get("scale").and_then(Json::as_str), Some("quick"));
        // Pre-provenance goldens (no block at all) must still parse.
        let parsed = Artifact::from_json(&json).unwrap();
        assert_eq!(parsed, sample());
    }

    #[test]
    fn round_trip_preserves_nonfinite_as_nan() {
        let mut a = sample();
        a.gates[0].p_false_pass = f64::NAN;
        a.gates[0].statistic = f64::INFINITY;
        let parsed = Artifact::from_json(&a.to_json()).unwrap();
        assert!(parsed.gates[0].p_false_pass.is_nan());
        // ∞ is not representable in JSON: it comes back as NaN (null).
        assert!(parsed.gates[0].statistic.is_nan());
    }

    #[test]
    fn seeds_beyond_f64_precision_round_trip() {
        let mut a = sample();
        a.seed = u64::MAX; // would corrupt through an f64 detour
        let parsed = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.seed, u64::MAX);
    }

    #[test]
    fn churn_schema_round_trips_via_expecting() {
        let mut a = sample();
        a.schema = paba_util::schema::CHURN.into();
        let json = a.to_json();
        // The repro-schema parser refuses the foreign schema…
        assert!(Artifact::from_json(&json).unwrap_err().contains("schema"));
        // …the explicit one accepts it, and provenance follows suit.
        let parsed = Artifact::from_json_expecting(&json, paba_util::schema::CHURN).unwrap();
        assert_eq!(parsed, a);
        let doc = crate::json::parse(&json).unwrap();
        let prov = doc.get("provenance").expect("provenance block present");
        assert_eq!(
            prov.get("schema").and_then(Json::as_str),
            Some(paba_util::schema::CHURN)
        );
    }

    #[test]
    fn rejects_wrong_schema() {
        let doc = sample().to_json().replace(SCHEMA, "paba-repro/999");
        let err = Artifact::from_json(&doc).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn check_accepts_statistical_noise() {
        let golden = sample();
        let mut fresh = golden.clone();
        // Shift each mean by ~1 combined standard error: plain noise.
        fresh.metrics[0].mean += 0.25;
        fresh.metrics[1].mean -= 0.12;
        let rep = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap();
        assert!(rep.ok(), "{rep:?}");
        assert_eq!(rep.compared, 2);
        assert!(rep.worst_z < 2.0);
    }

    #[test]
    fn check_flags_regression() {
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.metrics[0].mean += 5.0; // ≈ 17 combined standard errors
        let rep = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert_eq!(rep.regressions[0].id, "m/a");
        assert_eq!(rep.worst_id, "m/a");
        assert!(rep.worst_z > 10.0);
    }

    #[test]
    fn check_flags_nonfinite_mean_as_regression() {
        // A metric whose mean went non-finite (serialized as null → NaN)
        // is incomparable: it must surface as an infinite-z regression,
        // not be silently skipped.
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.metrics[0].mean = f64::NAN;
        let rep = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].z.is_infinite());
        // And symmetrically for a doctored/corrupted golden.
        let rep2 = check(&golden, &fresh, DEFAULT_CHECK_Z).unwrap();
        assert!(!rep2.ok());
        // Both sides NaN agree: still non-finite, no regression.
        let mut both = golden.clone();
        both.metrics[0].mean = f64::NAN;
        let rep3 = check(&fresh, &both, DEFAULT_CHECK_Z).unwrap();
        assert!(rep3.ok(), "{rep3:?}");
    }

    #[test]
    fn check_flags_deterministic_metric_change_as_infinite_z() {
        let mut golden = sample();
        golden.metrics[1].std_err = 0.0;
        let mut fresh = golden.clone();
        fresh.metrics[1].std_err = 0.0;
        fresh.metrics[1].mean += 1.0;
        let rep = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap();
        assert_eq!(rep.regressions.len(), 1);
        assert!(rep.regressions[0].z.is_infinite());
    }

    #[test]
    fn check_reports_fresh_gate_failures() {
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.gates[0].passed = false;
        let rep = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.gate_failures, vec!["g/one".to_string()]);
    }

    #[test]
    fn check_errors_on_id_set_drift() {
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.metrics[0].id = "m/renamed".into();
        let err = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap_err();
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn check_errors_on_gate_id_drift() {
        // A fresh run that silently lost a theorem gate must not pass.
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.gates.clear();
        let err = check(&fresh, &golden, DEFAULT_CHECK_Z).unwrap_err();
        assert!(err.contains("gate id sets"), "{err}");
    }

    #[test]
    fn check_errors_on_scale_mismatch() {
        let golden = sample();
        let mut fresh = golden.clone();
        fresh.scale = "full".into();
        assert!(check(&fresh, &golden, DEFAULT_CHECK_Z)
            .unwrap_err()
            .contains("scale"));
    }

    #[test]
    fn exact_replay_has_zero_displacement() {
        let golden = sample();
        let rep = check(&golden.clone(), &golden, DEFAULT_CHECK_Z).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.worst_z, 0.0);
    }
}
