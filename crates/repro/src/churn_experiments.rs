//! The churn-robustness experiment and its gates (schema `paba-churn/1`).
//!
//! The paper's guarantees hold for a frozen placement; this suite asserts
//! the implementation degrades gracefully when the placement is *not*
//! frozen. Every run simulates the same seeded network three ways —
//! static baseline, churned with two-choices repair, churned with repair
//! disabled — against one seeded [`ChurnSchedule`], and gates:
//!
//! * **repair-on max load** is non-inferior to the static baseline
//!   (paired per-run differences, `z ≥ −Z_NONINF`);
//! * **repair-on placement mass** recovers to near the nominal `n·M`
//!   level once every cycled node has rejoined;
//! * **repair-off runs complete** with a bounded failed fraction — the
//!   stale directory degrades service, it must not collapse it;
//! * **failover is actually exercised** — a schedule too gentle to force
//!   dead-replica retries would make the other gates vacuous;
//! * **the schedule applies pressure** — ≥10% of nodes cycle and content
//!   inserts trigger capacity evictions in every run.

use crate::artifact::{Gate, Metric};
use crate::experiments::Z_NONINF;
use crate::ReproConfig;
use paba_churn::{simulate_churn, ChurnCfg, ChurnSchedule, RepairPolicy, ScheduleSpec};
use paba_core::{simulate_source, CacheNetwork, IidUniform, ProximityChoice, UncachedPolicy};
use paba_mcrunner::{run_parallel, run_parallel_live, summarize, LiveRun};
use paba_popularity::Popularity;
use paba_telemetry::{NullRecorder, Recorder};
use paba_theory::mean_gap_z;
use paba_topology::Torus;
use paba_util::envcfg::Scale;
use paba_util::mix_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Repair-off runs must complete at least this fraction of requests.
pub const MIN_COMPLETED_FRACTION: f64 = 0.75;
/// Non-inferiority margin for the repair-on max-load gate, as a fraction
/// of the static baseline mean. Sustained churn with immediate repair is
/// allowed a small systematic max-load penalty (re-homed replicas are
/// placed by cache occupancy, not by realized request load); beyond this
/// margin the degradation reads as a repair-quality regression.
pub const MAX_LOAD_MARGIN: f64 = 0.10;
/// Repair-on runs must retain at least this fraction of nominal `n·M`
/// cached mass after the last join has refilled.
pub const MIN_MASS_RATIO: f64 = 0.6;

/// Per-run metric layout produced by [`run_one`].
const N_METRICS: usize = 12;
const METRIC_IDS: [&str; N_METRICS] = [
    "churn/static/max_load",
    "churn/static/comm_cost",
    "churn/repaired/max_load",
    "churn/repaired/comm_cost",
    "churn/diff/max_load",
    "churn/repaired/migrations",
    "churn/repaired/mean_t_u_ratio",
    "churn/unrepaired/max_load",
    "churn/unrepaired/failed_fraction",
    "churn/unrepaired/retries_per_request",
    "churn/unrepaired/evictions",
    "churn/schedule/cycled_fraction",
];

/// CLI-facing overrides of the per-scale churn regime. `None` keeps the
/// scale default — the configuration the committed golden was generated
/// with. Overriding any knob still produces a valid `paba-churn/1`
/// artifact (same gate/metric ids), but `--check` against a
/// default-regime golden will rightly flag the changed behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ChurnParams {
    /// Torus side (n = side²).
    pub side: Option<u32>,
    /// Library size K.
    pub files: Option<u32>,
    /// Cache slots per server M.
    pub cache: Option<u32>,
    /// Zipf exponent of the request popularity (0 = uniform).
    pub gamma: Option<f64>,
    /// Two-choice proximity radius.
    pub radius: Option<u32>,
    /// Fraction of nodes cycled down and back up.
    pub cycle_fraction: Option<f64>,
    /// Of the cycled nodes, the fraction leaving gracefully vs crashing.
    pub graceful_fraction: Option<f64>,
    /// Content-insert events per run.
    pub inserts: Option<u32>,
    /// Repair policy of the repaired arm (the unrepaired arm is always
    /// [`RepairPolicy::None`]).
    pub repair: Option<RepairPolicy>,
    /// Dead-replica probes allowed per request before degraded serve.
    pub retry_budget: Option<u32>,
    /// Ring replica-set size for handoff/refill.
    pub replication: Option<u32>,
}

/// One churn-experiment parameterization.
struct Regime {
    side: u32,
    k: u32,
    m: u32,
    gamma: f64,
    radius: u32,
    repair: RepairPolicy,
    retry_budget: u32,
    replication: u32,
    spec: ScheduleSpec,
}

fn regime(scale: Scale, p: &ChurnParams) -> Regime {
    let (side, k, m, radius, inserts) = match scale {
        Scale::Quick => (12, 60, 6, 4, 16),
        Scale::Default => (20, 200, 8, 5, 40),
        Scale::Full => (28, 400, 10, 6, 80),
    };
    let defaults = ChurnCfg::default();
    Regime {
        side: p.side.unwrap_or(side),
        k: p.files.unwrap_or(k),
        m: p.cache.unwrap_or(m),
        gamma: p.gamma.unwrap_or(0.8),
        radius: p.radius.unwrap_or(radius),
        repair: p.repair.unwrap_or(RepairPolicy::TwoChoices),
        retry_budget: p.retry_budget.unwrap_or(defaults.retry_budget),
        replication: p.replication.unwrap_or(defaults.replication),
        spec: ScheduleSpec {
            cycle_fraction: p.cycle_fraction.unwrap_or(0.2),
            graceful_fraction: p.graceful_fraction.unwrap_or(0.5),
            inserts: p.inserts.unwrap_or(inserts),
        },
    }
}

fn arm<F>(seed: u64, regime: &Regime, f: F) -> [f64; N_METRICS]
where
    F: FnOnce(&mut CacheNetwork<Torus>, &mut SmallRng) -> [f64; N_METRICS],
{
    let mut rng = SmallRng::seed_from_u64(seed);
    let pop = if regime.gamma == 0.0 {
        Popularity::Uniform
    } else {
        Popularity::zipf(regime.gamma)
    };
    let mut net: CacheNetwork<Torus> = CacheNetwork::builder()
        .torus_side(regime.side)
        .library(regime.k, pop)
        .cache_size(regime.m)
        .build(&mut rng);
    f(&mut net, &mut rng)
}

/// One seeded network, three arms, one schedule → the metric row.
fn run_one<R: Recorder>(regime: &Regime, rng: &mut SmallRng, rec: &R) -> [f64; N_METRICS] {
    // Derive every arm's seed up front so arms stay independent of each
    // other's draw counts (and the row stays a pure function of `rng`).
    let net_seed: u64 = rng.gen();
    let schedule_seed: u64 = rng.gen();
    let run_seed: u64 = rng.gen();

    let n = regime.side * regime.side;
    let requests = 4 * n as u64;
    let schedule = ChurnSchedule::generate(&regime.spec, n, regime.k, requests, schedule_seed);
    let (crashes, leaves, _joins, _inserts) = schedule.counts();
    let cycled_fraction = (crashes + leaves) as f64 / n as f64;
    let nominal = n as u64 * regime.m as u64;

    let mut out = [0.0; N_METRICS];
    out[11] = cycled_fraction;

    // Arm 1: static baseline — identical network seed, no events.
    let sim_static = arm(net_seed, regime, |net, _| {
        let mut strategy = ProximityChoice::two_choice(Some(regime.radius));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut run_rng = SmallRng::seed_from_u64(run_seed);
        let rep = simulate_source(net, &mut strategy, &mut source, requests, &mut run_rng);
        let mut o = [0.0; N_METRICS];
        o[0] = rep.max_load() as f64;
        o[1] = rep.comm_cost();
        o
    });
    out[0] = sim_static[0];
    out[1] = sim_static[1];

    // Arm 2: churned, with active repair (two-choices by default).
    let repaired = arm(net_seed, regime, |net, _| {
        let cfg = ChurnCfg {
            repair: regime.repair,
            retry_budget: regime.retry_budget,
            replication: regime.replication,
            salt: schedule_seed,
            ..ChurnCfg::default()
        };
        let mut strategy = ProximityChoice::two_choice(Some(regime.radius));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut run_rng = SmallRng::seed_from_u64(run_seed);
        let (sim, churn) = simulate_churn(
            net,
            &mut strategy,
            &mut source,
            requests,
            &schedule,
            cfg,
            &mut run_rng,
            rec,
        );
        let mass: u64 = (0..net.n()).map(|u| net.placement().t_u(u) as u64).sum();
        let mut o = [0.0; N_METRICS];
        o[2] = sim.max_load() as f64;
        o[3] = sim.comm_cost();
        o[5] = churn.migrations as f64;
        o[6] = mass as f64 / nominal as f64;
        o
    });
    out[2] = repaired[2];
    out[3] = repaired[3];
    out[4] = repaired[2] - out[0]; // paired max-load difference
    out[5] = repaired[5];
    out[6] = repaired[6];

    // Arm 3: churned, repair off — stale directory, failover exercised.
    let unrepaired = arm(net_seed, regime, |net, _| {
        let cfg = ChurnCfg {
            repair: RepairPolicy::None,
            retry_budget: regime.retry_budget,
            replication: regime.replication,
            salt: schedule_seed,
            ..ChurnCfg::default()
        };
        let mut strategy = ProximityChoice::two_choice(Some(regime.radius));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut run_rng = SmallRng::seed_from_u64(run_seed);
        let (sim, churn) = simulate_churn(
            net,
            &mut strategy,
            &mut source,
            requests,
            &schedule,
            cfg,
            &mut run_rng,
            rec,
        );
        let mut o = [0.0; N_METRICS];
        o[7] = sim.max_load() as f64;
        o[8] = churn.failed as f64 / requests as f64;
        o[9] = churn.retries as f64 / requests as f64;
        o[10] = churn.evictions as f64;
        o
    });
    out[7] = unrepaired[7];
    out[8] = unrepaired[8];
    out[9] = unrepaired[9];
    out[10] = unrepaired[10];
    out
}

/// Monte-Carlo run count the suite will execute for `cfg` (for sizing
/// progress trackers before the run starts).
pub fn planned_runs(cfg: &ReproConfig) -> usize {
    cfg.runs(10, 24, 48)
}

/// The churn experiment at the scale-default regime.
pub fn churn(cfg: &ReproConfig, gates: &mut Vec<Gate>, metrics: &mut Vec<Metric>) {
    churn_with(cfg, &ChurnParams::default(), None, gates, metrics);
}

/// The churn experiment: metrics + the five robustness gates. `params`
/// overrides the scale-default regime; `live` (the `--serve-metrics`
/// path) shares one recorder across every worker so a concurrent scrape
/// sees churn events, retries, and repair migrations as they happen —
/// the recorder never touches the RNG stream, so results are identical
/// with or without it.
pub fn churn_with(
    cfg: &ReproConfig,
    params: &ChurnParams,
    live: Option<&LiveRun>,
    gates: &mut Vec<Gate>,
    metrics: &mut Vec<Metric>,
) {
    let regime = regime(cfg.scale, params);
    let runs = planned_runs(cfg);
    let master = mix_seed(cfg.seed, 0xC4234);
    let rows: Vec<[f64; N_METRICS]> = match live {
        Some(l) => run_parallel_live(runs, master, cfg.threads, l, |rec, _i, rng| {
            run_one(&regime, rng, rec)
        }),
        None => run_parallel(runs, master, cfg.threads, |_i, rng: &mut SmallRng| {
            run_one(&regime, rng, &NullRecorder)
        }),
    };

    let col = |i: usize| summarize(rows.iter().map(move |r| r[i]));
    let min_col = |i: usize| rows.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min);
    for (i, id) in METRIC_IDS.iter().enumerate() {
        let s = col(i);
        metrics.push(Metric {
            id: id.to_string(),
            mean: s.mean,
            std_err: s.std_err,
            runs: s.count,
        });
    }

    // Gate 1: repair-on max load non-inferior to static, on the paired
    // per-run differences (same network seed, same request seed). The
    // margin is absolute (a fraction of the static mean), so the gate
    // tests the *size* of the degradation and does not tighten as run
    // counts grow the way a pure-z comparison would.
    let diff = col(4);
    let stat = col(0);
    let rep = col(2);
    let margin = MAX_LOAD_MARGIN * stat.mean;
    let z = if diff.std_err > 0.0 {
        mean_gap_z(margin, 0.0, diff.mean, diff.std_err)
    } else if diff.mean <= margin {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    gates.push(Gate {
        id: "churn/repair-on/max-load-noninferior".into(),
        passed: z >= -Z_NONINF,
        statistic: z,
        threshold: -Z_NONINF,
        p_false_pass: f64::NAN,
        detail: format!(
            "paired max-load diff {:+.3}±{:.3} vs margin {margin:.3} \
             (static {:.2}, repaired {:.2} over {runs} runs); \
             churned may not exceed static+margin by more than {Z_NONINF} combined SE",
            diff.mean, diff.std_err, stat.mean, rep.mean
        ),
    });

    // Gate 2: repair restores cached mass on every run.
    let worst_mass = min_col(6);
    gates.push(Gate {
        id: "churn/repair-on/mass-restored".into(),
        passed: worst_mass >= MIN_MASS_RATIO,
        statistic: worst_mass,
        threshold: MIN_MASS_RATIO,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run cached mass after churn+repair: {:.3} of nominal n·M \
             (mean {:.3}, {} repair migrations/run)",
            worst_mass,
            col(6).mean,
            col(5).mean
        ),
    });

    // Gate 3: with repair off every run still completes the bulk of its
    // requests despite the stale directory.
    let worst_completed = 1.0 - rows.iter().map(|r| r[8]).fold(0.0, f64::max);
    gates.push(Gate {
        id: "churn/repair-off/completes-bounded".into(),
        passed: worst_completed >= MIN_COMPLETED_FRACTION,
        statistic: worst_completed,
        threshold: MIN_COMPLETED_FRACTION,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run completed fraction {:.3} with repair disabled \
             (mean failed fraction {:.4}, {:.3} retries/request)",
            worst_completed,
            col(8).mean,
            col(9).mean
        ),
    });

    // Gate 4: the failover path actually fired in every run — otherwise
    // the bounded-degradation gate asserts nothing.
    let worst_retries = min_col(9);
    gates.push(Gate {
        id: "churn/repair-off/failover-exercised".into(),
        passed: worst_retries > 0.0,
        statistic: worst_retries,
        threshold: f64::MIN_POSITIVE,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run dead-replica retries per request: {worst_retries:.4} \
             (mean {:.4}) — stale directories must be probed",
            col(9).mean
        ),
    });

    // Gate 5: the schedule applies real pressure — ≥10% of nodes cycle
    // and capacity evictions occur in every run.
    let worst_cycled = min_col(11);
    let worst_evictions = min_col(10);
    let pressure = (worst_cycled / 0.1).min(worst_evictions);
    gates.push(Gate {
        id: "churn/schedule/pressure".into(),
        passed: pressure >= 1.0,
        statistic: pressure,
        threshold: 1.0,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run cycled fraction {worst_cycled:.3} (needs ≥ 0.1), \
             worst-run capacity evictions {worst_evictions:.0} (needs ≥ 1)"
        ),
    });
}
