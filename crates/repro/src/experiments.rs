//! The three reproduction experiments and their theorem-derived gates.
//!
//! | experiment | paper result | gate |
//! |---|---|---|
//! | `growth` | Thm 1–2 vs Thm 4/6: Strategy I's max load grows like `Θ(log n / log log n)`, Strategy II's like `Θ(log log n)` | strategy ordering at the largest `n` + slope separation against the one-choice predictor |
//! | `tradeoff` | Thm 4 / §V: communication cost rises `Θ(r)` while max load falls as the ball widens | monotone cost ladder + load non-inferiority + end-to-end load win |
//! | `goodness` | Def. 5 / Lemma 2: proportional placement is `(δ, µ)`-good w.h.p. in the `K = n`, `M = n^α` regime | every sampled placement is good with margin |
//!
//! Every statistical gate is a standardized z-score with an explicit
//! false-pass bound from [`paba_theory::z_tail_bound`]; structural gates
//! (goodness, non-inferiority slacks) carry `NaN` there because no
//! sampling null applies.

use crate::artifact::{Gate, Metric};
use crate::ReproConfig;
use paba_core::{
    simulate, CacheNetwork, GoodnessReport, LeastLoadedInBall, NearestReplica, ProximityChoice,
    SimReport,
};
use paba_mcrunner::{run_parallel, summarize, sweep_summaries, PointSummary};
use paba_popularity::Popularity;
use paba_theory::{
    fit_vs_predictor_with_errors, fit_vs_two_choice_scale, mean_gap_z, one_choice_max_load,
    slope_gap_z, z_tail_bound,
};
use paba_topology::Torus;
use paba_util::envcfg::Scale;
use paba_util::{mix_seed, Summary};
use rand::rngs::SmallRng;

/// z threshold for strict ordering gates (`≫`): false-pass `≤ e⁻⁸ ≈ 3.4·10⁻⁴`.
pub const Z_ORDER: f64 = 4.0;
/// z threshold for monotone-ladder gates: false-pass `≤ e⁻⁴·⁵ ≈ 1.1·10⁻²`
/// per adjacent pair (every pair must clear it).
pub const Z_MONO: f64 = 3.0;
/// z threshold for the slope-separation gate.
pub const Z_SEP: f64 = 3.0;
/// Non-inferiority slack for `≳` comparisons, in combined standard errors.
pub const Z_NONINF: f64 = 2.0;

/// The four per-run metrics every simulation experiment records.
const METRIC_NAMES: [&str; 4] = ["max_load", "comm_cost", "p99_load", "load_stddev"];

fn fill_metrics(report: &SimReport, m: &mut [f64]) {
    m[0] = report.max_load() as f64;
    m[1] = report.comm_cost();
    m[2] = report.load_quantile(0.99) as f64;
    m[3] = report.load_stddev();
}

/// Cache size for the growth regime: `M = ⌈n^0.4⌉` (the paper's
/// `M = n^α` with `α = 0.4`, comfortably inside Lemma 2's `α < 1/2`).
fn growth_m(n: u32) -> u32 {
    (n as f64).powf(0.4).ceil() as u32
}

/// The "√log n-ish" radius ladder rung: `r = ⌈2·√(ln n)⌉`.
fn r_log(n: u32) -> u32 {
    (2.0 * (n as f64).ln().sqrt()).ceil() as u32
}

/// Strategy variants of the growth experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    /// Strategy I.
    Nearest,
    /// Strategy II (two choices) with `r = ⌈2√(ln n)⌉`.
    TwoRLog,
    /// Strategy II with constant `r = 3`.
    TwoRConst,
    /// Strategy II with `r = ∞`.
    TwoRInf,
    /// Full-information least-loaded-in-ball with `r = ⌈2√(ln n)⌉`.
    LeastRLog,
}

const VARIANTS: [Variant; 5] = [
    Variant::Nearest,
    Variant::TwoRLog,
    Variant::TwoRConst,
    Variant::TwoRInf,
    Variant::LeastRLog,
];

impl Variant {
    fn label(self) -> &'static str {
        match self {
            Variant::Nearest => "nearest",
            Variant::TwoRLog => "two-rlog",
            Variant::TwoRConst => "two-rconst",
            Variant::TwoRInf => "two-rinf",
            Variant::LeastRLog => "least-rlog",
        }
    }

    fn simulate(self, net: &CacheNetwork<Torus>, requests: u64, rng: &mut SmallRng) -> SimReport {
        match self {
            Variant::Nearest => {
                let mut s = NearestReplica::new();
                simulate(net, &mut s, requests, rng)
            }
            Variant::TwoRLog => {
                let mut s = ProximityChoice::two_choice(Some(r_log(net.n())));
                simulate(net, &mut s, requests, rng)
            }
            Variant::TwoRConst => {
                let mut s = ProximityChoice::two_choice(Some(3));
                simulate(net, &mut s, requests, rng)
            }
            Variant::TwoRInf => {
                let mut s = ProximityChoice::two_choice(None);
                simulate(net, &mut s, requests, rng)
            }
            Variant::LeastRLog => {
                let mut s = LeastLoadedInBall::new(Some(r_log(net.n())));
                simulate(net, &mut s, requests, rng)
            }
        }
    }
}

/// Summary of one metric for one `(variant, side)` cell.
fn cell<'a>(
    sums: &'a [PointSummary<(u32, usize)>],
    sides: &[u32],
    variant: Variant,
    side: u32,
    metric: usize,
) -> &'a Summary {
    let vi = VARIANTS.iter().position(|&v| v == variant).expect("known");
    let si = sides.iter().position(|&s| s == side).expect("known");
    let point = &sums[si * VARIANTS.len() + vi];
    debug_assert_eq!(point.param, (side, vi));
    &point.metrics[metric]
}

fn push_z_gate(
    gates: &mut Vec<Gate>,
    id: &str,
    z: f64,
    threshold: f64,
    p_false_pass: f64,
    detail: String,
) {
    gates.push(Gate {
        id: id.to_string(),
        passed: z >= threshold,
        statistic: z,
        threshold,
        p_false_pass,
        detail,
    });
}

/// Experiment (a): max load vs `n` per strategy — the growth-separation
/// headline (Theorems 1–2 vs 4/6).
pub fn growth(cfg: &ReproConfig, gates: &mut Vec<Gate>, metrics: &mut Vec<Metric>) {
    let sides: Vec<u32> = match cfg.scale {
        Scale::Quick => vec![12, 16, 22, 30, 40],
        Scale::Default => vec![16, 24, 32, 44, 60, 80],
        Scale::Full => vec![24, 32, 48, 64, 96, 128, 180],
    };
    let runs = cfg.runs(36, 60, 100);

    // One flat sweep over the (side, variant) grid; each run builds its own
    // placement from the point-derived RNG (K = n, M = n^0.4, uniform
    // popularity, n requests — the paper's delivery phase).
    let points: Vec<(u32, usize)> = sides
        .iter()
        .flat_map(|&s| (0..VARIANTS.len()).map(move |vi| (s, vi)))
        .collect();
    let sums = sweep_summaries(
        &points,
        runs,
        METRIC_NAMES.len(),
        mix_seed(cfg.seed, 0xA11),
        cfg.threads,
        cfg.verbose,
        |&(side, vi), _run, rng, m| {
            let n = side * side;
            let net: CacheNetwork<Torus> = CacheNetwork::builder()
                .torus_side(side)
                .library(n, Popularity::Uniform)
                .cache_size(growth_m(n))
                .build(rng);
            let report = VARIANTS[vi].simulate(&net, n as u64, rng);
            fill_metrics(&report, m);
        },
    );

    for point in &sums {
        let (side, vi) = point.param;
        for (mi, name) in METRIC_NAMES.iter().enumerate() {
            let s = &point.metrics[mi];
            metrics.push(Metric {
                id: format!("growth/{}/side{}/{}", VARIANTS[vi].label(), side, name),
                mean: s.mean,
                std_err: s.std_err,
                runs: s.count,
            });
        }
    }

    // Gate: strategy ordering at the largest n — nearest ≫ two-choice(∞).
    let top = *sides.last().expect("non-empty side ladder");
    let near = cell(&sums, &sides, Variant::Nearest, top, 0);
    let two_inf = cell(&sums, &sides, Variant::TwoRInf, top, 0);
    let z = mean_gap_z(near.mean, near.std_err, two_inf.mean, two_inf.std_err);
    push_z_gate(
        gates,
        "growth/ordering/nearest-vs-two-rinf",
        z,
        Z_ORDER,
        z_tail_bound(Z_ORDER),
        format!(
            "max load at side {top}: nearest {:.2}±{:.2} vs two-choice(r=inf) {:.2}±{:.2}",
            near.mean, near.std_err, two_inf.mean, two_inf.std_err
        ),
    );

    // Same ordering must show in the tail of the load distribution.
    let near99 = cell(&sums, &sides, Variant::Nearest, top, 2);
    let two99 = cell(&sums, &sides, Variant::TwoRInf, top, 2);
    let z99 = mean_gap_z(near99.mean, near99.std_err, two99.mean, two99.std_err);
    push_z_gate(
        gates,
        "growth/ordering/p99-nearest-vs-two-rinf",
        z99,
        Z_ORDER,
        z_tail_bound(Z_ORDER),
        format!(
            "p99 load at side {top}: nearest {:.2}±{:.2} vs two-choice(r=inf) {:.2}±{:.2}",
            near99.mean, near99.std_err, two99.mean, two99.std_err
        ),
    );

    // Gate: proximity-d-choices ≳ least-loaded-in-ball (full information
    // buys little over two random probes — the power-of-two punchline).
    let two_log = cell(&sums, &sides, Variant::TwoRLog, top, 0);
    let least = cell(&sums, &sides, Variant::LeastRLog, top, 0);
    let z_ni = mean_gap_z(two_log.mean, two_log.std_err, least.mean, least.std_err);
    push_z_gate(
        gates,
        "growth/ordering/least-noninferior-to-two",
        z_ni,
        -Z_NONINF,
        f64::NAN,
        format!(
            "max load at side {top}: two-choice(r=log) {:.2}±{:.2} vs least-loaded {:.2}±{:.2} \
             (least may not exceed two-choice by more than {Z_NONINF} combined SE)",
            two_log.mean, two_log.std_err, least.mean, least.std_err
        ),
    );

    // Gate: growth-shape separation. Fit each strategy's mean max load
    // against the one-choice predictor ln n / ln ln n: Strategy I must have
    // a positive, significant slope; Strategy II (r = ∞) must be much
    // flatter against the same predictor. Slope uncertainty is propagated
    // from the per-point Monte-Carlo standard errors (residual-based
    // errors on a handful of sweep points are mostly chance).
    let curve = |variant: Variant| -> (Vec<(f64, f64)>, Vec<f64>) {
        sides
            .iter()
            .map(|&s| {
                let n = (s as u64 * s as u64) as f64;
                let c = cell(&sums, &sides, variant, s, 0);
                ((n, c.mean), c.std_err)
            })
            .unzip()
    };
    let (near_pts, near_ses) = curve(Variant::Nearest);
    let (two_pts, two_ses) = curve(Variant::TwoRInf);
    let fit_near =
        fit_vs_predictor_with_errors(&near_pts, &near_ses, one_choice_max_load).expect("≥2 points");
    let fit_two =
        fit_vs_predictor_with_errors(&two_pts, &two_ses, one_choice_max_load).expect("≥2 points");
    let fit_two_ll = fit_vs_two_choice_scale(&two_pts).expect("≥2 points");
    for (label, fit) in [("nearest", &fit_near), ("two-rinf", &fit_two)] {
        metrics.push(Metric {
            id: format!("growth/{label}/fit/slope-vs-one-choice"),
            mean: fit.slope,
            std_err: fit.slope_std_err,
            runs: fit.n as u64,
        });
    }
    // (The R² of the two-choice curve against its own ln ln n predictor is
    // reported in the gate detail only: it is a diagnostic without a
    // meaningful standard error, so it has no place in the statistically
    // diffed metric set.)
    let z_pos = if fit_near.slope_std_err > 0.0 {
        fit_near.slope / fit_near.slope_std_err
    } else if fit_near.slope > 0.0 {
        f64::INFINITY
    } else {
        f64::NEG_INFINITY
    };
    let z_sep = slope_gap_z(&fit_near, &fit_two);
    push_z_gate(
        gates,
        "growth/separation/log-vs-loglog",
        z_pos.min(z_sep),
        Z_SEP,
        z_tail_bound(Z_SEP),
        format!(
            "slope vs (ln n/ln ln n): nearest {:.2}±{:.2}, two-choice(r=inf) {:.2}±{:.2} \
             (two-choice vs ln ln n: R²={:.3})",
            fit_near.slope,
            fit_near.slope_std_err,
            fit_two.slope,
            fit_two.slope_std_err,
            fit_two_ll.r_squared
        ),
    );
}

/// Experiment (b): the communication-cost / max-load trade-off across the
/// proximity radius `r` (Theorem 4 / §V).
pub fn tradeoff(cfg: &ReproConfig, gates: &mut Vec<Gate>, metrics: &mut Vec<Metric>) {
    // Rungs are spaced so every adjacent cost gap is many standard errors
    // wide even at quick scale (r = 2 vs r = 4 barely differ: both mostly
    // fall back to the nearest replica in this replication regime).
    let (side, radii): (u32, Vec<Option<u32>>) = match cfg.scale {
        Scale::Quick => (24, vec![Some(2), Some(6), Some(10), None]),
        Scale::Default => (40, vec![Some(2), Some(6), Some(12), Some(20), None]),
        Scale::Full => (60, vec![Some(2), Some(6), Some(12), Some(24), None]),
    };
    let (k, m) = (500u32, 10u32);
    let runs = cfg.runs(30, 60, 120);
    let n = side * side;

    let sums = sweep_summaries(
        &radii,
        runs,
        METRIC_NAMES.len(),
        mix_seed(cfg.seed, 0x7AD),
        cfg.threads,
        cfg.verbose,
        |&radius, _run, rng, out| {
            let net: CacheNetwork<Torus> = CacheNetwork::builder()
                .torus_side(side)
                .library(k, Popularity::Uniform)
                .cache_size(m)
                .build(rng);
            let mut s = ProximityChoice::two_choice(radius);
            let report = simulate(&net, &mut s, n as u64, rng);
            fill_metrics(&report, out);
        },
    );

    let r_label = |r: Option<u32>| r.map_or("inf".to_string(), |r| r.to_string());
    for point in &sums {
        for (mi, name) in METRIC_NAMES.iter().enumerate() {
            let s = &point.metrics[mi];
            metrics.push(Metric {
                id: format!("tradeoff/r{}/{}", r_label(point.param), name),
                mean: s.mean,
                std_err: s.std_err,
                runs: s.count,
            });
        }
    }

    // Gate: communication cost strictly increases along the radius ladder.
    let cost = |i: usize| &sums[i].metrics[1];
    let load = |i: usize| &sums[i].metrics[0];
    let mut z_cost = f64::INFINITY;
    let mut z_load = f64::INFINITY;
    for i in 0..sums.len() - 1 {
        let (a, b) = (cost(i), cost(i + 1));
        z_cost = z_cost.min(mean_gap_z(b.mean, b.std_err, a.mean, a.std_err));
        let (la, lb) = (load(i), load(i + 1));
        // Weakly decreasing: load(r_{i+1}) may not exceed load(r_i).
        z_load = z_load.min(mean_gap_z(la.mean, la.std_err, lb.mean, lb.std_err));
    }
    let ladder: Vec<String> = sums
        .iter()
        .map(|p| {
            format!(
                "r={}: C={:.2} L={:.2}",
                r_label(p.param),
                p.metrics[1].mean,
                p.metrics[0].mean
            )
        })
        .collect();
    push_z_gate(
        gates,
        "tradeoff/cost-monotone-in-r",
        z_cost,
        Z_MONO,
        z_tail_bound(Z_MONO),
        format!(
            "adjacent cost gaps all ≥ {Z_MONO} SE: {}",
            ladder.join(", ")
        ),
    );
    push_z_gate(
        gates,
        "tradeoff/load-noninferior-in-r",
        z_load,
        -Z_NONINF,
        f64::NAN,
        format!(
            "load may never rise by more than {Z_NONINF} combined SE as r grows: {}",
            ladder.join(", ")
        ),
    );

    // Gate: the trade actually pays — the widest ball beats the narrowest
    // on max load by a decisive margin.
    let first = load(0);
    let last = load(sums.len() - 1);
    let z_win = mean_gap_z(first.mean, first.std_err, last.mean, last.std_err);
    push_z_gate(
        gates,
        "tradeoff/load-improves-with-r",
        z_win,
        Z_ORDER,
        z_tail_bound(Z_ORDER),
        format!(
            "max load r={}: {:.2}±{:.2} vs r={}: {:.2}±{:.2}",
            r_label(radii[0]),
            first.mean,
            first.std_err,
            r_label(*radii.last().expect("non-empty")),
            last.mean,
            last.std_err
        ),
    );
}

/// Experiment (c): sparse-placement goodness preconditions (Definition 5
/// / Lemma 2) — the hypothesis under which Theorem 4's load bound holds.
pub fn goodness(cfg: &ReproConfig, gates: &mut Vec<Gate>, metrics: &mut Vec<Metric>) {
    let side: u32 = match cfg.scale {
        Scale::Quick => 24,
        Scale::Default => 32,
        Scale::Full => 48,
    };
    let seeds = cfg.runs(12, 20, 40);
    let alpha = 0.3f64;
    let n = side * side;
    let m = (n as f64).powf(alpha).round().max(1.0) as u32;
    let delta = paba_theory::goodness_delta(alpha);
    let mu = paba_theory::goodness_mu(alpha);

    // (min t(u), max t(u,v), uncached fraction) per sampled placement.
    let reports: Vec<(u32, u32, f64)> = run_parallel(
        seeds,
        mix_seed(cfg.seed, 0x600D),
        cfg.threads,
        |_i, rng: &mut SmallRng| {
            let net: CacheNetwork<Torus> = CacheNetwork::builder()
                .torus_side(side)
                .library(n, Popularity::Uniform)
                .cache_size(m)
                .build(rng);
            let rep = GoodnessReport::measure(&net, Some(4));
            let uncached = net.placement().uncached_files() as f64 / n as f64;
            (rep.min_t_u, rep.max_t_uv, uncached)
        },
    );

    for (name, value) in [
        ("min_t_u", summarize(reports.iter().map(|r| r.0 as f64))),
        ("max_t_uv", summarize(reports.iter().map(|r| r.1 as f64))),
        ("uncached_fraction", summarize(reports.iter().map(|r| r.2))),
    ] {
        metrics.push(Metric {
            id: format!("goodness/{name}"),
            mean: value.mean,
            std_err: value.std_err,
            runs: value.count,
        });
    }

    // Structural gate: every sampled placement is (δ, µ)-good. Pass/fail
    // uses Definition 5 verbatim — `t(u) ≥ δM` and the *strict* `t(u,v)
    // < µ` (same predicate as `GoodnessReport::is_good`) — so a placement
    // with t(u,v) = 12 under µ = 12.5 passes. The statistic is the worst
    // seed's margin ratio min(t(u)/(δM), µ/t(u,v)), reported for trend
    // watching; at the strict boundary (ratio exactly 1 with t(u,v) = µ)
    // `passed` is the authority, not the ratio.
    let all_good = reports.iter().all(|&(min_t_u, max_t_uv, _)| {
        min_t_u as f64 >= delta * m as f64 && (max_t_uv as f64) < mu
    });
    let margin = reports
        .iter()
        .map(|&(min_t_u, max_t_uv, _)| {
            let t_ratio = min_t_u as f64 / (delta * m as f64);
            let mu_ratio = mu / (max_t_uv as f64).max(1.0);
            t_ratio.min(mu_ratio)
        })
        .fold(f64::INFINITY, f64::min);
    let worst_t = reports.iter().map(|r| r.0).min().unwrap_or(0);
    let worst_uv = reports.iter().map(|r| r.1).max().unwrap_or(u32::MAX);
    gates.push(Gate {
        id: "goodness/lemma2-regime".into(),
        passed: all_good,
        statistic: margin,
        threshold: 1.0,
        p_false_pass: f64::NAN,
        detail: format!(
            "K=n={n}, M={m} (α={alpha}): min t(u)={worst_t} (needs ≥ δM={:.2}), \
             max t(u,v)={worst_uv} (needs < µ={mu:.2}) over {seeds} placements",
            delta * m as f64
        ),
    });
}
