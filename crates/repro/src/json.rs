//! Minimal JSON reader for the golden-artifact diff mode.
//!
//! The workspace is dependency-free by policy (no serde), but `--check`
//! must read back a `BENCH_repro.json` it (or an earlier build) wrote. This
//! is a small recursive-descent parser for the full JSON grammar — objects,
//! arrays, strings with escapes, numbers, booleans, null — erring on the
//! side of strictness: trailing garbage, unterminated literals, and
//! malformed escapes are all hard errors naming the byte offset.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer token, kept exact (u64 seeds exceed the
    /// 2⁵³ range where doubles stay faithful).
    Int(u64),
    /// Any other number (doubles).
    Num(f64),
    /// A string literal, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order ([`Json::get`] returns the first
    /// match; our writer never emits duplicate keys).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, treating `null` as NaN (the writer emits `null` for
    /// non-finite statistics).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Exact unsigned integer value. `Int` tokens pass through losslessly;
    /// a `Num` qualifies only when it is integral and within the range
    /// doubles represent exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => Some(*x as u64),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Nesting cap: recursion must return a parse error, not blow the stack,
/// on a corrupted/hostile document of `[[[[…`. Artifacts nest 3 deep.
const MAX_DEPTH: u32 = 64;

/// Parse a complete JSON document.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    if depth > MAX_DEPTH {
        return Err(format!(
            "nesting deeper than {MAX_DEPTH} at byte {pos}",
            pos = *pos
        ));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos, depth),
        Some(b'[') => parse_arr(b, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ascii number bytes");
    // Plain digit runs stay exact u64 (seeds overflow the f64-faithful
    // 2⁵³ range); everything else becomes a double.
    if text.bytes().all(|c| c.is_ascii_digit()) {
        if let Ok(i) = text.parse::<u64>() {
            return Ok(Json::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "non-ascii \\u escape")?,
                            16,
                        )
                        .map_err(|_| "invalid \\u escape")?;
                        // Surrogate pairs are not needed for our artifacts;
                        // reject rather than mis-decode.
                        out.push(
                            char::from_u32(code).ok_or("surrogate in \\u escape unsupported")?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&byte) if byte < 0x80 => {
                out.push(byte as char);
                *pos += 1;
            }
            Some(_) => {
                // Consume one multi-byte UTF-8 scalar. Validate at most the
                // next 4 bytes (a window cut mid-sequence still yields the
                // leading scalar via valid_up_to), keeping parsing linear.
                let chunk = &b[*pos..(*pos + 4).min(b.len())];
                let s = match std::str::from_utf8(chunk) {
                    Ok(s) => s,
                    Err(e) if e.valid_up_to() > 0 => {
                        std::str::from_utf8(&chunk[..e.valid_up_to()]).expect("validated prefix")
                    }
                    Err(_) => return Err("invalid utf-8 in string".into()),
                };
                let c = s.chars().next().expect("non-empty by valid_up_to guard");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize, depth: u32) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Emission helpers now live in `paba_util::json` so writer crates that
/// sit *below* this one in the dependency graph (telemetry, bench) can use
/// them; re-exported here to keep the original API.
///
/// `num` emits a finite `f64`, or `null` for NaN/±∞ (JSON has no
/// non-finite numbers; [`Json::as_f64`] maps `null` back to NaN).
pub use paba_util::json::{escape, num};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn nested_structure() {
        let doc = r#"{"a": [1, 2, {"b": "x", "c": null}], "d": false}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("d").unwrap().as_bool(), Some(false));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[1].as_f64(), Some(2.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert!(arr[2].get("c").unwrap().as_f64().unwrap().is_nan());
    }

    #[test]
    fn string_escapes_round_trip() {
        let raw = "a\"b\\c\nd\te\u{1f}";
        let doc = format!("\"{}\"", escape(raw));
        assert_eq!(parse(&doc).unwrap(), Json::Str(raw.into()));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(parse("\"λ≈é\"").unwrap(), Json::Str("λ≈é".into()));
        assert_eq!(parse("\"\\u03bb\"").unwrap(), Json::Str("λ".into()));
    }

    #[test]
    fn errors_are_loud() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2⁶⁴−1 would corrupt through an f64 detour; Int keeps it exact.
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        // as_u64 on doubles: integral-in-range passes, else None.
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Null.as_u64(), None);
    }

    #[test]
    fn num_emits_null_for_nonfinite() {
        assert_eq!(num(1.25), "1.25");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse("{ }").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // Within the cap: fine.
        let ok = format!("{}1{}", "[".repeat(60), "]".repeat(60));
        assert!(parse(&ok).is_ok());
        // Far beyond it: a parse error, not a stack overflow.
        let bomb = "[".repeat(200_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        let obj_bomb = "{\"k\":".repeat(100_000);
        assert!(parse(&obj_bomb).unwrap_err().contains("nesting"));
    }
}
