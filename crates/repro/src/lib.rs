//! # paba-repro — the statistical paper-reproduction suite.
//!
//! Every other crate in this workspace makes the simulator *faster* or
//! *broader*; this one proves it still *reproduces the paper*. It runs the
//! headline results of Pourmiri, Jafari Siavoshani & Shariatpanahi (IPDPS
//! 2017) as parameterized Monte-Carlo sweeps and turns each theorem's
//! qualitative claim into a **gate**: a standardized statistic with an
//! explicit threshold and an explicit bound on the probability that a
//! broken implementation slips past.
//!
//! Three experiments (see [`experiments`]):
//!
//! 1. **growth** — max load vs `n` for Strategy I, Strategy II at
//!    `r ∈ {⌈2√(ln n)⌉, const, ∞}`, and least-loaded-in-ball; gates the
//!    `Θ(log n / log log n)` vs `Θ(log log n)` separation and the
//!    strategy ordering `nearest ≫ two-choice ≳ least-loaded`.
//! 2. **tradeoff** — communication cost vs max load across the radius
//!    ladder; gates the monotone trade-off curve.
//! 3. **goodness** — Lemma 2's `(δ, µ)`-goodness preconditions on sparse
//!    proportional placements.
//!
//! The suite emits a versioned [`artifact::Artifact`]
//! (`BENCH_repro.json`, schema `paba-repro/1`), and `--check` diffs a
//! fresh run against a committed golden within statistical tolerance —
//! distinguishing RNG-reshuffle *noise* from behavioral *regression*
//! (see [`artifact::check`]). Every scale/speed PR runs through this
//! suite in CI.

pub mod artifact;
pub mod churn_experiments;
pub mod experiments;
pub mod json;
pub mod queueing_experiments;

pub use artifact::{check, Artifact, CheckReport, Gate, Metric, DEFAULT_CHECK_Z, SCHEMA};

use paba_util::envcfg::Scale;
use paba_util::Table;

/// Configuration of one suite run.
#[derive(Clone, Copy, Debug)]
pub struct ReproConfig {
    /// Grid scale (quick = CI-sized, full = paper-sized).
    pub scale: Scale,
    /// Master seed; all experiments derive per-experiment seeds from it.
    pub seed: u64,
    /// Override every experiment's Monte-Carlo run count.
    pub runs_override: Option<usize>,
    /// Worker threads (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Emit sweep progress on stderr.
    pub verbose: bool,
}

impl ReproConfig {
    /// Config at `scale` with the workspace default seed.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            seed: paba_util::envcfg::DEFAULT_SEED,
            runs_override: None,
            threads: None,
            verbose: false,
        }
    }

    /// Resolve a run count: the override if set, else by scale.
    pub(crate) fn runs(&self, quick: usize, default: usize, full: usize) -> usize {
        self.runs_override.unwrap_or(match self.scale {
            Scale::Quick => quick,
            Scale::Default => default,
            Scale::Full => full,
        })
    }
}

/// Run the full suite and assemble the artifact.
pub fn run_suite(cfg: &ReproConfig) -> Artifact {
    let mut gates = Vec::new();
    let mut metrics = Vec::new();
    experiments::growth(cfg, &mut gates, &mut metrics);
    experiments::tradeoff(cfg, &mut gates, &mut metrics);
    experiments::goodness(cfg, &mut gates, &mut metrics);
    Artifact {
        schema: SCHEMA.into(),
        seed: cfg.seed,
        scale: artifact::scale_label(cfg.scale).into(),
        gates,
        metrics,
    }
}

/// Run the churn-robustness suite and assemble its artifact
/// (`BENCH_churn.json`, schema `paba-churn/1`).
pub fn run_churn_suite(cfg: &ReproConfig) -> Artifact {
    run_churn_suite_with(cfg, &churn_experiments::ChurnParams::default(), None)
}

/// [`run_churn_suite`] with regime overrides and an optional live
/// observability handle (see [`churn_experiments::churn_with`]).
pub fn run_churn_suite_with(
    cfg: &ReproConfig,
    params: &churn_experiments::ChurnParams,
    live: Option<&paba_mcrunner::LiveRun>,
) -> Artifact {
    let mut gates = Vec::new();
    let mut metrics = Vec::new();
    churn_experiments::churn_with(cfg, params, live, &mut gates, &mut metrics);
    Artifact {
        schema: paba_util::schema::CHURN.into(),
        seed: cfg.seed,
        scale: artifact::scale_label(cfg.scale).into(),
        gates,
        metrics,
    }
}

/// Run the temporal queueing suite and assemble its artifact
/// (`BENCH_queueing.json`, schema `paba-queueing/1`).
pub fn run_queueing_suite(cfg: &ReproConfig) -> Artifact {
    run_queueing_suite_with(cfg, &queueing_experiments::QueueingParams::default(), None)
}

/// [`run_queueing_suite`] with regime overrides and an optional live
/// observability handle (see [`queueing_experiments::queueing_with`]).
pub fn run_queueing_suite_with(
    cfg: &ReproConfig,
    params: &queueing_experiments::QueueingParams,
    live: Option<&paba_mcrunner::LiveRun>,
) -> Artifact {
    let mut gates = Vec::new();
    let mut metrics = Vec::new();
    queueing_experiments::queueing_with(cfg, params, live, &mut gates, &mut metrics);
    Artifact {
        schema: paba_util::schema::QUEUEING.into(),
        seed: cfg.seed,
        scale: artifact::scale_label(cfg.scale).into(),
        gates,
        metrics,
    }
}

/// Render the gate results as the standard bench table.
pub fn gates_table(a: &Artifact) -> Table {
    let mut t = Table::new(["gate", "passed", "statistic", "threshold", "p(false pass)"]);
    for g in &a.gates {
        t.push_row([
            g.id.clone(),
            if g.passed { "yes" } else { "NO" }.to_string(),
            format!("{:.3}", g.statistic),
            format!("{:.3}", g.threshold),
            if g.p_false_pass.is_nan() {
                "-".to_string()
            } else {
                format!("{:.2e}", g.p_false_pass)
            },
        ]);
    }
    t
}

/// Render the golden-diff outcome as a table (worst displacements first).
pub fn check_table(rep: &CheckReport) -> Table {
    let mut t = Table::new(["check", "value"]);
    t.push_row(["metrics compared".to_string(), format!("{}", rep.compared)]);
    t.push_row([
        "noise/regression z".to_string(),
        format!("{:.1}", rep.z_threshold),
    ]);
    t.push_row([
        "worst displacement".to_string(),
        if rep.worst_z.is_nan() {
            "-".to_string()
        } else {
            format!("z={:.2} ({})", rep.worst_z, rep.worst_id)
        },
    ]);
    t.push_row([
        "regressions".to_string(),
        format!("{}", rep.regressions.len()),
    ]);
    for d in rep.regressions.iter().take(10) {
        t.push_row([
            format!("  {}", d.id),
            format!(
                "golden {:.4} → fresh {:.4} (z={:.1})",
                d.golden_mean, d.fresh_mean, d.z
            ),
        ]);
    }
    t.push_row([
        "fresh gate failures".to_string(),
        if rep.gate_failures.is_empty() {
            "none".to_string()
        } else {
            rep.gate_failures.join(", ")
        },
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick suite itself, end to end: every gate must pass, the
    /// artifact must round-trip, and a self-check against its own output
    /// must be clean. This is the crate's own tier-1 anchor; CI's
    /// `repro-smoke` job additionally diffs against the committed golden.
    #[test]
    fn quick_suite_passes_and_round_trips() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        // Trim runs for test wall-clock; gates are designed to clear
        // their thresholds with margin even at reduced replication.
        cfg.runs_override = Some(12);
        let a = run_suite(&cfg);
        for g in &a.gates {
            assert!(
                g.passed,
                "gate {} failed: statistic {:.3} < threshold {:.3} ({})",
                g.id, g.statistic, g.threshold, g.detail
            );
        }
        assert!(!a.metrics.is_empty());
        // Metric ids are unique.
        let mut ids: Vec<&str> = a.metrics.iter().map(|m| m.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.metrics.len(), "duplicate metric ids");

        // Round trip compared via JSON: `Artifact` equality is NaN-hostile
        // (structural gates carry a NaN false-pass bound, and NaN ≠ NaN).
        let round = Artifact::from_json(&a.to_json()).unwrap();
        assert_eq!(round.to_json(), a.to_json());

        let rep = check(&a, &round, DEFAULT_CHECK_Z).unwrap();
        assert!(rep.ok());
        assert_eq!(rep.worst_z, 0.0);

        // Tables render without panicking and carry every gate.
        assert_eq!(gates_table(&a).to_csv().lines().count(), a.gates.len() + 1);
        let _ = check_table(&rep).to_markdown();
    }

    #[test]
    fn suite_is_deterministic_in_seed_and_thread_count() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(3);
        cfg.threads = Some(1);
        let a = run_suite(&cfg);
        cfg.threads = Some(8);
        let b = run_suite(&cfg);
        // JSON form: bitwise-identical output, NaN fields included.
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn quick_churn_suite_passes_and_round_trips() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(8);
        let a = run_churn_suite(&cfg);
        assert_eq!(a.schema, paba_util::schema::CHURN);
        for g in &a.gates {
            assert!(
                g.passed,
                "gate {} failed: statistic {:.3} < threshold {:.3} ({})",
                g.id, g.statistic, g.threshold, g.detail
            );
        }
        let round = Artifact::from_json_expecting(&a.to_json(), paba_util::schema::CHURN).unwrap();
        assert_eq!(round.to_json(), a.to_json());
        let rep = check(&a, &round, DEFAULT_CHECK_Z).unwrap();
        assert!(rep.ok());
    }

    #[test]
    fn churn_suite_live_recorder_is_transparent() {
        // A shared live recorder must not perturb the artifact (it never
        // touches the RNG stream), and the churn counters must flow.
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(3);
        let plain = run_churn_suite(&cfg);
        let live = paba_mcrunner::LiveRun::new(3, false);
        let observed = run_churn_suite_with(
            &cfg,
            &churn_experiments::ChurnParams::default(),
            Some(&live),
        );
        assert_eq!(plain.metrics, observed.metrics);
        assert_eq!(plain.gates.len(), observed.gates.len());
        for (a, b) in plain.gates.iter().zip(&observed.gates) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.passed, b.passed);
            assert_eq!(a.statistic.to_bits(), b.statistic.to_bits());
        }
        let snap = live.recorder.snapshot();
        assert!(snap.counter(paba_telemetry::Counter::ChurnEvent) > 0);
        assert!(snap.counter(paba_telemetry::Counter::DeadReplicaRetry) > 0);
    }

    #[test]
    fn churn_params_override_changes_the_regime() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(2);
        let kill_heavy = churn_experiments::ChurnParams {
            graceful_fraction: Some(0.0),
            cycle_fraction: Some(0.3),
            ..Default::default()
        };
        let a = run_churn_suite_with(&cfg, &kill_heavy, None);
        let b = run_churn_suite(&cfg);
        // More crashes, same metric ids — the artifacts stay comparable
        // but the measured behavior differs.
        assert_eq!(
            a.metrics.iter().map(|m| &m.id).collect::<Vec<_>>(),
            b.metrics.iter().map(|m| &m.id).collect::<Vec<_>>()
        );
        assert_ne!(a.metrics, b.metrics);
        let cycled = |art: &Artifact| {
            art.metrics
                .iter()
                .find(|m| m.id == "churn/schedule/cycled_fraction")
                .expect("metric present")
                .mean
        };
        assert!(cycled(&a) > cycled(&b));
    }

    #[test]
    fn churn_suite_is_deterministic_in_thread_count() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(4);
        cfg.threads = Some(1);
        let a = run_churn_suite(&cfg);
        cfg.threads = Some(8);
        let b = run_churn_suite(&cfg);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn quick_queueing_suite_passes_and_round_trips() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(8);
        let a = run_queueing_suite(&cfg);
        assert_eq!(a.schema, paba_util::schema::QUEUEING);
        for g in &a.gates {
            assert!(
                g.passed,
                "gate {} failed: statistic {:.3} vs threshold {:.3} ({})",
                g.id, g.statistic, g.threshold, g.detail
            );
        }
        let round =
            Artifact::from_json_expecting(&a.to_json(), paba_util::schema::QUEUEING).unwrap();
        assert_eq!(round.to_json(), a.to_json());
        let rep = check(&a, &round, DEFAULT_CHECK_Z).unwrap();
        assert!(rep.ok());
    }

    #[test]
    fn queueing_suite_live_recorder_is_transparent() {
        // The live handle is a pure observer of run progress — the
        // queueing engine records no counters and never touches the RNG
        // stream through it, so the artifact must be bit-identical.
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(2);
        let plain = run_queueing_suite(&cfg);
        let live = paba_mcrunner::LiveRun::new(2, false);
        let observed = run_queueing_suite_with(
            &cfg,
            &queueing_experiments::QueueingParams::default(),
            Some(&live),
        );
        assert_eq!(plain.to_json(), observed.to_json());
    }

    #[test]
    fn queueing_params_override_changes_the_regime() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(2);
        let hotter = queueing_experiments::QueueingParams {
            lambda: Some(0.95),
            ..Default::default()
        };
        let a = run_queueing_suite_with(&cfg, &hotter, None);
        let b = run_queueing_suite(&cfg);
        // Same metric ids — the artifacts stay comparable — but the
        // hotter system queues measurably deeper.
        assert_eq!(
            a.metrics.iter().map(|m| &m.id).collect::<Vec<_>>(),
            b.metrics.iter().map(|m| &m.id).collect::<Vec<_>>()
        );
        assert_ne!(a.metrics, b.metrics);
        let p99 = |art: &Artifact| {
            art.metrics
                .iter()
                .find(|m| m.id == "queueing/two_choice/p99")
                .expect("metric present")
                .mean
        };
        assert!(p99(&a) > p99(&b));
    }

    #[test]
    fn queueing_suite_is_deterministic_in_thread_count() {
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(4);
        cfg.threads = Some(1);
        let a = run_queueing_suite(&cfg);
        cfg.threads = Some(8);
        let b = run_queueing_suite(&cfg);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn different_seeds_move_metrics_within_noise() {
        // The whole premise of --check: an RNG reshuffle (here: a
        // different master seed) must pass the statistical diff.
        let mut cfg = ReproConfig::new(Scale::Quick);
        cfg.runs_override = Some(12);
        let a = run_suite(&cfg);
        cfg.seed = cfg.seed.wrapping_add(1);
        let b = run_suite(&cfg);
        let rep = check(&b, &a, DEFAULT_CHECK_Z).unwrap();
        assert!(
            rep.ok(),
            "seed change must read as noise: {:?}",
            rep.regressions
        );
    }
}
