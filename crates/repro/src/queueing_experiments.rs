//! The temporal serving-engine experiment and its gates
//! (schema `paba-queueing/1`).
//!
//! The paper's §VI conjectures that the static balance results carry
//! over to the supermarket model: Poisson arrivals at per-server rate
//! `λ`, FIFO queues with Exp(1) service, dispatch by the same strategy
//! code the static experiments exercise. Every run builds one seeded
//! cache network and drives it three ways with one shared request seed —
//! random replica (`d = 1`), fresh two-choice, and two-choice behind a
//! stale load signal refreshed every `4n` dispatches — then measures an
//! isolated M/M/1 reference at `n = 1`. The gates:
//!
//! * **pow-of-d collapse** — fresh two-choice p99 sojourn sits far below
//!   random dispatch at λ = 0.9 (paired per-run differences, `z ≥ Z_SEP`);
//! * **stale signal still collapses** — even a delayed load signal keeps
//!   most of the pow-of-d win over random;
//! * **no free lunch** — the stale contender is not *significantly
//!   better* than fresh information (that would mean the staleness knob
//!   is disconnected);
//! * **M/M/1 closed form** — at `n = 1` the measured mean sojourn matches
//!   `W = 1/(1−ρ)` within a tight relative tolerance;
//! * **Little's law** — the direct response-time estimator and `L/λ_eff`
//!   agree on every run of the stationary reference;
//! * **throughput conservation** — the in-window completion rate matches
//!   the offered load `λ·n` on every run.

use crate::artifact::{Gate, Metric};
use crate::experiments::Z_NONINF;
use crate::ReproConfig;
use paba_core::{CacheNetwork, ProximityChoice, StaleLoad, Strategy};
use paba_mcrunner::{run_parallel, run_parallel_live, summarize, LiveRun};
use paba_popularity::Popularity;
use paba_supermarket::{simulate_queueing, QueueSimConfig};
use paba_topology::Torus;
use paba_util::envcfg::Scale;
use paba_util::mix_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Required paired-difference z for the separation gates: the pow-of-d
/// collapse must clear its zero point by this many combined standard
/// errors before the gate passes.
pub const Z_SEP: f64 = 3.0;
/// Relative tolerance of the M/M/1 mean sojourn against `1/(1−ρ)`.
pub const MM1_TOL: f64 = 0.05;
/// Worst-run relative gap allowed between the direct mean-response
/// estimator and the Little's-law estimate.
pub const LITTLES_TOL: f64 = 0.10;
/// Worst-run relative deviation allowed between in-window throughput and
/// the offered load `λ·n`.
pub const THROUGHPUT_TOL: f64 = 0.05;
/// Arrival rate of the isolated M/M/1 reference arm.
const MM1_LAMBDA: f64 = 0.7;

/// Per-run metric layout produced by [`run_one`].
const N_METRICS: usize = 17;
const METRIC_IDS: [&str; N_METRICS] = [
    "queueing/random/p99",
    "queueing/random/mean_response",
    "queueing/random/tail4",
    "queueing/two_choice/p99",
    "queueing/two_choice/mean_response",
    "queueing/two_choice/tail4",
    "queueing/two_choice/comm_cost",
    "queueing/two_choice/littles_gap",
    "queueing/two_choice/throughput_ratio",
    "queueing/stale/p99",
    "queueing/stale/mean_response",
    "queueing/diff/rand_minus_two_p99",
    "queueing/diff/rand_minus_stale_p99",
    "queueing/diff/stale_minus_two_p99",
    "queueing/mm1/mean_response",
    "queueing/mm1/p50",
    "queueing/mm1/littles_gap",
];

/// CLI-facing overrides of the per-scale queueing regime. `None` keeps
/// the scale default — the configuration the committed golden was
/// generated with. Overriding any knob still produces a valid
/// `paba-queueing/1` artifact (same gate/metric ids), but `--check`
/// against a default-regime golden will rightly flag the changed
/// behavior.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueueingParams {
    /// Torus side (n = side²).
    pub side: Option<u32>,
    /// Library size K.
    pub files: Option<u32>,
    /// Cache slots per server M.
    pub cache: Option<u32>,
    /// Zipf exponent of the request popularity (0 = uniform).
    pub gamma: Option<f64>,
    /// Two-choice proximity radius.
    pub radius: Option<u32>,
    /// Per-server arrival rate λ of the paired arms.
    pub lambda: Option<f64>,
    /// Simulation end time.
    pub horizon: Option<f64>,
    /// Measurement-window start.
    pub warmup: Option<f64>,
    /// Refresh period of the stale-load contender, in dispatches
    /// (default `4·n`).
    pub stale_period: Option<u64>,
}

/// One queueing-experiment parameterization.
struct Regime {
    side: u32,
    k: u32,
    m: u32,
    gamma: f64,
    radius: u32,
    lambda: f64,
    horizon: f64,
    warmup: f64,
    stale_period: u64,
}

fn regime(scale: Scale, p: &QueueingParams) -> Regime {
    let (side, k, m, radius, horizon, warmup) = match scale {
        Scale::Quick => (6, 24, 4, 3, 3_000.0, 1_000.0),
        Scale::Default => (10, 80, 6, 4, 6_000.0, 2_000.0),
        Scale::Full => (16, 160, 8, 5, 10_000.0, 3_000.0),
    };
    let side = p.side.unwrap_or(side);
    let n = side as u64 * side as u64;
    Regime {
        side,
        k: p.files.unwrap_or(k),
        m: p.cache.unwrap_or(m),
        gamma: p.gamma.unwrap_or(0.8),
        radius: p.radius.unwrap_or(radius),
        lambda: p.lambda.unwrap_or(0.9),
        horizon: p.horizon.unwrap_or(horizon),
        warmup: p.warmup.unwrap_or(warmup),
        stale_period: p.stale_period.unwrap_or(4 * n),
    }
}

/// One arm: the shared request seed re-drives the same seeded network
/// under a different dispatch strategy.
fn arm<S: Strategy<Torus>>(
    net: &CacheNetwork<Torus>,
    mut strategy: S,
    cfg: &QueueSimConfig,
    run_seed: u64,
) -> paba_supermarket::QueueReport {
    let mut rng = SmallRng::seed_from_u64(run_seed);
    simulate_queueing(net, &mut strategy, cfg, &mut rng)
}

/// One seeded network, three paired arms plus the M/M/1 reference → the
/// metric row.
fn run_one(regime: &Regime, rng: &mut SmallRng) -> [f64; N_METRICS] {
    // Derive every arm's seed up front so arms stay independent of each
    // other's draw counts (and the row stays a pure function of `rng`).
    let net_seed: u64 = rng.gen();
    let run_seed: u64 = rng.gen();
    let mm1_seed: u64 = rng.gen();

    let pop = if regime.gamma == 0.0 {
        Popularity::Uniform
    } else {
        Popularity::zipf(regime.gamma)
    };
    let mut net_rng = SmallRng::seed_from_u64(net_seed);
    let net: CacheNetwork<Torus> = CacheNetwork::builder()
        .torus_side(regime.side)
        .library(regime.k, pop)
        .cache_size(regime.m)
        .build(&mut net_rng);
    let cfg = QueueSimConfig {
        lambda: regime.lambda,
        horizon: regime.horizon,
        warmup: regime.warmup,
        tail_cap: 32,
        stride: 0,
    };
    let r = Some(regime.radius);

    let random = arm(&net, ProximityChoice::with_choices(r, 1), &cfg, run_seed);
    let two = arm(&net, ProximityChoice::two_choice(r), &cfg, run_seed);
    let stale = arm(
        &net,
        StaleLoad::new(ProximityChoice::two_choice(r), regime.stale_period),
        &cfg,
        run_seed,
    );

    // Isolated M/M/1 reference: n = 1, full replication, random dispatch.
    let mm1_net = {
        let topo = Torus::new(1);
        let library = paba_core::Library::new(4, Popularity::Uniform);
        let placement = paba_core::Placement::full(1, 4);
        CacheNetwork::from_parts(topo, library, placement)
    };
    let mm1_cfg = QueueSimConfig {
        lambda: MM1_LAMBDA,
        horizon: 20_000.0,
        warmup: 2_000.0,
        tail_cap: 16,
        stride: 0,
    };
    let mm1 = arm(
        &mm1_net,
        ProximityChoice::with_choices(None, 1),
        &mm1_cfg,
        mm1_seed,
    );

    let littles_gap = |rep: &paba_supermarket::QueueReport| {
        let direct = rep.mean_response;
        if direct > 0.0 {
            (direct - rep.littles_law_response()).abs() / direct
        } else {
            f64::INFINITY
        }
    };
    let offered = regime.lambda * net.n() as f64;

    let mut out = [0.0; N_METRICS];
    out[0] = random.sojourn_p99;
    out[1] = random.mean_response;
    out[2] = random.tail_at(4);
    out[3] = two.sojourn_p99;
    out[4] = two.mean_response;
    out[5] = two.tail_at(4);
    out[6] = two.comm_cost;
    out[7] = littles_gap(&two);
    out[8] = two.throughput() / offered;
    out[9] = stale.sojourn_p99;
    out[10] = stale.mean_response;
    out[11] = random.sojourn_p99 - two.sojourn_p99;
    out[12] = random.sojourn_p99 - stale.sojourn_p99;
    out[13] = stale.sojourn_p99 - two.sojourn_p99;
    out[14] = mm1.mean_response;
    out[15] = mm1.sojourn_p50;
    out[16] = littles_gap(&mm1);
    out
}

/// Monte-Carlo run count the suite will execute for `cfg` (for sizing
/// progress trackers before the run starts).
pub fn planned_runs(cfg: &ReproConfig) -> usize {
    cfg.runs(10, 24, 48)
}

/// The queueing experiment at the scale-default regime.
pub fn queueing(cfg: &ReproConfig, gates: &mut Vec<Gate>, metrics: &mut Vec<Metric>) {
    queueing_with(cfg, &QueueingParams::default(), None, gates, metrics);
}

/// The queueing experiment: metrics + the six temporal gates. `params`
/// overrides the scale-default regime; `live` (the `--serve-metrics`
/// path) exposes run progress to a concurrent scrape — the queueing
/// engine itself records no counters, so the handle is purely an
/// observer and results are identical with or without it.
pub fn queueing_with(
    cfg: &ReproConfig,
    params: &QueueingParams,
    live: Option<&LiveRun>,
    gates: &mut Vec<Gate>,
    metrics: &mut Vec<Metric>,
) {
    let regime = regime(cfg.scale, params);
    let runs = planned_runs(cfg);
    let master = mix_seed(cfg.seed, 0x9EE1E);
    let rows: Vec<[f64; N_METRICS]> = match live {
        Some(l) => run_parallel_live(runs, master, cfg.threads, l, |_rec, _i, rng| {
            run_one(&regime, rng)
        }),
        None => run_parallel(runs, master, cfg.threads, |_i, rng: &mut SmallRng| {
            run_one(&regime, rng)
        }),
    };

    let col = |i: usize| summarize(rows.iter().map(move |r| r[i]));
    let max_col = |i: usize| rows.iter().map(|r| r[i]).fold(f64::NEG_INFINITY, f64::max);
    for (i, id) in METRIC_IDS.iter().enumerate() {
        let s = col(i);
        metrics.push(Metric {
            id: id.to_string(),
            mean: s.mean,
            std_err: s.std_err,
            runs: s.count,
        });
    }

    // Paired z: how many combined standard errors the mean per-run
    // difference clears zero by. Degenerate SE (identical runs) resolves
    // by sign.
    let paired_z = |i: usize| {
        let d = col(i);
        if d.std_err > 0.0 {
            d.mean / d.std_err
        } else if d.mean > 0.0 {
            f64::INFINITY
        } else if d.mean < 0.0 {
            f64::NEG_INFINITY
        } else {
            0.0
        }
    };

    // Gate 1: fresh two-choice collapses the p99 sojourn below random
    // dispatch at λ = 0.9 — the queueing analogue of pow-of-d balance.
    let z_two = paired_z(11);
    gates.push(Gate {
        id: "queueing/pow-of-d/p99-collapse".into(),
        passed: z_two >= Z_SEP,
        statistic: z_two,
        threshold: Z_SEP,
        p_false_pass: f64::NAN,
        detail: format!(
            "paired p99 sojourn gap random−two-choice {:+.2}±{:.2} over {runs} runs \
             (random {:.2}, two-choice {:.2}); needs z ≥ {Z_SEP}",
            col(11).mean,
            col(11).std_err,
            col(0).mean,
            col(3).mean
        ),
    });

    // Gate 2: the stale-signal contender keeps most of the collapse —
    // delayed information still beats no information.
    let z_stale = paired_z(12);
    gates.push(Gate {
        id: "queueing/stale/still-collapses".into(),
        passed: z_stale >= Z_SEP,
        statistic: z_stale,
        threshold: Z_SEP,
        p_false_pass: f64::NAN,
        detail: format!(
            "paired p99 sojourn gap random−stale {:+.2}±{:.2} over {runs} runs \
             (stale period {} dispatches); needs z ≥ {Z_SEP}",
            col(12).mean,
            col(12).std_err,
            regime.stale_period
        ),
    });

    // Gate 3: no free lunch — the stale contender may tie fresh
    // two-choice within noise but must not be *significantly better*
    // (that would mean the staleness knob is disconnected from dispatch).
    let z_lunch = paired_z(13);
    gates.push(Gate {
        id: "queueing/stale/no-free-lunch".into(),
        passed: z_lunch >= -Z_NONINF,
        statistic: z_lunch,
        threshold: -Z_NONINF,
        p_false_pass: f64::NAN,
        detail: format!(
            "paired p99 sojourn gap stale−two-choice {:+.2}±{:.2} over {runs} runs; \
             stale may not beat fresh by more than {Z_NONINF} combined SE",
            col(13).mean,
            col(13).std_err
        ),
    });

    // Gate 4: the n = 1 arm is an M/M/1 queue, so the measured mean
    // sojourn must match the closed form W = 1/(1−ρ).
    let w_exact = 1.0 / (1.0 - MM1_LAMBDA);
    let mm1 = col(14);
    let rel_err = (mm1.mean - w_exact).abs() / w_exact;
    gates.push(Gate {
        id: "queueing/mm1/closed-form".into(),
        passed: rel_err <= MM1_TOL,
        statistic: rel_err,
        threshold: MM1_TOL,
        p_false_pass: f64::NAN,
        detail: format!(
            "mean sojourn {:.3}±{:.3} vs W = 1/(1−ρ) = {w_exact:.3} at ρ = {MM1_LAMBDA} \
             (relative error {rel_err:.4}, needs ≤ {MM1_TOL})",
            mm1.mean, mm1.std_err
        ),
    });

    // Gate 5: Little's law — the direct mean-response estimator and
    // L/λ_eff agree on every run of the stationary M/M/1 reference
    // (the two-choice arm's gap at near-critical λ is censoring-biased
    // on short windows, so it is reported as a metric, not gated).
    let worst_gap = max_col(16);
    gates.push(Gate {
        id: "queueing/littles-law/consistent".into(),
        passed: worst_gap <= LITTLES_TOL,
        statistic: worst_gap,
        threshold: LITTLES_TOL,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run relative gap between direct W and L/λ_eff on the \
             M/M/1 arm: {worst_gap:.4} (mean {:.4}, two-choice arm mean \
             {:.4}, needs ≤ {LITTLES_TOL})",
            col(16).mean,
            col(7).mean
        ),
    });

    // Gate 6: throughput conservation — in-window completions match the
    // offered load λ·n on every run.
    let worst_dev = rows
        .iter()
        .map(|r| (r[8] - 1.0).abs())
        .fold(f64::NEG_INFINITY, f64::max);
    gates.push(Gate {
        id: "queueing/throughput/conserved".into(),
        passed: worst_dev <= THROUGHPUT_TOL,
        statistic: worst_dev,
        threshold: THROUGHPUT_TOL,
        p_false_pass: f64::NAN,
        detail: format!(
            "worst-run |throughput/(λ·n) − 1| = {worst_dev:.4} \
             (mean ratio {:.4}, needs ≤ {THROUGHPUT_TOL})",
            col(8).mean
        ),
    });
}
