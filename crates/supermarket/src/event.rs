//! Event-queue plumbing: totally ordered simulation time.

use std::cmp::Ordering;

/// Simulation time with a total order (times are finite by construction,
/// so `partial_cmp` never fails).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OrderedTime(pub f64);

impl OrderedTime {
    /// Wrap a finite, non-negative time.
    ///
    /// # Panics
    /// If `t` is NaN or negative (debug only; release trusts the engine).
    #[inline]
    pub fn new(t: f64) -> Self {
        debug_assert!(t.is_finite() && t >= 0.0, "bad simulation time {t}");
        Self(t)
    }
}

impl Eq for OrderedTime {}

impl PartialOrd for OrderedTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("times are never NaN")
    }
}

/// A scheduled departure: (time, server). Ordered by time ascending via
/// `Reverse` in the engine's `BinaryHeap`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Departure {
    /// When the in-service job finishes.
    pub time: OrderedTime,
    /// The server it departs from.
    pub server: u32,
}

impl PartialOrd for Departure {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Departure {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .cmp(&other.time)
            .then(self.server.cmp(&other.server))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn time_ordering() {
        assert!(OrderedTime::new(1.0) < OrderedTime::new(2.0));
        assert_eq!(OrderedTime::new(3.0), OrderedTime::new(3.0));
        let mut v = [
            OrderedTime::new(2.0),
            OrderedTime::new(0.5),
            OrderedTime::new(1.0),
        ];
        v.sort();
        assert_eq!(v[0].0, 0.5);
        assert_eq!(v[2].0, 2.0);
    }

    #[test]
    fn heap_pops_earliest_departure_first() {
        let mut heap = BinaryHeap::new();
        for (t, s) in [(3.0, 1u32), (1.0, 2), (2.0, 0)] {
            heap.push(Reverse(Departure {
                time: OrderedTime::new(t),
                server: s,
            }));
        }
        let order: Vec<u32> =
            std::iter::from_fn(|| heap.pop().map(|Reverse(d)| d.server)).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn equal_times_tiebreak_by_server() {
        let a = Departure {
            time: OrderedTime::new(1.0),
            server: 3,
        };
        let b = Departure {
            time: OrderedTime::new(1.0),
            server: 5,
        };
        assert!(a < b);
    }

    #[test]
    #[should_panic(expected = "bad simulation time")]
    #[cfg(debug_assertions)]
    fn nan_time_rejected() {
        let _ = OrderedTime::new(f64::NAN);
    }
}
