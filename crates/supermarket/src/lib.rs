//! Continuous-time queueing ("supermarket model") extension.
//!
//! The paper's §VI conjectures that its static balls-into-bins results
//! carry over to the dynamic setting where requests arrive as a Poisson
//! process and servers drain FIFO queues with exponential service — the
//! supermarket model of Mitzenmacher \[6\] and the survey \[31\]. This
//! crate implements that model as a discrete-event simulation **reusing
//! the exact dispatch logic of `paba-core`'s strategies** (a queue-length
//! vector is handed to [`paba_core::Strategy::assign`] as the load
//! vector), so the static and dynamic experiments exercise the same
//! decision code:
//!
//! * Poisson arrivals of total rate `λ·n` (`λ < 1`), uniform origins,
//!   popularity-sampled files;
//! * each server is an M/M/1 FIFO queue with unit service rate;
//! * dispatch = any [`paba_core::Strategy`] (nearest replica, proximity
//!   `d`-choice, …) evaluated against instantaneous queue lengths;
//! * measurements over `[warmup, horizon)`: time-averaged queue-length
//!   tail `Pr[Q ≥ k]`, maximum queue, response times (checked against
//!   Little's law in tests), and communication cost.
//!
//! The classic predictions the benches compare against: random dispatch
//! gives tail `λ^k`; two-choice dispatch gives the doubly-exponential
//! `λ^(2^k − 1)` — the queueing analogue of `log log n` balance.

pub mod event;
pub mod report;
pub mod sim;

pub use event::OrderedTime;
pub use report::QueueReport;
pub use sim::{simulate_queueing, QueueSimConfig};
