//! Continuous-time queueing ("supermarket model") serving engine.
//!
//! The paper's §VI conjectures that its static balls-into-bins results
//! carry over to the dynamic setting where requests arrive as a Poisson
//! process and servers drain FIFO queues with exponential service — the
//! supermarket model of Mitzenmacher \[6\] and the survey \[31\]. This
//! crate implements that model as a discrete-event simulation **reusing
//! the exact dispatch logic of `paba-core`'s strategies** (a queue-length
//! vector is handed to [`paba_core::Strategy::assign`] as the load
//! vector), so the static and dynamic experiments exercise the same
//! decision code:
//!
//! * Poisson arrivals of total rate `λ·n` (`λ < 1`), origin/file pairs
//!   drawn from any [`paba_core::RequestSource`] — the paper's baseline
//!   i.i.d. workload or any `paba-workload` family (flash crowds, skewed
//!   origins, drifting popularity, trace replay);
//! * each server is an M/M/1 FIFO queue with unit service rate;
//! * dispatch = any [`paba_core::Strategy`] (nearest replica, proximity
//!   `d`-choice, stale-load wrappers, …) evaluated against instantaneous
//!   queue lengths;
//! * measurements over `[warmup, horizon)` with one shared boundary
//!   predicate: time-averaged queue-length tail `Pr[Q ≥ k]`, windowed
//!   maximum queue (transient peak reported separately), per-job sojourn
//!   times folded into bounded-error p50/p99/p999 quantiles
//!   ([`SojournHistogram`]), Little's-law-checked response times,
//!   communication cost, and an optional strided
//!   [`paba_telemetry::LoadSeries`] queue-length trajectory.
//!
//! The classic predictions the benches compare against: random dispatch
//! gives tail `λ^k`; two-choice dispatch gives the doubly-exponential
//! `λ^(2^k − 1)` — the queueing analogue of `log log n` balance.

pub mod event;
pub mod report;
pub mod sim;
pub mod sojourn;

pub use event::OrderedTime;
pub use report::QueueReport;
pub use sim::{simulate_queueing, simulate_queueing_source, QueueSimConfig};
pub use sojourn::SojournHistogram;
