//! Queueing-simulation measurements.

use paba_telemetry::LoadSeries;

/// Aggregated measurements over the window `[warmup, horizon)`.
///
/// Every statistic shares the same window semantics: the window opens
/// exactly at `t == warmup` (inclusive) and closes at `horizon`
/// (exclusive). Response/sojourn statistics cover jobs that *arrived*
/// in the window; the warmup transient is reported only through
/// [`QueueReport::pre_warmup_max_queue`].
#[derive(Clone, Debug, PartialEq)]
pub struct QueueReport {
    /// Largest queue length observed in the window (including the
    /// in-service job and the state carried across the warmup boundary).
    pub max_queue: u32,
    /// Largest queue length observed during warmup — the transient peak,
    /// kept separate so it cannot contaminate the stationary statistic.
    pub pre_warmup_max_queue: u32,
    /// Time-averaged mean queue length per server.
    pub mean_queue: f64,
    /// `tail[k]` = time-averaged fraction of servers with queue ≥ k.
    /// `tail[0] = 1` by definition.
    pub tail: Vec<f64>,
    /// Mean response (sojourn) time of jobs that arrived in the window
    /// and completed before the horizon.
    pub mean_response: f64,
    /// Median sojourn time (bounded-error histogram estimate).
    pub sojourn_p50: f64,
    /// 99th-percentile sojourn time.
    pub sojourn_p99: f64,
    /// 99.9th-percentile sojourn time.
    pub sojourn_p999: f64,
    /// Jobs that arrived in the window and completed before the horizon.
    pub completed: u64,
    /// Jobs dispatched in the measurement window.
    pub dispatched: u64,
    /// Mean hop distance origin → serving queue over dispatched jobs.
    pub comm_cost: f64,
    /// Measurement window length.
    pub window: f64,
    /// Number of servers.
    pub n: u32,
    /// Queue-length trajectory sampled every `stride` arrivals
    /// (empty when `stride = 0`); max/mean/gap/p99 per sample point.
    pub series: LoadSeries,
}

impl QueueReport {
    /// Time-averaged fraction of servers with queue length ≥ `k`.
    pub fn tail_at(&self, k: usize) -> f64 {
        self.tail.get(k).copied().unwrap_or(0.0)
    }

    /// Effective arrival rate into the system during the window
    /// (jobs per unit time).
    pub fn throughput(&self) -> f64 {
        if self.window <= 0.0 {
            0.0
        } else {
            self.completed as f64 / self.window
        }
    }

    /// Little's-law estimate of the mean response time:
    /// `W = L / λ_eff`, where `L` is the time-averaged total job count.
    ///
    /// Should agree with the directly measured [`QueueReport::mean_response`]
    /// at stationarity — the consistency check used in tests.
    pub fn littles_law_response(&self) -> f64 {
        let throughput = self.throughput();
        if throughput <= 0.0 {
            0.0
        } else {
            self.mean_queue * self.n as f64 / throughput
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> QueueReport {
        QueueReport {
            max_queue: 5,
            pre_warmup_max_queue: 7,
            mean_queue: 0.8,
            tail: vec![1.0, 0.5, 0.2],
            mean_response: 1.6,
            sojourn_p50: 1.1,
            sojourn_p99: 6.4,
            sojourn_p999: 9.9,
            completed: 800,
            dispatched: 810,
            comm_cost: 3.2,
            window: 100.0,
            n: 10,
            series: LoadSeries::new(0),
        }
    }

    #[test]
    fn tail_access() {
        let r = sample();
        assert_eq!(r.tail_at(0), 1.0);
        assert_eq!(r.tail_at(2), 0.2);
        assert_eq!(r.tail_at(99), 0.0);
    }

    #[test]
    fn throughput_and_littles_law() {
        let r = sample();
        assert!((r.throughput() - 8.0).abs() < 1e-12);
        // L = 0.8 · 10 = 8 jobs; W = 8 / 8 = 1.0.
        assert!((r.littles_law_response() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_window() {
        let mut r = sample();
        r.window = 0.0;
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.littles_law_response(), 0.0);
    }
}
