//! The discrete-event queueing engine.
//!
//! State per server: a FIFO queue of job arrival times (head = in
//! service). Two event kinds drive the clock: Poisson arrivals (rate
//! `λ·n`) and per-server departures (service ~ Exp(1), scheduled when a
//! job reaches the head of its queue). Dispatch decisions delegate to a
//! [`paba_core::Strategy`] evaluated on the instantaneous queue-length
//! vector, so the static strategies and the queueing model share one
//! implementation of "two random nearby replicas, pick the shorter queue".

use crate::event::{Departure, OrderedTime};
use crate::report::QueueReport;
use paba_core::{CacheNetwork, Request, Strategy, UncachedPolicy};
use paba_topology::Topology;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of a queueing run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSimConfig {
    /// Per-server arrival rate `λ` (total rate `λ·n`); must satisfy
    /// `0 < λ < 1` for stability.
    pub lambda: f64,
    /// Simulation end time.
    pub horizon: f64,
    /// Measurements start after this time (let the system reach
    /// stationarity first).
    pub warmup: f64,
    /// Track tail fractions for queue lengths `0..=tail_cap`.
    pub tail_cap: usize,
}

impl Default for QueueSimConfig {
    fn default() -> Self {
        Self {
            lambda: 0.7,
            horizon: 2_000.0,
            warmup: 500.0,
            tail_cap: 32,
        }
    }
}

/// Exponential variate with the given rate.
#[inline]
fn exp_sample<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    debug_assert!(rate > 0.0);
    // gen::<f64>() ∈ [0,1); reflect to (0,1] so ln never sees 0.
    let u = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Run the queueing simulation.
///
/// # Panics
/// If `lambda ∉ (0,1)` or `warmup ≥ horizon`.
pub fn simulate_queueing<T, S, R>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    cfg: &QueueSimConfig,
    rng: &mut R,
) -> QueueReport
where
    T: Topology,
    S: Strategy<T>,
    R: Rng + ?Sized,
{
    assert!(
        cfg.lambda > 0.0 && cfg.lambda < 1.0,
        "need 0 < λ < 1 for stability, got {}",
        cfg.lambda
    );
    assert!(cfg.warmup < cfg.horizon, "warmup must precede horizon");

    let n = net.n();
    let total_rate = cfg.lambda * n as f64;
    // Queue state: FIFO of arrival times; parallel integer lengths handed
    // to the dispatch strategy.
    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n as usize];
    let mut lens: Vec<u32> = vec![0; n as usize];
    let mut departures: BinaryHeap<Reverse<Departure>> = BinaryHeap::new();

    // Time-averaged tail accumulators: counts[k] = #servers with len ≥ k,
    // integral[k] = ∫ counts[k] dt over the measurement window.
    let cap = cfg.tail_cap.max(1);
    let mut counts: Vec<u32> = vec![0; cap + 1];
    counts[0] = n;
    let mut integral: Vec<f64> = vec![0.0; cap + 1];
    let mut queue_area = 0.0f64; // ∫ Σ_i len_i dt

    let mut clock;
    let mut last = 0.0f64; // last accumulation time ≥ warmup
    let mut next_arrival = exp_sample(total_rate, rng);

    let mut max_queue = 0u32;
    let mut completed = 0u64;
    let mut response_sum = 0.0f64;
    let mut dispatched = 0u64;
    let mut hops_sum = 0.0f64;

    let accumulate = |t: f64,
                      last: &mut f64,
                      counts: &[u32],
                      lens: &[u32],
                      integral: &mut [f64],
                      queue_area: &mut f64| {
        if t > cfg.warmup {
            let from = last.max(cfg.warmup);
            let dt = t - from;
            if dt > 0.0 {
                for (acc, &c) in integral.iter_mut().zip(counts.iter()) {
                    *acc += c as f64 * dt;
                }
                let total_len: u64 = lens.iter().map(|&l| l as u64).sum();
                *queue_area += total_len as f64 * dt;
            }
            *last = t;
        }
    };

    loop {
        // Next event: arrival or earliest departure.
        let next_departure = departures.peek().map(|Reverse(d)| d.time.0);
        let (t, is_arrival) = match next_departure {
            Some(dt) if dt <= next_arrival => (dt, false),
            _ => (next_arrival, true),
        };
        if t >= cfg.horizon {
            accumulate(
                cfg.horizon,
                &mut last,
                &counts,
                &lens,
                &mut integral,
                &mut queue_area,
            );
            break;
        }
        accumulate(t, &mut last, &counts, &lens, &mut integral, &mut queue_area);
        clock = t;

        if is_arrival {
            next_arrival = clock + exp_sample(total_rate, rng);
            let req = Request::sample(net, UncachedPolicy::ResampleFile, rng);
            let a = strategy.assign(net, &lens, req, rng);
            let s = a.server as usize;
            queues[s].push_back(clock);
            lens[s] += 1;
            let new_len = lens[s];
            if (new_len as usize) <= cap {
                counts[new_len as usize] += 1;
            }
            max_queue = max_queue.max(new_len);
            if clock >= cfg.warmup {
                dispatched += 1;
                hops_sum += a.hops as f64;
            }
            if new_len == 1 {
                departures.push(Reverse(Departure {
                    time: OrderedTime::new(clock + exp_sample(1.0, rng)),
                    server: a.server,
                }));
            }
        } else {
            let Reverse(dep) = departures.pop().expect("peeked departure");
            let s = dep.server as usize;
            let arrived = queues[s].pop_front().expect("departure from empty queue");
            let old_len = lens[s];
            if (old_len as usize) <= cap {
                counts[old_len as usize] -= 1;
            }
            lens[s] -= 1;
            if clock >= cfg.warmup {
                completed += 1;
                response_sum += clock - arrived;
            }
            if lens[s] > 0 {
                departures.push(Reverse(Departure {
                    time: OrderedTime::new(clock + exp_sample(1.0, rng)),
                    server: dep.server,
                }));
            }
        }
    }

    let window = cfg.horizon - cfg.warmup;
    let tail: Vec<f64> = integral.iter().map(|&a| a / (window * n as f64)).collect();
    QueueReport {
        max_queue,
        mean_queue: queue_area / (window * n as f64),
        tail,
        mean_response: if completed > 0 {
            response_sum / completed as f64
        } else {
            0.0
        },
        completed,
        dispatched,
        comm_cost: if dispatched > 0 {
            hops_sum / dispatched as f64
        } else {
            0.0
        },
        window,
        n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::{Library, Placement, ProximityChoice};
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Full-replication network: every node serves every file, isolating
    /// pure queueing behaviour.
    fn full_net(side: u32) -> CacheNetwork<Torus> {
        let topo = Torus::new(side);
        let library = Library::new(4, Popularity::Uniform);
        let placement = Placement::full(side * side, 4);
        CacheNetwork::from_parts(topo, library, placement)
    }

    #[test]
    fn mm1_sanity_single_server() {
        // n = 1 with any dispatch = an M/M/1 queue: time-averaged number
        // in system L = ρ/(1−ρ), tail Pr[N ≥ k] = ρ^k.
        let net = full_net(1);
        let mut strat = ProximityChoice::with_choices(None, 1);
        let cfg = QueueSimConfig {
            lambda: 0.5,
            horizon: 60_000.0,
            warmup: 2_000.0,
            tail_cap: 16,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            (rep.mean_queue - 1.0).abs() < 0.12,
            "M/M/1 L = 1 expected, got {}",
            rep.mean_queue
        );
        for (k, expect) in [(1usize, 0.5), (2, 0.25), (3, 0.125)] {
            assert!(
                (rep.tail_at(k) - expect).abs() < 0.05,
                "tail({k}) = {} vs ρ^{k} = {expect}",
                rep.tail_at(k)
            );
        }
    }

    #[test]
    fn littles_law_consistency() {
        let net = full_net(8);
        let mut strat = ProximityChoice::two_choice(None);
        let cfg = QueueSimConfig {
            lambda: 0.8,
            horizon: 4_000.0,
            warmup: 500.0,
            tail_cap: 32,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        let direct = rep.mean_response;
        let littles = rep.littles_law_response();
        assert!(
            (direct - littles).abs() / direct < 0.1,
            "Little's law: direct {direct} vs L/λ {littles}"
        );
    }

    #[test]
    fn two_choice_tail_is_much_lighter_than_random() {
        // The supermarket effect (paper §VI / Mitzenmacher): at λ = 0.9,
        // Pr[Q ≥ 4] is ≈ λ^4 ≈ 0.66 for random dispatch but
        // ≈ λ^(2^4−1) ≈ 0.21 for two-choice.
        let net = full_net(16);
        let cfg = QueueSimConfig {
            lambda: 0.9,
            horizon: 3_000.0,
            warmup: 1_000.0,
            tail_cap: 32,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut random = ProximityChoice::with_choices(None, 1);
        let r_rand = simulate_queueing(&net, &mut random, &cfg, &mut rng);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut two = ProximityChoice::two_choice(None);
        let r_two = simulate_queueing(&net, &mut two, &cfg, &mut rng);
        assert!(
            r_two.tail_at(4) < 0.6 * r_rand.tail_at(4),
            "supermarket effect missing: two-choice {} vs random {}",
            r_two.tail_at(4),
            r_rand.tail_at(4)
        );
        assert!(r_two.max_queue <= r_rand.max_queue);
    }

    #[test]
    fn radius_caps_communication_cost() {
        let net = full_net(12);
        let cfg = QueueSimConfig {
            lambda: 0.6,
            horizon: 500.0,
            warmup: 100.0,
            tail_cap: 16,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut strat = ProximityChoice::two_choice(Some(2));
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            rep.comm_cost <= 2.0,
            "cost {} exceeds radius",
            rep.comm_cost
        );
        assert!(rep.comm_cost > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = full_net(6);
        let cfg = QueueSimConfig::default();
        let run = |seed| {
            let mut strat = ProximityChoice::two_choice(Some(3));
            let mut rng = SmallRng::seed_from_u64(seed);
            simulate_queueing(&net, &mut strat, &cfg, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).completed, run(10).completed);
    }

    #[test]
    fn conservation_of_jobs() {
        let net = full_net(5);
        let cfg = QueueSimConfig {
            lambda: 0.5,
            horizon: 1_000.0,
            warmup: 0.0,
            tail_cap: 8,
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let mut strat = ProximityChoice::two_choice(None);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        // Everything completed was dispatched; what's left is in queues.
        assert!(rep.completed <= rep.dispatched);
        // Throughput ≈ λ·n at stationarity.
        let expect = 0.5 * net.n() as f64;
        assert!(
            (rep.throughput() - expect).abs() < 0.15 * expect,
            "throughput {} vs λn {expect}",
            rep.throughput()
        );
    }

    #[test]
    #[should_panic(expected = "0 < λ < 1")]
    fn unstable_lambda_rejected() {
        let net = full_net(3);
        let mut strat = ProximityChoice::two_choice(None);
        let cfg = QueueSimConfig {
            lambda: 1.2,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
    }
}
