//! The discrete-event queueing engine.
//!
//! State per server: a FIFO queue of job arrival times (head = in
//! service). Two event kinds drive the clock: Poisson arrivals (rate
//! `λ·n`) and per-server departures (service ~ Exp(1), scheduled when a
//! job reaches the head of its queue). Dispatch decisions delegate to a
//! [`paba_core::Strategy`] evaluated on the instantaneous queue-length
//! vector, so the static strategies and the queueing model share one
//! implementation of "two random nearby replicas, pick the shorter queue".
//!
//! Requests come from any [`paba_core::RequestSource`]
//! ([`simulate_queueing_source`]), so the `paba-workload` families —
//! flash crowds, skewed origins, drifting popularity, trace replay — drive
//! the temporal model exactly as they drive the static one.
//! [`simulate_queueing`] is the baseline-workload wrapper and emits a
//! stream bit-identical to the pre-source engine.
//!
//! Every statistic is measured over the window `[warmup, horizon)` with
//! one shared boundary predicate `t >= warmup` — time-averaged integrals
//! ([`WindowAccumulator`]), event counts, response times (in-window
//! *arrivals* only, so the warmup transient cannot contaminate them), and
//! the maximum queue length (the pre-warmup peak is reported separately).

use crate::event::{Departure, OrderedTime};
use crate::report::QueueReport;
use crate::sojourn::SojournHistogram;
use paba_core::{CacheNetwork, IidUniform, RequestSource, Strategy, UncachedPolicy};
use paba_telemetry::LoadSeries;
use paba_topology::Topology;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of a queueing run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSimConfig {
    /// Per-server arrival rate `λ` (total rate `λ·n`); must satisfy
    /// `0 < λ < 1` for stability.
    pub lambda: f64,
    /// Simulation end time.
    pub horizon: f64,
    /// Measurements start after this time (let the system reach
    /// stationarity first).
    pub warmup: f64,
    /// Track tail fractions for queue lengths `0..=tail_cap`.
    pub tail_cap: usize,
    /// Sample the queue-length vector into [`QueueReport::series`] every
    /// `stride` arrivals (0 = off). Uses the same stride semantics as
    /// `paba trace --stride`.
    pub stride: u64,
}

impl Default for QueueSimConfig {
    fn default() -> Self {
        Self {
            lambda: 0.7,
            horizon: 2_000.0,
            warmup: 500.0,
            tail_cap: 32,
            stride: 0,
        }
    }
}

/// Exponential variate with the given rate.
#[inline]
fn exp_sample<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> f64 {
    debug_assert!(rate > 0.0);
    // gen::<f64>() ∈ [0,1); reflect to (0,1] so ln never sees 0.
    let u = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// Time-averaged integrals over the measurement window `[warmup, ∞)`.
///
/// `integral[k]` accumulates `∫ counts[k] dt` and `queue_area`
/// accumulates `∫ Σ_i len_i dt`, both restricted to the window. The
/// window opens at `t == warmup` — the same `>= warmup` predicate as the
/// event-counted statistics, so an event landing exactly on the boundary
/// belongs to the window for every statistic at once.
struct WindowAccumulator {
    warmup: f64,
    /// Last time the integrals were advanced to (0 until the window opens).
    last: f64,
    integral: Vec<f64>,
    queue_area: f64,
}

impl WindowAccumulator {
    fn new(warmup: f64, cap: usize) -> Self {
        Self {
            warmup,
            last: 0.0,
            integral: vec![0.0; cap + 1],
            queue_area: 0.0,
        }
    }

    /// Credit `[max(last, warmup), t)` with the current state, then move
    /// the cursor to `t`.
    fn advance(&mut self, t: f64, counts: &[u32], lens: &[u32]) {
        if t >= self.warmup {
            let from = self.last.max(self.warmup);
            let dt = t - from;
            if dt > 0.0 {
                for (acc, &c) in self.integral.iter_mut().zip(counts.iter()) {
                    *acc += c as f64 * dt;
                }
                let total_len: u64 = lens.iter().map(|&l| l as u64).sum();
                self.queue_area += total_len as f64 * dt;
            }
            self.last = t;
        }
    }

    #[cfg(test)]
    fn last_advance(&self) -> f64 {
        self.last
    }
}

/// Run the queueing simulation under the paper's baseline workload
/// (origins uniform, files i.i.d. from the popularity profile).
///
/// Equivalent to [`simulate_queueing_source`] with
/// [`IidUniform`] — bit-for-bit, including the RNG stream.
///
/// # Panics
/// If `lambda ∉ (0,1)` or `warmup ≥ horizon`.
pub fn simulate_queueing<T, S, R>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    cfg: &QueueSimConfig,
    rng: &mut R,
) -> QueueReport
where
    T: Topology,
    S: Strategy<T>,
    R: Rng + ?Sized,
{
    let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
    simulate_queueing_source(net, strategy, &mut source, cfg, rng)
}

/// Run the queueing simulation with an arbitrary request source.
///
/// Poisson thinning happens here: arrivals occur at total rate `λ·n`, and
/// each arrival's origin/file pair is drawn from `source`, so any
/// `paba-workload` family (hotspots, flash crowds, shifting popularity,
/// trace replay) plugs in unchanged.
///
/// # Panics
/// If `lambda ∉ (0,1)` or `warmup ≥ horizon`.
pub fn simulate_queueing_source<T, S, Src, R>(
    net: &CacheNetwork<T>,
    strategy: &mut S,
    source: &mut Src,
    cfg: &QueueSimConfig,
    rng: &mut R,
) -> QueueReport
where
    T: Topology,
    S: Strategy<T>,
    Src: RequestSource<T>,
    R: Rng + ?Sized,
{
    assert!(
        cfg.lambda > 0.0 && cfg.lambda < 1.0,
        "need 0 < λ < 1 for stability, got {}",
        cfg.lambda
    );
    assert!(cfg.warmup < cfg.horizon, "warmup must precede horizon");

    let n = net.n();
    let total_rate = cfg.lambda * n as f64;
    // Queue state: FIFO of arrival times; parallel integer lengths handed
    // to the dispatch strategy.
    let mut queues: Vec<VecDeque<f64>> = vec![VecDeque::new(); n as usize];
    let mut lens: Vec<u32> = vec![0; n as usize];
    let mut departures: BinaryHeap<Reverse<Departure>> = BinaryHeap::new();

    // Per-threshold occupancy: counts[k] = #servers with len ≥ k.
    let cap = cfg.tail_cap.max(1);
    let mut counts: Vec<u32> = vec![0; cap + 1];
    counts[0] = n;
    let mut acc = WindowAccumulator::new(cfg.warmup, cap);

    let mut clock;
    let mut next_arrival = exp_sample(total_rate, rng);

    let mut window_open = false;
    let mut max_queue = 0u32;
    let mut pre_warmup_max_queue = 0u32;
    let mut completed = 0u64;
    let mut response_sum = 0.0f64;
    let mut sojourns = SojournHistogram::new();
    let mut dispatched = 0u64;
    let mut hops_sum = 0.0f64;
    let mut arrival_idx = 0u64;
    let mut series = LoadSeries::new(cfg.stride);

    loop {
        // Next event: arrival or earliest departure.
        let next_departure = departures.peek().map(|Reverse(d)| d.time.0);
        let (t, is_arrival) = match next_departure {
            Some(dt) if dt <= next_arrival => (dt, false),
            _ => (next_arrival, true),
        };
        // Seed the in-window maximum with the state carried across the
        // warmup boundary: the window's queue-length process starts from
        // whatever the transient left behind, not from zero.
        if !window_open && t >= cfg.warmup {
            window_open = true;
            max_queue = lens.iter().copied().max().unwrap_or(0);
        }
        if t >= cfg.horizon {
            acc.advance(cfg.horizon, &counts, &lens);
            break;
        }
        acc.advance(t, &counts, &lens);
        clock = t;

        if is_arrival {
            next_arrival = clock + exp_sample(total_rate, rng);
            let req = source.next_request(net, rng);
            let a = strategy.assign(net, &lens, req, rng);
            let s = a.server as usize;
            queues[s].push_back(clock);
            lens[s] += 1;
            let new_len = lens[s];
            if (new_len as usize) <= cap {
                counts[new_len as usize] += 1;
            }
            if clock >= cfg.warmup {
                max_queue = max_queue.max(new_len);
                dispatched += 1;
                hops_sum += a.hops as f64;
            } else {
                pre_warmup_max_queue = pre_warmup_max_queue.max(new_len);
            }
            series.observe(arrival_idx, &lens);
            arrival_idx += 1;
            if new_len == 1 {
                departures.push(Reverse(Departure {
                    time: OrderedTime::new(clock + exp_sample(1.0, rng)),
                    server: a.server,
                }));
            }
        } else {
            let Reverse(dep) = departures.pop().expect("peeked departure");
            let s = dep.server as usize;
            let arrived = queues[s].pop_front().expect("departure from empty queue");
            let old_len = lens[s];
            if (old_len as usize) <= cap {
                counts[old_len as usize] -= 1;
            }
            lens[s] -= 1;
            // Count a completion only for jobs that *arrived* in the
            // window: `arrived >= warmup` implies `clock >= warmup`, and
            // keeps `completed ⊆ dispatched` so conservation and
            // Little's-law checks compare like with like.
            if arrived >= cfg.warmup {
                completed += 1;
                let sojourn = clock - arrived;
                response_sum += sojourn;
                sojourns.record(sojourn);
            }
            if lens[s] > 0 {
                departures.push(Reverse(Departure {
                    time: OrderedTime::new(clock + exp_sample(1.0, rng)),
                    server: dep.server,
                }));
            }
        }
    }

    let window = cfg.horizon - cfg.warmup;
    let tail: Vec<f64> = acc
        .integral
        .iter()
        .map(|&a| a / (window * n as f64))
        .collect();
    QueueReport {
        max_queue,
        pre_warmup_max_queue,
        mean_queue: acc.queue_area / (window * n as f64),
        tail,
        mean_response: if completed > 0 {
            response_sum / completed as f64
        } else {
            0.0
        },
        sojourn_p50: sojourns.quantile(0.5),
        sojourn_p99: sojourns.quantile(0.99),
        sojourn_p999: sojourns.quantile(0.999),
        completed,
        dispatched,
        comm_cost: if dispatched > 0 {
            hops_sum / dispatched as f64
        } else {
            0.0
        },
        window,
        n,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paba_core::{Library, Placement, ProximityChoice, StaleLoad};
    use paba_popularity::Popularity;
    use paba_topology::Torus;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Full-replication network: every node serves every file, isolating
    /// pure queueing behaviour.
    fn full_net(side: u32) -> CacheNetwork<Torus> {
        let topo = Torus::new(side);
        let library = Library::new(4, Popularity::Uniform);
        let placement = Placement::full(side * side, 4);
        CacheNetwork::from_parts(topo, library, placement)
    }

    #[test]
    fn mm1_sanity_single_server() {
        // n = 1 with any dispatch = an M/M/1 queue: time-averaged number
        // in system L = ρ/(1−ρ), tail Pr[N ≥ k] = ρ^k.
        let net = full_net(1);
        let mut strat = ProximityChoice::with_choices(None, 1);
        let cfg = QueueSimConfig {
            lambda: 0.5,
            horizon: 60_000.0,
            warmup: 2_000.0,
            tail_cap: 16,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(1);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            (rep.mean_queue - 1.0).abs() < 0.12,
            "M/M/1 L = 1 expected, got {}",
            rep.mean_queue
        );
        for (k, expect) in [(1usize, 0.5), (2, 0.25), (3, 0.125)] {
            assert!(
                (rep.tail_at(k) - expect).abs() < 0.05,
                "tail({k}) = {} vs ρ^{k} = {expect}",
                rep.tail_at(k)
            );
        }
    }

    #[test]
    fn mm1_mean_response_matches_closed_form() {
        // The M/M/1 closed form for the mean sojourn: W = 1/(1−ρ).
        // The older suite only checked L; this pins W directly, on both
        // the direct estimator and the sojourn-histogram mean.
        let net = full_net(1);
        for (lambda, seed) in [(0.5f64, 21u64), (0.7, 22)] {
            let expect = 1.0 / (1.0 - lambda);
            let cfg = QueueSimConfig {
                lambda,
                horizon: 120_000.0,
                warmup: 4_000.0,
                tail_cap: 16,
                stride: 0,
            };
            let mut strat = ProximityChoice::with_choices(None, 1);
            let mut rng = SmallRng::seed_from_u64(seed);
            let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
            assert!(
                (rep.mean_response - expect).abs() / expect < 0.08,
                "λ={lambda}: W {} vs 1/(1−ρ) = {expect}",
                rep.mean_response
            );
            // p50 of the M/M/1 sojourn (Exp with rate 1−ρ): ln 2/(1−ρ).
            let p50 = (2.0f64).ln() / (1.0 - lambda);
            assert!(
                (rep.sojourn_p50 - p50).abs() / p50 < 0.1,
                "λ={lambda}: p50 {} vs {p50}",
                rep.sojourn_p50
            );
        }
    }

    #[test]
    fn window_accumulator_opens_exactly_at_warmup() {
        // Regression (measurement-window bug 1): the integral side used
        // `t > warmup` while event counts used `clock >= warmup`. An
        // event landing exactly on the warmup instant must open the
        // window so both sides agree on `[warmup, horizon)`.
        let mut acc = WindowAccumulator::new(10.0, 2);
        acc.advance(10.0, &[1, 1, 0], &[1]);
        assert_eq!(
            acc.last_advance(),
            10.0,
            "an event at t == warmup must open the measurement window"
        );
        // The stretch from the boundary onward is credited in full.
        acc.advance(12.5, &[1, 1, 0], &[1]);
        assert!((acc.queue_area - 2.5).abs() < 1e-12);
        assert!((acc.integral[1] - 2.5).abs() < 1e-12);
        // Pre-warmup stretches stay excluded.
        let mut before = WindowAccumulator::new(10.0, 2);
        before.advance(4.0, &[1, 1, 0], &[1]);
        assert_eq!(before.last_advance(), 0.0);
        assert_eq!(before.queue_area, 0.0);
    }

    #[test]
    fn response_times_exclude_pre_warmup_arrivals() {
        // Regression (measurement-window bug 2): completions used to be
        // counted whenever the *departure* fell in the window, so the
        // warmup backlog leaked into `mean_response` and `completed`
        // could exceed `dispatched`. With a window much shorter than the
        // λ=0.9 backlog drain, the pre-fix code counts more completions
        // (the drained backlog) than in-window arrivals.
        let net = full_net(1);
        let mut strat = ProximityChoice::with_choices(None, 1);
        let cfg = QueueSimConfig {
            lambda: 0.9,
            horizon: 240.0,
            warmup: 200.0,
            tail_cap: 8,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(rep.completed > 0, "window must see completions");
        assert!(
            rep.completed <= rep.dispatched,
            "every counted completion must be an in-window arrival \
             (completed {} vs dispatched {})",
            rep.completed,
            rep.dispatched
        );
        // Structural bound: an in-window arrival completing in-window has
        // sojourn < window length, so the mean cannot exceed it.
        assert!(
            rep.mean_response < rep.window,
            "mean response {} exceeds the window {} — pre-warmup \
             arrivals leaked into the response statistics",
            rep.mean_response,
            rep.window
        );
    }

    #[test]
    fn max_queue_is_windowed_with_pre_warmup_peak_exposed() {
        // Regression (measurement-window bug 3): `max_queue` used to take
        // its maximum over *every* arrival including warmup. With a long
        // warmup and a short window at λ=0.9, the transient peak exceeds
        // the in-window peak, so the windowed statistic must come out
        // strictly smaller than the pre-warmup one.
        let net = full_net(1);
        let mut strat = ProximityChoice::with_choices(None, 1);
        let cfg = QueueSimConfig {
            lambda: 0.9,
            horizon: 2_000.0,
            warmup: 1_800.0,
            tail_cap: 8,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(22);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            rep.max_queue < rep.pre_warmup_max_queue,
            "in-window max {} should fall below the pre-warmup peak {} \
             in this regime — max_queue is leaking the transient",
            rep.max_queue,
            rep.pre_warmup_max_queue
        );
        assert!(rep.max_queue > 0);
    }

    #[test]
    fn halving_warmup_does_not_shift_stationary_mean_response() {
        // Warmup-sensitivity: the warmup knob must only trim the
        // transient. Past mixing, measuring over [500, 6000) vs
        // [1000, 6000) re-windows the same event stream (warmup does not
        // touch the RNG), so the stationary mean response may move only
        // by window-composition noise.
        let net = full_net(8);
        let run = |warmup: f64| {
            let cfg = QueueSimConfig {
                lambda: 0.7,
                horizon: 6_000.0,
                warmup,
                tail_cap: 16,
                stride: 0,
            };
            let mut strat = ProximityChoice::two_choice(None);
            let mut rng = SmallRng::seed_from_u64(7);
            simulate_queueing(&net, &mut strat, &cfg, &mut rng)
        };
        let long = run(1_000.0);
        let short = run(500.0);
        let rel = (long.mean_response - short.mean_response).abs() / long.mean_response;
        assert!(
            rel < 0.05,
            "halving warmup moved mean response by {rel:.3} \
             ({} vs {}) — warmup is contaminating the stationary window",
            long.mean_response,
            short.mean_response
        );
    }

    #[test]
    fn littles_law_consistency() {
        let net = full_net(8);
        let mut strat = ProximityChoice::two_choice(None);
        let cfg = QueueSimConfig {
            lambda: 0.8,
            horizon: 4_000.0,
            warmup: 500.0,
            tail_cap: 32,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(2);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        let direct = rep.mean_response;
        let littles = rep.littles_law_response();
        assert!(
            (direct - littles).abs() / direct < 0.1,
            "Little's law: direct {direct} vs L/λ {littles}"
        );
    }

    #[test]
    fn two_choice_tail_is_much_lighter_than_random() {
        // The supermarket effect (paper §VI / Mitzenmacher): at λ = 0.9,
        // Pr[Q ≥ 4] is ≈ λ^4 ≈ 0.66 for random dispatch but
        // ≈ λ^(2^4−1) ≈ 0.21 for two-choice.
        let net = full_net(16);
        let cfg = QueueSimConfig {
            lambda: 0.9,
            horizon: 3_000.0,
            warmup: 1_000.0,
            tail_cap: 32,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let mut random = ProximityChoice::with_choices(None, 1);
        let r_rand = simulate_queueing(&net, &mut random, &cfg, &mut rng);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut two = ProximityChoice::two_choice(None);
        let r_two = simulate_queueing(&net, &mut two, &cfg, &mut rng);
        assert!(
            r_two.tail_at(4) < 0.6 * r_rand.tail_at(4),
            "supermarket effect missing: two-choice {} vs random {}",
            r_two.tail_at(4),
            r_rand.tail_at(4)
        );
        assert!(r_two.max_queue <= r_rand.max_queue);
        // The sojourn tail collapses with the queue tail.
        assert!(
            r_two.sojourn_p99 < r_rand.sojourn_p99,
            "p99 sojourn: two-choice {} vs random {}",
            r_two.sojourn_p99,
            r_rand.sojourn_p99
        );
    }

    #[test]
    fn workload_sources_drive_the_queueing_engine() {
        // A flash crowd is the workload stress case: the boosted file
        // concentrates requests, replaying deterministically under a seed
        // and differing measurably from the baseline i.i.d. stream.
        let net = full_net(8);
        let cfg = QueueSimConfig {
            lambda: 0.8,
            horizon: 1_200.0,
            warmup: 300.0,
            tail_cap: 16,
            stride: 0,
        };
        let run = |seed: u64| {
            let mut strat = ProximityChoice::two_choice(Some(2));
            let mut source = paba_workload::FlashCrowd::new(0, 0, 10_000, 50.0, 0.0);
            let mut rng = SmallRng::seed_from_u64(seed);
            simulate_queueing_source(&net, &mut strat, &mut source, &cfg, &mut rng)
        };
        assert_eq!(run(17), run(17), "flash-crowd runs must replay");
        let flash = run(17);
        assert!(flash.completed > 0);
        assert!(flash.comm_cost <= 2.0);
        let mut strat = ProximityChoice::two_choice(Some(2));
        let mut rng = SmallRng::seed_from_u64(17);
        let iid = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert_ne!(flash, iid, "the workload family must actually matter");
    }

    #[test]
    fn stale_load_period_one_matches_fresh_exactly() {
        // A StaleLoad wrapper refreshing on every request must be
        // indistinguishable from the fresh strategy, RNG stream included.
        let net = full_net(8);
        let cfg = QueueSimConfig {
            lambda: 0.8,
            horizon: 1_500.0,
            warmup: 300.0,
            tail_cap: 16,
            stride: 0,
        };
        let mut fresh = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(13);
        let rep_fresh = simulate_queueing(&net, &mut fresh, &cfg, &mut rng);
        let mut stale = StaleLoad::new(ProximityChoice::two_choice(None), 1);
        let mut rng = SmallRng::seed_from_u64(13);
        let rep_stale = simulate_queueing(&net, &mut stale, &cfg, &mut rng);
        assert_eq!(rep_fresh, rep_stale);
    }

    #[test]
    fn stale_load_under_queueing_is_deterministic_and_ordered() {
        // The delayed-load-signal contender: refreshing the queue-length
        // snapshot only every `period` dispatches stays deterministic
        // given a seed, and its p99 sojourn sits between fresh two-choice
        // (better information) and random (no information) at high load.
        let net = full_net(12);
        let cfg = QueueSimConfig {
            lambda: 0.9,
            horizon: 4_000.0,
            warmup: 1_000.0,
            tail_cap: 32,
            stride: 0,
        };
        let n = net.n() as u64;
        let run_stale = |seed: u64| {
            let mut s = StaleLoad::new(ProximityChoice::two_choice(None), 4 * n);
            let mut rng = SmallRng::seed_from_u64(seed);
            simulate_queueing(&net, &mut s, &cfg, &mut rng)
        };
        assert_eq!(run_stale(14), run_stale(14), "stale runs must replay");

        let stale = run_stale(14);
        let mut two = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(14);
        let fresh = simulate_queueing(&net, &mut two, &cfg, &mut rng);
        let mut rand1 = ProximityChoice::with_choices(None, 1);
        let mut rng = SmallRng::seed_from_u64(14);
        let random = simulate_queueing(&net, &mut rand1, &cfg, &mut rng);
        assert!(
            stale.sojourn_p99 >= 0.95 * fresh.sojourn_p99,
            "stale p99 {} implausibly beats fresh p99 {}",
            stale.sojourn_p99,
            fresh.sojourn_p99
        );
        assert!(
            stale.sojourn_p99 <= random.sojourn_p99,
            "stale p99 {} worse than random p99 {} — the stale signal \
             should still carry most of the pow-of-d collapse",
            stale.sojourn_p99,
            random.sojourn_p99
        );
    }

    #[test]
    fn source_engine_matches_legacy_wrapper_bit_for_bit() {
        let net = full_net(6);
        let cfg = QueueSimConfig::default();
        let mut strat = ProximityChoice::two_choice(Some(3));
        let mut rng = SmallRng::seed_from_u64(15);
        let legacy = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        let mut strat = ProximityChoice::two_choice(Some(3));
        let mut source = IidUniform::with_policy(UncachedPolicy::ResampleFile);
        let mut rng = SmallRng::seed_from_u64(15);
        let sourced = simulate_queueing_source(&net, &mut strat, &mut source, &cfg, &mut rng);
        assert_eq!(legacy, sourced);
    }

    #[test]
    fn load_series_rides_the_stride_machinery() {
        let net = full_net(6);
        let cfg = QueueSimConfig {
            stride: 64,
            ..QueueSimConfig::default()
        };
        let mut strat = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(16);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(!rep.series.points.is_empty());
        assert!(rep
            .series
            .points
            .iter()
            .enumerate()
            .all(|(i, p)| p.requests == 64 * (i as u64 + 1)));
        // Sampling never touches the RNG stream or the measurements.
        let mut strat = ProximityChoice::two_choice(None);
        let mut rng = SmallRng::seed_from_u64(16);
        let off = simulate_queueing(
            &net,
            &mut strat,
            &QueueSimConfig {
                stride: 0,
                ..QueueSimConfig::default()
            },
            &mut rng,
        );
        assert_eq!(off.completed, rep.completed);
        assert_eq!(off.mean_queue, rep.mean_queue);
        assert!(off.series.points.is_empty());
    }

    #[test]
    fn radius_caps_communication_cost() {
        let net = full_net(12);
        let cfg = QueueSimConfig {
            lambda: 0.6,
            horizon: 500.0,
            warmup: 100.0,
            tail_cap: 16,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let mut strat = ProximityChoice::two_choice(Some(2));
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        assert!(
            rep.comm_cost <= 2.0,
            "cost {} exceeds radius",
            rep.comm_cost
        );
        assert!(rep.comm_cost > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let net = full_net(6);
        let cfg = QueueSimConfig::default();
        let run = |seed| {
            let mut strat = ProximityChoice::two_choice(Some(3));
            let mut rng = SmallRng::seed_from_u64(seed);
            simulate_queueing(&net, &mut strat, &cfg, &mut rng)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).completed, run(10).completed);
    }

    #[test]
    fn conservation_of_jobs() {
        let net = full_net(5);
        let cfg = QueueSimConfig {
            lambda: 0.5,
            horizon: 1_000.0,
            warmup: 0.0,
            tail_cap: 8,
            stride: 0,
        };
        let mut rng = SmallRng::seed_from_u64(6);
        let mut strat = ProximityChoice::two_choice(None);
        let rep = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
        // Everything completed was dispatched; what's left is in queues.
        assert!(rep.completed <= rep.dispatched);
        // Throughput ≈ λ·n at stationarity.
        let expect = 0.5 * net.n() as f64;
        assert!(
            (rep.throughput() - expect).abs() < 0.15 * expect,
            "throughput {} vs λn {expect}",
            rep.throughput()
        );
    }

    #[test]
    #[should_panic(expected = "0 < λ < 1")]
    fn unstable_lambda_rejected() {
        let net = full_net(3);
        let mut strat = ProximityChoice::two_choice(None);
        let cfg = QueueSimConfig {
            lambda: 1.2,
            ..Default::default()
        };
        let mut rng = SmallRng::seed_from_u64(0);
        let _ = simulate_queueing(&net, &mut strat, &cfg, &mut rng);
    }
}
