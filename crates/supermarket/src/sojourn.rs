//! Bounded-error sojourn-time quantiles.
//!
//! Per-job sojourn times arrive one by one in event order, and the repro
//! suite wants p50/p99/p999 of millions of them without keeping them all.
//! [`SojournHistogram`] is a geometric-bucket histogram: bucket `i` covers
//! `[MIN_VALUE·G^i, MIN_VALUE·G^(i+1))` with growth factor `G = 1.02`, so
//! any reported quantile is within ~1% relative error of the exact order
//! statistic (half a bucket each way) across `[1e-3, ~6e5]` time units —
//! far below the Monte-Carlo noise the gates budget for.
//!
//! The structure is fully deterministic (no reservoir RNG), so results
//! are identical however runs are scheduled across threads, and two
//! histograms merge by bucket-wise addition.

/// Geometric bucket growth factor: 2% wide buckets, ≤1% quantile error.
const GROWTH: f64 = 1.02;
/// Lower edge of bucket 0; smaller observations clamp into bucket 0.
const MIN_VALUE: f64 = 1e-3;
/// Bucket count; the top bucket absorbs everything above
/// `MIN_VALUE · GROWTH^BUCKETS ≈ 6.4e5`.
const BUCKETS: usize = 1024;

/// Mergeable, deterministic quantile sketch for positive durations.
#[derive(Clone, Debug, PartialEq)]
pub struct SojournHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Default for SojournHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SojournHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0.0,
        }
    }

    fn bucket(v: f64) -> usize {
        if v <= MIN_VALUE {
            0
        } else {
            let i = ((v / MIN_VALUE).ln() / GROWTH.ln()) as usize;
            i.min(BUCKETS - 1)
        }
    }

    /// Geometric midpoint of bucket `i` — the value a quantile landing in
    /// the bucket reports.
    fn midpoint(i: usize) -> f64 {
        MIN_VALUE * GROWTH.powi(i as i32) * GROWTH.sqrt()
    }

    /// Record one sojourn time. Non-finite observations are ignored
    /// (they would poison every quantile); negative ones clamp to the
    /// smallest bucket.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.counts[Self::bucket(v)] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded observations (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`), within one bucket of the exact
    /// order statistic. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::midpoint(i);
            }
        }
        Self::midpoint(BUCKETS - 1)
    }

    /// Bucket-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = SojournHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantiles_are_within_relative_error() {
        let mut h = SojournHistogram::new();
        // 1..=1000 as durations: exact p50 = 500, p99 = 990.
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - exact).abs() / exact < 0.025,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let mut h = SojournHistogram::new();
        for i in 0..500 {
            h.record(0.01 * (i + 1) as f64);
        }
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0];
        for w in qs.windows(2) {
            assert!(h.quantile(w[0]) <= h.quantile(w[1]) + 1e-12);
        }
    }

    #[test]
    fn extremes_clamp_instead_of_panicking() {
        let mut h = SojournHistogram::new();
        h.record(0.0);
        h.record(-1.0);
        h.record(1e300);
        h.record(f64::NAN); // ignored
        h.record(f64::INFINITY); // ignored
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.0) < 0.002);
        assert!(h.quantile(1.0) > 1e5);
    }

    #[test]
    fn merge_matches_single_histogram() {
        let mut a = SojournHistogram::new();
        let mut b = SojournHistogram::new();
        let mut whole = SojournHistogram::new();
        for i in 0..200 {
            let v = 0.5 + 0.1 * i as f64;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        // Bucket counts match exactly; the running sum only up to float
        // accumulation order.
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
    }
}
