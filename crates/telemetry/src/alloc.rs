//! Memory observability: a counting `#[global_allocator]` wrapper.
//!
//! [`CountingAlloc`] wraps any [`GlobalAlloc`] (normally
//! [`std::alloc::System`]) and tallies allocation count, cumulative
//! bytes, live bytes, and the live-bytes high-water mark in relaxed
//! atomics — four `fetch_add`s per allocation, nothing else.
//!
//! The wrapper type is always compiled (it is plain data), but it only
//! *does* anything when a binary installs it as the global allocator.
//! The `paba` CLI does so behind its `alloc-track` cargo feature:
//!
//! ```text
//! cargo run --release -p paba-cli --features alloc-track -- profile …
//! ```
//!
//! [`snapshot`] returns `None` until the first tracked allocation, which
//! in practice means "the counting allocator is not installed" — callers
//! (the profile artifact writer, the `/metrics` page) use that to omit
//! allocator stats rather than report zeros.

use std::alloc::{GlobalAlloc, Layout};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Global-allocator wrapper that counts allocations through to `A`.
///
/// All counters are process-global statics (there can only be one global
/// allocator), so two instances of this type share one set of tallies.
#[derive(Debug, Default)]
pub struct CountingAlloc<A>(pub A);

#[inline]
fn on_alloc(bytes: usize) {
    let bytes = bytes as u64;
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    ALLOCATED_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

#[inline]
fn on_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as u64, Ordering::Relaxed);
}

// SAFETY: all methods delegate directly to the wrapped allocator; the
// counter updates on the side never touch the returned memory.
unsafe impl<A: GlobalAlloc> GlobalAlloc for CountingAlloc<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = self.0.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = self.0.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.0.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = self.0.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Count a realloc as one allocation of the new size replacing
            // the old live bytes (retired first so peak reflects the net
            // footprint, not old + new).
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Point-in-time allocator tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Total successful allocations (incl. reallocs).
    pub allocations: u64,
    /// Cumulative bytes handed out.
    pub allocated_bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Single-line JSON object (the `"alloc"` block of `paba-profile/1`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"allocations\": {}, \"allocated_bytes\": {}, \"live_bytes\": {}, \"peak_bytes\": {}}}",
            self.allocations, self.allocated_bytes, self.live_bytes, self.peak_bytes
        )
    }
}

/// Current tallies, or `None` when no allocation has been tracked (the
/// counting allocator is not installed as `#[global_allocator]`).
pub fn snapshot() -> Option<AllocSnapshot> {
    let allocations = ALLOCATIONS.load(Ordering::Relaxed);
    if allocations == 0 {
        return None;
    }
    Some(AllocSnapshot {
        allocations,
        allocated_bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    })
}

/// High-water mark of live bytes, when tracking is active.
pub fn peak_bytes() -> Option<u64> {
    snapshot().map(|s| s.peak_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::alloc::System;

    /// One test drives the wrapper directly (installing a global
    /// allocator inside a test binary is not possible), checking the
    /// not-installed `None` state first since the counters are
    /// process-global.
    #[test]
    fn counting_alloc_tracks_and_snapshot_gates_on_activity() {
        assert_eq!(snapshot(), None, "no tracked allocations yet");
        assert_eq!(peak_bytes(), None);

        let a = CountingAlloc(System);
        let layout = Layout::from_size_align(1024, 8).unwrap();
        unsafe {
            let p1 = a.alloc(layout);
            let p2 = a.alloc_zeroed(layout);
            assert!(!p1.is_null() && !p2.is_null());

            let s = snapshot().expect("active after allocations");
            assert_eq!(s.allocations, 2);
            assert_eq!(s.allocated_bytes, 2048);
            assert_eq!(s.live_bytes, 2048);
            assert_eq!(s.peak_bytes, 2048);

            let p1 = a.realloc(p1, layout, 4096);
            assert!(!p1.is_null());
            let s = snapshot().unwrap();
            assert_eq!(s.allocations, 3);
            assert_eq!(s.live_bytes, 1024 + 4096);
            assert!(s.peak_bytes >= s.live_bytes);

            a.dealloc(p1, Layout::from_size_align(4096, 8).unwrap());
            a.dealloc(p2, layout);
        }
        let s = snapshot().unwrap();
        assert_eq!(s.live_bytes, 0, "balanced alloc/dealloc");
        assert_eq!(s.peak_bytes, 5120, "peak survives deallocation");
        assert_eq!(peak_bytes(), Some(5120));

        let j = s.to_json();
        for key in ["allocations", "allocated_bytes", "live_bytes", "peak_bytes"] {
            assert!(j.contains(&format!("\"{key}\": ")), "{j}");
        }
    }
}
