//! The event vocabulary: which sampler path fired, auxiliary counters, and
//! coarse pipeline stages.
//!
//! Each enum carries a stable `usize` discriminant used as an array index
//! in [`crate::AtomicRecorder`] and a kebab-case `label` used as a JSON
//! key in the `paba-profile/1` artifact. Extend by appending — the JSON
//! schema treats unknown keys as additive.

/// Which candidate-materialization path served one sampler invocation.
///
/// Exactly one path is recorded per assign request routed through
/// `ProximityChoice`, so the per-path counts sum to the request count —
/// the invariant `paba profile` asserts on its own artifact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum SamplerPath {
    /// Hybrid rejection loop succeeded by proposing replicas and checking
    /// distance (the sparse-pool side).
    RejectionReplica = 0,
    /// Hybrid rejection loop succeeded by proposing ball members and
    /// checking cache membership (the dense-pool side).
    RejectionBall = 1,
    /// Windowed materialization of the candidate pool (hybrid fallback or
    /// direct, depending on regime).
    Windowed = 2,
    /// Exhaustive scan materialization (`SamplerKind::ExactScan`).
    ExactScan = 3,
    /// Infinite radius: candidates drawn uniformly from the replica index
    /// without any ball geometry.
    IndexSample = 4,
    /// Full placement (every node caches every file): candidates drawn
    /// directly from the ball.
    BallSample = 5,
    /// The requested file has no replicas anywhere; the fallback policy
    /// served the request without a sampler.
    Uncached = 6,
}

impl SamplerPath {
    /// Number of variants (array dimension for per-path counters).
    pub const COUNT: usize = 7;

    /// All variants in discriminant order.
    pub const ALL: [SamplerPath; Self::COUNT] = [
        SamplerPath::RejectionReplica,
        SamplerPath::RejectionBall,
        SamplerPath::Windowed,
        SamplerPath::ExactScan,
        SamplerPath::IndexSample,
        SamplerPath::BallSample,
        SamplerPath::Uncached,
    ];

    /// Stable kebab-case name (JSON key / table row).
    pub fn label(self) -> &'static str {
        match self {
            SamplerPath::RejectionReplica => "rejection-replica",
            SamplerPath::RejectionBall => "rejection-ball",
            SamplerPath::Windowed => "windowed",
            SamplerPath::ExactScan => "exact-scan",
            SamplerPath::IndexSample => "index-sample",
            SamplerPath::BallSample => "ball-sample",
            SamplerPath::Uncached => "uncached",
        }
    }
}

/// Auxiliary event counters (not 1:1 with requests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Hybrid rejection loop ran out of attempts and fell through to
    /// windowed materialization.
    RejectionBudgetExhausted = 0,
    /// `nearest_replica` doubled its row-band search window (each count is
    /// one extra expansion beyond the initial estimate).
    RowBandExpansion = 1,
    /// `Placement::caches` membership query answered by the dense bitmap
    /// index.
    CachesBitmap = 2,
    /// `Placement::caches` membership query answered by binary search of
    /// the sorted replica/file lists.
    CachesBinarySearch = 3,
    /// One churn-schedule event (crash/leave/join/insert) applied to the
    /// live network.
    ChurnEvent = 4,
    /// A request's chosen server was dead; the failover path retried
    /// against the next-nearest live replica.
    DeadReplicaRetry = 5,
    /// No live replica was reachable within the retry budget; the request
    /// was served degraded (at its origin).
    FailedRequest = 6,
    /// One replica migrated (re-replicated or handed off) by the repair
    /// path.
    RepairMigration = 7,
}

impl Counter {
    /// Number of variants.
    pub const COUNT: usize = 8;

    /// All variants in discriminant order.
    pub const ALL: [Counter; Self::COUNT] = [
        Counter::RejectionBudgetExhausted,
        Counter::RowBandExpansion,
        Counter::CachesBitmap,
        Counter::CachesBinarySearch,
        Counter::ChurnEvent,
        Counter::DeadReplicaRetry,
        Counter::FailedRequest,
        Counter::RepairMigration,
    ];

    /// Stable kebab-case name (JSON key / table row).
    pub fn label(self) -> &'static str {
        match self {
            Counter::RejectionBudgetExhausted => "rejection-budget-exhausted",
            Counter::RowBandExpansion => "row-band-expansion",
            Counter::CachesBitmap => "caches-bitmap",
            Counter::CachesBinarySearch => "caches-binary-search",
            Counter::ChurnEvent => "churn-event",
            Counter::DeadReplicaRetry => "dead-replica-retry",
            Counter::FailedRequest => "failed-request",
            Counter::RepairMigration => "repair-migration",
        }
    }
}

/// Coarse pipeline stages timed by [`crate::SpanTimer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Building the network: topology + placement construction.
    PlacementBuild = 0,
    /// The request-assignment loop of one simulation run.
    AssignLoop = 1,
    /// Folding per-run/per-thread results into aggregate reports.
    MetricsMerge = 2,
}

impl Stage {
    /// Number of variants.
    pub const COUNT: usize = 3;

    /// All variants in discriminant order.
    pub const ALL: [Stage; Self::COUNT] = [
        Stage::PlacementBuild,
        Stage::AssignLoop,
        Stage::MetricsMerge,
    ];

    /// Stable kebab-case name (JSON key / table row).
    pub fn label(self) -> &'static str {
        match self {
            Stage::PlacementBuild => "placement-build",
            Stage::AssignLoop => "assign-loop",
            Stage::MetricsMerge => "metrics-merge",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_are_dense_indices() {
        for (i, p) in SamplerPath::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(*s as usize, i);
        }
    }

    #[test]
    fn labels_are_unique_kebab_case() {
        let mut seen = std::collections::HashSet::new();
        for p in SamplerPath::ALL {
            assert!(seen.insert(p.label()));
        }
        for c in Counter::ALL {
            assert!(seen.insert(c.label()));
        }
        for s in Stage::ALL {
            assert!(seen.insert(s.label()));
        }
        for label in seen {
            assert!(label
                .chars()
                .all(|ch| ch.is_ascii_lowercase() || ch == '-' || ch.is_ascii_digit()));
        }
    }
}
