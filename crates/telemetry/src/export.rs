//! Trace exporters — hand-rolled JSON, no new dependencies.
//!
//! Three formats:
//!
//! * [`events_jsonl`] — one JSON object per line per sampled event;
//!   greppable and `jq`-friendly.
//! * [`series_json`] — the `paba-trace-series/1` artifact: per-run load
//!   trajectories plus their pointwise mean.
//! * [`chrome_trace`] — Chrome Trace Format (`trace_event` complete
//!   events, `"ph": "X"`), loadable in Perfetto / `chrome://tracing`.
//!
//! The writers only use `format!`; the matching reader for round-trip
//! tests is `paba_repro::json`.

use paba_util::json::escape;
use paba_util::Provenance;

use crate::timeseries::LoadSeries;
use crate::trace::{RunTrace, SpanEvent, TraceEvent, TraceReport};

/// One event as a single-line JSON object.
pub fn event_json(e: &TraceEvent) -> String {
    let path = match e.path {
        Some(p) => format!("\"{}\"", escape(p.label())),
        None => "null".into(),
    };
    let pool = match e.pool_size {
        Some(s) => s.to_string(),
        None => "null".into(),
    };
    let cands: Vec<String> = e
        .candidates
        .iter()
        .map(|&(node, load)| format!("[{node}, {load}]"))
        .collect();
    format!(
        "{{\"run\": {}, \"request\": {}, \"file\": {}, \"origin\": {}, \"server\": {}, \"hops\": {}, \"path\": {}, \"pool_size\": {}, \"candidates\": [{}]}}",
        e.run,
        e.request,
        e.file,
        e.origin,
        e.server,
        e.hops,
        path,
        pool,
        cands.join(", ")
    )
}

/// JSONL dump: one event per line, `(run, request)` order, trailing
/// newline when nonempty.
pub fn events_jsonl<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_json(e));
        out.push('\n');
    }
    out
}

/// The `paba-trace-series/1` artifact: per-run series plus their mean,
/// stamped with the run's [`Provenance`].
pub fn series_json(runs: &[RunTrace], mean: &LoadSeries, provenance: &Provenance) -> String {
    let per_run: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"run\": {}, \"requests\": {}, \"series\": {}}}",
                r.run,
                r.requests,
                r.series.to_json()
            )
        })
        .collect();
    format!(
        "{{\n  \"schema\": \"{}\",\n  \"provenance\": {},\n  \"runs\": [{}],\n  \"mean\": {}\n}}\n",
        paba_util::schema::TRACE_SERIES,
        provenance.to_json(),
        per_run.join(", "),
        mean.to_json()
    )
}

/// Chrome Trace Format document for the stage spans.
///
/// Complete events (`"ph": "X"`) with microsecond `ts`/`dur`; each run
/// gets its own `tid` lane (spans outside any run land on `tid` 0).
pub fn chrome_trace(spans: &[SpanEvent]) -> String {
    let events: Vec<String> = spans
        .iter()
        .map(|s| {
            let tid = s.run.map(|r| r + 1).unwrap_or(0);
            format!(
                "    {{\"name\": \"{}\", \"cat\": \"stage\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 1, \"tid\": {}}}",
                escape(s.stage.label()),
                s.ts_ns as f64 / 1_000.0,
                s.dur_ns as f64 / 1_000.0,
                tid
            )
        })
        .collect();
    format!(
        "{{\n  \"traceEvents\": [\n{}\n  ],\n  \"displayTimeUnit\": \"ms\"\n}}\n",
        events.join(",\n")
    )
}

impl TraceReport {
    /// JSONL dump of all retained events (see [`events_jsonl`]).
    pub fn events_jsonl(&self) -> String {
        events_jsonl(self.events())
    }

    /// `paba-trace-series/1` artifact (see [`series_json`]).
    pub fn series_json(&self, provenance: &Provenance) -> String {
        series_json(&self.runs, &self.mean_series(), provenance)
    }

    /// Chrome Trace Format document (see [`chrome_trace`]).
    pub fn chrome_json(&self) -> String {
        chrome_trace(&self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{SamplerPath, Stage};

    fn event() -> TraceEvent {
        TraceEvent {
            run: 1,
            request: 7,
            file: 3,
            origin: 2,
            server: 9,
            hops: 2,
            path: Some(SamplerPath::Windowed),
            pool_size: Some(4),
            candidates: vec![(9, 0), (5, 3)],
        }
    }

    #[test]
    fn event_line_shape() {
        let line = event_json(&event());
        assert!(line.contains("\"path\": \"windowed\""));
        assert!(line.contains("\"candidates\": [[9, 0], [5, 3]]"));
        let none = TraceEvent {
            path: None,
            pool_size: None,
            candidates: vec![],
            ..event()
        };
        let line = event_json(&none);
        assert!(line.contains("\"path\": null"));
        assert!(line.contains("\"pool_size\": null"));
    }

    #[test]
    fn jsonl_is_one_line_per_event() {
        let evs = [event(), event()];
        let out = events_jsonl(evs.iter());
        assert_eq!(out.lines().count(), 2);
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn series_json_carries_schema_and_provenance() {
        let prov = Provenance::capture(paba_util::schema::TRACE_SERIES, 9, "quick", "trace cfg");
        let doc = series_json(&[], &LoadSeries::new(0), &prov);
        assert!(doc.contains("\"schema\": \"paba-trace-series/1\""));
        assert!(doc.contains("\"provenance\": {\"schema\": \"paba-trace-series/1\""));
        assert!(doc.contains("\"seed\": 9"));
    }

    #[test]
    fn chrome_trace_has_complete_events() {
        let spans = [SpanEvent {
            stage: Stage::AssignLoop,
            run: Some(0),
            ts_ns: 2_500,
            dur_ns: 1_000,
        }];
        let doc = chrome_trace(&spans);
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\": \"X\""));
        assert!(doc.contains("\"name\": \"assign-loop\""));
        assert!(doc.contains("\"ts\": 2.500"));
        assert!(doc.contains("\"dur\": 1.000"));
        assert!(doc.contains("\"tid\": 1"));
    }

    #[test]
    fn empty_chrome_trace_is_still_a_document() {
        let doc = chrome_trace(&[]);
        assert!(doc.contains("\"traceEvents\": [\n\n  ]"));
    }
}
