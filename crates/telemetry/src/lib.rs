//! Zero-overhead-when-disabled instrumentation for the assign hot path.
//!
//! The adaptive hybrid sampler (see `paba-core::strategy`) chooses between
//! several materialization paths at runtime — two-sided rejection, windowed
//! candidate enumeration, exact scans — and which path fires (and how often
//! its budgets blow) is exactly what explains where the Θ(log log n)
//! regime degrades at scale. This crate makes those internals observable
//! without taxing the hot path when observation is off:
//!
//! * [`Recorder`] — the event sink trait. Strategies are generic over it,
//!   so the choice of recorder is made at *compile time* per
//!   monomorphization, not per event.
//! * [`NullRecorder`] — the default. Every method is an empty `#[inline]`
//!   body and [`Recorder::ENABLED`] is `false`, so instrumented code
//!   compiles to exactly the uninstrumented machine code. A CI throughput
//!   gate (`paba profile --check`) keeps that claim honest.
//! * [`AtomicRecorder`] — relaxed per-event atomic counters plus log₂-
//!   bucket span histograms. Shareable across threads by reference; the
//!   Monte-Carlo runner gives each worker thread its own instance and
//!   merges [`TelemetrySnapshot`]s after join, so parallel determinism of
//!   the simulation itself is untouched.
//! * [`SpanTimer`] — monotonic-clock stage timers (placement build, assign
//!   loop, metrics merge) that skip the clock read entirely when the
//!   recorder is disabled.
//! * [`TelemetrySnapshot`] — a plain-data view with associative
//!   [`TelemetrySnapshot::merge`], JSON serialization for the
//!   `paba-profile/1` artifact, and a human-readable table.
//!
//! On top of the aggregate counters sits the *time-resolved* layer:
//!
//! * [`TraceRecorder`] — sampled per-request [`TraceEvent`]s (1-in-N or
//!   reservoir, deterministic per run) plus a per-run load-evolution
//!   [`LoadSeries`], merged scheduling-independently via
//!   [`TraceReport::collect`].
//! * [`export`] — JSONL event dumps, the `paba-trace-series/1` artifact,
//!   and Chrome Trace Format spans loadable in Perfetto.
//!
//! And the *live* layer added for operational visibility:
//!
//! * [`serve`] — a std-only Prometheus text-exposition endpoint
//!   (`/metrics`, `/healthz`) rendering a shared [`AtomicRecorder`]
//!   snapshot plus runner progress while a run is still in flight.
//! * [`alloc`] — a counting `#[global_allocator]` wrapper surfacing
//!   allocation count / bytes / peak in the profile artifact and on the
//!   metrics page (installed by the CLI behind its `alloc-track`
//!   feature).

pub mod alloc;
pub mod events;
pub mod export;
pub mod recorder;
pub mod serve;
pub mod snapshot;
pub mod timeseries;
pub mod trace;

pub use alloc::{AllocSnapshot, CountingAlloc};
pub use events::{Counter, SamplerPath, Stage};
pub use recorder::{AtomicRecorder, NullRecorder, Recorder, SpanTimer, Tee, POOL_SIZE_BUCKETS};
pub use serve::{MetricsServer, ProgressView};
pub use snapshot::{SpanSummary, TelemetrySnapshot};
pub use timeseries::{LoadSeries, SeriesPoint};
pub use trace::{
    RunTrace, Sampling, SpanEvent, TraceConfig, TraceEvent, TraceRecorder, TraceReport,
};
