//! The [`Recorder`] trait and its two implementations.
//!
//! Instrumented code is generic over `Rec: Recorder`, so the compiler
//! monomorphizes one copy per recorder type. With [`NullRecorder`] every
//! event call is an empty inlined body and [`Recorder::ENABLED`] is a
//! compile-time `false` — any bookkeeping needed *only* to feed the
//! recorder (attempt tallies, clock reads) should be guarded by
//! `Rec::ENABLED` so the optimizer deletes it outright.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use paba_util::Histogram;

use crate::events::{Counter, SamplerPath, Stage};
use crate::snapshot::{SpanSummary, TelemetrySnapshot};

/// Event sink for hot-path instrumentation.
///
/// All methods take `&self`: the atomic implementation is shared across
/// call sites by reference, and the null implementation has no state.
pub trait Recorder {
    /// Compile-time flag: `false` means every method is a no-op and any
    /// caller-side bookkeeping guarded by this constant folds away.
    const ENABLED: bool;

    /// Record which sampler path served one request.
    fn path(&self, path: SamplerPath);

    /// Add `delta` to an auxiliary counter.
    fn count(&self, counter: Counter, delta: u64);

    /// Record the size of one materialized candidate pool.
    fn pool_size(&self, size: usize);

    /// Record an elapsed span of `nanos` nanoseconds for `stage`.
    fn span_ns(&self, stage: Stage, nanos: u64);

    /// Record the outcome of one assignment: file id, requesting origin,
    /// chosen server, hop distance, and the `(node, load)` candidates the
    /// strategy compared. Strategies call this once per request at the end
    /// of `assign`; `candidates` is lazy so a recorder that does not
    /// sample this request never pays for materializing it. Default: no-op.
    #[inline(always)]
    fn request(
        &self,
        _file: u64,
        _origin: u64,
        _server: u64,
        _hops: u32,
        _candidates: &mut dyn Iterator<Item = (u64, u32)>,
    ) {
    }

    /// Observe the full load vector after request `request_index` was
    /// recorded — the hook behind load-evolution time series. Default:
    /// no-op.
    #[inline(always)]
    fn loads(&self, _request_index: u64, _loads: &[u32]) {}
}

/// References to a recorder are recorders themselves; strategies hold a
/// `&AtomicRecorder` without losing the compile-time `ENABLED` constant.
impl<R: Recorder + ?Sized> Recorder for &R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn path(&self, path: SamplerPath) {
        (**self).path(path);
    }

    #[inline(always)]
    fn count(&self, counter: Counter, delta: u64) {
        (**self).count(counter, delta);
    }

    #[inline(always)]
    fn pool_size(&self, size: usize) {
        (**self).pool_size(size);
    }

    #[inline(always)]
    fn span_ns(&self, stage: Stage, nanos: u64) {
        (**self).span_ns(stage, nanos);
    }

    // The two default-body hooks must be forwarded explicitly: a default
    // body on `&R` would silently swallow events instead of delegating to
    // the underlying recorder.
    #[inline(always)]
    fn request(
        &self,
        file: u64,
        origin: u64,
        server: u64,
        hops: u32,
        candidates: &mut dyn Iterator<Item = (u64, u32)>,
    ) {
        (**self).request(file, origin, server, hops, candidates);
    }

    #[inline(always)]
    fn loads(&self, request_index: u64, loads: &[u32]) {
        (**self).loads(request_index, loads);
    }
}

/// The do-nothing recorder: the default for every strategy, compiling
/// instrumented code down to the uninstrumented machine code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn path(&self, _path: SamplerPath) {}

    #[inline(always)]
    fn count(&self, _counter: Counter, _delta: u64) {}

    #[inline(always)]
    fn pool_size(&self, _size: usize) {}

    #[inline(always)]
    fn span_ns(&self, _stage: Stage, _nanos: u64) {}

    #[inline(always)]
    fn request(
        &self,
        _file: u64,
        _origin: u64,
        _server: u64,
        _hops: u32,
        _candidates: &mut dyn Iterator<Item = (u64, u32)>,
    ) {
    }

    #[inline(always)]
    fn loads(&self, _request_index: u64, _loads: &[u32]) {}
}

/// Fan one event stream out to two recorders.
///
/// Built for serving live metrics during traced runs: the strategy holds
/// a `Tee(&TraceRecorder, &AtomicRecorder)` so the per-thread trace
/// collection and the shared live scrape recorder both see every event.
///
/// The lazy `candidates` iterator of [`Recorder::request`] can only be
/// consumed once, so it is forwarded to the *first* recorder; the second
/// receives an empty iterator (the aggregate recorders ignore it anyway).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Recorder, B: Recorder> Recorder for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline(always)]
    fn path(&self, path: SamplerPath) {
        self.0.path(path);
        self.1.path(path);
    }

    #[inline(always)]
    fn count(&self, counter: Counter, delta: u64) {
        self.0.count(counter, delta);
        self.1.count(counter, delta);
    }

    #[inline(always)]
    fn pool_size(&self, size: usize) {
        self.0.pool_size(size);
        self.1.pool_size(size);
    }

    #[inline(always)]
    fn span_ns(&self, stage: Stage, nanos: u64) {
        self.0.span_ns(stage, nanos);
        self.1.span_ns(stage, nanos);
    }

    #[inline(always)]
    fn request(
        &self,
        file: u64,
        origin: u64,
        server: u64,
        hops: u32,
        candidates: &mut dyn Iterator<Item = (u64, u32)>,
    ) {
        self.0.request(file, origin, server, hops, candidates);
        self.1
            .request(file, origin, server, hops, &mut std::iter::empty());
    }

    #[inline(always)]
    fn loads(&self, request_index: u64, loads: &[u32]) {
        self.0.loads(request_index, loads);
        self.1.loads(request_index, loads);
    }
}

/// Candidate-pool sizes are bucketed exactly up to this bound; anything
/// larger lands in the final overflow bucket. Pools in the paper's regimes
/// are `O(m/n · ball)` — tens, not hundreds — so 512 exact buckets cover
/// everything we have ever observed with room to spare.
pub const POOL_SIZE_BUCKETS: usize = 512;

/// log₂ span buckets: bucket 0 holds the value 0, bucket `b ≥ 1` holds
/// `[2^(b-1), 2^b)`. `log2_bucket(u64::MAX) = 64`, hence 65 buckets.
const SPAN_BUCKETS: usize = 65;

/// Per-stage span aggregate: log₂ latency buckets plus exact sum/max/count
/// so means stay exact even though quantiles are bucketed.
#[derive(Debug)]
struct SpanCell {
    buckets: [AtomicU64; SPAN_BUCKETS],
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    count: AtomicU64,
}

impl SpanCell {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        let b = Histogram::log2_bucket(nanos);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn summary(&self, stage: Stage) -> SpanSummary {
        let mut buckets = Histogram::with_capacity(SPAN_BUCKETS);
        for (b, cell) in self.buckets.iter().enumerate() {
            buckets.record_n(b, cell.load(Ordering::Relaxed));
        }
        SpanSummary {
            stage,
            buckets,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// Relaxed atomic event counters, shareable across threads by reference.
///
/// All loads/stores are `Relaxed`: counters are independent monotonic
/// tallies read only after the threads that fed them have joined, so no
/// ordering between events is needed.
#[derive(Debug)]
pub struct AtomicRecorder {
    paths: [AtomicU64; SamplerPath::COUNT],
    counters: [AtomicU64; Counter::COUNT],
    pool_sizes: Vec<AtomicU64>,
    spans: [SpanCell; Stage::COUNT],
}

impl AtomicRecorder {
    /// Fresh recorder with all counters at zero.
    pub fn new() -> Self {
        Self {
            paths: std::array::from_fn(|_| AtomicU64::new(0)),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            pool_sizes: (0..POOL_SIZE_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            spans: std::array::from_fn(|_| SpanCell::new()),
        }
    }

    /// Read the current counter values into a plain-data snapshot.
    ///
    /// Safe to call while other threads are still recording (each counter
    /// is read atomically), but the snapshot is only guaranteed complete
    /// after writers have joined.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut pool_sizes = Histogram::new();
        for (size, cell) in self.pool_sizes.iter().enumerate() {
            pool_sizes.record_n(size, cell.load(Ordering::Relaxed));
        }
        TelemetrySnapshot {
            paths: std::array::from_fn(|i| self.paths[i].load(Ordering::Relaxed)),
            counters: std::array::from_fn(|i| self.counters[i].load(Ordering::Relaxed)),
            pool_sizes,
            spans: Stage::ALL
                .iter()
                .map(|&s| self.spans[s as usize].summary(s))
                .collect(),
        }
    }
}

impl Default for AtomicRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for AtomicRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn path(&self, path: SamplerPath) {
        self.paths[path as usize].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn count(&self, counter: Counter, delta: u64) {
        self.counters[counter as usize].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn pool_size(&self, size: usize) {
        let bucket = size.min(POOL_SIZE_BUCKETS - 1);
        self.pool_sizes[bucket].fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    fn span_ns(&self, stage: Stage, nanos: u64) {
        self.spans[stage as usize].record(nanos);
    }
}

/// Monotonic-clock stage timer.
///
/// The clock is read only when the recorder is enabled — with
/// [`NullRecorder`] both `start` and `stop` compile to nothing.
#[derive(Debug)]
#[must_use = "a span timer records nothing until stopped"]
pub struct SpanTimer {
    start: Option<Instant>,
    stage: Stage,
}

impl SpanTimer {
    /// Begin timing `stage`. The recorder is only consulted for its
    /// compile-time `ENABLED` flag here; the event fires on [`Self::stop`].
    #[inline]
    pub fn start<R: Recorder>(_rec: &R, stage: Stage) -> Self {
        Self {
            start: R::ENABLED.then(Instant::now),
            stage,
        }
    }

    /// Stop the timer and record the elapsed span.
    #[inline]
    pub fn stop<R: Recorder>(self, rec: &R) {
        if let Some(t0) = self.start {
            let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            rec.span_ns(self.stage, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const { assert!(!NullRecorder::ENABLED) };
        const { assert!(!<&NullRecorder as Recorder>::ENABLED) };
        const { assert!(AtomicRecorder::ENABLED) };
        const { assert!(<&AtomicRecorder as Recorder>::ENABLED) };
    }

    #[test]
    fn atomic_recorder_counts() {
        let rec = AtomicRecorder::new();
        rec.path(SamplerPath::Windowed);
        rec.path(SamplerPath::Windowed);
        rec.path(SamplerPath::ExactScan);
        rec.count(Counter::RejectionBudgetExhausted, 3);
        rec.pool_size(7);
        rec.pool_size(POOL_SIZE_BUCKETS + 100); // overflow bucket
        rec.span_ns(Stage::AssignLoop, 1000);
        let snap = rec.snapshot();
        assert_eq!(snap.paths[SamplerPath::Windowed as usize], 2);
        assert_eq!(snap.paths[SamplerPath::ExactScan as usize], 1);
        assert_eq!(snap.counters[Counter::RejectionBudgetExhausted as usize], 3);
        assert_eq!(snap.pool_sizes.count(7), 1);
        assert_eq!(snap.pool_sizes.count(POOL_SIZE_BUCKETS - 1), 1);
        assert_eq!(snap.total_requests(), 3);
        let span = &snap.spans[Stage::AssignLoop as usize];
        assert_eq!(span.count, 1);
        assert_eq!(span.sum_ns, 1000);
        assert_eq!(span.max_ns, 1000);
        assert_eq!(span.buckets.count(Histogram::log2_bucket(1000)), 1);
    }

    #[test]
    fn recorder_by_reference() {
        let rec = AtomicRecorder::new();
        fn generic_site<R: Recorder>(r: &R) {
            r.path(SamplerPath::BallSample);
        }
        generic_site(&&rec); // &&AtomicRecorder: blanket impl through two refs
        generic_site(&rec);
        assert_eq!(rec.snapshot().paths[SamplerPath::BallSample as usize], 2);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let rec = AtomicRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..1000usize {
                        rec.path(SamplerPath::RejectionReplica);
                        rec.pool_size(i % 16);
                        rec.count(Counter::CachesBitmap, 2);
                    }
                });
            }
        });
        let snap = rec.snapshot();
        assert_eq!(snap.paths[SamplerPath::RejectionReplica as usize], 4000);
        assert_eq!(snap.pool_sizes.total(), 4000);
        assert_eq!(snap.counters[Counter::CachesBitmap as usize], 8000);
    }

    #[test]
    fn tee_forwards_to_both_recorders() {
        const { assert!(!Tee::<NullRecorder, NullRecorder>::ENABLED) };
        const { assert!(Tee::<NullRecorder, &AtomicRecorder>::ENABLED) };

        let a = AtomicRecorder::new();
        let b = AtomicRecorder::new();
        let tee = Tee(&a, &b);
        tee.path(SamplerPath::Windowed);
        tee.count(Counter::RowBandExpansion, 2);
        tee.pool_size(3);
        tee.span_ns(Stage::AssignLoop, 500);
        for rec in [&a, &b] {
            let snap = rec.snapshot();
            assert_eq!(snap.path_count(SamplerPath::Windowed), 1);
            assert_eq!(snap.counter(Counter::RowBandExpansion), 2);
            assert_eq!(snap.pool_sizes.total(), 1);
            assert_eq!(snap.span(Stage::AssignLoop).count, 1);
        }
    }

    #[test]
    fn span_timer_records_only_when_enabled() {
        let rec = AtomicRecorder::new();
        let t = SpanTimer::start(&rec, Stage::PlacementBuild);
        t.stop(&rec);
        assert_eq!(
            rec.snapshot().spans[Stage::PlacementBuild as usize].count,
            1
        );

        // Null: no clock read, no record; just must compile and run.
        let t = SpanTimer::start(&NullRecorder, Stage::PlacementBuild);
        assert!(t.start.is_none());
        t.stop(&NullRecorder);
    }
}
