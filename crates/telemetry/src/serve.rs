//! Live `/metrics` exposition — std-only Prometheus text format 0.0.4.
//!
//! Long runs (ROADMAP item 3 targets 10⁷–10⁸-node simulations) should be
//! observable *while they run*, not only from the artifact written at the
//! end. [`MetricsServer`] binds a `std::net::TcpListener` on a scrape
//! thread and answers `GET /metrics` by calling a render closure the
//! caller composes (typically from a shared [`crate::AtomicRecorder`]
//! snapshot plus runner progress); `GET /healthz` answers `ok`.
//!
//! The server is strictly additive: nothing in the hot path knows it
//! exists. When `--serve-metrics` is absent no listener is bound, the
//! [`crate::NullRecorder`] monomorphizations are untouched, and the
//! `paba profile --check` non-regression gate keeps that claim honest.
//!
//! [`render_metrics`] is the shared renderer: one pass over a
//! [`TelemetrySnapshot`] (sampler-path counters, auxiliary counters,
//! pool sizes, span histograms), an optional [`ProgressView`], and
//! optional allocator stats ([`crate::alloc`]), emitted as conformant
//! metric families — every family gets `# HELP`/`# TYPE`, counters end
//! in `_total`, histograms emit cumulative `_bucket{le=…}`/`_sum`/
//! `_count` series.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::alloc::AllocSnapshot;
use crate::events::{Counter, SamplerPath};
use crate::snapshot::TelemetrySnapshot;

/// Plain-data view of runner progress for the metrics page.
///
/// `paba-telemetry` sits below the Monte-Carlo runner in the dependency
/// graph, so the runner's `Progress` converts itself into this struct
/// (see `paba_mcrunner::LiveRun`) rather than being referenced here.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgressView {
    /// Work units completed so far.
    pub completed: u64,
    /// Total work units.
    pub total: u64,
    /// Wall seconds since the run started.
    pub elapsed_s: f64,
    /// Completion rate in units/s (0.0 until known).
    pub rate: f64,
    /// Estimated seconds to completion, when a rate is known.
    pub eta_s: Option<f64>,
}

/// Escape a `# HELP` text: `\` → `\\`, newline → `\n`.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_string()
    } else if x == f64::INFINITY {
        "+Inf".to_string()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{x}")
    }
}

struct Page {
    out: String,
}

impl Page {
    fn new() -> Self {
        Self { out: String::new() }
    }

    fn family(&mut self, name: &str, kind: &str, help: &str) {
        debug_assert!(valid_metric_name(name), "bad metric name {name}");
        self.out
            .push_str(&format!("# HELP {name} {}\n", escape_help(help)));
        self.out.push_str(&format!("# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: &str) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{}\"", escape_label(v)));
            }
            self.out.push('}');
        }
        self.out.push(' ');
        self.out.push_str(value);
        self.out.push('\n');
    }
}

/// `[a-zA-Z_:][a-zA-Z0-9_:]*` — the Prometheus metric-name charset.
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Render one Prometheus text-format page from a telemetry snapshot plus
/// optional progress and allocator state.
///
/// Every series is emitted on every render (zeros included), so a scraper
/// sees stable series identities and monotone counters across scrapes.
pub fn render_metrics(
    snap: &TelemetrySnapshot,
    progress: Option<&ProgressView>,
    alloc: Option<&AllocSnapshot>,
) -> String {
    let mut p = Page::new();

    p.family(
        "paba_build_info",
        "gauge",
        "Build metadata of the serving process (value is always 1).",
    );
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    p.sample(
        "paba_build_info",
        &[("version", env!("CARGO_PKG_VERSION")), ("profile", profile)],
        "1",
    );

    p.family(
        "paba_requests_total",
        "counter",
        "Assign requests recorded, summed over sampler paths.",
    );
    p.sample(
        "paba_requests_total",
        &[],
        &snap.total_requests().to_string(),
    );

    p.family(
        "paba_sampler_path_requests_total",
        "counter",
        "Assign requests served, by candidate-materialization path.",
    );
    for path in SamplerPath::ALL {
        p.sample(
            "paba_sampler_path_requests_total",
            &[("path", path.label())],
            &snap.path_count(path).to_string(),
        );
    }

    p.family(
        "paba_events_total",
        "counter",
        "Auxiliary hot-path events (budget exhaustions, index fallbacks).",
    );
    for c in Counter::ALL {
        p.sample(
            "paba_events_total",
            &[("counter", c.label())],
            &snap.counter(c).to_string(),
        );
    }

    p.family(
        "paba_candidate_pools_total",
        "counter",
        "Materialized candidate pools observed.",
    );
    p.sample(
        "paba_candidate_pools_total",
        &[],
        &snap.pool_sizes.total().to_string(),
    );

    p.family(
        "paba_stage_duration_seconds",
        "histogram",
        "Stage span durations (log2-bucketed nanoseconds, upper bounds in seconds).",
    );
    for span in &snap.spans {
        let stage = span.stage.label();
        let mut cumulative = 0u64;
        for (bucket, count) in span.buckets.iter() {
            cumulative += count;
            // Bucket 0 holds the value 0 ns; bucket b >= 1 covers
            // [2^(b-1), 2^b) ns, so 2^b ns is its inclusive-enough upper
            // bound once converted to seconds.
            let le = if bucket == 0 {
                0.0
            } else {
                (1u64 << bucket.min(63)) as f64 / 1e9
            };
            p.sample(
                "paba_stage_duration_seconds_bucket",
                &[("stage", stage), ("le", &fmt_f64(le))],
                &cumulative.to_string(),
            );
        }
        p.sample(
            "paba_stage_duration_seconds_bucket",
            &[("stage", stage), ("le", "+Inf")],
            &span.count.to_string(),
        );
        p.sample(
            "paba_stage_duration_seconds_sum",
            &[("stage", stage)],
            &fmt_f64(span.sum_ns as f64 / 1e9),
        );
        p.sample(
            "paba_stage_duration_seconds_count",
            &[("stage", stage)],
            &span.count.to_string(),
        );
    }

    if let Some(pr) = progress {
        p.family(
            "paba_progress_completed_runs",
            "gauge",
            "Work units (runs or grid points) completed so far.",
        );
        p.sample(
            "paba_progress_completed_runs",
            &[],
            &pr.completed.to_string(),
        );
        p.family(
            "paba_progress_total_runs",
            "gauge",
            "Total work units in this invocation.",
        );
        p.sample("paba_progress_total_runs", &[], &pr.total.to_string());
        p.family(
            "paba_progress_elapsed_seconds",
            "gauge",
            "Wall seconds since the run started.",
        );
        p.sample("paba_progress_elapsed_seconds", &[], &fmt_f64(pr.elapsed_s));
        p.family(
            "paba_progress_rate_runs_per_second",
            "gauge",
            "Completion rate in work units per second.",
        );
        p.sample("paba_progress_rate_runs_per_second", &[], &fmt_f64(pr.rate));
        if let Some(eta) = pr.eta_s {
            p.family(
                "paba_progress_eta_seconds",
                "gauge",
                "Estimated seconds until completion.",
            );
            p.sample("paba_progress_eta_seconds", &[], &fmt_f64(eta));
        }
    }

    if let Some(a) = alloc {
        p.family(
            "paba_alloc_allocations_total",
            "counter",
            "Heap allocations observed by the counting global allocator.",
        );
        p.sample(
            "paba_alloc_allocations_total",
            &[],
            &a.allocations.to_string(),
        );
        p.family(
            "paba_alloc_allocated_bytes_total",
            "counter",
            "Cumulative bytes handed out by the counting global allocator.",
        );
        p.sample(
            "paba_alloc_allocated_bytes_total",
            &[],
            &a.allocated_bytes.to_string(),
        );
        p.family(
            "paba_alloc_live_bytes",
            "gauge",
            "Currently live heap bytes.",
        );
        p.sample("paba_alloc_live_bytes", &[], &a.live_bytes.to_string());
        p.family(
            "paba_alloc_peak_bytes",
            "gauge",
            "High-water mark of live heap bytes.",
        );
        p.sample("paba_alloc_peak_bytes", &[], &a.peak_bytes.to_string());
    }

    p.out
}

/// A background scrape endpoint serving `GET /metrics` and
/// `GET /healthz` until shut down.
///
/// The render closure runs on the scrape thread per request, so it must
/// be cheap-ish and must only read shared state (an atomic snapshot).
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// start the scrape thread.
    pub fn spawn<F>(addr: &str, render: F) -> Result<Self, String>
    where
        F: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)
            .map_err(|e| format!("cannot bind metrics address {addr}: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("metrics listener: {e}"))?;
        let local = listener
            .local_addr()
            .map_err(|e| format!("metrics listener: {e}"))?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("paba-metrics".into())
            .spawn(move || {
                // Accept-error backoff: WouldBlock is the idle poll tick and
                // stays at the base interval, but hard accept errors (EMFILE,
                // ENFILE, ECONNABORTED storms) double the sleep up to a 1 s
                // cap so a persistent fault cannot spin the thread, then
                // reset as soon as an accept succeeds.
                const BASE: Duration = Duration::from_millis(25);
                const CAP: Duration = Duration::from_millis(1000);
                let mut backoff = BASE;
                while !stop_thread.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            backoff = BASE;
                            // A broken scrape must not kill the endpoint.
                            let _ = serve_connection(stream, &render);
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            backoff = BASE;
                            std::thread::sleep(BASE);
                        }
                        Err(_) => {
                            std::thread::sleep(backoff);
                            backoff = (backoff * 2).min(CAP);
                        }
                    }
                }
            })
            .map_err(|e| format!("cannot spawn metrics thread: {e}"))?;
        Ok(Self {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the scrape thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection<F: Fn() -> String>(mut stream: TcpStream, render: &F) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut req = Vec::new();
    // Read until the end of the request head (we ignore any body).
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        req.extend_from_slice(&buf[..n]);
        if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > 16 * 1024 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&req);
    let mut parts = head.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                render(),
            ),
            "/healthz" => ("200 OK", "text/plain", "ok\n".to_string()),
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::Stage;
    use crate::recorder::{AtomicRecorder, Recorder};

    fn busy_recorder() -> AtomicRecorder {
        let rec = AtomicRecorder::new();
        rec.path(SamplerPath::RejectionReplica);
        rec.path(SamplerPath::RejectionReplica);
        rec.path(SamplerPath::Windowed);
        rec.count(Counter::RejectionBudgetExhausted, 5);
        rec.pool_size(12);
        rec.span_ns(Stage::AssignLoop, 1_500);
        rec.span_ns(Stage::AssignLoop, 0);
        rec
    }

    /// Parse one exposition line into (name, labels, value); None for
    /// comments/blanks.
    fn parse_line(line: &str) -> Option<(String, String, String)> {
        if line.is_empty() || line.starts_with('#') {
            return None;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => (n.to_string(), rest.trim_end_matches('}').to_string()),
            None => (series.to_string(), String::new()),
        };
        Some((name, labels, value.to_string()))
    }

    #[test]
    fn every_sample_line_is_well_formed() {
        let snap = busy_recorder().snapshot();
        let progress = ProgressView {
            completed: 3,
            total: 10,
            elapsed_s: 1.5,
            rate: 2.0,
            eta_s: Some(3.5),
        };
        let alloc = AllocSnapshot {
            allocations: 10,
            allocated_bytes: 4096,
            live_bytes: 1024,
            peak_bytes: 2048,
        };
        let page = render_metrics(&snap, Some(&progress), Some(&alloc));
        let mut samples = 0;
        for line in page.lines() {
            let Some((name, labels, value)) = parse_line(line) else {
                continue;
            };
            samples += 1;
            assert!(valid_metric_name(&name), "bad name in {line:?}");
            if !labels.is_empty() {
                for pair in labels.split("\",") {
                    let (k, v) = pair.split_once("=\"").expect("label k=\"v\"");
                    assert!(valid_metric_name(k), "bad label name in {line:?}");
                    assert!(!v.contains('\n'), "unescaped newline in {line:?}");
                }
            }
            let v = value.trim_end_matches('"');
            assert!(
                v == "+Inf" || v.parse::<f64>().is_ok(),
                "bad value in {line:?}"
            );
        }
        assert!(samples > 20, "page has substance ({samples} samples)");
        // Counters end in _total per convention; gauges don't.
        assert!(page.contains("paba_requests_total 3"));
        assert!(page.contains("paba_sampler_path_requests_total{path=\"rejection-replica\"} 2"));
        assert!(page.contains("paba_events_total{counter=\"rejection-budget-exhausted\"} 5"));
        assert!(page.contains("paba_progress_completed_runs 3"));
        assert!(page.contains("paba_alloc_peak_bytes 2048"));
    }

    #[test]
    fn every_family_has_help_and_type() {
        let snap = busy_recorder().snapshot();
        let page = render_metrics(&snap, None, None);
        let mut declared = std::collections::HashSet::new();
        for line in page.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                declared.insert(rest.split(' ').next().unwrap().to_string());
            }
        }
        for line in page.lines() {
            let Some((name, _, _)) = parse_line(line) else {
                continue;
            };
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(&name);
            assert!(
                declared.contains(family) || declared.contains(&name),
                "sample {name} has no TYPE declaration"
            );
        }
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_inf() {
        let rec = AtomicRecorder::new();
        for ns in [0u64, 100, 1_000, 1_000_000, 1_000_000] {
            rec.span_ns(Stage::AssignLoop, ns);
        }
        let page = render_metrics(&rec.snapshot(), None, None);
        let mut last = 0u64;
        let mut saw_inf = false;
        for line in page.lines() {
            if line.starts_with("paba_stage_duration_seconds_bucket{stage=\"assign-loop\"") {
                let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
                assert!(v >= last, "buckets must be cumulative: {line}");
                last = v;
                if line.contains("le=\"+Inf\"") {
                    saw_inf = true;
                    assert_eq!(v, 5);
                }
            }
        }
        assert!(saw_inf, "+Inf bucket present");
        assert!(page.contains("paba_stage_duration_seconds_count{stage=\"assign-loop\"} 5"));
    }

    #[test]
    fn help_and_label_escaping() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label("say \"hi\"\\\n"), "say \\\"hi\\\"\\\\\\n");
        // Label values in a rendered page never contain raw quotes beyond
        // the delimiters.
        let mut p = Page::new();
        p.family("x_total", "counter", "line1\nline2 \\ backslash");
        p.sample("x_total", &[("k", "v\"w\n")], "1");
        assert!(p
            .out
            .contains("# HELP x_total line1\\nline2 \\\\ backslash\n"));
        assert!(p.out.contains("x_total{k=\"v\\\"w\\n\"} 1\n"));
    }

    #[test]
    fn counters_are_monotone_across_scrapes_mid_run() {
        let rec = AtomicRecorder::new();
        rec.path(SamplerPath::Windowed);
        rec.count(Counter::CachesBitmap, 2);
        let first = render_metrics(&rec.snapshot(), None, None);
        // "Mid-run": more events land between the two scrapes.
        rec.path(SamplerPath::Windowed);
        rec.path(SamplerPath::ExactScan);
        rec.count(Counter::CachesBitmap, 3);
        rec.span_ns(Stage::MetricsMerge, 10);
        let second = render_metrics(&rec.snapshot(), None, None);

        let counters = |page: &str| -> std::collections::HashMap<String, f64> {
            page.lines()
                .filter_map(parse_line)
                .filter(|(n, _, _)| n.ends_with("_total") || n.ends_with("_count"))
                .map(|(n, l, v)| (format!("{n}{{{l}}}"), v.parse::<f64>().unwrap()))
                .collect()
        };
        let a = counters(&first);
        let b = counters(&second);
        assert_eq!(a.len(), b.len(), "series identities are stable");
        for (series, &v1) in &a {
            let v2 = b[series];
            assert!(v2 >= v1, "{series} regressed: {v1} -> {v2}");
        }
        assert!(b["paba_requests_total{}"] > a["paba_requests_total{}"]);
    }

    #[test]
    fn http_server_round_trip() {
        let rec = std::sync::Arc::new(busy_recorder());
        let rec2 = std::sync::Arc::clone(&rec);
        let server = MetricsServer::spawn("127.0.0.1:0", move || {
            render_metrics(&rec2.snapshot(), None, None)
        })
        .expect("bind");
        let addr = server.local_addr();

        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).expect("connect");
            write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };

        let metrics = get("/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("paba_requests_total 3"));

        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.ends_with("ok\n"));

        assert!(get("/nope").starts_with("HTTP/1.1 404"));

        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 405"));

        server.shutdown();
    }
}
