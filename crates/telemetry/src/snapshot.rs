//! Plain-data snapshots of a recorder's counters.
//!
//! [`TelemetrySnapshot`] is what crosses thread and artifact boundaries:
//! the Monte-Carlo runner snapshots each worker's [`crate::AtomicRecorder`]
//! after join and folds them with [`TelemetrySnapshot::merge`] (associative
//! and commutative — u64 additions, histogram merges, and a max — so the
//! fold order never changes the result). The JSON form is the per-regime
//! payload of the `paba-profile/1` artifact.

use paba_util::{Align, Histogram, Table};

use crate::events::{Counter, SamplerPath, Stage};

/// Aggregated span timings for one [`Stage`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanSummary {
    /// The stage these spans timed.
    pub stage: Stage,
    /// log₂ latency buckets (see [`Histogram::log2_bucket`]): bucket 0 is
    /// the value 0, bucket `b ≥ 1` covers `[2^(b-1), 2^b)` nanoseconds.
    pub buckets: Histogram,
    /// Exact sum of recorded nanoseconds (means stay exact despite the
    /// bucketed quantiles).
    pub sum_ns: u64,
    /// Largest recorded span.
    pub max_ns: u64,
    /// Number of recorded spans.
    pub count: u64,
}

impl SpanSummary {
    /// Empty summary for `stage`.
    pub fn empty(stage: Stage) -> Self {
        Self {
            stage,
            buckets: Histogram::new(),
            sum_ns: 0,
            max_ns: 0,
            count: 0,
        }
    }

    /// Fold another summary for the same stage into `self`.
    pub fn merge(&mut self, other: &SpanSummary) {
        assert_eq!(self.stage, other.stage, "merging spans of different stages");
        self.buckets.merge(&other.buckets);
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.count += other.count;
    }

    /// Exact mean span in nanoseconds (`NaN` when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Bucketed `q`-quantile, reported as the lower bound of the bucket at
    /// the cut (`None` when empty). A resolution of one binary order of
    /// magnitude is plenty for "where does the time go" profiles.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        let b = self.buckets.quantile(q)?;
        Some(if b == 0 { 0 } else { 1u64 << (b - 1) })
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum_ns\":{},\"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{}}}",
            self.count,
            self.sum_ns,
            json_f64(self.mean_ns()),
            json_opt_u64(self.quantile_ns(0.5)),
            json_opt_u64(self.quantile_ns(0.99)),
            self.max_ns,
        )
    }
}

/// A plain-data view of everything one recorder observed.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySnapshot {
    /// Per-[`SamplerPath`] request counts, indexed by discriminant.
    pub paths: [u64; SamplerPath::COUNT],
    /// Auxiliary [`Counter`] tallies, indexed by discriminant.
    pub counters: [u64; Counter::COUNT],
    /// Exact histogram of materialized candidate-pool sizes.
    pub pool_sizes: Histogram,
    /// Span summaries, one per [`Stage`], indexed by discriminant.
    pub spans: Vec<SpanSummary>,
}

impl TelemetrySnapshot {
    /// All-zero snapshot (the identity element of [`Self::merge`]).
    pub fn empty() -> Self {
        Self {
            paths: [0; SamplerPath::COUNT],
            counters: [0; Counter::COUNT],
            pool_sizes: Histogram::new(),
            spans: Stage::ALL.iter().map(|&s| SpanSummary::empty(s)).collect(),
        }
    }

    /// Fold another snapshot into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (dst, src) in self.paths.iter_mut().zip(other.paths.iter()) {
            *dst += src;
        }
        for (dst, src) in self.counters.iter_mut().zip(other.counters.iter()) {
            *dst += src;
        }
        self.pool_sizes.merge(&other.pool_sizes);
        for (dst, src) in self.spans.iter_mut().zip(other.spans.iter()) {
            dst.merge(src);
        }
    }

    /// Total requests observed: the sum over sampler paths (each assign
    /// records exactly one path).
    pub fn total_requests(&self) -> u64 {
        self.paths.iter().sum()
    }

    /// Count for one sampler path.
    pub fn path_count(&self, path: SamplerPath) -> u64 {
        self.paths[path as usize]
    }

    /// Value of one auxiliary counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Span summary for one stage.
    pub fn span(&self, stage: Stage) -> &SpanSummary {
        &self.spans[stage as usize]
    }

    /// JSON object with `sampler_paths`, `counters`, `pool_sizes`, and
    /// `spans` fields — the per-regime payload of `paba-profile/1`.
    pub fn to_json(&self) -> String {
        let paths: Vec<String> = SamplerPath::ALL
            .iter()
            .map(|&p| format!("\"{}\":{}", p.label(), self.path_count(p)))
            .collect();
        let counters: Vec<String> = Counter::ALL
            .iter()
            .map(|&c| format!("\"{}\":{}", c.label(), self.counter(c)))
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| format!("\"{}\":{}", s.stage.label(), s.to_json()))
            .collect();
        format!(
            "{{\"sampler_paths\":{{{}}},\"counters\":{{{}}},\"pool_sizes\":{},\"spans\":{{{}}}}}",
            paths.join(","),
            counters.join(","),
            self.pool_sizes.summary_json(),
            spans.join(","),
        )
    }

    /// Human-readable Markdown breakdown (sampler paths with shares,
    /// auxiliary counters, pool sizes, stage timings).
    pub fn table(&self) -> String {
        let total = self.total_requests();
        let mut paths = Table::new(["sampler path", "requests", "share"]).with_aligns(vec![
            Align::Left,
            Align::Right,
            Align::Right,
        ]);
        for p in SamplerPath::ALL {
            let n = self.path_count(p);
            if n == 0 {
                continue;
            }
            let share = if total == 0 {
                "-".to_string()
            } else {
                format!("{:.1}%", n as f64 * 100.0 / total as f64)
            };
            paths.push_row([p.label().to_string(), n.to_string(), share]);
        }

        let mut counters =
            Table::new(["counter", "events"]).with_aligns(vec![Align::Left, Align::Right]);
        for c in Counter::ALL {
            counters.push_row([c.label().to_string(), self.counter(c).to_string()]);
        }

        let mut spans =
            Table::new(["stage", "spans", "mean", "p50", "p99", "max"]).with_aligns(vec![
                Align::Left,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
                Align::Right,
            ]);
        for s in &self.spans {
            spans.push_row([
                s.stage.label().to_string(),
                s.count.to_string(),
                fmt_ns(s.mean_ns()),
                s.quantile_ns(0.5).map_or("-".into(), |v| fmt_ns(v as f64)),
                s.quantile_ns(0.99).map_or("-".into(), |v| fmt_ns(v as f64)),
                if s.count == 0 {
                    "-".into()
                } else {
                    fmt_ns(s.max_ns as f64)
                },
            ]);
        }

        let pool = &self.pool_sizes;
        let pool_line = if pool.total() == 0 {
            "candidate pools: none recorded".to_string()
        } else {
            format!(
                "candidate pools: {} recorded, mean {:.2}, p50 {}, p99 {}, max {}",
                pool.total(),
                pool.mean(),
                pool.quantile(0.5).unwrap_or(0),
                pool.quantile(0.99).unwrap_or(0),
                pool.max_value().unwrap_or(0),
            )
        };

        format!(
            "{}\n{}\n{}\n\n{}",
            paths.to_markdown(),
            counters.to_markdown(),
            spans.to_markdown(),
            pool_line,
        )
    }
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// Format nanoseconds with an adaptive unit for table cells.
fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        return "-".to_string();
    }
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{AtomicRecorder, Recorder};

    /// Deterministic pseudo-random snapshot (no clocks/randomness in tests).
    fn synthetic(seed: u64) -> TelemetrySnapshot {
        let rec = AtomicRecorder::new();
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..200 {
            let r = next();
            rec.path(SamplerPath::ALL[(r % SamplerPath::COUNT as u64) as usize]);
            rec.count(Counter::ALL[(r as usize / 7) % Counter::COUNT], r % 5);
            rec.pool_size((r % 40) as usize);
            rec.span_ns(Stage::ALL[(r as usize / 11) % Stage::COUNT], r % 100_000);
        }
        rec.snapshot()
    }

    #[test]
    fn merge_is_associative_across_thread_splits() {
        let parts: Vec<TelemetrySnapshot> = (0..6).map(synthetic).collect();

        // ((a⊕b)⊕c)⊕… — the left fold the runner performs.
        let mut left = TelemetrySnapshot::empty();
        for p in &parts {
            left.merge(p);
        }

        // a⊕(b⊕(c⊕…)) — fully right-associated.
        let mut right = TelemetrySnapshot::empty();
        for p in parts.iter().rev() {
            let mut acc = p.clone();
            acc.merge(&right);
            right = acc;
        }

        // Pairwise tree merge, as a 4-thread split would produce.
        let mut tree = TelemetrySnapshot::empty();
        for pair in parts.chunks(2) {
            let mut acc = pair[0].clone();
            for p in &pair[1..] {
                acc.merge(p);
            }
            tree.merge(&acc);
        }

        assert_eq!(left, right);
        assert_eq!(left, tree);
        assert_eq!(
            left.total_requests(),
            parts.iter().map(|p| p.total_requests()).sum::<u64>()
        );
    }

    #[test]
    fn empty_is_merge_identity() {
        let snap = synthetic(42);
        let mut merged = snap.clone();
        merged.merge(&TelemetrySnapshot::empty());
        assert_eq!(merged, snap);
        let mut other = TelemetrySnapshot::empty();
        other.merge(&snap);
        assert_eq!(other, snap);
    }

    #[test]
    fn json_shape() {
        let snap = synthetic(7);
        let json = snap.to_json();
        for key in ["sampler_paths", "counters", "pool_sizes", "spans"] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key}");
        }
        for p in SamplerPath::ALL {
            assert!(json.contains(&format!("\"{}\":", p.label())));
        }
        for s in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", s.label())));
        }
        // Empty snapshot serializes nulls, not NaN.
        let empty = TelemetrySnapshot::empty().to_json();
        assert!(!empty.contains("NaN"));
        assert!(empty.contains("\"mean_ns\":null"));
    }

    #[test]
    fn table_renders_nonempty_paths_only() {
        let mut snap = TelemetrySnapshot::empty();
        snap.paths[SamplerPath::Windowed as usize] = 9;
        snap.paths[SamplerPath::ExactScan as usize] = 1;
        let table = snap.table();
        assert!(table.contains("windowed"));
        assert!(table.contains("90.0%"));
        assert!(!table.contains("ball-sample"));
    }

    #[test]
    fn span_quantiles_are_bucket_lower_bounds() {
        let mut s = SpanSummary::empty(Stage::AssignLoop);
        for ns in [0u64, 1, 900, 1000, 1100] {
            s.buckets.record(Histogram::log2_bucket(ns));
            s.sum_ns += ns;
            s.max_ns = s.max_ns.max(ns);
            s.count += 1;
        }
        // 900/1000/1100 all land in [512, 2048) buckets.
        assert_eq!(s.quantile_ns(1.0), Some(1024));
        assert_eq!(s.quantile_ns(0.0), Some(0));
    }
}
