//! Load-evolution time series.
//!
//! The paper's headline claims are *trajectories* — the maximum load grows
//! like Θ(log log n) as balls land — so end-of-run aggregates are not
//! enough to check them. [`LoadSeries`] samples the full load vector every
//! `stride` requests and keeps four scalars per sample point: max load,
//! mean load, gap-to-mean (the quantity the witness-tree bounds control),
//! and the p99 load. Sampling decisions depend only on the within-run
//! request index, so a series is bit-identical however runs are scheduled
//! across threads.

use paba_util::json::num;
use paba_util::Histogram;

/// One sampled point of the load trajectory.
///
/// All fields are `f64` so per-run points and cross-run means share a
/// type; per-run values are exact (small integers fit `f64` losslessly).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Requests completed when the sample was taken (1-based).
    pub requests: u64,
    /// Maximum load over all nodes.
    pub max_load: f64,
    /// Mean load over all nodes.
    pub mean_load: f64,
    /// `max_load - mean_load`: the gap the paper's bounds control.
    pub gap_to_mean: f64,
    /// 99th-percentile load.
    pub p99: f64,
}

impl SeriesPoint {
    /// Measure a point from a load vector after `requests` requests.
    pub fn measure(requests: u64, loads: &[u32]) -> Self {
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = if loads.is_empty() {
            0.0
        } else {
            loads.iter().map(|&l| l as u64).sum::<u64>() as f64 / loads.len() as f64
        };
        let hist: Histogram = loads.iter().map(|&l| l as usize).collect();
        let p99 = hist.quantile(0.99).unwrap_or(0) as f64;
        Self {
            requests,
            max_load: max,
            mean_load: mean,
            gap_to_mean: max - mean,
            p99,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"max_load\": {}, \"mean_load\": {}, \"gap_to_mean\": {}, \"p99\": {}}}",
            self.requests,
            num(self.max_load),
            num(self.mean_load),
            num(self.gap_to_mean),
            num(self.p99)
        )
    }
}

/// A strided load trajectory: one [`SeriesPoint`] every `stride` requests.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSeries {
    /// Sampling stride in requests; 0 disables collection.
    pub stride: u64,
    /// Sampled points in request order.
    pub points: Vec<SeriesPoint>,
}

impl LoadSeries {
    /// Empty series with the given stride (0 = disabled).
    pub fn new(stride: u64) -> Self {
        Self {
            stride,
            points: Vec::new(),
        }
    }

    /// Observe the load vector after request `request_index` (0-based) was
    /// recorded; samples when `(request_index + 1) % stride == 0`.
    pub fn observe(&mut self, request_index: u64, loads: &[u32]) {
        if self.stride == 0 {
            return;
        }
        let done = request_index + 1;
        if done.is_multiple_of(self.stride) {
            self.points.push(SeriesPoint::measure(done, loads));
        }
    }

    /// Pointwise mean over several runs' series, folded in slice order —
    /// callers pass runs sorted by run index, so the result is independent
    /// of thread count. Truncates to the shortest series.
    pub fn mean_over(series: &[&LoadSeries]) -> LoadSeries {
        let Some(first) = series.first() else {
            return LoadSeries::new(0);
        };
        let len = series.iter().map(|s| s.points.len()).min().unwrap_or(0);
        let inv = 1.0 / series.len() as f64;
        let points = (0..len)
            .map(|i| {
                let mut acc = SeriesPoint {
                    requests: first.points[i].requests,
                    max_load: 0.0,
                    mean_load: 0.0,
                    gap_to_mean: 0.0,
                    p99: 0.0,
                };
                for s in series {
                    let p = &s.points[i];
                    acc.max_load += p.max_load;
                    acc.mean_load += p.mean_load;
                    acc.gap_to_mean += p.gap_to_mean;
                    acc.p99 += p.p99;
                }
                acc.max_load *= inv;
                acc.mean_load *= inv;
                acc.gap_to_mean *= inv;
                acc.p99 *= inv;
                acc
            })
            .collect();
        LoadSeries {
            stride: first.stride,
            points,
        }
    }

    /// JSON array of the sampled points.
    pub fn to_json(&self) -> String {
        let pts: Vec<String> = self.points.iter().map(SeriesPoint::json).collect();
        format!(
            "{{\"stride\": {}, \"points\": [{}]}}",
            self.stride,
            pts.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_expected_scalars() {
        let loads = [0u32, 1, 2, 5];
        let p = SeriesPoint::measure(8, &loads);
        assert_eq!(p.requests, 8);
        assert_eq!(p.max_load, 5.0);
        assert_eq!(p.mean_load, 2.0);
        assert_eq!(p.gap_to_mean, 3.0);
        assert_eq!(p.p99, 5.0);
    }

    #[test]
    fn stride_controls_sampling() {
        let mut s = LoadSeries::new(4);
        let loads = [1u32, 1];
        for i in 0..10 {
            s.observe(i, &loads);
        }
        let at: Vec<u64> = s.points.iter().map(|p| p.requests).collect();
        assert_eq!(at, vec![4, 8]);

        let mut off = LoadSeries::new(0);
        for i in 0..10 {
            off.observe(i, &loads);
        }
        assert!(off.points.is_empty());
    }

    #[test]
    fn mean_over_is_pointwise() {
        let mut a = LoadSeries::new(1);
        let mut b = LoadSeries::new(1);
        a.observe(0, &[2, 0]);
        b.observe(0, &[4, 0]);
        let m = LoadSeries::mean_over(&[&a, &b]);
        assert_eq!(m.points.len(), 1);
        assert_eq!(m.points[0].max_load, 3.0);
        assert_eq!(m.points[0].mean_load, 1.5);
    }

    #[test]
    fn json_round_trips_shape() {
        let mut s = LoadSeries::new(2);
        s.observe(1, &[1, 3]);
        let j = s.to_json();
        assert!(j.starts_with("{\"stride\": 2"));
        assert!(j.contains("\"max_load\": 3"));
    }
}
