//! [`TraceRecorder`]: sampled per-request events + load time series.
//!
//! The aggregate counters in [`AtomicRecorder`] answer *how often* each
//! sampler path fires; a trace answers *when* and *for which request*.
//! `TraceRecorder` implements [`Recorder`] so any instrumented strategy
//! can feed it unchanged, and layers three collections on top of an
//! embedded `AtomicRecorder` (so aggregate snapshots stay available):
//!
//! * sampled [`TraceEvent`]s — 1-in-N or reservoir sampling into a
//!   bounded per-run buffer;
//! * a per-run [`LoadSeries`] via the [`Recorder::loads`] hook;
//! * wall-clock [`SpanEvent`]s for Chrome-trace export.
//!
//! **Determinism.** Every sampling decision depends only on the pair
//! (run index, within-run request counter): 1-in-N is a modulus on the
//! request counter and the reservoir RNG is reseeded per run from
//! `split_seed(cfg.seed, run)` at [`TraceRecorder::begin_run`]. Merged
//! through [`TraceReport::collect`] (which sorts by run index), event
//! streams and time series are bit-identical across thread counts. Span
//! events read the wall clock and are exempt — they exist for Perfetto,
//! not for comparison.
//!
//! The recorder uses a `RefCell` internally: it is `Send` (one worker
//! thread owns it at a time, the `run_parallel_with_state` contract) but
//! deliberately not `Sync`.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::time::Instant;

use paba_util::{split_seed, SplitMix64};

use crate::events::{Counter, SamplerPath, Stage};
use crate::recorder::{AtomicRecorder, Recorder};
use crate::snapshot::TelemetrySnapshot;
use crate::timeseries::LoadSeries;

/// Which requests get a [`TraceEvent`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sampling {
    /// Keep every n-th request (counting from the first); `OneIn(1)`
    /// keeps everything the event buffer can hold.
    OneIn(u64),
    /// Uniform sample of the given capacity over all requests in a run
    /// (Vitter's algorithm R, per-run deterministic seed).
    Reservoir(usize),
}

/// Configuration for a [`TraceRecorder`].
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Event sampling policy.
    pub sampling: Sampling,
    /// Load-series stride in requests; 0 disables the series.
    pub stride: u64,
    /// Ring-buffer bound for `OneIn` sampling: only the last `max_events`
    /// sampled events per run are kept (ignored by `Reservoir`, whose
    /// capacity is its own bound).
    pub max_events: usize,
    /// Trace seed; the reservoir RNG for run `i` is seeded
    /// `split_seed(seed, i)`.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            sampling: Sampling::OneIn(1),
            stride: 0,
            max_events: 4096,
            seed: 0,
        }
    }
}

/// One sampled assignment, fully resolved.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monte-Carlo run index.
    pub run: u64,
    /// Within-run request index (0-based).
    pub request: u64,
    /// Requested file id.
    pub file: u64,
    /// Requesting (origin) node.
    pub origin: u64,
    /// Node the request was assigned to.
    pub server: u64,
    /// Hop distance from origin to server.
    pub hops: u32,
    /// Sampler path that served the request, when one was recorded.
    pub path: Option<SamplerPath>,
    /// Materialized candidate-pool size, when one was recorded.
    pub pool_size: Option<u64>,
    /// `(node, load-at-decision-time)` candidates the strategy compared.
    pub candidates: Vec<(u64, u32)>,
}

/// One timed stage span with a wall-clock start relative to the
/// recorder's epoch — exactly what Chrome Trace Format's complete events
/// (`"ph": "X"`) need.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Timed stage.
    pub stage: Stage,
    /// Run that was active when the span ended, if any.
    pub run: Option<u64>,
    /// Span start, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// Everything one run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct RunTrace {
    /// Run index.
    pub run: u64,
    /// Requests observed in this run.
    pub requests: u64,
    /// Requests that passed the sampling filter (≥ `events.len()`; the
    /// difference was evicted by the ring/reservoir bound).
    pub sampled: u64,
    /// Retained events in request order.
    pub events: Vec<TraceEvent>,
    /// Load-evolution series for this run.
    pub series: LoadSeries,
}

impl RunTrace {
    /// Sampled events that were evicted by the buffer bound.
    pub fn dropped(&self) -> u64 {
        self.sampled - self.events.len() as u64
    }
}

#[derive(Debug)]
struct ActiveRun {
    run: u64,
    requests: u64,
    sampled: u64,
    events: VecDeque<TraceEvent>,
    series: LoadSeries,
    rng: SplitMix64,
    pending_path: Option<SamplerPath>,
    pending_pool: Option<u64>,
}

#[derive(Debug)]
struct TraceInner {
    finished: Vec<RunTrace>,
    active: Option<ActiveRun>,
    spans: Vec<SpanEvent>,
}

/// A [`Recorder`] that captures traces (see module docs).
#[derive(Debug)]
pub struct TraceRecorder {
    aggregate: AtomicRecorder,
    cfg: TraceConfig,
    epoch: Instant,
    inner: RefCell<TraceInner>,
}

impl TraceRecorder {
    /// Fresh recorder with its epoch at "now".
    pub fn new(cfg: TraceConfig) -> Self {
        Self::with_epoch(cfg, Instant::now())
    }

    /// Fresh recorder with an explicit epoch — recorders that share an
    /// epoch produce span timestamps on a common Chrome-trace timeline.
    pub fn with_epoch(cfg: TraceConfig, epoch: Instant) -> Self {
        Self {
            aggregate: AtomicRecorder::new(),
            cfg,
            epoch,
            inner: RefCell::new(TraceInner {
                finished: Vec::new(),
                active: None,
                spans: Vec::new(),
            }),
        }
    }

    /// Start collecting for run `run`, finalizing any previous run. The
    /// reservoir RNG is reseeded from `(cfg.seed, run)` so the run's
    /// sample is independent of which thread executes it.
    pub fn begin_run(&self, run: u64) {
        let mut inner = self.inner.borrow_mut();
        if let Some(act) = inner.active.take() {
            let done = Self::finalize(act, self.cfg.sampling);
            inner.finished.push(done);
        }
        inner.active = Some(self.fresh_run(run));
    }

    /// Aggregate counter snapshot (composes with `--telemetry` output).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        self.aggregate.snapshot()
    }

    /// Finalize and extract: per-run traces (in `begin_run` order), span
    /// events, and the aggregate snapshot.
    pub fn into_parts(self) -> (Vec<RunTrace>, Vec<SpanEvent>, TelemetrySnapshot) {
        let snapshot = self.aggregate.snapshot();
        let inner = self.inner.into_inner();
        let mut runs = inner.finished;
        if let Some(act) = inner.active {
            runs.push(Self::finalize(act, self.cfg.sampling));
        }
        (runs, inner.spans, snapshot)
    }

    fn fresh_run(&self, run: u64) -> ActiveRun {
        ActiveRun {
            run,
            requests: 0,
            sampled: 0,
            events: VecDeque::new(),
            series: LoadSeries::new(self.cfg.stride),
            rng: SplitMix64::new(split_seed(self.cfg.seed, run)),
            pending_path: None,
            pending_pool: None,
        }
    }

    fn finalize(act: ActiveRun, sampling: Sampling) -> RunTrace {
        let mut events: Vec<TraceEvent> = act.events.into();
        if matches!(sampling, Sampling::Reservoir(_)) {
            // Reservoir slots hold a uniform sample in replacement order;
            // present it in request order.
            events.sort_by_key(|e| e.request);
        }
        RunTrace {
            run: act.run,
            requests: act.requests,
            sampled: act.sampled,
            events,
            series: act.series,
        }
    }

    /// Run used for events recorded before any `begin_run` call.
    fn ensure_active<'a>(&self, inner: &'a mut TraceInner) -> &'a mut ActiveRun {
        if inner.active.is_none() {
            inner.active = Some(self.fresh_run(0));
        }
        inner.active.as_mut().expect("active run just ensured")
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    #[inline]
    fn path(&self, path: SamplerPath) {
        self.aggregate.path(path);
        let mut inner = self.inner.borrow_mut();
        self.ensure_active(&mut inner).pending_path = Some(path);
    }

    #[inline]
    fn count(&self, counter: Counter, delta: u64) {
        self.aggregate.count(counter, delta);
    }

    #[inline]
    fn pool_size(&self, size: usize) {
        self.aggregate.pool_size(size);
        let mut inner = self.inner.borrow_mut();
        self.ensure_active(&mut inner).pending_pool = Some(size as u64);
    }

    fn span_ns(&self, stage: Stage, nanos: u64) {
        self.aggregate.span_ns(stage, nanos);
        let mut inner = self.inner.borrow_mut();
        let end_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let run = inner.active.as_ref().map(|a| a.run);
        inner.spans.push(SpanEvent {
            stage,
            run,
            ts_ns: end_ns.saturating_sub(nanos),
            dur_ns: nanos,
        });
    }

    fn request(
        &self,
        file: u64,
        origin: u64,
        server: u64,
        hops: u32,
        candidates: &mut dyn Iterator<Item = (u64, u32)>,
    ) {
        let mut inner = self.inner.borrow_mut();
        let act = self.ensure_active(&mut inner);
        let idx = act.requests;
        act.requests += 1;
        let path = act.pending_path.take();
        let pool_size = act.pending_pool.take();
        let keep = match self.cfg.sampling {
            Sampling::OneIn(n) => idx.is_multiple_of(n.max(1)),
            Sampling::Reservoir(_) => true,
        };
        if !keep {
            return;
        }
        act.sampled += 1;
        let event = TraceEvent {
            run: act.run,
            request: idx,
            file,
            origin,
            server,
            hops,
            path,
            pool_size,
            candidates: candidates.collect(),
        };
        match self.cfg.sampling {
            Sampling::OneIn(_) => {
                let cap = self.cfg.max_events.max(1);
                if act.events.len() == cap {
                    act.events.pop_front();
                }
                act.events.push_back(event);
            }
            Sampling::Reservoir(cap) => {
                let cap = cap.max(1);
                let seen = act.sampled - 1; // 0-based item index
                if (seen as usize) < cap {
                    act.events.push_back(event);
                } else {
                    // Algorithm R: keep with probability cap/(seen+1).
                    let j = act.rng.next_below(seen + 1);
                    if (j as usize) < cap {
                        act.events[j as usize] = event;
                    }
                }
            }
        }
    }

    fn loads(&self, request_index: u64, loads: &[u32]) {
        let mut inner = self.inner.borrow_mut();
        self.ensure_active(&mut inner)
            .series
            .observe(request_index, loads);
    }
}

/// Merged traces from a set of per-thread [`TraceRecorder`] states.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Per-run traces, sorted by run index (scheduling-independent).
    pub runs: Vec<RunTrace>,
    /// Stage spans, sorted by start time (wall clock — *not* expected to
    /// be stable across thread counts).
    pub spans: Vec<SpanEvent>,
    /// Merged aggregate counters.
    pub snapshot: TelemetrySnapshot,
}

impl TraceReport {
    /// Merge the recorder states returned by a parallel collection pass.
    /// Runs are keyed and sorted by run index, so the deterministic parts
    /// of the report do not depend on how runs were spread over threads.
    pub fn collect(states: Vec<TraceRecorder>) -> Self {
        let mut runs = Vec::new();
        let mut spans = Vec::new();
        let mut snapshot = TelemetrySnapshot::empty();
        for state in states {
            let (r, s, snap) = state.into_parts();
            runs.extend(r);
            spans.extend(s);
            snapshot.merge(&snap);
        }
        runs.sort_by_key(|r| r.run);
        spans.sort_by_key(|s| (s.ts_ns, s.dur_ns, s.stage as usize));
        Self {
            runs,
            spans,
            snapshot,
        }
    }

    /// All retained events, in (run, request) order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.runs.iter().flat_map(|r| r.events.iter())
    }

    /// Total requests observed across runs.
    pub fn total_requests(&self) -> u64 {
        self.runs.iter().map(|r| r.requests).sum()
    }

    /// Pointwise-mean load series over all runs (deterministic fold in
    /// run-index order).
    pub fn mean_series(&self) -> LoadSeries {
        let series: Vec<&LoadSeries> = self.runs.iter().map(|r| &r.series).collect();
        LoadSeries::mean_over(&series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(rec: &TraceRecorder, run: u64, requests: u64) {
        rec.begin_run(run);
        let mut loads = vec![0u32; 8];
        for i in 0..requests {
            let server = (i % 8) as usize;
            rec.path(SamplerPath::Windowed);
            rec.pool_size(3);
            rec.request(
                i % 5,
                (i % 7) + 1,
                server as u64,
                1,
                &mut [(server as u64, loads[server])].iter().copied(),
            );
            loads[server] += 1;
            rec.loads(i, &loads);
        }
    }

    #[test]
    fn one_in_n_keeps_every_nth() {
        let rec = TraceRecorder::new(TraceConfig {
            sampling: Sampling::OneIn(4),
            stride: 0,
            max_events: 1024,
            seed: 9,
        });
        feed(&rec, 0, 10);
        let (runs, _, snap) = rec.into_parts();
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.requests, 10);
        let picked: Vec<u64> = r.events.iter().map(|e| e.request).collect();
        assert_eq!(picked, vec![0, 4, 8]);
        assert_eq!(r.dropped(), 0);
        // The aggregate stays exact even though events are sampled.
        assert_eq!(snap.paths[SamplerPath::Windowed as usize], 10);
        let e = &r.events[1];
        assert_eq!(e.path, Some(SamplerPath::Windowed));
        assert_eq!(e.pool_size, Some(3));
        assert_eq!(e.candidates.len(), 1);
    }

    #[test]
    fn ring_buffer_keeps_last_events() {
        let rec = TraceRecorder::new(TraceConfig {
            sampling: Sampling::OneIn(1),
            stride: 0,
            max_events: 3,
            seed: 0,
        });
        feed(&rec, 0, 10);
        let (runs, _, _) = rec.into_parts();
        let picked: Vec<u64> = runs[0].events.iter().map(|e| e.request).collect();
        assert_eq!(picked, vec![7, 8, 9]);
        assert_eq!(runs[0].sampled, 10);
        assert_eq!(runs[0].dropped(), 7);
    }

    #[test]
    fn reservoir_is_bounded_sorted_and_seeded_per_run() {
        let cfg = TraceConfig {
            sampling: Sampling::Reservoir(5),
            stride: 0,
            max_events: 4096,
            seed: 42,
        };
        let rec = TraceRecorder::new(cfg.clone());
        feed(&rec, 3, 100);
        let (runs, _, _) = rec.into_parts();
        let r = &runs[0];
        assert_eq!(r.events.len(), 5);
        assert_eq!(r.sampled, 100);
        let picked: Vec<u64> = r.events.iter().map(|e| e.request).collect();
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        assert_eq!(picked, sorted, "reservoir output is in request order");

        // Same run index ⇒ identical sample; different run ⇒ independent.
        let rec2 = TraceRecorder::new(cfg.clone());
        feed(&rec2, 3, 100);
        let (runs2, _, _) = rec2.into_parts();
        assert_eq!(runs[0].events, runs2[0].events);
        let rec3 = TraceRecorder::new(cfg);
        feed(&rec3, 4, 100);
        let (runs3, _, _) = rec3.into_parts();
        let picked3: Vec<u64> = runs3[0].events.iter().map(|e| e.request).collect();
        assert_ne!(picked, picked3);
    }

    #[test]
    fn series_and_span_capture() {
        let rec = TraceRecorder::new(TraceConfig {
            sampling: Sampling::OneIn(1),
            stride: 5,
            max_events: 16,
            seed: 0,
        });
        feed(&rec, 0, 10);
        rec.span_ns(Stage::AssignLoop, 1_000);
        let (runs, spans, _) = rec.into_parts();
        let pts = &runs[0].series.points;
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].requests, 5);
        assert_eq!(pts[1].requests, 10);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].stage, Stage::AssignLoop);
        assert_eq!(spans[0].dur_ns, 1_000);
        assert_eq!(spans[0].run, Some(0));
    }

    #[test]
    fn collect_sorts_runs_by_index() {
        let cfg = TraceConfig {
            sampling: Sampling::OneIn(1),
            stride: 2,
            max_events: 64,
            seed: 7,
        };
        // Thread A ran runs {1, 3}, thread B ran {0, 2}.
        let a = TraceRecorder::new(cfg.clone());
        feed(&a, 1, 4);
        feed(&a, 3, 4);
        let b = TraceRecorder::new(cfg);
        feed(&b, 0, 4);
        feed(&b, 2, 4);
        let report = TraceReport::collect(vec![a, b]);
        let order: Vec<u64> = report.runs.iter().map(|r| r.run).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(report.total_requests(), 16);
        assert_eq!(report.mean_series().points.len(), 2);
        assert_eq!(report.events().count(), 16);
    }

    #[test]
    fn request_hook_works_through_reference() {
        // `&TraceRecorder` must forward the default-body hooks.
        let rec = TraceRecorder::new(TraceConfig::default());
        let by_ref = &rec;
        fn site<R: Recorder>(r: &R) {
            r.request(1, 2, 3, 1, &mut std::iter::empty());
            r.loads(0, &[1]);
        }
        site(&by_ref);
        let (runs, _, _) = rec.into_parts();
        assert_eq!(runs[0].events.len(), 1);
        assert_eq!(runs[0].events[0].server, 3);
    }
}
