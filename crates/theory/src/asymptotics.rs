//! Maximum-load laws from the balanced-allocations literature, as used by
//! the paper's Theorems 1, 2, 4 and 6.
//!
//! These are *leading-order predictions* (the `Θ(·)` shapes), intended for
//! ratio tests: a measured max load divided by the prediction should be
//! roughly constant across `n` when the theorem applies.

/// `ln n / ln ln n` — the one-choice (and Strategy I lower-bound) scale of
/// Theorems 1–2. Returns `NaN` for `n ≤ e` where `ln ln n ≤ 0`.
pub fn one_choice_max_load(n: f64) -> f64 {
    let ll = n.ln().ln();
    if ll <= 0.0 {
        f64::NAN
    } else {
        n.ln() / ll
    }
}

/// `ln ln n / ln 2` — the classic two-choice scale (Azar et al.), the
/// target Strategy II achieves in the Theorem 4/6 regimes.
pub fn two_choice_max_load(n: f64) -> f64 {
    d_choice_max_load(n, 2.0)
}

/// `ln ln n / ln d` — Greedy\[d\]'s maximum load at `m = n`.
pub fn d_choice_max_load(n: f64, d: f64) -> f64 {
    if n <= std::f64::consts::E || d <= 1.0 {
        return f64::NAN;
    }
    n.ln().ln() / d.ln()
}

/// Kenthapadi–Panigrahi (paper's Theorem 5) bound for an almost Δ-regular
/// graph: `log log n + log n / log(Δ / log⁴ n)`.
///
/// Returns `INFINITY` when `Δ ≤ log⁴ n` (the bound is vacuous below the
/// density threshold — exactly the regime where the paper shows the power
/// of two choices can be lost).
pub fn kp_max_load_bound(n: f64, delta: f64) -> f64 {
    if n <= std::f64::consts::E {
        return f64::NAN;
    }
    let log4 = n.ln().powi(4);
    if delta <= log4 {
        return f64::INFINITY;
    }
    n.ln().ln() + n.ln() / (delta / log4).ln()
}

/// Theorem 4's regime condition: with `K = n`, `M = n^α`, `r = n^β`, the
/// proximity-aware two-choice strategy achieves `Θ(log log n)` max load
/// provided `α + 2β ≥ 1 + 2·log log n / log n`.
pub fn theorem4_condition_met(n: f64, alpha: f64, beta: f64) -> bool {
    if n <= std::f64::consts::E {
        return false;
    }
    alpha + 2.0 * beta >= 1.0 + 2.0 * n.ln().ln() / n.ln()
}

/// The smallest `β` satisfying Theorem 4's condition for given `n`, `α`:
/// `β = (1 − α)/2 + log log n / log n`.
///
/// The paper notes `r = n^β = n^{(1−α)/2}·log n`, i.e. only a `log n`
/// factor above the nearest-replica cost `Θ(√(K/M)) = Θ(n^{(1−α)/2})`.
pub fn theorem4_min_beta(n: f64, alpha: f64) -> f64 {
    if n <= std::f64::consts::E {
        return f64::NAN;
    }
    (1.0 - alpha) / 2.0 + n.ln().ln() / n.ln()
}

/// Expected maximum of `n` i.i.d. `Po(1)` variables, to leading order:
/// `ln n / ln ln n` (Example 2/4's request-concentration scale).
pub fn poisson_max_load(n: f64) -> f64 {
    one_choice_max_load(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_choice_growth() {
        // strictly increasing and unbounded on a doubling ladder
        let mut prev = 0.0;
        for e in [1e2, 1e4, 1e8, 1e16] {
            let v = one_choice_max_load(e);
            assert!(v > prev, "{v} !> {prev}");
            prev = v;
        }
        assert!(one_choice_max_load(2.0).is_nan());
    }

    #[test]
    fn two_choice_is_asymptotically_smaller() {
        // ln n/ln ln n vs ln ln n/ln 2: the advantage ratio grows without
        // bound (the "exponential improvement"), though slowly at finite n.
        let mut prev_ratio = 0.0;
        for n in [1e4, 1e8, 1e16, 1e32, 1e64, 1e128] {
            assert!(two_choice_max_load(n) < one_choice_max_load(n));
            let ratio = one_choice_max_load(n) / two_choice_max_load(n);
            assert!(
                ratio > prev_ratio,
                "ratio must grow: {ratio} !> {prev_ratio}"
            );
            prev_ratio = ratio;
        }
        assert!(prev_ratio > 3.0);
    }

    #[test]
    fn d_choice_decreases_in_d() {
        let n = 1e6;
        assert!(d_choice_max_load(n, 2.0) > d_choice_max_load(n, 4.0));
        assert!(d_choice_max_load(n, 4.0) > d_choice_max_load(n, 8.0));
        assert!(d_choice_max_load(n, 1.0).is_nan());
    }

    #[test]
    fn kp_bound_vacuous_below_density_threshold() {
        let n = 1e6f64;
        let log4 = n.ln().powi(4);
        assert!(kp_max_load_bound(n, log4 * 0.5).is_infinite());
        let v = kp_max_load_bound(n, log4 * 1e6);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn kp_bound_decreases_with_density() {
        let n = 1e8f64;
        let d1 = kp_max_load_bound(n, 1e12);
        let d2 = kp_max_load_bound(n, 1e16);
        assert!(d2 < d1);
    }

    #[test]
    fn theorem4_condition_examples() {
        // At n = 10^6 the finite-size slack 2·loglog/log ≈ 0.38 is large:
        // α + 2β must exceed ≈ 1.38, not just 1.
        let n = 1e6;
        assert!(theorem4_condition_met(n, 0.4, 0.55)); // 1.5 ≥ 1.38
        assert!(!theorem4_condition_met(n, 0.1, 0.2)); // 0.5 < 1
                                                       // Exactly 1 is not enough at finite n (needs the 2 loglog/log slack).
        assert!(!theorem4_condition_met(n, 0.4, 0.3));
    }

    #[test]
    fn theorem4_min_beta_matches_condition() {
        for n in [1e4, 1e6, 1e10] {
            for alpha in [0.1, 0.25, 0.4] {
                let beta = theorem4_min_beta(n, alpha);
                assert!(theorem4_condition_met(n, alpha, beta + 1e-12));
                assert!(!theorem4_condition_met(n, alpha, beta - 1e-3));
            }
        }
    }

    #[test]
    fn min_beta_approaches_half_minus_alpha_half() {
        // As n → ∞, β* → (1−α)/2.
        let b_small = theorem4_min_beta(1e4, 0.3);
        let b_large = theorem4_min_beta(1e300, 0.3);
        assert!(b_small > b_large);
        assert!((b_large - 0.35).abs() < 0.01);
    }
}
