//! Appendix A tail bounds (Chernoff forms) and derived tolerance helpers.
//!
//! The paper's Theorem 7 states, for a sum `X` of independent 0/1
//! variables and `δ ∈ (0,1)`:
//!
//! * `Pr[X ≥ (1+δ)·E X] ≤ exp(−δ²·E X / 2)`
//! * `Pr[X ≤ (1−δ)·E X] ≤ exp(−δ²·E X / 3)`
//!
//! The statistical tests in this workspace invert these bounds to choose
//! deviation tolerances with known failure probabilities, instead of
//! hard-coding magic constants.

/// Chernoff upper-tail bound: `Pr[X ≥ (1+δ)µ] ≤ exp(−δ²µ/2)`.
///
/// # Panics
/// If `delta ∉ (0, 1)` or `mu < 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
    assert!(mu >= 0.0);
    (-delta * delta * mu / 2.0).exp()
}

/// Chernoff lower-tail bound: `Pr[X ≤ (1−δ)µ] ≤ exp(−δ²µ/3)`.
///
/// # Panics
/// If `delta ∉ (0, 1)` or `mu < 0`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
    assert!(mu >= 0.0);
    (-delta * delta * mu / 3.0).exp()
}

/// Two-sided bound: `Pr[|X − µ| ≥ δµ] ≤ 2·exp(−δ²µ/3)`.
pub fn chernoff_two_sided(mu: f64, delta: f64) -> f64 {
    (2.0 * chernoff_lower(mu, delta)).min(1.0)
}

/// Smallest relative deviation `δ` for which the two-sided Chernoff bound
/// certifies failure probability at most `p_fail`:
/// `δ = √(3·ln(2/p_fail)/µ)` (capped at 1).
///
/// Use: `tolerance_for(µ, 1e-9)` gives a deviation such that a correct
/// simulation fails the assertion with probability `≤ 1e-9`.
///
/// # Panics
/// If `mu ≤ 0` or `p_fail ∉ (0, 1)`.
pub fn tolerance_for(mu: f64, p_fail: f64) -> f64 {
    assert!(mu > 0.0, "mean must be positive");
    assert!(p_fail > 0.0 && p_fail < 1.0, "p_fail must be in (0,1)");
    ((3.0 * (2.0 / p_fail).ln()) / mu).sqrt().min(1.0)
}

/// Sub-Gaussian tail bound `Pr[Z ≥ z] ≤ exp(−z²/2)` for a standardized
/// (mean 0, variance ≤ 1) statistic.
///
/// The repro gates compare Monte-Carlo means via their z-score and report
/// this bound as the gate's explicit failure probability: a *correct*
/// implementation (different RNG stream, same distribution) trips a gate
/// requiring `z ≥ z₀` with probability at most `exp(−z₀²/2)`.
///
/// Returns 1 for `z ≤ 0` (the bound is vacuous there).
pub fn z_tail_bound(z: f64) -> f64 {
    if z <= 0.0 {
        1.0
    } else {
        (-z * z / 2.0).exp()
    }
}

/// Standardized gap between two independent sample means:
/// `z = (m₁ − m₂) / √(se₁² + se₂²)`.
///
/// Positive when `m₁ > m₂`. Degenerate standard errors (both zero — e.g.
/// a deterministic metric) give `+∞`/`−∞`/`0` by the sign of the gap, so
/// exact-tie comparisons stay well-defined.
pub fn mean_gap_z(m1: f64, se1: f64, m2: f64, se2: f64) -> f64 {
    let gap = m1 - m2;
    let scale = (se1 * se1 + se2 * se2).sqrt();
    if scale == 0.0 {
        if gap == 0.0 {
            0.0
        } else if gap > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        gap / scale
    }
}

/// Binomial standard deviation `√(n·p·(1−p))`, the normal-approximation
/// scale used in sampler tests.
pub fn binomial_sigma(n: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    assert!(n >= 0.0);
    (n * p * (1.0 - p)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_decrease_in_mu_and_delta() {
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(10.0, 0.5));
        assert!(chernoff_upper(100.0, 0.5) < chernoff_upper(100.0, 0.1));
        assert!(chernoff_lower(100.0, 0.5) < chernoff_lower(10.0, 0.5));
    }

    #[test]
    fn upper_tighter_than_lower_at_same_params() {
        // exp(−δ²µ/2) ≤ exp(−δ²µ/3)
        assert!(chernoff_upper(50.0, 0.3) <= chernoff_lower(50.0, 0.3));
    }

    #[test]
    fn two_sided_capped_at_one() {
        assert_eq!(chernoff_two_sided(0.001, 0.01), 1.0);
        assert!(chernoff_two_sided(1e4, 0.2) < 1e-50);
    }

    #[test]
    fn tolerance_inverts_bound() {
        let mu = 5000.0;
        let p = 1e-9;
        let delta = tolerance_for(mu, p);
        // Plugging δ back in must certify ≤ p.
        assert!(chernoff_two_sided(mu, delta.min(0.999)) <= p * 1.0001);
    }

    #[test]
    fn tolerance_shrinks_with_mu() {
        assert!(tolerance_for(1e6, 1e-9) < tolerance_for(1e3, 1e-9));
        assert!(tolerance_for(1.0, 1e-9) <= 1.0);
    }

    #[test]
    fn binomial_sigma_known_values() {
        assert!((binomial_sigma(100.0, 0.5) - 5.0).abs() < 1e-12);
        assert_eq!(binomial_sigma(100.0, 0.0), 0.0);
        assert_eq!(binomial_sigma(100.0, 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "δ must be in (0,1)")]
    fn invalid_delta_panics() {
        let _ = chernoff_upper(10.0, 1.5);
    }

    #[test]
    fn z_tail_bound_shape() {
        assert_eq!(z_tail_bound(0.0), 1.0);
        assert_eq!(z_tail_bound(-3.0), 1.0);
        assert!(z_tail_bound(2.0) < z_tail_bound(1.0));
        // z = 4 → ≤ e⁻⁸ ≈ 3.4e-4; z = 6 → ≤ e⁻¹⁸ ≈ 1.5e-8.
        assert!(z_tail_bound(4.0) < 4e-4);
        assert!(z_tail_bound(6.0) < 2e-8);
    }

    #[test]
    fn mean_gap_z_known_values() {
        // gap 1.0, combined se √(0.3² + 0.4²) = 0.5 → z = 2.
        assert!((mean_gap_z(3.0, 0.3, 2.0, 0.4) - 2.0).abs() < 1e-12);
        assert!((mean_gap_z(2.0, 0.4, 3.0, 0.3) + 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_gap_z_degenerate_ses() {
        assert_eq!(mean_gap_z(5.0, 0.0, 5.0, 0.0), 0.0);
        assert_eq!(mean_gap_z(6.0, 0.0, 5.0, 0.0), f64::INFINITY);
        assert_eq!(mean_gap_z(4.0, 0.0, 5.0, 0.0), f64::NEG_INFINITY);
    }
}
