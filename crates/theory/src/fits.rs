//! Asymptotic-shape fits: regress measured quantities against the paper's
//! leading-order predictors.
//!
//! The growth-separation gate of the repro suite does not try to measure
//! an exponent from four or five points — at reachable `n` the constants
//! dominate. Instead it fits each strategy's measured max load *linearly
//! against a theorem's predictor* (`ln n / ln ln n` for Strategy I /
//! one-choice, `ln ln n` for Strategy II / two-choice) using
//! [`paba_util::fit_line`], and compares the fitted **slopes**: a
//! `Θ(log n / log log n)` curve has a positive, significant slope against
//! the one-choice predictor, while a `Θ(log log n)` curve is nearly flat
//! against it. The slope *difference*, standardized by the fits' standard
//! errors, is the separation statistic.

use crate::asymptotics::{one_choice_max_load, two_choice_max_load};
use paba_util::{fit_line, LineFit};

/// Fit `y ≈ a + b·predictor(n)` over `(n, y)` observations.
///
/// Points where the predictor is non-finite (e.g. `n ≤ e` for the
/// log-log laws) are skipped. `None` when fewer than two usable points
/// remain — same contract as [`paba_util::fit_line`].
pub fn fit_vs_predictor<F: Fn(f64) -> f64>(points: &[(f64, f64)], predictor: F) -> Option<LineFit> {
    let mapped: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, y)| (predictor(n), y))
        .filter(|&(x, _)| x.is_finite())
        .collect();
    fit_line(&mapped)
}

/// Fit measured values against the one-choice scale `ln n / ln ln n`
/// (Theorems 1–2's growth law for Strategy I).
pub fn fit_vs_one_choice_scale(points: &[(f64, f64)]) -> Option<LineFit> {
    fit_vs_predictor(points, one_choice_max_load)
}

/// Fit measured values against the two-choice scale `ln ln n / ln 2`
/// (Theorems 4/6's growth law for Strategy II).
pub fn fit_vs_two_choice_scale(points: &[(f64, f64)]) -> Option<LineFit> {
    fit_vs_predictor(points, two_choice_max_load)
}

/// [`fit_vs_predictor`] with *known per-point standard errors*: the
/// returned `slope_std_err` is propagated from the points' Monte-Carlo
/// uncertainty instead of estimated from residuals.
///
/// With `y_i` independent and `se_i` known, the OLS slope
/// `b = Σ(x_i−x̄)y_i / Σ(x_i−x̄)²` has
/// `Var(b) = Σ((x_i−x̄)·se_i)² / (Σ(x_i−x̄)²)²` exactly. Residual-based
/// errors on a handful of sweep points are dominated by chance alignment;
/// propagation quantifies the actual sampling noise of the means, which is
/// what a repro gate's z-score should standardize by. (It does *not*
/// absorb model misfit — the gates compare slopes between strategies under
/// a common predictor, so shared curvature cancels.)
///
/// # Panics
/// If `points` and `std_errs` lengths differ.
pub fn fit_vs_predictor_with_errors<F: Fn(f64) -> f64>(
    points: &[(f64, f64)],
    std_errs: &[f64],
    predictor: F,
) -> Option<LineFit> {
    assert_eq!(points.len(), std_errs.len(), "one standard error per point");
    let mapped: Vec<((f64, f64), f64)> = points
        .iter()
        .zip(std_errs.iter())
        .map(|(&(n, y), &se)| ((predictor(n), y), se))
        .filter(|&((x, _), _)| x.is_finite())
        .collect();
    let xy: Vec<(f64, f64)> = mapped.iter().map(|&(p, _)| p).collect();
    let mut fit = fit_line(&xy)?;
    let mean_x = xy.iter().map(|p| p.0).sum::<f64>() / xy.len() as f64;
    let sxx: f64 = xy.iter().map(|p| (p.0 - mean_x).powi(2)).sum();
    let var: f64 = mapped
        .iter()
        .map(|&((x, _), se)| ((x - mean_x) * se).powi(2))
        .sum::<f64>()
        / (sxx * sxx);
    fit.slope_std_err = var.sqrt();
    Some(fit)
}

/// Standardized slope difference between two independent line fits:
/// `z = (b₁ − b₂) / √(se₁² + se₂²)`.
///
/// Positive when `a` grows faster than `b` against the common predictor.
/// Degenerate (both-zero) standard errors resolve by the sign of the gap,
/// mirroring [`crate::bounds::mean_gap_z`].
pub fn slope_gap_z(a: &LineFit, b: &LineFit) -> f64 {
    crate::bounds::mean_gap_z(a.slope, a.slope_std_err, b.slope, b.slope_std_err)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ladder of n values spanning three decades.
    fn ns() -> Vec<f64> {
        vec![1e2, 1e3, 1e4, 1e5, 1e6]
    }

    #[test]
    fn recovers_one_choice_shape() {
        // y = 3 + 2·(ln n / ln ln n), exactly.
        let pts: Vec<(f64, f64)> = ns()
            .into_iter()
            .map(|n| (n, 3.0 + 2.0 * one_choice_max_load(n)))
            .collect();
        let fit = fit_vs_one_choice_scale(&pts).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999999);
    }

    #[test]
    fn one_choice_curve_outgrows_two_choice_curve() {
        // A Θ(ln n/ln ln n) curve vs a Θ(ln ln n) curve, both fitted
        // against the one-choice predictor: slopes must separate. The
        // ladder spans enough decades for the asymptotic shapes to
        // dominate the finite-n constants.
        let wide = [1e2, 1e4, 1e8, 1e16, 1e32];
        let grow: Vec<(f64, f64)> = wide
            .into_iter()
            .map(|n| (n, 1.5 * one_choice_max_load(n)))
            .collect();
        let flat: Vec<(f64, f64)> = wide
            .into_iter()
            .map(|n| (n, 1.5 * two_choice_max_load(n)))
            .collect();
        let f_grow = fit_vs_one_choice_scale(&grow).unwrap();
        let f_flat = fit_vs_one_choice_scale(&flat).unwrap();
        assert!(f_grow.slope > 2.0 * f_flat.slope.max(0.0));
        assert!(slope_gap_z(&f_grow, &f_flat) > 3.0);
    }

    #[test]
    fn skips_tiny_n_where_predictor_is_nan() {
        let pts = [(2.0, 1.0), (1e3, 2.0), (1e6, 3.0)];
        let fit = fit_vs_one_choice_scale(&pts).unwrap();
        assert_eq!(fit.n, 2); // n = 2 dropped (ln ln 2 < 0)
    }

    #[test]
    fn too_few_usable_points_is_none() {
        assert!(fit_vs_one_choice_scale(&[(2.0, 1.0), (2.5, 1.0)]).is_none());
    }

    #[test]
    fn propagated_error_matches_hand_computation() {
        // Identity predictor, xs {0,1,2}, equal se = 0.3:
        // sxx = 2, Var(b) = (1·0.09 + 0 + 1·0.09)/4 = 0.045.
        let pts = [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)];
        let fit = fit_vs_predictor_with_errors(&pts, &[0.3, 0.3, 0.3], |n| n).unwrap();
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.slope_std_err - 0.045f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn propagated_error_shrinks_with_point_precision() {
        let pts: Vec<(f64, f64)> = ns().into_iter().map(|n| (n, n.ln())).collect();
        let loose = fit_vs_predictor_with_errors(&pts, &[0.5; 5], |n| n.ln()).unwrap();
        let tight = fit_vs_predictor_with_errors(&pts, &[0.05; 5], |n| n.ln()).unwrap();
        assert_eq!(loose.slope, tight.slope);
        assert!((loose.slope_std_err / tight.slope_std_err - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one standard error per point")]
    fn mismatched_error_arity_panics() {
        let _ = fit_vs_predictor_with_errors(&[(1.0, 1.0)], &[0.1, 0.2], |n| n);
    }
}
