//! Lemma 2: goodness of the proportional placement.
//!
//! A placement is `(δ, µ)`-good when every node holds at least `δM`
//! *distinct* files and every pair of nodes shares fewer than `µ` files.
//! The paper proves proportional placement is good w.h.p. for `K = n`,
//! `M = n^α`, `α < 1/2`, with `δ = (1−α)/3` and any constant
//! `µ ≥ 5/(1−2α)`. These functions expose those parameters and the exact
//! expectations the empirical checks (the `lemma2_goodness` bench) compare
//! against.

/// Lemma 2's distinct-fraction parameter `δ = (1 − α)/3`.
///
/// # Panics
/// If `alpha ∉ (0, 1/2)`.
pub fn goodness_delta(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 0.5,
        "Lemma 2 requires 0 < α < 1/2, got {alpha}"
    );
    (1.0 - alpha) / 3.0
}

/// Lemma 2's overlap bound `µ = 5/(1 − 2α)` (the smallest constant the
/// proof admits).
///
/// # Panics
/// If `alpha ∉ (0, 1/2)`.
pub fn goodness_mu(alpha: f64) -> f64 {
    assert!(
        alpha > 0.0 && alpha < 0.5,
        "Lemma 2 requires 0 < α < 1/2, got {alpha}"
    );
    5.0 / (1.0 - 2.0 * alpha)
}

/// Exact expectation of `t(u)` — the number of *distinct* files a node
/// holds after `M` uniform-with-replacement draws from a library of `K`:
/// `E[t(u)] = K · (1 − (1 − 1/K)^M)`.
pub fn expected_distinct_files(k: f64, m: f64) -> f64 {
    assert!(k >= 1.0 && m >= 0.0);
    k * (1.0 - (1.0 - 1.0 / k).powf(m))
}

/// Exact expectation of `t(u, v)` — the number of distinct files cached by
/// *both* of two independent nodes:
/// `E[t(u,v)] = K · (1 − (1 − 1/K)^M)²  ≈ M²/K` for `M ≪ K`.
pub fn expected_overlap(k: f64, m: f64) -> f64 {
    assert!(k >= 1.0 && m >= 0.0);
    let hit = 1.0 - (1.0 - 1.0 / k).powf(m);
    k * hit * hit
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_mu_values() {
        assert!((goodness_delta(0.25) - 0.25).abs() < 1e-15);
        assert!((goodness_mu(0.25) - 10.0).abs() < 1e-12);
        // α → 0: δ → 1/3, µ → 5.
        assert!((goodness_delta(1e-9) - 1.0 / 3.0).abs() < 1e-6);
        assert!((goodness_mu(1e-9) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn mu_diverges_near_half() {
        assert!(goodness_mu(0.49) > 100.0);
    }

    #[test]
    #[should_panic(expected = "requires 0 < α < 1/2")]
    fn delta_rejects_out_of_range() {
        let _ = goodness_delta(0.5);
    }

    #[test]
    #[should_panic(expected = "requires 0 < α < 1/2")]
    fn mu_rejects_out_of_range() {
        let _ = goodness_mu(0.0);
    }

    #[test]
    fn expected_distinct_bounds() {
        // 1 draw → exactly 1 distinct file; M → ∞ → K.
        assert!((expected_distinct_files(100.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((expected_distinct_files(100.0, 1e6) - 100.0).abs() < 1e-6);
        // With replacement, distinct ≤ M, approaching M for K ≫ M.
        let e = expected_distinct_files(1e6, 100.0);
        assert!(e < 100.0 && e > 99.0, "E[t(u)]={e}");
    }

    #[test]
    fn expected_distinct_matches_simulation() {
        use rand::Rng;
        use rand::SeedableRng;
        let (k, m) = (50u32, 20u32);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut total = 0usize;
        let runs = 20_000;
        let mut seen = vec![false; k as usize];
        for _ in 0..runs {
            seen.iter_mut().for_each(|s| *s = false);
            for _ in 0..m {
                seen[rng.gen_range(0..k) as usize] = true;
            }
            total += seen.iter().filter(|&&s| s).count();
        }
        let sim = total as f64 / runs as f64;
        let exact = expected_distinct_files(k as f64, m as f64);
        assert!((sim - exact).abs() < 0.05, "sim {sim} vs exact {exact}");
    }

    #[test]
    fn expected_overlap_approximation() {
        // For M ≪ K: E[t(u,v)] ≈ M²/K.
        let e = expected_overlap(1e6, 100.0);
        assert!((e - 100.0 * 100.0 / 1e6).abs() / e < 0.01, "E={e}");
    }

    #[test]
    fn overlap_less_than_distinct() {
        for (k, m) in [(100.0, 10.0), (1000.0, 50.0)] {
            assert!(expected_overlap(k, m) < expected_distinct_files(k, m));
        }
    }
}
