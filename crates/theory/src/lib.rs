//! Closed-form asymptotic predictions from Pourmiri, Jafari Siavoshani &
//! Shariatpanahi, "Proximity-Aware Balanced Allocations in Cache Networks"
//! (IPDPS 2017).
//!
//! The experiment harnesses compare *measured* quantities against the
//! paper's Theorems; this crate centralizes the formulas so EXPERIMENTS.md
//! has a single source of truth:
//!
//! * [`asymptotics`] — maximum-load laws: one-choice
//!   `ln n / ln ln n`, Greedy\[d\] `ln ln n / ln d`, the
//!   Kenthapadi–Panigrahi bound of Theorem 5, and the Theorem 4 regime
//!   condition `α + 2β ≥ 1 + 2 log log n / log n`.
//! * [`zipf`] — generalized harmonic numbers `Λ(γ)` and the Theorem 3
//!   communication-cost regimes (the paper's equation (1)), both as exact
//!   series and as fitted-exponent predictions.
//! * [`goodness`] — Lemma 2's placement-goodness parameters
//!   `δ = (1−α)/3`, `µ ≥ 5/(1−2α)` and expected distinct/overlap counts.
//! * [`bounds`] — the Appendix A tail bounds (Chernoff forms) used to set
//!   statistical tolerances in the test suite, plus the z-score helpers
//!   the repro gates standardize mean comparisons with.
//! * [`fits`] — regressions of measured quantities against the theorems'
//!   asymptotic predictors (the growth-separation statistic).

pub mod asymptotics;
pub mod bounds;
pub mod fits;
pub mod goodness;
pub mod zipf;

pub use asymptotics::{
    d_choice_max_load, kp_max_load_bound, one_choice_max_load, theorem4_condition_met,
    theorem4_min_beta, two_choice_max_load,
};
pub use bounds::{mean_gap_z, z_tail_bound};
pub use fits::{
    fit_vs_one_choice_scale, fit_vs_predictor, fit_vs_predictor_with_errors,
    fit_vs_two_choice_scale, slope_gap_z,
};
pub use goodness::{expected_distinct_files, expected_overlap, goodness_delta, goodness_mu};
pub use zipf::{
    generalized_harmonic, nearest_cost_series, uniform_nearest_cost, zipf_cost_exponent_in_k,
    CostRegime,
};
