//! Theorem 3: communication cost of the nearest-replica strategy.
//!
//! The paper derives (its equation (14)) the exact cost series
//! `C = Σ_j p_j · Θ(1 / √(1 − (1 − p_j)^M))` and specializes it to the
//! Uniform profile (`Θ(√(K/M))`) and the five Zipf regimes of equation
//! (1). We expose the exact series (sans the Θ constant) for quantitative
//! comparison in Figure 2, plus the fitted-exponent predictions used by the
//! `table_thm3_zipf_cost` bench.

/// Generalized harmonic number `Λ(γ) = Σ_{j=1}^{K} j^{−γ}`
/// (the paper's equation (17) normalizer).
pub fn generalized_harmonic(k: u64, gamma: f64) -> f64 {
    (1..=k).map(|j| (j as f64).powf(-gamma)).sum()
}

/// The paper's exact cost series (equation (14), with the Θ-constant set
/// to 1): `C(P, M) = Σ_j p_j / √(1 − (1 − p_j)^M)`.
///
/// `weights` must be a normalized popularity vector.
pub fn nearest_cost_series(weights: &[f64], m_cache: u32) -> f64 {
    weights
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| {
            let q = 1.0 - (1.0 - p).powi(m_cache as i32);
            p / q.sqrt()
        })
        .sum()
}

/// Uniform-profile specialization: `√(K/M)` (Theorem 3's `Θ(√(K/M))`,
/// constant set to 1).
pub fn uniform_nearest_cost(k: f64, m_cache: f64) -> f64 {
    (k / m_cache).sqrt()
}

/// Which of the five Theorem 3 regimes a Zipf exponent falls into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostRegime {
    /// `0 < γ < 1`: `C = Θ(√(K/M))` — cost like Uniform.
    UniformLike,
    /// `γ = 1`: `C = Θ(√(K / (M log K)))`.
    CriticalOne,
    /// `1 < γ < 2`: `C = Θ(K^{1−γ/2} / √M)`.
    Intermediate,
    /// `γ = 2`: `C = Θ(log K / √M)`.
    CriticalTwo,
    /// `γ > 2`: `C = Θ(1/√M)` — independent of the library size.
    Saturated,
}

impl CostRegime {
    /// Classify a Zipf exponent (γ = 0 is the Uniform profile itself).
    pub fn classify(gamma: f64) -> Self {
        assert!(gamma >= 0.0 && gamma.is_finite());
        if gamma < 1.0 {
            CostRegime::UniformLike
        } else if gamma == 1.0 {
            CostRegime::CriticalOne
        } else if gamma < 2.0 {
            CostRegime::Intermediate
        } else if gamma == 2.0 {
            CostRegime::CriticalTwo
        } else {
            CostRegime::Saturated
        }
    }

    /// Predicted cost for library size `k` and cache size `m` (Θ-constant
    /// 1, including the regime's logarithmic corrections).
    pub fn predicted_cost(&self, k: f64, m: f64, gamma: f64) -> f64 {
        match self {
            CostRegime::UniformLike => (k / m).sqrt(),
            CostRegime::CriticalOne => (k / (m * k.ln())).sqrt(),
            CostRegime::Intermediate => k.powf(1.0 - gamma / 2.0) / m.sqrt(),
            CostRegime::CriticalTwo => k.ln() / m.sqrt(),
            CostRegime::Saturated => 1.0 / m.sqrt(),
        }
    }
}

/// The predicted power-law exponent of `C` as a function of `K` at fixed
/// `M` (ignoring logarithmic corrections): what a log–log fit of cost vs
/// library size should recover.
///
/// * `γ < 1` → `1/2`
/// * `γ = 1` → `1/2` (minus a `√log K` correction)
/// * `1 < γ < 2` → `1 − γ/2`
/// * `γ ≥ 2` → `0`
pub fn zipf_cost_exponent_in_k(gamma: f64) -> f64 {
    assert!(gamma >= 0.0 && gamma.is_finite());
    if gamma <= 1.0 {
        0.5
    } else if gamma < 2.0 {
        1.0 - gamma / 2.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_known_values() {
        assert!((generalized_harmonic(1, 1.0) - 1.0).abs() < 1e-15);
        assert!((generalized_harmonic(4, 1.0) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        assert!((generalized_harmonic(10, 0.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_regimes_of_eq17() {
        // Λ(γ) = Θ(K^{1−γ}) for γ<1; Θ(log K) at γ=1; Θ(1) for γ>1.
        let k1 = 10_000u64;
        let k2 = 40_000u64;
        // γ = 0.5: ratio should track (k2/k1)^0.5 = 2
        let r = generalized_harmonic(k2, 0.5) / generalized_harmonic(k1, 0.5);
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
        // γ = 1: ratio of logs
        let r = generalized_harmonic(k2, 1.0) / generalized_harmonic(k1, 1.0);
        let expect = (k2 as f64).ln() / (k1 as f64).ln();
        assert!((r - expect).abs() < 0.05, "ratio {r} vs {expect}");
        // γ = 3: converges
        let r = generalized_harmonic(k2, 3.0) / generalized_harmonic(k1, 3.0);
        assert!((r - 1.0).abs() < 1e-6, "ratio {r}");
    }

    #[test]
    fn uniform_cost_series_matches_closed_form() {
        // For the uniform profile and M ≪ K, the exact series is
        // ≈ √(K/M) · (1 + o(1)).
        for (k, m) in [(1000u32, 4u32), (5000, 10), (20_000, 25)] {
            let w = vec![1.0 / k as f64; k as usize];
            let series = nearest_cost_series(&w, m);
            let closed = uniform_nearest_cost(k as f64, m as f64);
            let ratio = series / closed;
            assert!(
                (ratio - 1.0).abs() < 0.05,
                "k={k} m={m}: series {series} vs closed {closed}"
            );
        }
    }

    #[test]
    fn cost_series_decreases_in_cache_size() {
        let k = 2000usize;
        let w = vec![1.0 / k as f64; k];
        let mut prev = f64::INFINITY;
        for m in [1u32, 2, 5, 10, 50, 100] {
            let c = nearest_cost_series(&w, m);
            assert!(c < prev, "M={m}: {c} !< {prev}");
            prev = c;
        }
    }

    #[test]
    fn skewed_profiles_cost_less() {
        // More skew ⇒ popular files are everywhere ⇒ lower cost.
        let k = 5000usize;
        let weights = |gamma: f64| -> Vec<f64> {
            let mut w: Vec<f64> = (1..=k).map(|j| (j as f64).powf(-gamma)).collect();
            let s: f64 = w.iter().sum();
            w.iter_mut().for_each(|x| *x /= s);
            w
        };
        let c_uni = nearest_cost_series(&weights(0.0), 4);
        let c_z1 = nearest_cost_series(&weights(1.0), 4);
        let c_z25 = nearest_cost_series(&weights(2.5), 4);
        assert!(c_z1 < c_uni);
        assert!(c_z25 < c_z1);
    }

    #[test]
    fn regime_classification() {
        assert_eq!(CostRegime::classify(0.0), CostRegime::UniformLike);
        assert_eq!(CostRegime::classify(0.99), CostRegime::UniformLike);
        assert_eq!(CostRegime::classify(1.0), CostRegime::CriticalOne);
        assert_eq!(CostRegime::classify(1.5), CostRegime::Intermediate);
        assert_eq!(CostRegime::classify(2.0), CostRegime::CriticalTwo);
        assert_eq!(CostRegime::classify(2.5), CostRegime::Saturated);
    }

    #[test]
    fn exponent_predictions() {
        assert_eq!(zipf_cost_exponent_in_k(0.5), 0.5);
        assert_eq!(zipf_cost_exponent_in_k(1.0), 0.5);
        assert!((zipf_cost_exponent_in_k(1.5) - 0.25).abs() < 1e-15);
        assert_eq!(zipf_cost_exponent_in_k(2.0), 0.0);
        assert_eq!(zipf_cost_exponent_in_k(3.0), 0.0);
    }

    #[test]
    fn exact_series_matches_regime_exponent() {
        // Fit the exact series' slope in K and compare with the predicted
        // exponent — a self-consistency check tying (14) to equation (1).
        for gamma in [0.5f64, 1.5, 2.5] {
            let mut pts = Vec::new();
            for &k in &[2_000usize, 4_000, 8_000, 16_000, 32_000] {
                let mut w: Vec<f64> = (1..=k).map(|j| (j as f64).powf(-gamma)).collect();
                let s: f64 = w.iter().sum();
                w.iter_mut().for_each(|x| *x /= s);
                pts.push((k as f64, nearest_cost_series(&w, 3)));
            }
            let fit = paba_util::fit_loglog(&pts).unwrap();
            let predict = zipf_cost_exponent_in_k(gamma);
            assert!(
                (fit.slope - predict).abs() < 0.08,
                "γ={gamma}: fitted {} vs predicted {predict}",
                fit.slope
            );
        }
    }

    #[test]
    fn saturated_regime_cost_independent_of_k() {
        let cost = |k: usize| {
            let mut w: Vec<f64> = (1..=k).map(|j| (j as f64).powf(-3.0)).collect();
            let s: f64 = w.iter().sum();
            w.iter_mut().for_each(|x| *x /= s);
            nearest_cost_series(&w, 4)
        };
        // The series' tail beyond K is Θ(K^{-1/2}), so doubling the
        // library K → 100K moves the cost by only a couple of percent.
        let a = cost(1_000);
        let b = cost(100_000);
        assert!((a / b - 1.0).abs() < 0.05, "{a} vs {b}");
    }
}
