//! Coordinate helpers shared by the torus and grid topologies.

/// A 2D lattice coordinate `(x, y)` with `0 ≤ x, y < side`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Coord {
    /// Column index.
    pub x: u32,
    /// Row index.
    pub y: u32,
}

impl Coord {
    /// Construct a coordinate.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

/// Wrapped 1D distance between residues `a, b ∈ [0, side)`:
/// `min(|a−b|, side−|a−b|)`.
///
/// ```
/// use paba_topology::wrapped_delta;
/// assert_eq!(wrapped_delta(0, 9, 10), 1); // wraps around
/// assert_eq!(wrapped_delta(2, 5, 10), 3);
/// ```
#[inline]
pub fn wrapped_delta(a: u32, b: u32, side: u32) -> u32 {
    debug_assert!(a < side && b < side);
    let d = a.abs_diff(b);
    d.min(side - d)
}

/// Add a (possibly negative) offset to a residue modulo `side`.
#[inline]
pub fn wrap_offset(a: u32, off: i64, side: u32) -> u32 {
    let s = side as i64;
    let v = (a as i64 + off).rem_euclid(s);
    v as u32
}

/// Number of residues `p ∈ [0, side)` whose wrapped distance to a fixed
/// residue is **at most** `b`: `min(2b+1, side)`.
#[inline]
pub fn residues_within(b: u32, side: u32) -> u32 {
    (2 * b as u64 + 1).min(side as u64) as u32
}

/// Number of residues `p ∈ [0, side)` whose wrapped distance to a fixed
/// residue is **exactly** `t`.
///
/// `1` for `t = 0`; `2` for `0 < t < side/2`; `1` for `t = side/2` with
/// `side` even; `0` beyond `⌊side/2⌋`.
#[inline]
pub fn residues_at(t: u32, side: u32) -> u32 {
    if t == 0 {
        1
    } else if 2 * t < side {
        2
    } else if 2 * t == side {
        1
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapped_delta_symmetry_and_range() {
        let side = 7;
        for a in 0..side {
            for b in 0..side {
                let d = wrapped_delta(a, b, side);
                assert_eq!(d, wrapped_delta(b, a, side));
                assert!(d <= side / 2);
                if a == b {
                    assert_eq!(d, 0);
                }
            }
        }
    }

    #[test]
    fn wrapped_delta_known_values() {
        assert_eq!(wrapped_delta(0, 3, 6), 3);
        assert_eq!(wrapped_delta(0, 4, 6), 2);
        assert_eq!(wrapped_delta(1, 5, 6), 2);
        assert_eq!(wrapped_delta(0, 0, 1), 0);
    }

    #[test]
    fn wrap_offset_behaviour() {
        assert_eq!(wrap_offset(0, -1, 10), 9);
        assert_eq!(wrap_offset(9, 1, 10), 0);
        assert_eq!(wrap_offset(5, 23, 10), 8);
        assert_eq!(wrap_offset(5, -23, 10), 2);
    }

    #[test]
    fn residues_within_counts_match_bruteforce() {
        for side in 1..=12u32 {
            for b in 0..=side {
                let brute = (0..side)
                    .filter(|&p| wrapped_delta(0, p, side) <= b)
                    .count();
                assert_eq!(
                    residues_within(b, side) as usize,
                    brute,
                    "side={side} b={b}"
                );
            }
        }
    }

    #[test]
    fn residues_at_counts_match_bruteforce() {
        for side in 1..=12u32 {
            for t in 0..=side {
                let brute = (0..side)
                    .filter(|&p| wrapped_delta(0, p, side) == t)
                    .count();
                assert_eq!(residues_at(t, side) as usize, brute, "side={side} t={t}");
            }
        }
    }
}
