//! Compressed-sparse-row (CSR) graphs.
//!
//! Used for the paper's *configuration graph* `H` (Definition 4) — whose
//! almost-regularity drives Theorem 4 via Kenthapadi–Panigrahi's Theorem 5 —
//! and as the substrate for the graph-based two-choice baseline in
//! `paba-ballsbins`.

use crate::NodeId;
use paba_util::FxHashSet;

/// Incremental edge-list builder producing a [`CsrGraph`].
///
/// Duplicate edges and self-loops are dropped; edges are undirected.
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: u32,
    edges: FxHashSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Builder for a graph on `n` nodes with no edges yet.
    pub fn new(n: u32) -> Self {
        Self {
            n,
            edges: FxHashSet::default(),
        }
    }

    /// Add the undirected edge `{a, b}`. Self-loops are ignored; duplicate
    /// insertions are idempotent. Returns `true` if the edge was new.
    ///
    /// # Panics
    /// If either endpoint is out of range.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(a < self.n && b < self.n, "edge endpoint out of range");
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.edges.insert(key)
    }

    /// Number of (unique, undirected) edges added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freeze into CSR form.
    pub fn build(self) -> CsrGraph {
        let n = self.n as usize;
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u64;
        offsets.push(0u64);
        for &d in &degree {
            acc += d as u64;
            offsets.push(acc);
        }
        let mut adjacency = vec![0u32; acc as usize];
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        for &(a, b) in &self.edges {
            adjacency[cursor[a as usize] as usize] = b;
            cursor[a as usize] += 1;
            adjacency[cursor[b as usize] as usize] = a;
            cursor[b as usize] += 1;
        }
        // Sort each adjacency run for deterministic iteration and O(log d)
        // membership queries.
        for v in 0..n {
            let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
            adjacency[lo..hi].sort_unstable();
        }
        CsrGraph {
            offsets,
            adjacency,
            m: self.edges.len() as u64,
        }
    }
}

/// An undirected graph in compressed-sparse-row form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `adjacency` for node `v`.
    offsets: Vec<u64>,
    adjacency: Vec<NodeId>,
    m: u64,
}

impl CsrGraph {
    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of undirected edges `e(G)`.
    #[inline]
    pub fn m(&self) -> u64 {
        self.m
    }

    /// Neighbors of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// O(log d) membership query for the edge `{a, b}`.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterate over each undirected edge once, as `(min, max)` pairs in
    /// ascending order of the smaller endpoint.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n()).flat_map(move |v| {
            self.neighbors(v)
                .iter()
                .copied()
                .filter(move |&w| v < w)
                .map(move |w| (v, w))
        })
    }

    /// Degree statistics across all nodes.
    pub fn degree_stats(&self) -> DegreeStats {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut isolated = 0u32;
        for v in 0..self.n() {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        if self.n() == 0 {
            min = 0;
        }
        DegreeStats {
            min,
            max,
            mean: if self.n() == 0 {
                0.0
            } else {
                2.0 * self.m as f64 / self.n() as f64
            },
            isolated,
        }
    }

    /// Whether every node can reach every other node (BFS from node 0).
    /// The empty graph and the single-node graph count as connected.
    pub fn is_connected(&self) -> bool {
        let n = self.n() as usize;
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::with_capacity(64);
        seen[0] = true;
        queue.push_back(0u32);
        let mut visited = 1usize;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    visited += 1;
                    queue.push_back(w);
                }
            }
        }
        visited == n
    }

    /// Uniform random undirected edge, as an (ordered) endpoint pair.
    ///
    /// Samples a uniform *directed* edge (a slot of the adjacency array)
    /// and returns `(tail, head)`; since each undirected edge owns exactly
    /// two slots, the undirected edge is uniform. O(log n) per draw.
    ///
    /// # Panics
    /// If the graph has no edges.
    pub fn sample_edge<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> (NodeId, NodeId) {
        assert!(self.m > 0, "cannot sample an edge of an empty graph");
        let slot = rng.gen_range(0..self.adjacency.len() as u64);
        // The tail is the node whose CSR range contains `slot`.
        let tail = match self.offsets.binary_search(&slot) {
            // `slot` is the start of some node's range; skip nodes with
            // empty ranges that share the same offset.
            Ok(mut i) => {
                while self.offsets[i + 1] == slot {
                    i += 1;
                }
                i as NodeId
            }
            Err(i) => (i - 1) as NodeId,
        };
        (tail, self.adjacency[slot as usize])
    }

    /// `max degree / min degree` — the "almost Δ-regular" diagnostic used
    /// when validating Lemma 3 (`∞` if some node is isolated).
    pub fn regularity_ratio(&self) -> f64 {
        let s = self.degree_stats();
        if s.min == 0 {
            f64::INFINITY
        } else {
            s.max as f64 / s.min as f64
        }
    }
}

/// Min/max/mean degree and isolated-node count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: u32,
    /// Maximum degree.
    pub max: u32,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Number of degree-0 nodes.
    pub isolated: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: u32) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            b.add_edge(v - 1, v);
        }
        b.build()
    }

    #[test]
    fn builder_dedups_and_drops_self_loops() {
        let mut b = GraphBuilder::new(4);
        assert!(b.add_edge(0, 1));
        assert!(!b.add_edge(1, 0), "reversed duplicate");
        assert!(!b.add_edge(0, 1), "exact duplicate");
        assert!(!b.add_edge(2, 2), "self loop");
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let mut b = GraphBuilder::new(5);
        for (a, bb) in [(3, 1), (3, 0), (3, 4), (1, 0)] {
            b.add_edge(a, bb);
        }
        let g = b.build();
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        for v in 0..g.n() {
            for &w in g.neighbors(v) {
                assert!(g.has_edge(w, v), "asymmetric edge {v}-{w}");
            }
        }
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(3, 0);
        let g = b.build();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn degree_stats_and_regularity() {
        let g = path_graph(5);
        let s = g.degree_stats();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.6).abs() < 1e-12);
        assert_eq!(s.isolated, 0);
        assert!((g.regularity_ratio() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_node_gives_infinite_ratio() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        let g = b.build();
        assert!(g.regularity_ratio().is_infinite());
        assert_eq!(g.degree_stats().isolated, 1);
    }

    #[test]
    fn connectivity() {
        assert!(path_graph(10).is_connected());
        assert!(path_graph(1).is_connected());
        assert!(GraphBuilder::new(0).build().is_connected());
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(2, 3);
        assert!(!b.build().is_connected());
    }

    #[test]
    fn has_edge_queries() {
        let g = path_graph(4);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn sample_edge_is_uniform_over_edges() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        // A graph with heterogeneous degrees AND isolated node 4 (empty CSR
        // range), which exercises the offset binary-search edge case.
        let mut b = GraphBuilder::new(6);
        for (x, y) in [(0, 1), (0, 2), (0, 3), (2, 3), (5, 0)] {
            b.add_edge(x, y);
        }
        let g = b.build();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut counts: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        let trials = 50_000;
        for _ in 0..trials {
            let (a, bb) = g.sample_edge(&mut rng);
            assert!(g.has_edge(a, bb), "sampled non-edge ({a},{bb})");
            let key = if a < bb { (a, bb) } else { (bb, a) };
            *counts.entry(key).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 5, "all edges should be reachable");
        let expect = trials as f64 / 5.0;
        for (&e, &c) in &counts {
            assert!(
                (c as f64 - expect).abs() < 6.0 * expect.sqrt(),
                "edge {e:?}: {c} vs {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn sample_edge_empty_panics() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let g = GraphBuilder::new(3).build();
        let _ = g.sample_edge(&mut SmallRng::seed_from_u64(0));
    }
}
