//! The bounded `side × side` grid (no wraparound).
//!
//! The paper's Remark 1 states all torus asymptotics carry over to the
//! bounded grid; we implement the grid so the claim can be checked
//! empirically (see the `examples_regimes` bench ablation).

use crate::coords::Coord;
use crate::NodeId;
use rand::Rng;

/// A 2D bounded grid with `side × side` nodes and the L1 metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grid {
    side: u32,
    n: u32,
}

impl Grid {
    /// Create a grid with the given side length.
    ///
    /// # Panics
    /// If `side` is zero or exceeds [`crate::Torus::MAX_SIDE`].
    pub fn new(side: u32) -> Self {
        assert!(side >= 1, "grid side must be positive");
        assert!(
            side <= crate::Torus::MAX_SIDE,
            "grid side {side} exceeds MAX_SIDE"
        );
        Self {
            side,
            n: side * side,
        }
    }

    /// Create a grid with `n` nodes; `n` must be a perfect square.
    pub fn from_nodes(n: u32) -> Self {
        // Compare in u64: near u32::MAX the rounded square root is 65536
        // and `side * side` would wrap to 0 in u32 arithmetic.
        let side = (n as f64).sqrt().round() as u64;
        assert!(
            side >= 1 && side * side == n as u64,
            "n={n} is not a positive perfect square"
        );
        Self::new(side as u32)
    }

    /// Side length.
    #[inline]
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Graph diameter: `2(side−1)`.
    #[inline]
    pub fn diameter(&self) -> u32 {
        2 * (self.side - 1)
    }

    /// Coordinate of node `v`.
    #[inline]
    pub fn coord(&self, v: NodeId) -> Coord {
        debug_assert!(v < self.n);
        Coord::new(v % self.side, v / self.side)
    }

    /// Node at coordinate `c`.
    #[inline]
    pub fn node(&self, c: Coord) -> NodeId {
        debug_assert!(c.x < self.side && c.y < self.side);
        c.y * self.side + c.x
    }

    /// L1 hop distance.
    #[inline]
    pub fn dist(&self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        ca.x.abs_diff(cb.x) + ca.y.abs_diff(cb.y)
    }

    /// Hop distance from an already-decoded coordinate `from` to node `v`;
    /// see [`crate::Torus::dist_from`] for the rationale.
    #[inline]
    pub fn dist_from(&self, from: Coord, v: NodeId) -> u32 {
        let cv = self.coord(v);
        from.x.abs_diff(cv.x) + from.y.abs_diff(cv.y)
    }

    /// Size of `B_r(u)` — position-dependent on a bounded grid.
    pub fn ball_size_at(&self, u: NodeId, r: u32) -> u64 {
        let c = self.coord(u);
        let side = self.side as i64;
        let (cx, cy) = (c.x as i64, c.y as i64);
        let ri = r as i64;
        let mut total = 0u64;
        let x_lo = (cx - ri).max(0);
        let x_hi = (cx + ri).min(side - 1);
        for x in x_lo..=x_hi {
            let budget = ri - (x - cx).abs();
            let y_lo = (cy - budget).max(0);
            let y_hi = (cy + budget).min(side - 1);
            total += (y_hi - y_lo + 1) as u64;
        }
        total
    }

    /// Visit every node of `B_r(u)` exactly once (including `u`).
    pub fn for_each_in_ball<F: FnMut(NodeId)>(&self, u: NodeId, r: u32, mut f: F) {
        let c = self.coord(u);
        let side = self.side as i64;
        let (cx, cy) = (c.x as i64, c.y as i64);
        let ri = r as i64;
        for x in (cx - ri).max(0)..=(cx + ri).min(side - 1) {
            let budget = ri - (x - cx).abs();
            for y in (cy - budget).max(0)..=(cy + budget).min(side - 1) {
                f(self.node(Coord::new(x as u32, y as u32)));
            }
        }
    }

    /// Visit every node at distance exactly `d` from `u` exactly once.
    pub fn for_each_at_distance<F: FnMut(NodeId)>(&self, u: NodeId, d: u32, mut f: F) {
        if d == 0 {
            f(u);
            return;
        }
        let c = self.coord(u);
        let side = self.side as i64;
        let (cx, cy) = (c.x as i64, c.y as i64);
        let di = d as i64;
        for dx in -di..=di {
            let x = cx + dx;
            if !(0..side).contains(&x) {
                continue;
            }
            let rem = di - dx.abs();
            let y = cy + rem;
            if (0..side).contains(&y) {
                f(self.node(Coord::new(x as u32, y as u32)));
            }
            if rem > 0 {
                let y = cy - rem;
                if (0..side).contains(&y) {
                    f(self.node(Coord::new(x as u32, y as u32)));
                }
            }
        }
    }

    /// Visit the maximal contiguous **node-id intervals** `[lo, hi]`
    /// (inclusive) that exactly cover `B_r(u)` — one interval per lattice
    /// row on the bounded grid (no wraparound seams); see
    /// [`crate::Torus::for_each_ball_id_range`] for the rationale.
    pub fn for_each_ball_id_range<F: FnMut(NodeId, NodeId)>(&self, u: NodeId, r: u32, mut f: F) {
        let c = self.coord(u);
        let side = self.side as i64;
        let (cx, cy) = (c.x as i64, c.y as i64);
        let ri = r as i64;
        for y in (cy - ri).max(0)..=(cy + ri).min(side - 1) {
            let budget = ri - (y - cy).abs();
            let x_lo = (cx - budget).max(0);
            let x_hi = (cx + budget).min(side - 1);
            let row = y as u32 * self.side;
            f(row + x_lo as u32, row + x_hi as u32);
        }
    }

    /// The single maximal contiguous node-id range covering every node
    /// whose row lies within distance `w` of `from`'s row; see
    /// [`crate::Torus::row_band`]. Returned as a two-slot array to match
    /// the torus signature (the second slot is always `None` here).
    pub fn row_band(&self, from: Coord, w: u32) -> [Option<(NodeId, NodeId)>; 2] {
        let ylo = from.y.saturating_sub(w);
        let yhi = from.y.saturating_add(w).min(self.side - 1);
        [Some((ylo * self.side, (yhi + 1) * self.side - 1)), None]
    }

    /// Collect `B_r(u)` into a vector.
    pub fn ball_nodes(&self, u: NodeId, r: u32) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.ball_size_at(u, r) as usize);
        self.for_each_in_ball(u, r, |v| out.push(v));
        out
    }

    /// Uniform random node of `B_r(u)` via diamond rejection with clipping.
    pub fn sample_in_ball<R: Rng + ?Sized>(&self, u: NodeId, r: u32, rng: &mut R) -> NodeId {
        self.sample_in_ball_from(self.coord(u), r, rng)
    }

    /// [`Grid::sample_in_ball`] from an already-decoded center coordinate
    /// (skips the per-call div/mod decode on rejection-sampling loops).
    pub fn sample_in_ball_from<R: Rng + ?Sized>(&self, c: Coord, r: u32, rng: &mut R) -> NodeId {
        if r == 0 || self.n == 1 {
            return self.node(c);
        }
        if r >= self.diameter() {
            return rng.gen_range(0..self.n);
        }
        let side = self.side as i64;
        let (cx, cy) = (c.x as i64, c.y as i64);
        let ri = r as i64;
        // Rejection from the clipped bounding box; acceptance ≥ ~1/4 even
        // in a corner, so expected work stays O(1).
        let x_lo = (cx - ri).max(0);
        let x_hi = (cx + ri).min(side - 1);
        let y_lo = (cy - ri).max(0);
        let y_hi = (cy + ri).min(side - 1);
        loop {
            let x = rng.gen_range(x_lo..=x_hi);
            let y = rng.gen_range(y_lo..=y_hi);
            if (x - cx).abs() + (y - cy).abs() <= ri {
                return self.node(Coord::new(x as u32, y as u32));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn brute_ball(g: &Grid, u: NodeId, r: u32) -> Vec<NodeId> {
        (0..g.n()).filter(|&v| g.dist(u, v) <= r).collect()
    }

    #[test]
    fn metric_axioms() {
        let g = Grid::new(5);
        for a in 0..g.n() {
            assert_eq!(g.dist(a, a), 0);
            for b in 0..g.n() {
                assert_eq!(g.dist(a, b), g.dist(b, a));
                for c in 0..g.n() {
                    assert!(g.dist(a, c) <= g.dist(a, b) + g.dist(b, c));
                }
            }
        }
    }

    #[test]
    fn no_wraparound() {
        let g = Grid::new(10);
        let left = g.node(Coord::new(0, 0));
        let right = g.node(Coord::new(9, 0));
        assert_eq!(g.dist(left, right), 9); // torus would give 1
    }

    #[test]
    fn ball_matches_bruteforce_everywhere() {
        let g = Grid::new(6);
        for u in 0..g.n() {
            for r in 0..=12 {
                let mut got = g.ball_nodes(u, r);
                got.sort_unstable();
                assert_eq!(got, brute_ball(&g, u, r), "u={u} r={r}");
                assert_eq!(g.ball_size_at(u, r), got.len() as u64);
            }
        }
    }

    #[test]
    fn corner_balls_are_smaller_than_center_balls() {
        let g = Grid::new(9);
        let corner = g.node(Coord::new(0, 0));
        let center = g.node(Coord::new(4, 4));
        for r in 1..=4 {
            assert!(g.ball_size_at(corner, r) < g.ball_size_at(center, r));
        }
    }

    #[test]
    fn ring_matches_bruteforce() {
        let g = Grid::new(6);
        for u in 0..g.n() {
            for d in 0..=12u32 {
                let mut got = Vec::new();
                g.for_each_at_distance(u, d, |v| got.push(v));
                got.sort_unstable();
                let expect: Vec<NodeId> = (0..g.n()).filter(|&v| g.dist(u, v) == d).collect();
                assert_eq!(got, expect, "u={u} d={d}");
            }
        }
    }

    #[test]
    fn sample_in_ball_in_corner() {
        let g = Grid::new(8);
        let mut rng = SmallRng::seed_from_u64(5);
        let corner = 0;
        let ball: std::collections::HashSet<NodeId> = g.ball_nodes(corner, 3).into_iter().collect();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..3000 {
            let v = g.sample_in_ball(corner, 3, &mut rng);
            assert!(ball.contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), ball.len());
    }

    #[test]
    fn diameter_value() {
        assert_eq!(Grid::new(10).diameter(), 18);
        assert_eq!(Grid::new(1).diameter(), 0);
    }
}
