//! Network topologies for the cache-network model of Pourmiri et al.
//! (IPDPS 2017).
//!
//! The paper places `n` caching servers on a `√n × √n` grid and, per its
//! Remark 1, analyses the **torus** (wrap-around grid) to avoid boundary
//! effects; all asymptotics carry over to the bounded grid. This crate
//! provides both, behind the [`Topology`] trait:
//!
//! * [`Torus`] — exact L1-with-wraparound metric, O(1) distance, exact ball
//!   `B_r(u)` and ring (distance-exactly-`d`) enumeration valid for *all*
//!   radii including the self-wrapping regime `2r ≥ side`, and uniform
//!   sampling inside balls.
//! * [`Grid`] — the bounded grid without wraparound, for ablations.
//! * [`CsrGraph`] — compressed-sparse-row adjacency used for the paper's
//!   *configuration graph* `H` (Definition 4) and for the
//!   Kenthapadi–Panigrahi balanced-allocation baseline (Theorem 5), plus
//!   generators for circulant, torus, complete, and random-regular graphs.
//!
//! Node identifiers are `u32` throughout (`side ≤ 46340`, i.e. up to ~2·10⁹
//! nodes — far beyond anything the experiments sweep).

pub mod coords;
pub mod graph;
pub mod grid;
pub mod regular;
pub mod topology;
pub mod torus;

pub use coords::{wrapped_delta, Coord};
pub use graph::{CsrGraph, DegreeStats, GraphBuilder};
pub use grid::Grid;
pub use regular::{circulant_graph, complete_graph, random_regular_graph, torus_graph};
pub use topology::Topology;
pub use torus::Torus;

/// Node identifier: an index in `0..n`.
pub type NodeId = u32;
